//! Closest pair of points in the plane — a tree-form D&C algorithm with a
//! data-dependent combine (the strip scan), `T(n) = 2T(n/2) + Θ(n)`.

use hpu_core::charge::Charge;
use hpu_core::tree::DivideConquer;
use hpu_model::{CostFn, Recurrence};

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Brute-force reference: `O(n²)` closest-pair distance
/// (`f64::INFINITY` for fewer than two points).
pub fn closest_pair_reference(points: &[Point]) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            best = best.min(points[i].dist(&points[j]));
        }
    }
    best
}

/// The D&C solution: subproblems are x-sorted point sets; outputs carry
/// the best distance plus the points re-sorted by `y` (for the linear
/// strip scan, mergesort-style).
#[derive(Debug, Clone, Default)]
pub struct ClosestPair;

impl ClosestPair {
    /// The algorithm's recurrence: `T(n) = 2T(n/2) + Θ(n)`.
    pub fn recurrence() -> Recurrence {
        Recurrence::new(2, 2, CostFn::Linear(4.0), 1.0).expect("valid recurrence")
    }

    /// Solves directly: sorts by x and runs the D&C recursion.
    pub fn solve(points: &[Point], charge: &mut dyn Charge) -> f64 {
        let mut pts = points.to_vec();
        pts.sort_by(|a, b| a.x.total_cmp(&b.x));
        hpu_core::tree::run_recursive(&ClosestPair, pts, charge).0
    }
}

impl DivideConquer for ClosestPair {
    /// An x-sorted set of points.
    type Param = Vec<Point>;
    /// Best distance plus the same points sorted by y.
    type Output = (f64, Vec<Point>);

    fn is_base(&self, p: &Self::Param) -> bool {
        p.len() <= 3
    }

    fn base_case(&self, p: Self::Param, charge: &mut dyn Charge) -> Self::Output {
        charge.ops(9);
        let best = closest_pair_reference(&p);
        let mut by_y = p;
        by_y.sort_by(|a, b| a.y.total_cmp(&b.y));
        (best, by_y)
    }

    fn divide(&self, p: &Self::Param, charge: &mut dyn Charge) -> Vec<Self::Param> {
        charge.mem(p.len() as u64);
        let mid = p.len() / 2;
        vec![p[..mid].to_vec(), p[mid..].to_vec()]
    }

    fn combine(
        &self,
        p: Self::Param,
        children: Vec<Self::Output>,
        charge: &mut dyn Charge,
    ) -> Self::Output {
        let mid_x = p[p.len() / 2].x;
        let [(dl, left), (dr, right)]: [(f64, Vec<Point>); 2] =
            children.try_into().expect("two children");
        let mut d = dl.min(dr);

        // Merge the y-sorted halves (mergesort-style, Θ(n)).
        let mut by_y = Vec::with_capacity(left.len() + right.len());
        let (mut i, mut j) = (0, 0);
        while i < left.len() || j < right.len() {
            let take_left = j >= right.len() || (i < left.len() && left[i].y <= right[j].y);
            if take_left {
                by_y.push(left[i]);
                i += 1;
            } else {
                by_y.push(right[j]);
                j += 1;
            }
        }
        charge.mem(2 * by_y.len() as u64);
        charge.ops(by_y.len() as u64);

        // Strip scan: points within d of the dividing line, at most ~7
        // neighbour checks each.
        let strip: Vec<&Point> = by_y.iter().filter(|pt| (pt.x - mid_x).abs() < d).collect();
        let mut checks = 0u64;
        for a in 0..strip.len() {
            for b in a + 1..strip.len() {
                if strip[b].y - strip[a].y >= d {
                    break;
                }
                checks += 1;
                d = d.min(strip[a].dist(strip[b]));
            }
        }
        charge.ops(4 * checks);
        (d, by_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpu_core::charge::NullCharge;
    use hpu_core::pool::LevelPool;
    use hpu_core::tree::{run_breadth_first, run_threaded};

    fn points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = (i as f64 * 1234.567).sin() * 100.0;
                let b = (i as f64 * 76.543).cos() * 100.0;
                Point { x: a, y: b }
            })
            .collect()
    }

    #[test]
    fn matches_bruteforce() {
        for n in [2usize, 3, 5, 16, 64, 200] {
            let pts = points(n);
            let expect = closest_pair_reference(&pts);
            let got = ClosestPair::solve(&pts, &mut NullCharge);
            assert!(
                (got - expect).abs() < 1e-9,
                "n = {n}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn breadth_first_and_threaded_agree() {
        let pts = {
            let mut p = points(128);
            p.sort_by(|a, b| a.x.total_cmp(&b.x));
            p
        };
        let expect = closest_pair_reference(&pts);
        let bf = run_breadth_first(&ClosestPair, pts.clone(), &mut NullCharge).0;
        let th = run_threaded(&ClosestPair, pts, &LevelPool::new(2)).0;
        assert!((bf - expect).abs() < 1e-9);
        assert!((th - expect).abs() < 1e-9);
    }

    #[test]
    fn duplicate_points_give_zero() {
        let mut pts = points(32);
        pts.push(pts[7]);
        let got = ClosestPair::solve(&pts, &mut NullCharge);
        assert_eq!(got, 0.0);
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point> = (0..64)
            .map(|i| Point {
                x: i as f64 * 2.0,
                y: 5.0,
            })
            .collect();
        let got = ClosestPair::solve(&pts, &mut NullCharge);
        assert!((got - 2.0).abs() < 1e-12);
    }
}
