//! Karatsuba polynomial multiplication — a tree-form D&C algorithm with
//! `a = 3`, `b = 2`, `f(n) = Θ(n)` (so `T(n) = Θ(n^{log₂3})`).
//!
//! Demonstrates the general [`DivideConquer`] form on a recurrence where
//! the branching (3) differs from the shrink factor (2), which the regular
//! in-place form cannot express.

use hpu_core::charge::Charge;
use hpu_core::tree::DivideConquer;
use hpu_model::Recurrence;

/// Coefficients use `i128` to stay exact for test-sized inputs.
pub type Coeff = i128;

/// Schoolbook `Θ(n²)` reference multiplication.
pub fn schoolbook(a: &[Coeff], b: &[Coeff]) -> Vec<Coeff> {
    if a.is_empty() || b.is_empty() {
        return vec![];
    }
    let mut out = vec![0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Karatsuba multiplication as a [`DivideConquer`] algorithm. Operands must
/// have equal power-of-two lengths (pad with zeros otherwise); products
/// have length `2n − 1`, zero-extended to `2n` for uniformity.
#[derive(Debug, Clone)]
pub struct Karatsuba {
    /// Operand length at or below which the base case (schoolbook) runs.
    pub threshold: usize,
}

impl Default for Karatsuba {
    fn default() -> Self {
        Karatsuba { threshold: 4 }
    }
}

impl Karatsuba {
    /// The algorithm's recurrence: `T(n) = 3T(n/2) + Θ(n)`.
    pub fn recurrence() -> Recurrence {
        Recurrence::karatsuba()
    }
}

impl DivideConquer for Karatsuba {
    /// A pair of equal-length operands.
    type Param = (Vec<Coeff>, Vec<Coeff>);
    /// Product, zero-extended to `2n` coefficients.
    type Output = Vec<Coeff>;

    fn is_base(&self, (a, _): &Self::Param) -> bool {
        a.len() <= self.threshold
    }

    fn base_case(&self, (a, b): Self::Param, charge: &mut dyn Charge) -> Self::Output {
        let n = a.len();
        charge.ops((n * n) as u64);
        charge.mem((2 * n * n) as u64);
        let mut out = schoolbook(&a, &b);
        out.resize(2 * n, 0);
        out
    }

    fn divide(&self, (a, b): &Self::Param, charge: &mut dyn Charge) -> Vec<Self::Param> {
        let m = a.len() / 2;
        let (a0, a1) = (a[..m].to_vec(), a[m..].to_vec());
        let (b0, b1) = (b[..m].to_vec(), b[m..].to_vec());
        let asum: Vec<Coeff> = a0.iter().zip(&a1).map(|(x, y)| x + y).collect();
        let bsum: Vec<Coeff> = b0.iter().zip(&b1).map(|(x, y)| x + y).collect();
        charge.ops(2 * m as u64);
        charge.mem(6 * m as u64);
        vec![(a0, b0), (a1, b1), (asum, bsum)]
    }

    fn combine(
        &self,
        (a, _): Self::Param,
        children: Vec<Self::Output>,
        charge: &mut dyn Charge,
    ) -> Self::Output {
        let n = a.len();
        let m = n / 2;
        let [z0, z2, zmid]: [Vec<Coeff>; 3] =
            children.try_into().expect("karatsuba has three children");
        // z1 = zmid − z0 − z2; result = z0 + z1·x^m + z2·x^n.
        let mut out = vec![0; 2 * n];
        for (i, &v) in z0.iter().enumerate() {
            out[i] += v;
        }
        for (i, &v) in z2.iter().enumerate() {
            out[n + i] += v;
        }
        for i in 0..zmid.len() {
            out[m + i] += zmid[i] - z0[i] - z2[i];
        }
        charge.ops(4 * n as u64);
        charge.mem(8 * n as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpu_core::charge::NullCharge;
    use hpu_core::pool::LevelPool;
    use hpu_core::tree::{run_breadth_first, run_recursive, run_sim_cpu, run_threaded};
    use hpu_machine::{CpuConfig, SimCpu};

    fn poly(n: usize, seed: i128) -> Vec<Coeff> {
        (0..n as i128).map(|i| (i * seed + 3) % 17 - 8).collect()
    }

    fn trim(mut v: Vec<Coeff>) -> Vec<Coeff> {
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }

    #[test]
    fn matches_schoolbook() {
        let algo = Karatsuba::default();
        for n in [4usize, 8, 16, 64] {
            let (a, b) = (poly(n, 5), poly(n, 11));
            let expect = trim(schoolbook(&a, &b));
            let got = run_recursive(&algo, (a, b), &mut NullCharge);
            assert_eq!(trim(got), expect, "n = {n}");
        }
    }

    #[test]
    fn breadth_first_and_threaded_agree() {
        let algo = Karatsuba::default();
        let pool = LevelPool::new(3);
        let (a, b) = (poly(32, 7), poly(32, 13));
        let rec = run_recursive(&algo, (a.clone(), b.clone()), &mut NullCharge);
        let bf = run_breadth_first(&algo, (a.clone(), b.clone()), &mut NullCharge);
        let th = run_threaded(&algo, (a.clone(), b.clone()), &pool);
        assert_eq!(rec, bf);
        assert_eq!(rec, th);
    }

    #[test]
    fn sim_cpu_parallel_speedup_is_sublinear() {
        // a = 3 subproblems per node: plenty of level parallelism.
        let algo = Karatsuba { threshold: 2 };
        let (a, b) = (poly(64, 3), poly(64, 9));
        let mut cpu1 = SimCpu::new(CpuConfig::uniform(4));
        let r1 = run_sim_cpu(&algo, (a.clone(), b.clone()), &mut cpu1, 1);
        let mut cpu4 = SimCpu::new(CpuConfig::uniform(4));
        let r4 = run_sim_cpu(&algo, (a, b), &mut cpu4, 4);
        assert_eq!(r1, r4);
        let speedup = cpu1.clock() / cpu4.clock();
        assert!(speedup > 1.5 && speedup <= 4.0, "speedup {speedup}");
    }

    #[test]
    fn zero_polynomials() {
        let algo = Karatsuba::default();
        let out = run_recursive(&algo, (vec![0; 8], poly(8, 5)), &mut NullCharge);
        assert!(out.iter().all(|&c| c == 0));
    }
}
