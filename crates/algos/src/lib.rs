//! # hpu-algos — divide-and-conquer algorithms on the HPU framework
//!
//! The paper's mergesort case study plus a library of further D&C
//! algorithms demonstrating the genericity of the translation:
//!
//! | module | algorithm | recurrence | framework form |
//! |---|---|---|---|
//! | [`mergesort`] | mergesort (§6, Algorithms 6-8) with the §6.3 coalescing optimization and the Figure-9 GPU parallel (binary-search) merge | `2T(n/2) + Θ(n)` | in-place breadth-first |
//! | [`sum`] | divide-and-conquer sum (Algorithms 4-5) | `2T(n/2) + Θ(1)` | in-place breadth-first |
//! | [`scan`] | prefix sums | `2T(n/2) + Θ(n)` | in-place breadth-first |
//! | [`max_subarray`] | maximum-subarray sum | `2T(n/2) + Θ(1)` | in-place breadth-first |
//! | [`karatsuba`] | Karatsuba polynomial multiplication | `3T(n/2) + Θ(n)` | tree form |
//! | [`matmul`] | blocked matrix multiplication | `8T(n/2) + Θ(n²)` | tree form |
//! | [`closest_pair`] | closest pair of points in the plane | `2T(n/2) + Θ(n)` | tree form |
//!
//! Every module carries a plain sequential reference implementation the
//! framework executors are tested against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closest_pair;
pub mod karatsuba;
pub mod matmul;
pub mod max_subarray;
pub mod mergesort;
pub mod scan;
pub mod sum;

pub use mergesort::MergeSort;
pub use sum::DcSum;
