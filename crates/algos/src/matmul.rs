//! Blocked (divide-and-conquer) matrix multiplication — tree form with
//! `a = 8`, `b = 2`, `f(n) = Θ(n²)` over the side length `n`
//! (`T(n) = Θ(n³)`).

use hpu_core::charge::Charge;
use hpu_core::tree::DivideConquer;
use hpu_model::Recurrence;

/// A dense square matrix in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Side length.
    pub n: usize,
    /// Row-major elements (`n·n` of them).
    pub data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n×n` zero matrix.
    pub fn zero(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates a matrix from a generator of `(row, col)` entries.
    pub fn from_fn(n: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zero(n);
        for i in 0..n {
            for j in 0..n {
                m.data[i * n + j] = f(i, j);
            }
        }
        m
    }

    /// Element accessor.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Extracts the quadrant (`qi`, `qj`) of a matrix with even side.
    pub fn quadrant(&self, qi: usize, qj: usize) -> Matrix {
        let h = self.n / 2;
        Matrix::from_fn(h, |i, j| self.at(qi * h + i, qj * h + j))
    }

    /// Assembles a matrix from four quadrants `[[q00, q01], [q10, q11]]`.
    pub fn from_quadrants(q: [[&Matrix; 2]; 2]) -> Matrix {
        let h = q[0][0].n;
        Matrix::from_fn(2 * h, |i, j| q[i / h][j / h].at(i % h, j % h))
    }

    /// Entrywise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        debug_assert_eq!(self.n, other.n);
        Matrix {
            n: self.n,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Maximum absolute entrywise difference (for float comparisons).
    pub fn max_diff(&self, other: &Matrix) -> f64 {
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Triple-loop reference multiplication.
pub fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    let n = a.n;
    let mut c = Matrix::zero(n);
    for i in 0..n {
        for k in 0..n {
            let aik = a.at(i, k);
            for j in 0..n {
                c.data[i * n + j] += aik * b.at(k, j);
            }
        }
    }
    c
}

/// D&C matrix multiplication: each node spawns the 8 half-size products
/// `A_ik · B_kj` and combines them with `Θ(n²)` additions.
#[derive(Debug, Clone)]
pub struct DcMatmul {
    /// Side length at or below which the triple loop runs.
    pub threshold: usize,
}

impl Default for DcMatmul {
    fn default() -> Self {
        DcMatmul { threshold: 8 }
    }
}

impl DcMatmul {
    /// The algorithm's recurrence: `T(n) = 8T(n/2) + Θ(n²)`.
    pub fn recurrence() -> Recurrence {
        Recurrence::dc_matmul()
    }
}

impl DivideConquer for DcMatmul {
    /// A pair of equal-size square matrices (power-of-two side).
    type Param = (Matrix, Matrix);
    /// Their product.
    type Output = Matrix;

    fn is_base(&self, (a, _): &Self::Param) -> bool {
        a.n <= self.threshold
    }

    fn base_case(&self, (a, b): Self::Param, charge: &mut dyn Charge) -> Matrix {
        let n = a.n as u64;
        charge.ops(2 * n * n * n);
        charge.mem(3 * n * n);
        matmul_reference(&a, &b)
    }

    fn divide(&self, (a, b): &Self::Param, charge: &mut dyn Charge) -> Vec<Self::Param> {
        let n = a.n as u64;
        charge.mem(2 * n * n); // reading both operands into quadrants
        let mut children = Vec::with_capacity(8);
        // C_ij = Σ_k A_ik B_kj: children ordered (i, j, k).
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    children.push((a.quadrant(i, k), b.quadrant(k, j)));
                }
            }
        }
        children
    }

    fn combine(
        &self,
        (a, _): Self::Param,
        children: Vec<Matrix>,
        charge: &mut dyn Charge,
    ) -> Matrix {
        let n = a.n as u64;
        charge.ops(n * n); // the quadrant additions
        charge.mem(3 * n * n);
        let quads: Vec<Matrix> = children
            .chunks(2)
            .map(|pair| pair[0].add(&pair[1]))
            .collect();
        Matrix::from_quadrants([[&quads[0], &quads[1]], [&quads[2], &quads[3]]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpu_core::charge::NullCharge;
    use hpu_core::pool::LevelPool;
    use hpu_core::tree::{run_breadth_first, run_recursive, run_threaded};

    fn mat(n: usize, seed: f64) -> Matrix {
        Matrix::from_fn(n, |i, j| ((i * 31 + j * 17) as f64 * seed) % 7.0 - 3.0)
    }

    #[test]
    fn identity_multiplication() {
        let algo = DcMatmul { threshold: 2 };
        let a = mat(16, 1.0);
        let id = Matrix::from_fn(16, |i, j| if i == j { 1.0 } else { 0.0 });
        let out = run_recursive(&algo, (a.clone(), id), &mut NullCharge);
        assert!(out.max_diff(&a) < 1e-12);
    }

    #[test]
    fn matches_reference() {
        let algo = DcMatmul { threshold: 4 };
        for n in [4usize, 8, 16, 32] {
            let (a, b) = (mat(n, 1.5), mat(n, 2.5));
            let expect = matmul_reference(&a, &b);
            let got = run_recursive(&algo, (a, b), &mut NullCharge);
            assert!(got.max_diff(&expect) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn executors_agree() {
        let algo = DcMatmul { threshold: 4 };
        let pool = LevelPool::new(2);
        let (a, b) = (mat(16, 0.7), mat(16, 1.3));
        let rec = run_recursive(&algo, (a.clone(), b.clone()), &mut NullCharge);
        let bf = run_breadth_first(&algo, (a.clone(), b.clone()), &mut NullCharge);
        let th = run_threaded(&algo, (a, b), &pool);
        assert!(rec.max_diff(&bf) < 1e-12);
        assert!(rec.max_diff(&th) < 1e-12);
    }

    #[test]
    fn quadrant_roundtrip() {
        let m = mat(8, 1.0);
        let q = [
            [&m.quadrant(0, 0), &m.quadrant(0, 1)],
            [&m.quadrant(1, 0), &m.quadrant(1, 1)],
        ];
        assert_eq!(Matrix::from_quadrants(q), m);
    }
}
