//! Maximum-subarray sum as a divide-and-conquer algorithm.
//!
//! The classic `Θ(1)`-combine formulation: a solved segment is summarized
//! by four values (total, best, best prefix, best suffix); two summaries
//! merge in constant time. Demonstrates the framework on a *non-array*
//! output carried inside the element type.

use hpu_core::charge::Charge;
use hpu_core::BfAlgorithm;
use hpu_model::Recurrence;

/// Summary of a segment for maximum-subarray merging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Segment {
    /// Sum of the whole segment.
    pub total: i64,
    /// Best subarray sum within the segment (empty subarray allowed: ≥ 0).
    pub best: i64,
    /// Best prefix sum.
    pub prefix: i64,
    /// Best suffix sum.
    pub suffix: i64,
}

impl Segment {
    /// Summary of a single value.
    pub fn leaf(v: i64) -> Self {
        let clamped = v.max(0);
        Segment {
            total: v,
            best: clamped,
            prefix: clamped,
            suffix: clamped,
        }
    }

    /// Merges two adjacent segment summaries.
    pub fn merge(a: Segment, b: Segment) -> Segment {
        Segment {
            total: a.total + b.total,
            best: a.best.max(b.best).max(a.suffix + b.prefix),
            prefix: a.prefix.max(a.total + b.prefix),
            suffix: b.suffix.max(b.total + a.suffix),
        }
    }
}

/// Sequential reference (Kadane's algorithm; empty subarray allowed).
pub fn max_subarray_reference(data: &[i64]) -> i64 {
    let mut best = 0i64;
    let mut cur = 0i64;
    for &x in data {
        cur = (cur + x).max(0);
        best = best.max(cur);
    }
    best
}

/// Converts raw values into leaf segments for the breadth-first form.
pub fn to_segments(data: &[i64]) -> Vec<Segment> {
    data.iter().map(|&v| Segment::leaf(v)).collect()
}

/// Breadth-first maximum subarray. After a run, `data[0].best` holds the
/// answer.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxSubarray;

impl BfAlgorithm<Segment> for MaxSubarray {
    fn name(&self) -> &'static str {
        "max-subarray"
    }

    fn base_case(&self, _chunk: &mut [Segment], charge: &mut dyn Charge) {
        charge.ops(1);
    }

    fn combine(&self, src: &[Segment], dst: &mut [Segment], charge: &mut dyn Charge) {
        let half = src.len() / 2;
        dst[0] = Segment::merge(src[0], src[half]);
        charge.ops(8);
        charge.mem(3);
    }

    fn recurrence(&self) -> Recurrence {
        Recurrence::new(2, 2, hpu_model::CostFn::Constant(11.0), 1.0).expect("valid recurrence")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpu_core::exec::{run_sim, Strategy};
    use hpu_machine::{MachineConfig, SimHpu};

    fn input(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| ((i * 37 + 11) % 23) - 11).collect()
    }

    #[test]
    fn reference_matches_bruteforce_on_small_inputs() {
        for n in 0..=12usize {
            let d = input(n);
            let mut brute = 0i64;
            for i in 0..=n {
                for j in i..=n {
                    brute = brute.max(d[i..j].iter().sum::<i64>());
                }
            }
            assert_eq!(max_subarray_reference(&d), brute, "n = {n}");
        }
    }

    #[test]
    fn segment_merge_matches_reference() {
        let d = input(64);
        let mut segs = to_segments(&d);
        // Fold pairwise like the BF execution would.
        let mut len = 64;
        while len > 1 {
            for k in 0..len / 2 {
                segs[k] = Segment::merge(segs[2 * k], segs[2 * k + 1]);
            }
            len /= 2;
        }
        assert_eq!(segs[0].best, max_subarray_reference(&d));
    }

    #[test]
    fn all_strategies_agree() {
        let n = 1 << 10;
        let expect = max_subarray_reference(&input(n));
        for strategy in [
            Strategy::Sequential,
            Strategy::CpuOnly,
            Strategy::GpuOnly,
            Strategy::Advanced {
                alpha: 0.25,
                transfer_level: 4,
            },
        ] {
            let mut segs = to_segments(&input(n));
            let mut hpu = SimHpu::new(MachineConfig::tiny());
            run_sim(&MaxSubarray, &mut segs, &mut hpu, &strategy).unwrap();
            assert_eq!(segs[0].best, expect, "strategy {strategy:?}");
        }
    }

    #[test]
    fn all_negative_input_gives_zero() {
        let mut segs = to_segments(&vec![-5i64; 128]);
        let mut hpu = SimHpu::new(MachineConfig::tiny());
        run_sim(&MaxSubarray, &mut segs, &mut hpu, &Strategy::CpuOnly).unwrap();
        assert_eq!(segs[0].best, 0);
    }
}
