//! Mergesort — the paper's case study (§6).
//!
//! * [`sort_recursive`] — the classic recursive implementation
//!   (Algorithm 6), the paper's 1-core baseline.
//! * [`MergeSort`] — the breadth-first framework form (Algorithm 7) with
//!   two GPU paths:
//!   - *generic* ([`MergeSort::generic`]): the untouched Algorithm-3
//!     translation — every work-item runs the CPU merge, memory traffic is
//!     uncoalesced;
//!   - *coalesced* ([`MergeSort::new`], default): the §6.3 optimization.
//!     The device keeps runs in a **column-major** layout (element `j` of
//!     run `i` of `R` runs lives at `j·R + i`), so adjacent work-items
//!     touch adjacent addresses at every merge step. Work-item `i` merges
//!     runs `i` and `i + R/2`, writing column `i` of the `R/2`-column
//!     layout — all streams have inter-item stride 1 and coalesce. A
//!     single un-permute kernel restores the contiguous layout before
//!     download.
//! * [`gpu_parallel_mergesort`] — the fully parallel GPU sort of Figure 9:
//!   every level merges run pairs with one work-item *per element*, each
//!   finding its output position by binary search in the sibling run.

use hpu_core::charge::{Charge, GpuCharge};
use hpu_core::{BfAlgorithm, CoreError, Element, LevelInfo};
use hpu_machine::{DeviceBuffer, LaunchStats, MachineError, SimGpu, SimHpu};
use hpu_model::{CostFn, Recurrence};

/// Elements sortable by the HPU mergesort.
pub trait SortKey: Element + Ord {}
impl<T: Element + Ord> SortKey for T {}

/// Classic recursive mergesort (paper Algorithm 6). Sorts in place using a
/// scratch buffer; returns the number of comparisons performed.
pub fn sort_recursive<T: SortKey>(data: &mut [T]) -> u64 {
    let mut scratch = data.to_vec();
    recurse(data, &mut scratch)
}

fn recurse<T: SortKey>(data: &mut [T], scratch: &mut [T]) -> u64 {
    let n = data.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let mut compares = recurse(&mut data[..mid], &mut scratch[..mid]);
    compares += recurse(&mut data[mid..], &mut scratch[mid..]);
    scratch[..n].copy_from_slice(data);
    let (a, b) = scratch[..n].split_at(mid);
    compares + merge_into(a, b, data)
}

/// Merges sorted `a` and `b` into `dst` (`dst.len() == a.len() + b.len()`),
/// returning the number of comparisons.
pub fn merge_into<T: SortKey>(a: &[T], b: &[T], dst: &mut [T]) -> u64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut compares = 0u64;
    for slot in dst.iter_mut() {
        let take_a = if i < a.len() && j < b.len() {
            compares += 1;
            a[i] <= b[j]
        } else {
            i < a.len()
        };
        *slot = if take_a {
            let v = a[i];
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
    }
    compares
}

/// Breadth-first mergesort over the HPU framework (Algorithm 7).
#[derive(Debug, Clone)]
pub struct MergeSort {
    coalesced: bool,
    base_chunk: usize,
}

impl Default for MergeSort {
    fn default() -> Self {
        MergeSort::new()
    }
}

impl MergeSort {
    /// Mergesort with the §6.3 coalescing optimization on the GPU path.
    pub fn new() -> Self {
        MergeSort {
            coalesced: true,
            base_chunk: 1,
        }
    }

    /// Mergesort with the untouched generic GPU translation (uncoalesced) —
    /// the ablation baseline for the §6.3 optimization.
    pub fn generic() -> Self {
        MergeSort {
            coalesced: false,
            base_chunk: 1,
        }
    }

    /// Stops the recursion at chunks of `k` elements and sorts them with a
    /// sequential insertion sort — the paper's §7 "switch to non-recursive
    /// sequential versions at the lowest levels" extension. `k` must be a
    /// power of two.
    pub fn with_leaf_cutoff(mut self, k: usize) -> Self {
        assert!(k.is_power_of_two(), "cutoff must be a power of two");
        self.base_chunk = k;
        self
    }

    /// Whether the coalesced GPU path is enabled.
    pub fn is_coalesced(&self) -> bool {
        self.coalesced
    }
}

/// In-place insertion sort returning (comparisons, moves) — the cutoff
/// base case.
fn insertion_sort<T: SortKey>(chunk: &mut [T]) -> (u64, u64) {
    let mut compares = 0u64;
    let mut moves = 0u64;
    for i in 1..chunk.len() {
        let v = chunk[i];
        let mut j = i;
        while j > 0 {
            compares += 1;
            if chunk[j - 1] <= v {
                break;
            }
            chunk[j] = chunk[j - 1];
            moves += 1;
            j -= 1;
        }
        chunk[j] = v;
        moves += 1;
    }
    (compares, moves)
}

impl<T: SortKey> BfAlgorithm<T> for MergeSort {
    fn name(&self) -> &'static str {
        "mergesort"
    }

    fn base_chunk(&self) -> usize {
        self.base_chunk
    }

    fn base_case(&self, chunk: &mut [T], charge: &mut dyn Charge) {
        if chunk.len() <= 1 {
            // A single element is sorted; Θ(1) leaf work.
            charge.ops(1);
            return;
        }
        let (compares, moves) = insertion_sort(chunk);
        charge.ops(compares + 1);
        charge.mem(2 * moves);
    }

    fn combine(&self, src: &[T], dst: &mut [T], charge: &mut dyn Charge) {
        let half = src.len() / 2;
        let (a, b) = src.split_at(half);
        let compares = merge_into(a, b, dst);
        charge.ops(compares);
        // One read of every input element, one write of every output.
        charge.mem(2 * dst.len() as u64);
    }

    fn recurrence(&self) -> Recurrence {
        // combine charges ≈ 1 compare + 2 memory ops per element → f(n)=3n.
        Recurrence::new(2, 2, CostFn::Linear(3.0), 1.0).expect("valid recurrence")
    }

    fn gpu_level(
        &self,
        gpu: &mut SimGpu,
        src: &mut DeviceBuffer<T>,
        dst: &mut DeviceBuffer<T>,
        level: &LevelInfo,
    ) -> Result<LaunchStats, MachineError> {
        if !self.coalesced {
            // Generic Algorithm-3 translation (default path).
            let chunk = level.chunk;
            return gpu.launch2(
                &format!("mergesort generic combine (chunk {chunk})"),
                level.tasks,
                src,
                dst,
                |id, ctx, s, d| {
                    let lo = id * chunk;
                    self.combine(
                        &s[lo..lo + chunk],
                        &mut d[lo..lo + chunk],
                        &mut GpuCharge(ctx),
                    );
                },
            );
        }
        let out_cols = level.tasks;
        let in_cols = 2 * out_cols;
        let run = level.chunk / 2;
        if self.base_chunk > 1 && level.chunk == 2 * self.base_chunk {
            // First combine after a multi-element cutoff: the base level
            // left *row-major* sorted runs. Merge adjacent runs, writing
            // the column-major layout the later levels rely on. The reads
            // are strided across work-items (uncoalesced) — this is the
            // §6.3 permutation cost surfacing at the cutoff boundary.
            return gpu.launch2(
                &format!("mergesort row→column combine (chunk {})", level.chunk),
                out_cols,
                src,
                dst,
                move |id, ctx, s, d| {
                    let a0 = 2 * id * run;
                    let b0 = a0 + run;
                    let (mut i, mut j) = (0usize, 0usize);
                    let mut compares = 0u64;
                    for k in 0..level.chunk {
                        let take_a = if i < run && j < run {
                            compares += 1;
                            s[a0 + i] <= s[b0 + j]
                        } else {
                            i < run
                        };
                        let v = if take_a {
                            let v = s[a0 + i];
                            i += 1;
                            v
                        } else {
                            let v = s[b0 + j];
                            j += 1;
                            v
                        };
                        d[k * out_cols + id] = v;
                    }
                    ctx.charge_ops(compares);
                    ctx.read(0, a0, run, 1);
                    ctx.read(0, b0, run, 1);
                    ctx.write(1, id, level.chunk, out_cols);
                },
            );
        }
        // Coalesced path: `src` holds 2·tasks column-major runs of length
        // chunk/2; work-item i merges columns i and i+tasks into column i
        // of the tasks-column layout in `dst`.
        gpu.launch2(
            &format!("mergesort coalesced combine (chunk {})", level.chunk),
            out_cols,
            src,
            dst,
            move |id, ctx, s, d| {
                let (mut i, mut j) = (0usize, 0usize);
                let mut compares = 0u64;
                for k in 0..level.chunk {
                    let take_a = if i < run && j < run {
                        compares += 1;
                        s[i * in_cols + id] <= s[j * in_cols + id + out_cols]
                    } else {
                        i < run
                    };
                    let v = if take_a {
                        let v = s[i * in_cols + id];
                        i += 1;
                        v
                    } else {
                        let v = s[j * in_cols + id + out_cols];
                        j += 1;
                        v
                    };
                    d[k * out_cols + id] = v;
                }
                ctx.charge_ops(compares);
                // Columns i, i+out_cols read; column i written — all with
                // inter-item base stride 1: coalesced.
                ctx.read(0, id, run, in_cols);
                ctx.read(0, id + out_cols, run, in_cols);
                ctx.write(1, id, level.chunk, out_cols);
            },
        )
    }

    fn gpu_finalize(
        &self,
        gpu: &mut SimGpu,
        cur: &mut DeviceBuffer<T>,
        other: &mut DeviceBuffer<T>,
        level: &LevelInfo,
    ) -> Result<Option<LaunchStats>, MachineError> {
        if !self.coalesced || level.tasks <= 1 || level.chunk <= self.base_chunk {
            // Generic layout is already contiguous; a single column is
            // trivially contiguous too; and if no combine level ran the
            // buffer still holds row-major base runs.
            return Ok(None);
        }
        // Un-permute: column-major (tasks columns of length chunk) back to
        // contiguous runs. One work-item per run keeps writes sequential;
        // reads are strided (uncoalesced) — the one-time cost of the
        // layout, analogous to the paper permuting back before the CPU
        // takes over (§6.3).
        let cols = level.tasks;
        let chunk = level.chunk;
        let st = gpu.launch2(
            "mergesort un-permute",
            cols,
            cur,
            other,
            move |id, ctx, s, d| {
                for j in 0..chunk {
                    d[id * chunk + j] = s[j * cols + id];
                }
                ctx.scatter_read(0, chunk);
                ctx.write(1, id * chunk, chunk, 1);
            },
        )?;
        Ok(Some(st))
    }
}

/// Report of a [`gpu_parallel_mergesort`] run (the Figure 9 comparison).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuParallelReport {
    /// Virtual time of the on-device sort only.
    pub sort_time: f64,
    /// Virtual time including the two transfers.
    pub total_time: f64,
    /// Comparisons performed (on-device binary searches).
    pub compares: u64,
}

/// Fully parallel GPU mergesort (paper Figure 9): breadth-first levels, one
/// work-item per *element*; each element binary-searches its rank in the
/// sibling run, making every level `Θ(log n)` parallel time.
pub fn gpu_parallel_mergesort<T: SortKey>(
    hpu: &mut SimHpu,
    data: &mut [T],
) -> Result<GpuParallelReport, CoreError> {
    let n = data.len();
    if n == 0 {
        return Err(CoreError::EmptyInput);
    }
    if !n.is_power_of_two() {
        return Err(CoreError::InvalidSize {
            len: n,
            branching: 2,
            base_chunk: 1,
        });
    }
    hpu.sync();
    let t_start = hpu.elapsed();
    let mut buf_a = hpu.upload(data)?;
    let mut buf_b = match hpu.gpu.alloc::<T>(n) {
        Ok(b) => b,
        Err(e) => {
            hpu.gpu.free(buf_a);
            return Err(e.into());
        }
    };
    let sort_start = hpu.gpu.clock();
    let mut compares = 0u64;

    let mut run = 1usize;
    let mut in_a = true;
    while run < n {
        let pair = 2 * run;
        let counter = std::cell::Cell::new(0u64);
        let kernel = |id: usize, ctx: &mut hpu_machine::GpuCtx, s: &mut [T], d: &mut [T]| {
            let block = id / pair; // which pair of runs
            let off = id % pair; // position within the pair
            let (my_lo, sib_lo, from_first) = if off < run {
                (block * pair, block * pair + run, true)
            } else {
                (block * pair + run, block * pair, false)
            };
            let local = if from_first { off } else { off - run };
            let v = s[my_lo + local];
            // Rank of v in the sibling run; ties broken by run order to
            // keep the merge stable and positions unique.
            let sib = &s[sib_lo..sib_lo + run];
            let (mut lo, mut hi) = (0usize, run);
            let mut probes = 0u64;
            while lo < hi {
                let mid = (lo + hi) / 2;
                probes += 1;
                let go_right = if from_first {
                    sib[mid] < v
                } else {
                    sib[mid] <= v
                };
                if go_right {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            d[block * pair + local + lo] = v;
            counter.set(counter.get() + probes);
            // Cost model: the binary-search probes mostly hit the top of
            // the sibling run, which neighbouring work-items probe too —
            // the device cache serves them, so they are charged as compute
            // (`probes` comparisons). What hits memory per element: the
            // coalesced read of the element itself, roughly one deep probe,
            // and the data-dependent (scattered) write.
            ctx.charge_ops(probes + 2);
            ctx.read(0, id, 1, 1); // own element: coalesced
            ctx.scatter_read(0, 1); // deepest probe misses cache
            ctx.scatter_write(1, 1); // data-dependent output position
        };
        let res = if in_a {
            hpu.gpu.launch2(
                &format!("parallel merge (run {run})"),
                n,
                &mut buf_a,
                &mut buf_b,
                kernel,
            )
        } else {
            hpu.gpu.launch2(
                &format!("parallel merge (run {run})"),
                n,
                &mut buf_b,
                &mut buf_a,
                kernel,
            )
        };
        if let Err(e) = res {
            hpu.gpu.free(buf_a);
            hpu.gpu.free(buf_b);
            return Err(e.into());
        }
        compares += counter.get();
        in_a = !in_a;
        run = pair;
    }

    let sort_time = hpu.gpu.clock() - sort_start;
    let result = if in_a { &buf_a } else { &buf_b };
    let out = hpu.download(result);
    data.copy_from_slice(&out);
    hpu.gpu.free(buf_a);
    hpu.gpu.free(buf_b);
    hpu.sync();
    Ok(GpuParallelReport {
        sort_time,
        total_time: hpu.elapsed() - t_start,
        compares,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpu_core::exec::{run_sim, Strategy};
    use hpu_machine::MachineConfig;

    fn input(n: usize) -> Vec<u32> {
        (0..n as u32)
            .map(|i| i.wrapping_mul(2654435761) ^ 0x5A5A)
            .collect()
    }

    fn sorted(v: &[u32]) -> Vec<u32> {
        let mut s = v.to_vec();
        s.sort_unstable();
        s
    }

    #[test]
    fn recursive_reference_sorts() {
        for n in [0usize, 1, 2, 3, 17, 100, 1024] {
            let mut v = input(n);
            sort_recursive(&mut v);
            assert_eq!(v, sorted(&input(n)), "n = {n}");
        }
    }

    #[test]
    fn recursive_comparison_count_bounds() {
        let mut v = input(1024);
        let c = sort_recursive(&mut v);
        // n log n upper bound, n/2 lower bound.
        assert!(c <= 1024 * 10);
        assert!(c >= 512);
    }

    #[test]
    fn merge_into_handles_skew() {
        let a = [1u32, 2, 3];
        let b = [10u32];
        let mut d = [0u32; 4];
        merge_into(&a, &b, &mut d);
        assert_eq!(d, [1, 2, 3, 10]);
        let mut d2 = [0u32; 4];
        merge_into(&b, &a, &mut d2);
        assert_eq!(d2, [1, 2, 3, 10]);
        let mut d3 = [0u32; 3];
        merge_into(&[], &a, &mut d3);
        assert_eq!(d3, [1, 2, 3]);
    }

    #[test]
    fn coalesced_and_generic_gpu_paths_sort_identically() {
        let n = 1 << 10;
        for algo in [MergeSort::new(), MergeSort::generic()] {
            let mut data = input(n);
            let mut hpu = SimHpu::new(MachineConfig::tiny());
            run_sim(&algo, &mut data, &mut hpu, &Strategy::GpuOnly).unwrap();
            assert_eq!(data, sorted(&input(n)), "coalesced={}", algo.is_coalesced());
        }
    }

    #[test]
    fn coalesced_path_actually_coalesces() {
        let n = 1 << 10;
        let mut hpu = SimHpu::new(MachineConfig::tiny());
        let mut data = input(n);
        let co = run_sim(&MergeSort::new(), &mut data, &mut hpu, &Strategy::GpuOnly).unwrap();
        let mut hpu = SimHpu::new(MachineConfig::tiny());
        let mut data = input(n);
        let un = run_sim(
            &MergeSort::generic(),
            &mut data,
            &mut hpu,
            &Strategy::GpuOnly,
        )
        .unwrap();
        assert!(
            co.coalesced > 9 * co.uncoalesced / 10,
            "optimized path should be mostly coalesced: {co:?}"
        );
        assert_eq!(un.coalesced, 0, "generic path cannot coalesce");
        assert!(
            co.virtual_time < un.virtual_time,
            "the §6.3 optimization must pay off: {} vs {}",
            co.virtual_time,
            un.virtual_time
        );
    }

    #[test]
    fn hybrid_advanced_sorts_with_two_transfers() {
        let n = 1 << 12;
        let mut data = input(n);
        let mut hpu = SimHpu::new(MachineConfig::hpu1_sim());
        let report = run_sim(
            &MergeSort::new(),
            &mut data,
            &mut hpu,
            &Strategy::Advanced {
                alpha: 0.16,
                transfer_level: 6,
            },
        )
        .unwrap();
        assert_eq!(data, sorted(&input(n)));
        assert_eq!(report.transfers, 2);
    }

    #[test]
    fn gpu_parallel_mergesort_sorts() {
        for n in [1usize, 2, 8, 1 << 10] {
            let mut data = input(n);
            let mut hpu = SimHpu::new(MachineConfig::tiny());
            let rep = gpu_parallel_mergesort(&mut hpu, &mut data).unwrap();
            assert_eq!(data, sorted(&input(n)), "n = {n}");
            assert!(rep.total_time >= rep.sort_time);
        }
    }

    #[test]
    fn gpu_parallel_mergesort_is_stable_under_duplicates() {
        let mut data = vec![3u32, 1, 3, 1, 2, 2, 3, 1];
        let mut hpu = SimHpu::new(MachineConfig::tiny());
        gpu_parallel_mergesort(&mut hpu, &mut data).unwrap();
        assert_eq!(data, vec![1, 1, 1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn gpu_parallel_mergesort_rejects_bad_sizes() {
        let mut hpu = SimHpu::new(MachineConfig::tiny());
        let mut data = input(100);
        assert!(matches!(
            gpu_parallel_mergesort(&mut hpu, &mut data),
            Err(CoreError::InvalidSize { .. })
        ));
        let mut empty: Vec<u32> = vec![];
        assert!(matches!(
            gpu_parallel_mergesort(&mut hpu, &mut empty),
            Err(CoreError::EmptyInput)
        ));
    }

    #[test]
    fn leaf_cutoff_sorts_and_shortens_the_tree() {
        let n = 1 << 10;
        let algo = MergeSort::new().with_leaf_cutoff(16);
        let mut data = input(n);
        let mut hpu = SimHpu::new(MachineConfig::tiny());
        run_sim(&algo, &mut data, &mut hpu, &Strategy::CpuOnly).unwrap();
        assert!(data == sorted(&input(n)), "cutoff CPU-only run must sort");
        // GPU path too (exercises the row→column boundary kernel).
        let mut data = input(n);
        let mut hpu = SimHpu::new(MachineConfig::tiny());
        run_sim(&algo, &mut data, &mut hpu, &Strategy::GpuOnly).unwrap();
        assert!(data == sorted(&input(n)), "cutoff GPU-only run must sort");
        // Hybrid too.
        let mut data = input(n);
        let mut hpu = SimHpu::new(MachineConfig::tiny());
        run_sim(
            &algo,
            &mut data,
            &mut hpu,
            &Strategy::Advanced {
                alpha: 0.25,
                transfer_level: 3,
            },
        )
        .unwrap();
        assert!(data == sorted(&input(n)), "cutoff hybrid run must sort");
    }

    #[test]
    fn insertion_sort_counts() {
        let mut v = vec![3u32, 1, 2];
        let (c, m) = insertion_sort(&mut v);
        assert_eq!(v, vec![1, 2, 3]);
        assert!(c >= 2 && m >= 2);
        let mut sorted_in = vec![1u32, 2, 3, 4];
        let (c, _) = insertion_sort(&mut sorted_in);
        assert_eq!(c, 3, "already sorted: n-1 comparisons");
    }

    #[test]
    fn all_strategies_agree_on_hpu1() {
        let n = 1 << 10;
        let expect = sorted(&input(n));
        for strategy in [
            Strategy::Sequential,
            Strategy::CpuOnly,
            Strategy::GpuOnly,
            Strategy::Basic { crossover: None },
            Strategy::Advanced {
                alpha: 0.2,
                transfer_level: 5,
            },
        ] {
            let mut data = input(n);
            let mut hpu = SimHpu::new(MachineConfig::hpu1_sim());
            run_sim(&MergeSort::new(), &mut data, &mut hpu, &strategy).unwrap();
            assert_eq!(data, expect, "strategy {strategy:?}");
        }
    }
}
