//! Prefix sums (inclusive scan) as a divide-and-conquer algorithm.
//!
//! `scan(x) = scan(left) ++ (scan(right) + total(left))` — the combine
//! adds the left half's total into every element of the right half, a
//! `Θ(n)` combine like mergesort's but with a perfectly regular access
//! pattern.

use hpu_core::charge::Charge;
use hpu_core::BfAlgorithm;
use hpu_model::{CostFn, Recurrence};

/// Sequential reference: inclusive prefix sums.
pub fn scan_reference(data: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(data.len());
    let mut acc = 0u64;
    for &x in data {
        acc = acc.wrapping_add(x);
        out.push(acc);
    }
    out
}

/// Breadth-first inclusive scan. A solved chunk holds its own inclusive
/// prefix sums (so its last element is the chunk total).
#[derive(Debug, Clone, Copy, Default)]
pub struct DcScan;

impl BfAlgorithm<u64> for DcScan {
    fn name(&self) -> &'static str {
        "dc-scan"
    }

    fn base_case(&self, _chunk: &mut [u64], charge: &mut dyn Charge) {
        // A single element is its own prefix sum.
        charge.ops(1);
    }

    fn combine(&self, src: &[u64], dst: &mut [u64], charge: &mut dyn Charge) {
        let half = src.len() / 2;
        let left_total = src[half - 1];
        dst[..half].copy_from_slice(&src[..half]);
        for (d, s) in dst[half..].iter_mut().zip(&src[half..]) {
            *d = s.wrapping_add(left_total);
        }
        charge.ops(half as u64);
        charge.mem(2 * src.len() as u64);
    }

    fn recurrence(&self) -> Recurrence {
        // ~0.5 adds + 2 memory ops per element → f(n) = 2.5 n.
        Recurrence::new(2, 2, CostFn::Linear(2.5), 1.0).expect("valid recurrence")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpu_core::exec::{run_sim, Strategy};
    use hpu_machine::{MachineConfig, SimHpu};

    fn input(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 13 + 5) % 97).collect()
    }

    #[test]
    fn reference_scan() {
        assert_eq!(scan_reference(&[]), Vec::<u64>::new());
        assert_eq!(scan_reference(&[1, 2, 3]), vec![1, 3, 6]);
    }

    #[test]
    fn all_strategies_scan_correctly() {
        let n = 1 << 9;
        let expect = scan_reference(&input(n));
        for strategy in [
            Strategy::Sequential,
            Strategy::CpuOnly,
            Strategy::GpuOnly,
            Strategy::Basic { crossover: Some(3) },
            Strategy::Advanced {
                alpha: 0.5,
                transfer_level: 3,
            },
        ] {
            let mut data = input(n);
            let mut hpu = SimHpu::new(MachineConfig::tiny());
            run_sim(&DcScan, &mut data, &mut hpu, &strategy).unwrap();
            assert_eq!(data, expect, "strategy {strategy:?}");
        }
    }

    #[test]
    fn scan_of_ones_is_iota() {
        let mut data = vec![1u64; 256];
        let mut hpu = SimHpu::new(MachineConfig::tiny());
        run_sim(&DcScan, &mut data, &mut hpu, &Strategy::CpuOnly).unwrap();
        assert_eq!(data, (1..=256u64).collect::<Vec<_>>());
    }
}
