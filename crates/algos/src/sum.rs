//! Divide-and-conquer sum (paper Algorithms 4 & 5).
//!
//! The paper's introductory example: recursively sum an array, combining
//! with a single addition. The GPU path implements Algorithm 5 literally —
//! at a level with `b` remaining partial sums, work-item `i` computes
//! `array[i] += array[i + b]` — which is also the natural *coalesced*
//! layout: partial sums stay in the array prefix, so adjacent work-items
//! touch adjacent words.

use hpu_core::charge::Charge;
use hpu_core::{BfAlgorithm, LevelInfo};
use hpu_machine::{DeviceBuffer, LaunchStats, MachineError, SimGpu};
use hpu_model::Recurrence;

/// Plain sequential reference (paper Algorithm 4).
pub fn sum_recursive(data: &[u64]) -> u64 {
    match data.len() {
        0 => 0,
        1 => data[0],
        n => sum_recursive(&data[..n / 2]) + sum_recursive(&data[n / 2..]),
    }
}

/// Breadth-first D&C sum. After a run, the total is in `data[0]`.
///
/// Representation: a solved chunk stores its partial sum in its first
/// element; combining two chunks adds the two partials.
#[derive(Debug, Clone, Copy, Default)]
pub struct DcSum;

impl BfAlgorithm<u64> for DcSum {
    fn name(&self) -> &'static str {
        "dc-sum"
    }

    fn base_case(&self, _chunk: &mut [u64], charge: &mut dyn Charge) {
        charge.ops(1);
    }

    fn combine(&self, src: &[u64], dst: &mut [u64], charge: &mut dyn Charge) {
        let half = src.len() / 2;
        dst[0] = src[0].wrapping_add(src[half]);
        // The rest of the chunk is dead weight for this algorithm, but the
        // ping-pong buffers must stay consistent: carry the partials.
        charge.ops(1);
        charge.mem(3);
    }

    fn recurrence(&self) -> Recurrence {
        Recurrence::dc_sum()
    }

    /// Algorithm 5: `array[id] += array[id + numSubProblems]`, in place on
    /// `src` — partial sums live in the array prefix, all accesses
    /// coalesced. `dst` mirrors the prefix so the executor's ping-pong
    /// convention (result in `dst`) holds.
    fn gpu_level(
        &self,
        gpu: &mut SimGpu,
        src: &mut DeviceBuffer<u64>,
        dst: &mut DeviceBuffer<u64>,
        level: &LevelInfo,
    ) -> Result<LaunchStats, MachineError> {
        let b = level.tasks; // numSubProblems after this level
        let chunk = level.chunk;
        gpu.launch2(
            &format!("sum level (b = {b})"),
            b,
            src,
            dst,
            move |id, ctx, s, d| {
                d[id * chunk] = s[id * chunk].wrapping_add(s[id * chunk + chunk / 2]);
                ctx.charge_ops(1);
                // Prefix-resident partials: bases advance by 1 per item
                // when chunk == 1... in the chunked layout the stride is
                // `chunk`, so declare the true addresses and let the
                // device decide.
                ctx.read(0, id * chunk, 1, 1);
                ctx.read(0, id * chunk + chunk / 2, 1, 1);
                ctx.write(1, id * chunk, 1, 1);
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpu_core::exec::{run_sim, Strategy};
    use hpu_machine::{MachineConfig, SimHpu};

    fn input(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 7 + 1).collect()
    }

    #[test]
    fn reference_sums() {
        assert_eq!(sum_recursive(&[]), 0);
        assert_eq!(sum_recursive(&[5]), 5);
        assert_eq!(sum_recursive(&input(100)), input(100).iter().sum());
    }

    #[test]
    fn all_strategies_sum_correctly() {
        let n = 1 << 10;
        let expect: u64 = input(n).iter().sum();
        for strategy in [
            Strategy::Sequential,
            Strategy::CpuOnly,
            Strategy::GpuOnly,
            Strategy::Basic { crossover: Some(2) },
            Strategy::Advanced {
                alpha: 0.25,
                transfer_level: 4,
            },
        ] {
            let mut data = input(n);
            let mut hpu = SimHpu::new(MachineConfig::tiny());
            run_sim(&DcSum, &mut data, &mut hpu, &strategy).unwrap();
            assert_eq!(data[0], expect, "strategy {strategy:?}");
        }
    }

    #[test]
    fn constant_combine_makes_gpu_only_competitive() {
        // With f(n) = Θ(1), levels are tiny: the whole tree is dominated by
        // leaves, which the GPU chews through g at a time.
        let n = 1 << 14;
        let mut hpu_g = SimHpu::new(MachineConfig::hpu1_sim());
        let mut d1 = input(n);
        let g = run_sim(&DcSum, &mut d1, &mut hpu_g, &Strategy::GpuOnly).unwrap();
        let mut hpu_s = SimHpu::new(MachineConfig::hpu1_sim());
        let mut d2 = input(n);
        let s = run_sim(&DcSum, &mut d2, &mut hpu_s, &Strategy::Sequential).unwrap();
        assert!(
            g.virtual_time < s.virtual_time,
            "GPU-only {} should beat sequential {} on a sum",
            g.virtual_time,
            s.virtual_time
        );
    }
}
