//! Criterion benches for the design-choice ablations called out in
//! DESIGN.md: the §6.3 coalescing optimization, the schedule family, the
//! §7 sequential leaf cutoff, and breadth-first vs recursive execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hpu_algos::mergesort::{sort_recursive, MergeSort};
use hpu_bench::experiments as exp;
use hpu_bench::uniform_input;
use hpu_core::exec::{run_sim, Strategy};
use hpu_machine::{MachineConfig, SimHpu};

const N: usize = 1 << 12;

fn bench_coalescing(c: &mut Criterion) {
    c.bench_function("ablation_coalescing", |b| {
        b.iter(|| black_box(exp::ablation_coalescing(N)))
    });
}

fn bench_schedule(c: &mut Criterion) {
    c.bench_function("ablation_schedule", |b| {
        b.iter(|| black_box(exp::ablation_schedule(N)))
    });
}

fn bench_cutoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_leaf_cutoff");
    for cutoff in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(cutoff), &cutoff, |b, &k| {
            let algo = MergeSort::new().with_leaf_cutoff(k);
            b.iter(|| {
                let mut data = uniform_input(N, 42);
                let mut hpu = SimHpu::new(MachineConfig::hpu1_sim());
                run_sim(&algo, &mut data, &mut hpu, &Strategy::CpuOnly).unwrap();
                black_box(data)
            })
        });
    }
    group.finish();
}

fn bench_bf_vs_recursive(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bf_vs_recursive");
    group.bench_function("recursive_host", |b| {
        b.iter(|| {
            let mut data = uniform_input(N, 42);
            black_box(sort_recursive(&mut data));
            black_box(data)
        })
    });
    group.bench_function("breadth_first_sim_1core", |b| {
        b.iter(|| {
            let mut data = uniform_input(N, 42);
            let mut hpu = SimHpu::new(MachineConfig::hpu1_sim());
            run_sim(&MergeSort::new(), &mut data, &mut hpu, &Strategy::Sequential).unwrap();
            black_box(data)
        })
    });
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_coalescing, bench_schedule, bench_cutoff, bench_bf_vs_recursive
}
criterion_main!(ablations);
