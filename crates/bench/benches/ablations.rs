//! Benches for the design-choice ablations called out in DESIGN.md: the
//! §6.3 coalescing optimization, the schedule family, the §7 sequential
//! leaf cutoff, and breadth-first vs recursive execution.

use std::hint::black_box;

use hpu_algos::mergesort::{sort_recursive, MergeSort};
use hpu_bench::experiments as exp;
use hpu_bench::timing::bench;
use hpu_bench::uniform_input;
use hpu_core::exec::{run_sim, Strategy};
use hpu_machine::{MachineConfig, SimHpu};

const N: usize = 1 << 12;

fn main() {
    let iters = 10;
    bench("ablation_coalescing", iters, || exp::ablation_coalescing(N));
    bench("ablation_schedule", iters, || exp::ablation_schedule(N));
    for cutoff in [1usize, 8, 64] {
        let algo = MergeSort::new().with_leaf_cutoff(cutoff);
        bench(&format!("ablation_leaf_cutoff/{cutoff}"), iters, || {
            let mut data = uniform_input(N, 42);
            let mut hpu = SimHpu::new(MachineConfig::hpu1_sim());
            run_sim(&algo, &mut data, &mut hpu, &Strategy::CpuOnly).unwrap();
            data
        });
    }
    bench("ablation_bf_vs_recursive/recursive_host", iters, || {
        let mut data = uniform_input(N, 42);
        black_box(sort_recursive(&mut data));
        data
    });
    bench(
        "ablation_bf_vs_recursive/breadth_first_sim_1core",
        iters,
        || {
            let mut data = uniform_input(N, 42);
            let mut hpu = SimHpu::new(MachineConfig::hpu1_sim());
            run_sim(
                &MergeSort::new(),
                &mut data,
                &mut hpu,
                &Strategy::Sequential,
            )
            .unwrap();
            data
        },
    );
}
