//! Criterion benches: one group per table/figure of the paper. Each bench
//! times the regeneration of (a scaled-down version of) the experiment so
//! regressions in the simulator, the model solvers or the schedulers show
//! up as timing changes. The `repro` binary prints the actual data rows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hpu_bench::experiments as exp;

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_parameter_estimation", |b| {
        b.iter(|| black_box(exp::table2(1 << 12)))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_closed_form_curves", |b| {
        b.iter(|| black_box(exp::fig3(1 << 24)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_advanced_optimizer", |b| {
        b.iter(|| black_box(exp::fig4(1 << 24)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_g_saturation_sweep", |b| {
        b.iter(|| black_box(exp::fig5(1 << 12)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_gamma_sweep", |b| {
        b.iter(|| black_box(exp::fig6(&[1 << 8, 1 << 10, 1 << 12])))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_alpha_sweep", |b| {
        b.iter(|| black_box(exp::fig7(1 << 12, &[0.2, 0.4], &[4, 5])))
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_speedup_vs_n", |b| {
        b.iter(|| black_box(exp::fig8(&[1 << 10, 1 << 12])))
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9_gpu_parallel_mergesort", |b| {
        b.iter(|| black_box(exp::fig9(&[1 << 10, 1 << 12])))
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_grid_search", |b| {
        b.iter(|| black_box(exp::fig10(&[1 << 10])))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_fig3, bench_fig4, bench_fig5, bench_fig6,
              bench_fig7, bench_fig8, bench_fig9, bench_fig10
}
criterion_main!(figures);
