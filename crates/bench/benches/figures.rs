//! Benches: one entry per table/figure of the paper. Each bench times the
//! regeneration of (a scaled-down version of) the experiment so regressions
//! in the simulator, the model solvers or the schedulers show up as timing
//! changes. The `repro` binary prints the actual data rows.

use hpu_bench::experiments as exp;
use hpu_bench::timing::bench;

fn main() {
    let iters = 10;
    bench("table2_parameter_estimation", iters, || {
        exp::table2(1 << 12)
    });
    bench("fig3_closed_form_curves", iters, || exp::fig3(1 << 24));
    bench("fig4_advanced_optimizer", iters, || exp::fig4(1 << 24));
    bench("fig5_g_saturation_sweep", iters, || exp::fig5(1 << 12));
    bench("fig6_gamma_sweep", iters, || {
        exp::fig6(&[1 << 8, 1 << 10, 1 << 12])
    });
    bench("fig7_alpha_sweep", iters, || {
        exp::fig7(1 << 12, &[0.2, 0.4], &[4, 5])
    });
    bench("fig8_speedup_vs_n", iters, || {
        exp::fig8(&[1 << 10, 1 << 12])
    });
    bench("fig9_gpu_parallel_mergesort", iters, || {
        exp::fig9(&[1 << 10, 1 << 12])
    });
    bench("fig10_grid_search", iters, || exp::fig10(&[1 << 10]));
    bench("trace_bundle_all_strategies", iters, || {
        exp::trace_bundle(1 << 10)
    });
}
