//! Criterion benches of the *native* (real-thread) executors — the part of
//! the library a downstream user runs for real work, measured in
//! wall-clock time rather than virtual time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hpu_algos::mergesort::MergeSort;
use hpu_algos::sum::DcSum;
use hpu_bench::uniform_input;
use hpu_core::exec::run_native;
use hpu_core::pool::LevelPool;

fn bench_native_mergesort(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_mergesort");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &t| {
                let pool = LevelPool::new(t);
                b.iter(|| {
                    let mut data = uniform_input(1 << 14, 42);
                    run_native(&MergeSort::new(), &mut data, &pool).unwrap();
                    black_box(data)
                })
            },
        );
    }
    group.finish();
}

fn bench_native_sum(c: &mut Criterion) {
    let pool = LevelPool::new(2);
    c.bench_function("native_dc_sum", |b| {
        b.iter(|| {
            let mut data: Vec<u64> = (0..(1 << 14) as u64).collect();
            run_native(&DcSum, &mut data, &pool).unwrap();
            black_box(data[0])
        })
    });
}

fn bench_std_sort_reference(c: &mut Criterion) {
    c.bench_function("std_sort_unstable_reference", |b| {
        b.iter(|| {
            let mut data = uniform_input(1 << 14, 42);
            data.sort_unstable();
            black_box(data)
        })
    });
}

criterion_group! {
    name = native;
    config = Criterion::default().sample_size(10);
    targets = bench_native_mergesort, bench_native_sum, bench_std_sort_reference
}
criterion_main!(native);
