//! Benches of the *native* (real-thread) executors — the part of the
//! library a downstream user runs for real work, measured in wall-clock
//! time rather than virtual time.

use hpu_algos::mergesort::MergeSort;
use hpu_algos::sum::DcSum;
use hpu_bench::timing::bench;
use hpu_bench::uniform_input;
use hpu_core::exec::run_native;
use hpu_core::pool::LevelPool;

fn main() {
    let iters = 10;
    for threads in [1usize, 2, 4] {
        let pool = LevelPool::new(threads);
        bench(&format!("native_mergesort/{threads}"), iters, || {
            let mut data = uniform_input(1 << 14, 42);
            run_native(&MergeSort::new(), &mut data, &pool).unwrap();
            data
        });
    }
    let pool = LevelPool::new(2);
    bench("native_dc_sum", iters, || {
        let mut data: Vec<u64> = (0..(1 << 14) as u64).collect();
        run_native(&DcSum, &mut data, &pool).unwrap();
        data[0]
    });
    bench("std_sort_unstable_reference", iters, || {
        let mut data = uniform_input(1 << 14, 42);
        data.sort_unstable();
        data
    });
}
