//! Benches of the multi-job serving layer: one timed run per backend at
//! underload and overload, so regressions in the scheduler's dispatch
//! path (probing, arbitration, admission solo-runs) show up as wall time.

use hpu_bench::timing::bench;
use hpu_bench::{serve_fleet, ServeBackend};

fn main() {
    let iters = 5;
    for rate in [0.5, 2.0] {
        bench(&format!("serve_sim/16_jobs/rate_{rate}"), iters, || {
            serve_fleet(16, &[rate], ServeBackend::Sim, 42)
        });
    }
    bench("serve_native/16_jobs/rate_2", iters, || {
        serve_fleet(16, &[2.0], ServeBackend::Native, 42)
    });
}
