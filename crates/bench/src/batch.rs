//! The batching experiment: the offered-load throughput curve of one
//! node with cross-job GPU kernel batching on versus off.
//!
//! The stream is deliberately shape-heavy — GPU-only mergesorts in two
//! recurring sizes — so queued jobs actually share a batch key (same
//! algorithm, same plan, same calibration generation). Offered load is
//! expressed against the solo reference job as in the serving sweep:
//! `rate = 1` submits as fast as one job completes solo. The node's
//! admission queue is bounded, so the *saturation point* of a policy is
//! visible in the curve: the highest rate at which (nearly) every
//! submission still completes. Batching amortizes launch overhead + λ
//! across queue neighbours, drains the backlog faster, and pushes that
//! point to a higher rate — the lift the `repro batch` gate asserts.
//!
//! The native backend runs real threads and never batches (kernel
//! coalescing is a virtual-time scheduler feature); its rows are the
//! unbatched wall-clock reference curve, not a comparison subject.

use hpu_algos::mergesort::MergeSort;
use hpu_machine::MachineConfig;
use hpu_model::ScheduleSpec;
use hpu_serve::{
    serve_native, serve_sim, AlgoJob, BatchPolicy, JobRequest, NativeJobRequest, ServeConfig,
    ServeOutput, Workload,
};

use crate::experiments::Csv;
use crate::serving::{exp_gap, native_reference_us};
use crate::workload::{uniform_input, SplitMix64};

/// Bounded admission queue: small enough that an overloaded node
/// rejects instead of queueing forever, so the saturation point shows.
const BATCH_QUEUE: usize = 16;

/// Coalescing bound of the "batch" rows (and the perf metrics).
const MAX_BATCH: usize = 4;

/// A policy still counts as keeping up at a rate when at least this
/// fraction of submissions completes.
const SATURATION_GOODPUT: f64 = 0.95;

/// The shape-heavy mix: GPU-only mergesorts, three out of four jobs at
/// `2^10` and the fourth at `2^11`, so most queue neighbours share a
/// plan (batchable) while the odd size exercises the shape grouping.
fn batch_mix(i: usize, seed: u64) -> (String, ScheduleSpec, Box<dyn Workload>) {
    let n = if i % 4 == 3 { 1 << 11 } else { 1 << 10 };
    let job_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (
        format!("bsort-{i}-n{n}"),
        ScheduleSpec::GpuOnly,
        AlgoJob::boxed(MergeSort::new(), uniform_input(n, job_seed)),
    )
}

fn batch_serve(batch: BatchPolicy) -> ServeConfig {
    ServeConfig {
        queue_capacity: BATCH_QUEUE,
        cpu_fallback: false,
        batch,
        ..Default::default()
    }
}

/// One curve point: the pinned `(jobs, rate, seed)` stream served under
/// `batch` on the simulated HPU1.
pub(crate) fn batch_point(jobs: usize, rate: f64, seed: u64, batch: BatchPolicy) -> ServeOutput {
    let cfg = MachineConfig::hpu1_sim();
    let serve = batch_serve(batch);
    let (name, spec, workload) = batch_mix(0, seed);
    let solo = serve_sim(
        &cfg,
        &serve,
        vec![JobRequest::new(name, spec, 0.0, workload)],
    )
    .report
    .makespan
    .max(1.0);
    let mean_gap = solo / rate.max(1e-6);
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0;
    // One unit-gap pattern per seed, compressed by the rate: every rate
    // (and both policies) sees the *same* arrival shape, so the curve is
    // monotone in offered load instead of re-rolling burstiness per point.
    let fleet: Vec<JobRequest> = (0..jobs)
        .map(|i| {
            let (name, spec, workload) = batch_mix(i, seed);
            t += exp_gap(&mut rng, mean_gap);
            JobRequest::new(name, spec, t, workload)
        })
        .collect();
    serve_sim(&cfg, &serve, fleet)
}

fn completion_ratio(out: &ServeOutput) -> f64 {
    let submitted = out.report.jobs.len().max(1);
    out.report.completed as f64 / submitted as f64
}

/// The saturation point of a policy over the rate sweep: the highest
/// rate whose completion ratio still clears [`SATURATION_GOODPUT`]
/// (0 when even the lowest rate overruns the queue).
pub(crate) fn saturation_rate(jobs: usize, rates: &[f64], seed: u64, batch: BatchPolicy) -> f64 {
    rates
        .iter()
        .copied()
        .filter(|&r| completion_ratio(&batch_point(jobs, r, seed, batch)) >= SATURATION_GOODPUT)
        .fold(0.0, f64::max)
}

fn sim_row(mode: &str, rate: f64, out: &ServeOutput) -> Vec<String> {
    let r = &out.report;
    let batched_jobs: usize = out.batches.iter().map(|b| b.members.len()).sum();
    // `+ 0.0` normalizes the empty sum's IEEE `-0.0` for rendering.
    let saved: f64 = out.batches.iter().map(|b| b.saved).sum::<f64>() + 0.0;
    vec![
        mode.to_string(),
        format!("{rate}"),
        r.jobs.len().to_string(),
        r.completed.to_string(),
        r.rejected.to_string(),
        format!("{:.4}", completion_ratio(out)),
        format!("{:.6}", r.throughput),
        format!("{:.4}", r.p95_latency),
        out.batches.len().to_string(),
        batched_jobs.to_string(),
        format!("{saved:.4}"),
    ]
}

/// Runs the batching curve: the identical pinned stream at every rate,
/// once with batching off and once coalescing up to [`MAX_BATCH`] jobs
/// per launch, plus (with `native` set) the unbatched native reference.
/// One CSV row per `(mode, rate)`.
pub fn batch_curve(jobs: usize, rates: &[f64], native: bool, seed: u64) -> Csv {
    let mut rows = Vec::new();
    for (mode, policy) in [
        ("off", BatchPolicy::Off),
        (
            "batch",
            BatchPolicy::Coalesce {
                max_batch: MAX_BATCH,
            },
        ),
    ] {
        for &rate in rates {
            let out = batch_point(jobs, rate, seed, policy);
            rows.push(sim_row(mode, rate, &out));
        }
    }
    if native {
        let serve = batch_serve(BatchPolicy::Off);
        let (workers, threads) = (2, 2);
        let solo_us = native_reference_us(&serve, threads, seed);
        for &rate in rates {
            let mean_gap = solo_us / rate.max(1e-6);
            let mut rng = SplitMix64::new(seed ^ rate.to_bits());
            let mut t = 0.0;
            let fleet: Vec<NativeJobRequest> = (0..jobs)
                .map(|i| {
                    let (name, _, workload) = batch_mix(i, seed);
                    t += exp_gap(&mut rng, mean_gap);
                    NativeJobRequest::new(name, t as u64, workload)
                })
                .collect();
            let out = serve_native(&serve, workers, threads, fleet);
            let r = &out.report;
            let submitted = r.jobs.len().max(1);
            rows.push(vec![
                "native".to_string(),
                format!("{rate}"),
                r.jobs.len().to_string(),
                r.completed.to_string(),
                r.rejected.to_string(),
                format!("{:.4}", r.completed as f64 / submitted as f64),
                format!("{:.6}", r.throughput),
                format!("{:.4}", r.p95_latency),
                "0".to_string(),
                "0".to_string(),
                "0.0000".to_string(),
            ]);
        }
    }
    Csv {
        name: "batch",
        header: vec![
            "mode",
            "rate",
            "submitted",
            "completed",
            "rejected",
            "goodput",
            "throughput",
            "p95_latency",
            "batches",
            "batched_jobs",
            "saved",
        ],
        rows,
    }
}

/// The pinned rate sweep the perf metrics (and the gate test) run over.
pub(crate) const PERF_RATES: &[f64] = &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0];

/// The two batching perf metrics off the pinned sweep:
///
/// - `batch_saturation_lift` — the coalescing saturation rate over the
///   unbatched one (> 1 means batching keeps up at rates that overrun
///   the unbatched queue);
/// - `batch_amortized_launches` — merged launch slots amortized away at
///   the top pinned rate: `Σ over batches of (members − 1) · segments`.
///
/// The matrix is virtual-time and deterministic per seed, so quick and
/// full runs share one pinned size — a larger fleet only re-rolls the
/// burst pattern, it does not steady any wall-clock number.
pub fn batch_perf_metrics(seed: u64) -> (f64, f64) {
    let jobs = 24;
    let coalesce = BatchPolicy::Coalesce {
        max_batch: MAX_BATCH,
    };
    let off_sat = saturation_rate(jobs, PERF_RATES, seed, BatchPolicy::Off);
    let on_sat = saturation_rate(jobs, PERF_RATES, seed, coalesce);
    let lift = on_sat / off_sat.max(1e-9);
    let top = *PERF_RATES.last().expect("pinned rates are non-empty");
    let out = batch_point(jobs, top, seed, coalesce);
    let amortized: usize = out
        .batches
        .iter()
        .map(|b| (b.members.len() - 1) * b.windows.len())
        .sum();
    (lift, amortized as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ISSUE acceptance: on the simulated backend the batching curve
    /// saturates at a strictly higher offered load than the unbatched
    /// one — coalescing lifts the saturation point.
    #[test]
    fn batching_lifts_the_saturation_point() {
        let (jobs, seed) = (24, 42);
        let off = saturation_rate(jobs, PERF_RATES, seed, BatchPolicy::Off);
        let on = saturation_rate(
            jobs,
            PERF_RATES,
            seed,
            BatchPolicy::Coalesce {
                max_batch: MAX_BATCH,
            },
        );
        assert!(
            on > off,
            "coalescing must saturate later: off keeps up to rate {off}, batch to {on}"
        );
    }

    /// At an overloaded rate the batched run completes at least as many
    /// jobs as the unbatched one and actually forms batches with
    /// positive savings.
    #[test]
    fn overloaded_batched_run_outcompletes_off() {
        let (jobs, rate, seed) = (24, 16.0, 42);
        let off = batch_point(jobs, rate, seed, BatchPolicy::Off);
        let on = batch_point(
            jobs,
            rate,
            seed,
            BatchPolicy::Coalesce {
                max_batch: MAX_BATCH,
            },
        );
        assert!(!on.batches.is_empty(), "overload must produce batches");
        assert!(on.batches.iter().all(|b| b.saved > 0.0));
        assert!(
            on.report.completed >= off.report.completed,
            "batched completions {} < unbatched {}",
            on.report.completed,
            off.report.completed
        );
    }

    #[test]
    fn batch_curve_is_deterministic_and_shaped() {
        let a = batch_curve(12, &[1.0, 8.0], false, 7);
        let b = batch_curve(12, &[1.0, 8.0], false, 7);
        assert_eq!(a, b);
        // off rows then batch rows, one per rate.
        assert_eq!(a.rows.len(), 4);
        assert_eq!(a.header.len(), a.rows[0].len());
        assert!(a.rows[..2].iter().all(|r| r[0] == "off"));
        assert!(a.rows[2..].iter().all(|r| r[0] == "batch"));
        // Unbatched rows never report batches.
        assert!(a.rows[..2].iter().all(|r| r[8] == "0"));
    }

    #[test]
    fn perf_metrics_are_positive_and_deterministic() {
        let (lift_a, amortized_a) = batch_perf_metrics(42);
        let (lift_b, amortized_b) = batch_perf_metrics(42);
        assert_eq!((lift_a, amortized_a), (lift_b, amortized_b));
        assert!(lift_a > 1.0, "saturation lift {lift_a} must exceed 1");
        assert!(amortized_a > 0.0, "overload must amortize some launches");
    }
}
