//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT ...] [--full] [--out DIR] [--trace DIR]
//! repro plan EXPERIMENT [...] [--passes] [--full] [--out DIR]
//! repro serve [--jobs N] [--rates R,R,...] [--backend sim|native|both]
//!             [--seed S] [--out DIR]
//! repro calibrate [--jobs N] [--gamma-skew K] [--seed S] [--out DIR]
//! repro chaos [--jobs N] [--rates R,R,...] [--backend sim|native|both]
//!             [--seed S] [--out DIR]
//! repro fleet [--jobs N] [--nodes N,N,...] [--rates R,R,...]
//!             [--seed S] [--out DIR]
//! repro batch [--jobs N] [--rates R,R,...] [--native] [--seed S]
//!             [--out DIR]
//! repro recover [--jobs N] [--rates P,P,...] [--seed S] [--out DIR]
//! repro perf [--label L] [--quick] [--seed S] [--seq N] [--out DIR]
//! repro perf --compare OLD NEW [--threshold T] [--smoke]
//! repro perf --compare-newest DIR NEW [--threshold T] [--smoke]
//!
//! EXPERIMENT: table1 table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!             ablation-coalescing ablation-schedule extension-workloads
//!             all   (default: all)
//! plan        instead of running, print the compiled execution plans
//!             behind the experiment's strategies (one CSV row per plan
//!             segment); model-only experiments are rejected; --passes
//!             prints the optimizer pipeline instead — the plan IR before
//!             and after each pass, with its predicted cost
//! --full      paper-scale sizes (n = 2^24; takes much longer)
//! --out DIR   also write each experiment to DIR/<name>.csv
//!             (plans land in DIR/<name>.plan.csv)
//! --trace DIR also run every strategy (simulated and native) with
//!             structured tracing and write DIR/<name>.trace.json (Chrome
//!             trace event format, one process per strategy) plus
//!             DIR/<name>.levels.csv (per-level metrics and model drift)
//!             for each selected experiment
//! serve       drive the hpu-serve scheduler with an open-loop fleet of
//!             mixed mergesort/sum jobs and print one throughput/latency
//!             CSV row per (backend, arrival rate); defaults: 32 jobs,
//!             rates 0.5 and 2, both backends (CSV lands in
//!             DIR/serve.csv with --out)
//! chaos       serve the same fleet under seeded device-fault injection,
//!             sweeping the fault rate over --rates (here rates are fault
//!             probabilities, not offered load); prints one goodput /
//!             latency-degradation CSV row per (backend, fault rate) —
//!             with a fixed seed the goodput column is non-increasing in
//!             the rate (CSV lands in DIR/chaos.csv with --out);
//!             defaults: 16 jobs, rates 0,0.05,0.2,0.5, both backends
//! calibrate   serve a fleet on a machine whose γ the scheduler believes
//!             is --gamma-skew× its true value (default 2), with the
//!             closed calibration loop on; prints one CSV row per
//!             completed job in completion order — the abs_drift column is
//!             the convergence curve (CSV lands in DIR/calibrate.csv with
//!             --out); defaults: 24 jobs, seed 42
//! fleet       offer the identical open-loop job stream to 1, 2, ... N
//!             heterogeneous nodes through the hpu-fleet router and print
//!             one goodput/latency/routing-quality CSV row per
//!             (node count, offered rate) — the scaling story of the
//!             multi-node layer (CSV lands in DIR/fleet.csv with --out);
//!             defaults: 32 jobs, nodes 1,2,4, rates 1,6,96, seed 42
//! batch       serve the identical shape-heavy GPU job stream at each
//!             offered-load rate with cross-job kernel batching off and
//!             on (coalescing up to 4 same-shaped jobs per launch) and
//!             print one CSV row per (mode, rate): completions,
//!             rejections, throughput, batches formed and device time
//!             saved — the curve shows coalescing saturating at a higher
//!             offered load than solo launches; --native appends the
//!             unbatched wall-clock reference rows (CSV lands in
//!             DIR/batch.csv with --out); defaults: 24 jobs, rates
//!             1,2,3,4,6,8, seed 42
//! recover     serve a pinned multi-segment job stream on a 4-node fleet
//!             with one seeded mid-run node crash, sweeping the crash
//!             rate over --rates (crash probabilities) under checkpoint
//!             policies off and everylevel; prints one goodput / MTTR /
//!             levels-saved CSV row per (policy, crash rate) — with a
//!             fixed seed the rows are byte-identical across runs (CSV
//!             lands in DIR/recover.csv with --out); defaults: 16 jobs,
//!             rates 0,0.15,0.3,0.6, seed 42
//! perf        run the pinned perf matrix (admission latency, native
//!             throughput, interpret-vs-direct overhead, plan-compile
//!             time, serve goodput, fleet scaling) and write a
//!             schema-versioned BENCH_<label>.json snapshot with
//!             trajectory position --seq to --out (default `.`); with
//!             --compare, diff two snapshots instead and exit 1 when any
//!             metric moved in its bad direction by more than --threshold
//!             (relative, default 0.15) — --smoke only checks schema and
//!             metric presence, for noisy CI runners; --compare-newest
//!             picks the baseline automatically: the highest-seq
//!             BENCH_*.json under DIR
//!
//! Every mode accepts --help; unknown flags exit with status 2.
//! ```

use std::io::Write;

use hpu_bench::experiments as exp;
use hpu_bench::experiments::Csv;

struct Scale {
    probe_len: usize,
    fig7_n: usize,
    fig8_sizes: Vec<usize>,
    fig9_sizes: Vec<usize>,
    fig10_sizes: Vec<usize>,
    model_n: u64,
    ablation_n: usize,
    trace_n: usize,
}

impl Scale {
    fn quick() -> Self {
        Scale {
            probe_len: 1 << 16,
            fig7_n: 1 << 16,
            fig8_sizes: (10..=20).step_by(2).map(|k| 1 << k).collect(),
            fig9_sizes: (10..=20).step_by(2).map(|k| 1 << k).collect(),
            fig10_sizes: vec![1 << 12, 1 << 14, 1 << 16],
            model_n: 1 << 24,
            ablation_n: 1 << 14,
            trace_n: 1 << 12,
        }
    }

    fn full() -> Self {
        Scale {
            probe_len: 1 << 22,
            fig7_n: 1 << 24,
            fig8_sizes: (10..=24).map(|k| 1 << k).collect(),
            fig9_sizes: (10..=24).map(|k| 1 << k).collect(),
            fig10_sizes: (12..=24).step_by(2).map(|k| 1 << k).collect(),
            model_n: 1 << 24,
            ablation_n: 1 << 20,
            trace_n: 1 << 18,
        }
    }
}

fn fig7_grid(scale: &Scale, full: bool) -> Csv {
    let alphas: Vec<f64> = (1..=7).map(|k| k as f64 * 0.05).collect();
    let levels: Vec<u32> = if full {
        vec![7, 8, 9, 10, 11, 12]
    } else {
        // Scaled-down input: the interesting levels shift up with
        // log2(n^full / n): keep the same distance from the tree bottom.
        vec![5, 6, 7, 8, 9]
    };
    exp::fig7(scale.fig7_n, &alphas, &levels)
}

/// `repro plan <exp> [...] [--passes]`: print the compiled execution
/// plans (or, with `passes`, the per-pass optimizer pipeline) behind the
/// named experiments instead of running them.
fn run_plan(experiments: &[String], passes: bool, scale: &Scale, out_dir: Option<&str>) {
    if experiments.is_empty() {
        eprintln!("{PLAN_USAGE}");
        std::process::exit(2);
    }
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for name in experiments {
        let n = match name.as_str() {
            "fig7" => scale.fig7_n,
            "fig8" => *scale.fig8_sizes.last().expect("fig8 sizes"),
            "fig9" => *scale.fig9_sizes.last().expect("fig9 sizes"),
            "fig10" => *scale.fig10_sizes.last().expect("fig10 sizes"),
            _ => scale.ablation_n,
        };
        let (csv, kind, file_suffix) = if passes {
            (exp::plan_passes_csv(name, n), "plan passes", "passes.csv")
        } else {
            (exp::plan_csv(name, n), "plan", "plan.csv")
        };
        let Some(csv) = csv else {
            eprintln!("{name}: no execution plan (model-only or estimation experiment)");
            std::process::exit(2);
        };
        let _ = writeln!(lock, "# === {name} {kind} ===");
        let _ = write!(lock, "{}", csv.render());
        let _ = writeln!(lock);
        if let Some(dir) = out_dir {
            std::fs::create_dir_all(dir).expect("create --out directory");
            std::fs::write(format!("{dir}/{name}.{file_suffix}"), csv.render())
                .expect("write plan CSV");
        }
    }
}

/// `repro plan EXPERIMENT [...] [--passes] [--full] [--out DIR]`.
///
/// Experiments are positionals, so the argument list is split into the
/// positional prefix of each flag group before the flag table validates
/// the rest (same `--help`/unknown-flag convention as the other modes).
fn plan_mode(rest: &[String]) {
    let table: &[(&str, usize)] = &[("--passes", 0), ("--full", 0), ("--out", 1)];
    let mut experiments: Vec<String> = Vec::new();
    let mut flags: Vec<String> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        if a.starts_with('-') {
            let arity = table
                .iter()
                .find(|(f, _)| f == a)
                .map(|(_, k)| *k)
                .unwrap_or(0);
            flags.push(a.clone());
            flags.extend(rest.iter().skip(i + 1).take(arity).cloned());
            i += 1 + arity;
        } else {
            experiments.push(a.clone());
            i += 1;
        }
    }
    validate_flags(&flags, table, PLAN_USAGE);
    let full = flags.iter().any(|a| a == "--full");
    let passes = flags.iter().any(|a| a == "--passes");
    let scale = if full { Scale::full() } else { Scale::quick() };
    run_plan(&experiments, passes, &scale, flag_value(&flags, "--out"));
}

fn flag_value<'a>(rest: &'a [String], flag: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1))
        .map(String::as_str)
}

/// Validates a subcommand's argument list against its flag table:
/// `flags` maps each accepted flag to the number of values it consumes.
/// `--help`/`-h` print `usage` and exit 0; anything not in the table
/// (flag or stray positional) prints `usage` to stderr and exits 2.
fn validate_flags(rest: &[String], flags: &[(&str, usize)], usage: &str) {
    let mut i = 0;
    while i < rest.len() {
        let a = rest[i].as_str();
        if a == "--help" || a == "-h" {
            println!("{usage}");
            std::process::exit(0);
        }
        match flags.iter().find(|(f, _)| *f == a) {
            Some((flag, arity)) => {
                if i + arity >= rest.len() {
                    eprintln!("{flag} expects {arity} value(s)\n{usage}");
                    std::process::exit(2);
                }
                i += 1 + arity;
            }
            None => {
                eprintln!("unknown argument: {a}\n{usage}");
                std::process::exit(2);
            }
        }
    }
}

const PLAN_USAGE: &str = "usage: repro plan EXPERIMENT [...] [--passes] [--full] [--out DIR]

Prints the compiled execution plans behind the named experiments (one CSV
row per plan segment) instead of running them; model-only experiments are
rejected. --passes prints the optimizer pipeline instead: the plan IR
before and after each pass, one row per segment, with the plan's
predicted cost (plans land in DIR/<name>.plan.csv, pass dumps in
DIR/<name>.passes.csv).";
const SERVE_USAGE: &str = "usage: repro serve [--jobs N] [--rates R,R,...] \
[--backend sim|native|both] [--seed S] [--out DIR]";
const CHAOS_USAGE: &str = "usage: repro chaos [--jobs N] [--rates P,P,...] \
[--backend sim|native|both] [--seed S] [--out DIR]  (rates are fault probabilities in [0,1])";
const CALIBRATE_USAGE: &str =
    "usage: repro calibrate [--jobs N] [--gamma-skew K] [--seed S] [--out DIR]";
const FLEET_USAGE: &str = "usage: repro fleet [--jobs N] [--nodes N,N,...] \
[--rates R,R,...] [--seed S] [--out DIR]

Offers the identical open-loop job stream to each node count in --nodes
at each offered rate in --rates (multiples of one node's solo completion
rate) and prints one CSV row per (node count, rate): goodput, latency
percentiles, routing quality against the omniscient oracle, steal and
migration counts. Defaults: 32 jobs, nodes 1,2,4, rates 1,6,96, seed 42.";
const BATCH_USAGE: &str = "usage: repro batch [--jobs N] [--rates R,R,...] \
[--native] [--seed S] [--out DIR]

Serves the identical shape-heavy GPU job stream at each offered-load rate
(multiples of the solo reference completion rate) twice — cross-job
kernel batching off, then coalescing up to 4 same-shaped jobs per merged
launch — and prints one CSV row per (mode, rate): completions,
rejections, goodput, throughput, batches formed and device time saved.
--native appends the unbatched native (wall-clock) reference rows.
Defaults: 24 jobs, rates 1,2,3,4,6,8, seed 42.";
const RECOVER_USAGE: &str = "usage: repro recover [--jobs N] [--rates P,P,...] \
[--seed S] [--out DIR]  (rates are node-crash probabilities in [0,1])

Serves a pinned multi-segment job stream on a 4-node fleet with seeded
node crashes at each crash rate, once per checkpoint policy (off,
everylevel), and prints one CSV row per (policy, rate): goodput, MTTR,
jobs recovered vs restarted, and the completed levels the checkpoints
saved from re-execution. Defaults: 16 jobs, rates 0,0.15,0.3,0.6, seed 42.";
const PERF_USAGE: &str = "usage: repro perf [--label L] [--quick] [--seed S] [--seq N] [--out DIR]
       repro perf --compare OLD NEW [--threshold T] [--smoke]
       repro perf --compare-newest DIR NEW [--threshold T] [--smoke]

Runs the pinned perf matrix and writes BENCH_<label>.json (label defaults
to `dev`, --out to `.`, --seq stamps the snapshot's position on the
committed trajectory), or diffs two snapshots and exits 1 when any
metric regressed past --threshold (relative, default 0.15). --smoke only
checks schema and metric presence. --compare-newest diffs NEW against
the highest-seq BENCH_*.json snapshot under DIR.";
const TOP_USAGE: &str = "usage: repro [EXPERIMENT ...] [--full] [--out DIR] [--trace DIR]
       repro plan EXPERIMENT [...] [--passes] [--full] [--out DIR]
       repro plan|serve|chaos|calibrate|fleet|batch|recover|perf [--help]

EXPERIMENT: table1 table2 fig3..fig10 ablation-coalescing
            ablation-schedule extension-workloads all (default: all)";

/// `repro serve [--jobs N] [--rates R,..] [--backend B] [--seed S] [--out DIR]`.
fn serve_mode(rest: &[String]) {
    validate_flags(
        rest,
        &[
            ("--jobs", 1),
            ("--rates", 1),
            ("--backend", 1),
            ("--seed", 1),
            ("--out", 1),
        ],
        SERVE_USAGE,
    );
    let jobs: usize = flag_value(rest, "--jobs")
        .map(|v| v.parse().expect("--jobs takes an integer"))
        .unwrap_or(32);
    let rates: Vec<f64> = flag_value(rest, "--rates")
        .unwrap_or("0.5,2")
        .split(',')
        .map(|r| {
            r.trim()
                .parse()
                .expect("--rates takes comma-separated numbers")
        })
        .collect();
    let backend = match flag_value(rest, "--backend").unwrap_or("both") {
        "sim" => hpu_bench::ServeBackend::Sim,
        "native" => hpu_bench::ServeBackend::Native,
        "both" => hpu_bench::ServeBackend::Both,
        other => {
            eprintln!("unknown --backend: {other} (expected sim, native or both)");
            std::process::exit(2);
        }
    };
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let csv = hpu_bench::serve_fleet(jobs, &rates, backend, seed);
    print!("{}", csv.render());
    if let Some(dir) = flag_value(rest, "--out") {
        std::fs::create_dir_all(dir).expect("create --out directory");
        std::fs::write(format!("{dir}/serve.csv"), csv.render()).expect("write serve CSV");
    }
}

/// `repro chaos [--jobs N] [--rates R,..] [--backend B] [--seed S] [--out DIR]`.
fn chaos_mode(rest: &[String]) {
    validate_flags(
        rest,
        &[
            ("--jobs", 1),
            ("--rates", 1),
            ("--backend", 1),
            ("--seed", 1),
            ("--out", 1),
        ],
        CHAOS_USAGE,
    );
    let jobs: usize = flag_value(rest, "--jobs")
        .map(|v| v.parse().expect("--jobs takes an integer"))
        .unwrap_or(16);
    let rates: Vec<f64> = flag_value(rest, "--rates")
        .unwrap_or("0,0.05,0.2,0.5")
        .split(',')
        .map(|r| {
            r.trim()
                .parse()
                .expect("--rates takes comma-separated numbers")
        })
        .collect();
    if rates.iter().any(|r| !(0.0..=1.0).contains(r)) {
        eprintln!("--rates are fault probabilities and must lie in [0, 1]");
        std::process::exit(2);
    }
    let backend = match flag_value(rest, "--backend").unwrap_or("both") {
        "sim" => hpu_bench::ServeBackend::Sim,
        "native" => hpu_bench::ServeBackend::Native,
        "both" => hpu_bench::ServeBackend::Both,
        other => {
            eprintln!("unknown --backend: {other} (expected sim, native or both)");
            std::process::exit(2);
        }
    };
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let csv = hpu_bench::chaos_sweep(jobs, &rates, backend, seed);
    print!("{}", csv.render());
    if let Some(dir) = flag_value(rest, "--out") {
        std::fs::create_dir_all(dir).expect("create --out directory");
        std::fs::write(format!("{dir}/chaos.csv"), csv.render()).expect("write chaos CSV");
    }
}

/// `repro calibrate [--jobs N] [--gamma-skew K] [--seed S] [--out DIR]`.
fn calibrate_mode(rest: &[String]) {
    validate_flags(
        rest,
        &[
            ("--jobs", 1),
            ("--gamma-skew", 1),
            ("--seed", 1),
            ("--out", 1),
        ],
        CALIBRATE_USAGE,
    );
    let jobs: usize = flag_value(rest, "--jobs")
        .map(|v| v.parse().expect("--jobs takes an integer"))
        .unwrap_or(24);
    let gamma_skew: f64 = flag_value(rest, "--gamma-skew")
        .map(|v| v.parse().expect("--gamma-skew takes a number"))
        .unwrap_or(2.0);
    if !(gamma_skew.is_finite() && gamma_skew > 0.0) {
        eprintln!("--gamma-skew must be a positive finite number, got {gamma_skew}");
        std::process::exit(2);
    }
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let csv = hpu_bench::calibrate_sweep(jobs, gamma_skew, seed);
    print!("{}", csv.render());
    if let Some(dir) = flag_value(rest, "--out") {
        std::fs::create_dir_all(dir).expect("create --out directory");
        std::fs::write(format!("{dir}/calibrate.csv"), csv.render()).expect("write calibrate CSV");
    }
}

/// `repro fleet [--jobs N] [--nodes N,..] [--rates R,..] [--seed S] [--out DIR]`.
fn fleet_mode(rest: &[String]) {
    validate_flags(
        rest,
        &[
            ("--jobs", 1),
            ("--nodes", 1),
            ("--rates", 1),
            ("--seed", 1),
            ("--out", 1),
        ],
        FLEET_USAGE,
    );
    let jobs: usize = flag_value(rest, "--jobs")
        .map(|v| v.parse().expect("--jobs takes an integer"))
        .unwrap_or(32);
    let node_counts: Vec<usize> = flag_value(rest, "--nodes")
        .unwrap_or("1,2,4")
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .expect("--nodes takes comma-separated integers")
        })
        .collect();
    if node_counts.contains(&0) {
        eprintln!("--nodes counts must be at least 1");
        std::process::exit(2);
    }
    let rates: Vec<f64> = flag_value(rest, "--rates")
        .unwrap_or("1,6,96")
        .split(',')
        .map(|r| {
            r.trim()
                .parse()
                .expect("--rates takes comma-separated numbers")
        })
        .collect();
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let csv = hpu_bench::fleet_scaling(jobs, &node_counts, &rates, seed);
    print!("{}", csv.render());
    if let Some(dir) = flag_value(rest, "--out") {
        std::fs::create_dir_all(dir).expect("create --out directory");
        std::fs::write(format!("{dir}/fleet.csv"), csv.render()).expect("write fleet CSV");
    }
}

/// `repro batch [--jobs N] [--rates R,..] [--native] [--seed S] [--out DIR]`.
fn batch_mode(rest: &[String]) {
    validate_flags(
        rest,
        &[
            ("--jobs", 1),
            ("--rates", 1),
            ("--native", 0),
            ("--seed", 1),
            ("--out", 1),
        ],
        BATCH_USAGE,
    );
    let jobs: usize = flag_value(rest, "--jobs")
        .map(|v| v.parse().expect("--jobs takes an integer"))
        .unwrap_or(24);
    let rates: Vec<f64> = flag_value(rest, "--rates")
        .unwrap_or("1,2,3,4,6,8")
        .split(',')
        .map(|r| {
            r.trim()
                .parse()
                .expect("--rates takes comma-separated numbers")
        })
        .collect();
    let native = rest.iter().any(|a| a == "--native");
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let csv = hpu_bench::batch_curve(jobs, &rates, native, seed);
    print!("{}", csv.render());
    if let Some(dir) = flag_value(rest, "--out") {
        std::fs::create_dir_all(dir).expect("create --out directory");
        std::fs::write(format!("{dir}/batch.csv"), csv.render()).expect("write batch CSV");
    }
}

/// `repro recover [--jobs N] [--rates P,..] [--seed S] [--out DIR]`.
fn recover_mode(rest: &[String]) {
    validate_flags(
        rest,
        &[("--jobs", 1), ("--rates", 1), ("--seed", 1), ("--out", 1)],
        RECOVER_USAGE,
    );
    let jobs: usize = flag_value(rest, "--jobs")
        .map(|v| v.parse().expect("--jobs takes an integer"))
        .unwrap_or(16);
    let rates: Vec<f64> = flag_value(rest, "--rates")
        .unwrap_or("0,0.15,0.3,0.6")
        .split(',')
        .map(|r| {
            r.trim()
                .parse()
                .expect("--rates takes comma-separated numbers")
        })
        .collect();
    if rates.iter().any(|r| !(0.0..=1.0).contains(r)) {
        eprintln!("--rates are crash probabilities and must lie in [0, 1]");
        std::process::exit(2);
    }
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let csv = hpu_bench::recover_sweep(jobs, &rates, seed);
    print!("{}", csv.render());
    if let Some(dir) = flag_value(rest, "--out") {
        std::fs::create_dir_all(dir).expect("create --out directory");
        std::fs::write(format!("{dir}/recover.csv"), csv.render()).expect("write recover CSV");
    }
}

/// Reads and parses one snapshot file, exiting 2 on failure.
fn read_snapshot(path: &str) -> hpu_bench::PerfSnapshot {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    hpu_bench::PerfSnapshot::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

/// Diffs `new` against `old`, prints the delta table, and exits 1 when
/// any metric regressed (or the schemas refuse to diff).
fn diff_snapshots(old: &hpu_bench::PerfSnapshot, new: &hpu_bench::PerfSnapshot, rest: &[String]) {
    let threshold: f64 = flag_value(rest, "--threshold")
        .map(|v| v.parse().expect("--threshold takes a number"))
        .unwrap_or(0.15);
    let smoke = rest.iter().any(|a| a == "--smoke");
    match hpu_bench::compare(old, new, threshold, smoke) {
        Ok(deltas) => {
            print!("{}", hpu_bench::render_deltas(&deltas));
            let regressed = deltas.iter().filter(|d| d.regressed).count();
            if regressed > 0 {
                eprintln!("{regressed} metric(s) regressed past threshold {threshold}");
                std::process::exit(1);
            }
            println!("no regressions ({} metric(s) compared)", deltas.len());
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// `repro perf [--label L] [--quick] [--seed S] [--seq N] [--out DIR]`,
/// `repro perf --compare OLD NEW [--threshold T] [--smoke]` or
/// `repro perf --compare-newest DIR NEW [--threshold T] [--smoke]`.
fn perf_mode(rest: &[String]) {
    validate_flags(
        rest,
        &[
            ("--label", 1),
            ("--quick", 0),
            ("--seed", 1),
            ("--seq", 1),
            ("--out", 1),
            ("--compare", 2),
            ("--compare-newest", 2),
            ("--threshold", 1),
            ("--smoke", 0),
        ],
        PERF_USAGE,
    );
    if let Some(i) = rest.iter().position(|a| a == "--compare") {
        let old = read_snapshot(&rest[i + 1]);
        let new = read_snapshot(&rest[i + 2]);
        diff_snapshots(&old, &new, rest);
        return;
    }
    if let Some(i) = rest.iter().position(|a| a == "--compare-newest") {
        let dir = std::path::Path::new(&rest[i + 1]);
        let (base_path, old) = hpu_bench::newest_snapshot(dir).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        eprintln!("baseline: {} (seq {})", base_path.display(), old.seq);
        let new = read_snapshot(&rest[i + 2]);
        diff_snapshots(&old, &new, rest);
        return;
    }
    let label = flag_value(rest, "--label").unwrap_or("dev");
    let quick = rest.iter().any(|a| a == "--quick");
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let seq: u64 = flag_value(rest, "--seq")
        .map(|v| v.parse().expect("--seq takes an integer"))
        .unwrap_or(0);
    let out_dir = flag_value(rest, "--out").unwrap_or(".");
    let mut snap = hpu_bench::collect_perf(label, quick, seed);
    snap.seq = seq;
    let json = snap.to_json();
    println!("{json}");
    std::fs::create_dir_all(out_dir).expect("create --out directory");
    let path = format!("{out_dir}/BENCH_{label}.json");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH snapshot");
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("plan") {
        plan_mode(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        serve_mode(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("calibrate") {
        calibrate_mode(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("chaos") {
        chaos_mode(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("fleet") {
        fleet_mode(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("batch") {
        batch_mode(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("recover") {
        recover_mode(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("perf") {
        perf_mode(&args[1..]);
        return;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{TOP_USAGE}");
        return;
    }
    for a in &args {
        if a.starts_with("--") && !["--full", "--out", "--trace"].contains(&a.as_str()) {
            eprintln!("unknown argument: {a}\n{TOP_USAGE}");
            std::process::exit(2);
        }
    }
    let full = args.iter().any(|a| a == "--full");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_dir = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != out_dir.as_deref())
        .filter(|a| Some(a.as_str()) != trace_dir.as_deref())
        .cloned()
        .collect();
    let scale = if full { Scale::full() } else { Scale::quick() };

    // Legacy spelling with flags before the subcommand, e.g.
    // `repro --out DIR plan fig9`.
    if wanted.first().map(String::as_str) == Some("plan") {
        run_plan(&wanted[1..], false, &scale, out_dir.as_deref());
        return;
    }

    // One traced run of every strategy covers all experiments.
    let bundle = trace_dir.as_ref().map(|_| exp::trace_bundle(scale.trace_n));

    let all = [
        "table1",
        "table2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "ablation-coalescing",
        "ablation-schedule",
        "extension-workloads",
    ];
    let selected: Vec<&str> = if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        all.to_vec()
    } else {
        wanted.iter().map(String::as_str).collect()
    };

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for name in selected {
        let csv = match name {
            "table1" => exp::table1(),
            "table2" => exp::table2(scale.probe_len),
            "fig3" => exp::fig3(scale.model_n),
            "fig4" => exp::fig4(scale.model_n),
            "fig5" => exp::fig5(scale.probe_len),
            "fig6" => exp::fig6(&[
                scale.probe_len / 8,
                scale.probe_len / 4,
                scale.probe_len / 2,
                scale.probe_len,
            ]),
            "fig7" => fig7_grid(&scale, full),
            "fig8" => exp::fig8(&scale.fig8_sizes),
            "fig9" => exp::fig9(&scale.fig9_sizes),
            "fig10" => exp::fig10(&scale.fig10_sizes),
            "ablation-coalescing" => exp::ablation_coalescing(scale.ablation_n),
            "ablation-schedule" => exp::ablation_schedule(scale.ablation_n),
            "extension-workloads" => exp::extension_workloads(scale.ablation_n),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        let _ = writeln!(lock, "# === {} ===", csv.name);
        let _ = write!(lock, "{}", csv.render());
        let _ = writeln!(lock);
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create --out directory");
            std::fs::write(format!("{dir}/{}.csv", csv.name), csv.render())
                .expect("write CSV file");
        }
        if let (Some(dir), Some(bundle)) = (&trace_dir, &bundle) {
            std::fs::create_dir_all(dir).expect("create --trace directory");
            std::fs::write(
                format!("{dir}/{}.trace.json", csv.name),
                bundle.chrome.render(),
            )
            .expect("write trace JSON");
            std::fs::write(
                format!("{dir}/{}.levels.csv", csv.name),
                bundle.levels.render(),
            )
            .expect("write levels CSV");
        }
    }
}
