//! The chaos experiment: the serving fleet of [`crate::serve_fleet`]
//! under seeded device-fault injection, swept over a grid of fault
//! rates. One CSV row per `(backend, fault_rate)` pair reports how
//! goodput and latency degrade as faults intensify.
//!
//! The fault model is hash-coupled (see [`hpu_machine::FaultPlan`]): a
//! device operation faults iff a seeded per-ordinal draw falls below the
//! rate, so the fault set at a low rate is a subset of the fault set at
//! any higher rate under the same seed. That nesting is what makes the
//! goodput column monotone in the rate — more faults can only be
//! strictly worse, never accidentally better.
//!
//! On the simulated backend faults come from the machine itself (kernel
//! launches and bus transfers); on the native backend there is no
//! simulated device, so chaos instead wraps each workload in a
//! deterministic panic injector exercising the panic-safe worker path.

use std::time::Duration;

use hpu_core::exec::{RecoveryPolicy, RecoveryStats, RunReport};
use hpu_core::{CoreError, LevelPool};
use hpu_machine::{FaultPlan, MachineConfig, SimHpu};
use hpu_model::{Plan, Recurrence};
use hpu_obs::ServeReport;
use hpu_serve::{
    serve_native, serve_sim, FaultConfig, JobRequest, NativeJobRequest, ServeConfig, Workload,
};

use crate::experiments::Csv;
use crate::serving::{exp_gap, job_mix, native_reference_us, sim_reference_time};
use crate::workload::SplitMix64;
use crate::ServeBackend;

/// Uniform draw in `[0, 1)` keyed by `(seed, job, attempt)`. The value
/// does not depend on the rate it is compared against, so per-attempt
/// panic sets nest exactly like the machine-level fault sets.
fn chaos_draw(seed: u64, job: u64, attempt: u64) -> f64 {
    let key = seed
        ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ attempt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (SplitMix64::new(key).next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`Workload`] wrapper that deterministically panics in
/// `run_native` when the seeded draw for the current attempt falls
/// below `rate` — the native-backend stand-in for device faults,
/// driving the scheduler's `catch_unwind`/retry path.
struct PanicInjector {
    inner: Box<dyn Workload>,
    seed: u64,
    job: u64,
    rate: f64,
    attempt: u64,
}

impl PanicInjector {
    fn boxed(inner: Box<dyn Workload>, seed: u64, job: u64, rate: f64) -> Box<dyn Workload> {
        Box::new(PanicInjector {
            inner,
            seed,
            job,
            rate,
            attempt: 0,
        })
    }
}

impl Workload for PanicInjector {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn input_len(&self) -> usize {
        self.inner.input_len()
    }

    fn recurrence(&self) -> Recurrence {
        self.inner.recurrence()
    }

    fn exec_levels(&self) -> Result<u32, CoreError> {
        self.inner.exec_levels()
    }

    fn run_plan(&mut self, hpu: &mut SimHpu, plan: &Plan) -> Result<RunReport, CoreError> {
        self.inner.run_plan(hpu, plan)
    }

    fn run_plan_recover(
        &mut self,
        hpu: &mut SimHpu,
        plan: &Plan,
        policy: &RecoveryPolicy,
    ) -> (Result<RunReport, CoreError>, RecoveryStats) {
        self.inner.run_plan_recover(hpu, plan, policy)
    }

    fn run_native(&mut self, pool: &LevelPool) -> Result<Duration, CoreError> {
        let attempt = self.attempt;
        self.attempt += 1;
        if chaos_draw(self.seed, self.job, attempt) < self.rate {
            panic!("injected chaos panic (job {}, attempt {attempt})", self.job);
        }
        self.inner.run_native(pool)
    }
}

/// Sum of per-job retries from the report's retry histogram.
fn total_retries(r: &ServeReport) -> usize {
    r.retry_histogram
        .iter()
        .enumerate()
        .map(|(k, count)| k * count)
        .sum()
}

fn chaos_row(backend: &str, rate: f64, submitted: usize, r: &ServeReport) -> Vec<String> {
    let f = |v: f64| format!("{v:.4}");
    vec![
        backend.to_string(),
        format!("{rate}"),
        submitted.to_string(),
        r.completed.to_string(),
        r.failed.to_string(),
        r.cancelled.to_string(),
        r.rejected.to_string(),
        r.completed_degraded.to_string(),
        total_retries(r).to_string(),
        r.fault_events.to_string(),
        r.breaker_trips.to_string(),
        format!("{:.6}", r.goodput),
        format!("{:.6}", r.throughput),
        f(r.p50_latency),
        f(r.p95_latency),
        f(r.max_latency),
    ]
}

/// The serving configuration chaos runs under: a queue wide enough that
/// backpressure never rejects a job (rejections would add timing noise
/// to the goodput column, which should isolate *fault* losses), plus
/// the fault plan for `rate`.
fn chaos_serve(jobs: usize, faults: FaultConfig) -> ServeConfig {
    ServeConfig {
        queue_capacity: jobs.max(1),
        faults: Some(faults),
        ..ServeConfig::default()
    }
}

/// Runs the chaos benchmark: the [`crate::serve_fleet`] job mix served
/// at offered load 1 while device-fault rates sweep over `rates`; one
/// CSV row per `(backend, fault_rate)`. With the same seed, the
/// goodput column is non-increasing in the fault rate on each backend.
pub fn chaos_sweep(jobs: usize, rates: &[f64], backend: ServeBackend, seed: u64) -> Csv {
    let mut rows = Vec::new();

    if matches!(backend, ServeBackend::Sim | ServeBackend::Both) {
        let cfg = MachineConfig::hpu1_sim();
        let solo = sim_reference_time(&cfg, &ServeConfig::default(), seed);
        for &rate in rates {
            let plan = FaultPlan::new(seed)
                .with_kernel_rate(rate)
                .with_transfer_rate(rate / 2.0);
            let serve = chaos_serve(jobs, FaultConfig::new(plan));
            let mut rng = SplitMix64::new(seed ^ rate.to_bits());
            let mut t = 0.0;
            let fleet: Vec<JobRequest> = (0..jobs)
                .map(|i| {
                    let (name, spec, workload) = job_mix(i, seed);
                    t += exp_gap(&mut rng, solo);
                    JobRequest::new(name, spec, t, workload)
                })
                .collect();
            let out = serve_sim(&cfg, &serve, fleet);
            rows.push(chaos_row("sim", rate, jobs, &out.report));
        }
    }

    if matches!(backend, ServeBackend::Native | ServeBackend::Both) {
        let (workers, threads) = (2, 2);
        let solo_us = native_reference_us(&ServeConfig::default(), threads, seed);
        for &rate in rates {
            // The fault plan itself is irrelevant on real threads; the
            // config is present so the worker's retry policy is armed.
            let serve = chaos_serve(jobs, FaultConfig::new(FaultPlan::new(seed)));
            let mut rng = SplitMix64::new(seed ^ rate.to_bits());
            let mut t = 0.0;
            let fleet: Vec<NativeJobRequest> = (0..jobs)
                .map(|i| {
                    let (name, _, workload) = job_mix(i, seed);
                    t += exp_gap(&mut rng, solo_us);
                    let faulty = PanicInjector::boxed(workload, seed, i as u64, rate);
                    NativeJobRequest::new(name, t as u64, faulty)
                })
                .collect();
            let out = serve_native(&serve, workers, threads, fleet);
            rows.push(chaos_row("native", rate, jobs, &out.report));
        }
    }

    Csv {
        name: "chaos",
        header: vec![
            "backend",
            "fault_rate",
            "submitted",
            "completed",
            "failed",
            "cancelled",
            "rejected",
            "degraded",
            "retries",
            "fault_events",
            "breaker_trips",
            "goodput",
            "throughput",
            "p50_latency",
            "p95_latency",
            "max_latency",
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goodputs(csv: &Csv, backend: &str) -> Vec<f64> {
        csv.rows
            .iter()
            .filter(|r| r[0] == backend)
            .map(|r| r[11].parse().expect("goodput column parses"))
            .collect()
    }

    #[test]
    fn sim_goodput_is_monotone_in_the_fault_rate() {
        let rates = [0.0, 0.05, 0.2, 0.5];
        let csv = chaos_sweep(12, &rates, ServeBackend::Sim, 42);
        let g = goodputs(&csv, "sim");
        assert_eq!(g.len(), rates.len());
        assert_eq!(g[0], 1.0, "fault-free serving completes every job");
        for w in g.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "goodput must not improve as the fault rate grows: {g:?}"
            );
        }
    }

    #[test]
    fn sim_faults_are_observed_at_positive_rates() {
        let csv = chaos_sweep(12, &[0.0, 0.5], ServeBackend::Sim, 42);
        let zero: u64 = csv.rows[0][9].parse().unwrap();
        let high: u64 = csv.rows[1][9].parse().unwrap();
        assert_eq!(zero, 0, "rate 0 must inject nothing");
        assert!(high > 0, "rate 0.5 must inject faults");
    }

    #[test]
    fn native_goodput_is_monotone_in_the_panic_rate() {
        let rates = [0.0, 0.3, 1.0];
        let csv = chaos_sweep(6, &rates, ServeBackend::Native, 42);
        let g = goodputs(&csv, "native");
        assert_eq!(g.len(), rates.len());
        assert_eq!(g[0], 1.0, "panic-free serving completes every job");
        assert_eq!(
            *g.last().unwrap(),
            0.0,
            "rate 1 panics every attempt of every job"
        );
        for w in g.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "goodput must not improve: {g:?}");
        }
    }

    #[test]
    fn chaos_sweep_is_deterministic() {
        let a = chaos_sweep(8, &[0.1], ServeBackend::Sim, 7);
        let b = chaos_sweep(8, &[0.1], ServeBackend::Sim, 7);
        assert_eq!(a, b);
    }
}
