//! One function per table/figure of the paper's evaluation section.
//!
//! Every function returns a [`Csv`] whose rows mirror the series the paper
//! plots; `EXPERIMENTS.md` records the paper-vs-measured comparison.

use std::fmt::Write as _;

use hpu_algos::mergesort::{gpu_parallel_mergesort, MergeSort};
use hpu_core::exec::{run_sim, Strategy};
use hpu_core::tune::{auto_advanced, grid_search_sim};
use hpu_core::BfAlgorithm;
use hpu_estimate::{estimate_g, estimate_gamma, platforms};
use hpu_machine::{MachineConfig, SimHpu, SimMachineParams};
use hpu_model::advanced::AdvancedSolver;
use hpu_model::closed_form::ClosedForm;
use hpu_model::{MachineParams, Recurrence};

use crate::workload::uniform_input;

/// A simple CSV table: header plus string rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Csv {
    /// Experiment identifier, e.g. `"fig7"`.
    pub name: &'static str,
    /// Column names.
    pub header: Vec<&'static str>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Csv {
    /// Renders the table as CSV text (header first), quoting cells that
    /// contain commas or quotes (RFC 4180).
    pub fn render(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| cell(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }
}

fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// Table 1: the hybrid platforms.
pub fn table1() -> Csv {
    Csv {
        name: "table1",
        header: vec!["platform", "cpu", "gpu"],
        rows: platforms::all()
            .iter()
            .map(|s| vec![s.name.to_string(), s.cpu.to_string(), s.gpu.to_string()])
            .collect(),
    }
}

/// Table 2: model parameters — published vs re-estimated on the simulated
/// devices with the paper's §6.4 procedures.
pub fn table2(probe_len: usize) -> Csv {
    let mut rows = Vec::new();
    for spec in platforms::all() {
        let cfg = spec.config();
        let g = estimate_g(&cfg, probe_len).g;
        let gamma = estimate_gamma(&cfg, &[probe_len / 4, probe_len / 2, probe_len]).gamma_inv;
        let (p, g_pub, gi_pub) = spec.published;
        rows.push(vec![
            spec.name.to_string(),
            p.to_string(),
            g_pub.to_string(),
            g.to_string(),
            f(gi_pub),
            f(gamma),
        ]);
    }
    Csv {
        name: "table2",
        header: vec![
            "platform",
            "p",
            "g_published",
            "g_estimated",
            "gamma_inv_published",
            "gamma_inv_estimated",
        ],
        rows,
    }
}

/// Figure 3: for mergesort on HPU1 at size `n`, the level `y(α)` the GPU
/// reaches and the share of the total work it performs, as functions of
/// `α` (closed form, §5.2.2).
pub fn fig3(n: u64) -> Csv {
    let cf = ClosedForm::new(&platforms::HPU1.published_params(), 2, n);
    let mut rows = Vec::new();
    let mut alpha = 0.01;
    while alpha <= 0.6 {
        rows.push(vec![
            f(alpha),
            f(cf.y_of_alpha(alpha)),
            f(100.0 * cf.gpu_work_fraction(alpha)),
        ]);
        alpha += 0.01;
    }
    Csv {
        name: "fig3",
        header: vec!["alpha", "gpu_level_y", "gpu_work_pct"],
        rows,
    }
}

/// Figure 4 (and the §5.2.2 example): the optimal advanced division per
/// platform — `α*`, transfer level `y`, GPU work share.
pub fn fig4(n: u64) -> Csv {
    let rec = Recurrence::mergesort();
    let mut rows = Vec::new();
    for spec in platforms::all() {
        let solver = AdvancedSolver::new(&spec.published_params(), &rec, n)
            .expect("paper-scale inputs are valid");
        let opt = solver.optimize();
        rows.push(vec![
            spec.name.to_string(),
            n.to_string(),
            f(opt.alpha),
            f(opt.transfer_level),
            f(100.0 * opt.gpu_work_fraction),
            format!("{:?}", opt.saturation),
        ]);
    }
    Csv {
        name: "fig4",
        header: vec![
            "platform",
            "n",
            "alpha_star",
            "transfer_level_y",
            "gpu_work_pct",
            "saturation",
        ],
        rows,
    }
}

/// Figure 5: GPU probe time vs number of work-items — the saturation knee
/// that estimates `g`, for both platforms.
pub fn fig5(len: usize) -> Csv {
    let mut rows = Vec::new();
    for spec in platforms::all() {
        let sweep = estimate_g(&spec.config(), len);
        for (threads, time) in &sweep.samples {
            rows.push(vec![
                spec.name.to_string(),
                threads.to_string(),
                f(*time),
                sweep.g.to_string(),
            ]);
        }
    }
    Csv {
        name: "fig5",
        header: vec!["platform", "threads", "time", "estimated_g"],
        rows,
    }
}

/// Figure 6: single-thread merge GPU/CPU time ratio vs input size, for
/// both platforms.
pub fn fig6(sizes: &[usize]) -> Csv {
    let mut rows = Vec::new();
    for spec in platforms::all() {
        let sweep = estimate_gamma(&spec.config(), sizes);
        for (size, ratio) in &sweep.samples {
            rows.push(vec![
                spec.name.to_string(),
                size.to_string(),
                f(*ratio),
                f(sweep.gamma_inv),
            ]);
        }
    }
    Csv {
        name: "fig6",
        header: vec!["platform", "size", "gpu_cpu_ratio", "estimated_gamma_inv"],
        rows,
    }
}

/// Runs one simulated mergesort and returns its report.
fn run_once(cfg: &MachineConfig, n: usize, strategy: &Strategy, seed: u64) -> hpu_core::RunReport {
    let mut data = uniform_input(n, seed);
    let mut hpu = SimHpu::new(cfg.clone());
    run_sim(&MergeSort::new(), &mut data, &mut hpu, strategy).expect("experiment run succeeds")
}

/// Figure 7: hybrid mergesort speedup over 1-core sequential on HPU1 as a
/// function of `α`, one series per transfer level.
pub fn fig7(n: usize, alphas: &[f64], levels: &[u32]) -> Csv {
    let cfg = MachineConfig::hpu1_sim();
    let base = run_once(&cfg, n, &Strategy::Sequential, 42).virtual_time;
    let mut rows = Vec::new();
    for &y in levels {
        for &alpha in alphas {
            let rep = run_once(
                &cfg,
                n,
                &Strategy::Advanced {
                    alpha,
                    transfer_level: y,
                },
                42,
            );
            rows.push(vec![y.to_string(), f(alpha), f(base / rep.virtual_time)]);
        }
    }
    Csv {
        name: "fig7",
        header: vec!["transfer_level", "alpha", "speedup_vs_1core"],
        rows,
    }
}

/// Figure 8: hybrid mergesort speedup vs input size — measured on the
/// simulator, predicted by the model, plus the concurrent-phase GPU/CPU
/// time ratio; both platforms.
pub fn fig8(sizes: &[usize]) -> Csv {
    let algo = MergeSort::new();
    let rec = <MergeSort as BfAlgorithm<u32>>::recurrence(&algo);
    let mut rows = Vec::new();
    for spec in platforms::all() {
        let cfg = spec.config();
        for &n in sizes {
            let base = run_once(&cfg, n, &Strategy::Sequential, 42).virtual_time;
            let strategy = auto_advanced(&cfg, &rec, n as u64).expect("valid size");
            let rep = run_once(&cfg, n, &strategy, 42);
            let measured = base / rep.virtual_time;
            // Model prediction with the same recurrence and machine.
            let solver = AdvancedSolver::new(&MachineParams::from_config(&cfg), &rec, n as u64)
                .expect("valid size");
            let opt = solver.optimize();
            let words = ((1.0 - opt.alpha) * n as f64) as u64;
            let predicted = solver.profile().total_work()
                / solver.predicted_time(opt.alpha, opt.transfer_level, words);
            let ratio = rep.concurrent.map(|(c, g)| g / c).unwrap_or(f64::NAN);
            let (alpha, y) = match strategy {
                Strategy::Advanced {
                    alpha,
                    transfer_level,
                } => (alpha, transfer_level),
                _ => unreachable!("auto_advanced returns Advanced"),
            };
            rows.push(vec![
                spec.name.to_string(),
                n.to_string(),
                f(measured),
                f(predicted),
                f(ratio),
                f(alpha),
                y.to_string(),
            ]);
        }
    }
    Csv {
        name: "fig8",
        header: vec![
            "platform",
            "n",
            "measured_speedup",
            "predicted_speedup",
            "gpu_cpu_phase_ratio",
            "alpha",
            "transfer_level",
        ],
        rows,
    }
}

/// Figure 9: the GPU-only parallel-merge mergesort vs the 1-core
/// sequential baseline on HPU1 — sort-only and sort+transfer times and
/// speedups.
pub fn fig9(sizes: &[usize]) -> Csv {
    let cfg = MachineConfig::hpu1_sim();
    let mut rows = Vec::new();
    for &n in sizes {
        let base = run_once(&cfg, n, &Strategy::Sequential, 42).virtual_time;
        let mut data = uniform_input(n, 42);
        let mut hpu = SimHpu::new(cfg.clone());
        let rep = gpu_parallel_mergesort(&mut hpu, &mut data).expect("power-of-two size");
        rows.push(vec![
            n.to_string(),
            f(base),
            f(rep.sort_time),
            f(rep.total_time),
            f(base / rep.sort_time),
            f(base / rep.total_time),
        ]);
    }
    Csv {
        name: "fig9",
        header: vec![
            "n",
            "time_cpu_seq",
            "time_gpu_sort",
            "time_gpu_total",
            "speedup_sort_only",
            "speedup_with_transfer",
        ],
        rows,
    }
}

/// Figure 10: empirically best `(α, y)` per input size (simulator grid
/// search) vs the model's predictions, on HPU1.
pub fn fig10(sizes: &[usize]) -> Csv {
    let cfg = MachineConfig::hpu1_sim();
    let algo = MergeSort::new();
    let rec = <MergeSort as BfAlgorithm<u32>>::recurrence(&algo);
    let mut rows = Vec::new();
    for &n in sizes {
        let solver = AdvancedSolver::new(&MachineParams::from_config(&cfg), &rec, n as u64)
            .expect("valid size");
        let opt = solver.optimize();
        let levels = rec.num_levels(n as u64);
        let y_pred = opt.transfer_level;
        // Grid around the prediction.
        let y_lo = (y_pred.round() as i64 - 2).max(1) as u32;
        let y_hi = (y_pred.round() as u32 + 2).min(levels.max(1));
        let ys: Vec<u32> = (y_lo..=y_hi).collect();
        let alphas: Vec<f64> = (1..=10).map(|k| k as f64 * 0.05).collect();
        let found = grid_search_sim(&algo, &cfg, &alphas, &ys, || uniform_input(n, 42))
            .expect("grid search succeeds");
        rows.push(vec![
            n.to_string(),
            f(found.alpha),
            f(opt.alpha),
            found.transfer_level.to_string(),
            f(y_pred),
        ]);
    }
    Csv {
        name: "fig10",
        header: vec![
            "n",
            "alpha_obtained",
            "alpha_predicted",
            "y_obtained",
            "y_predicted",
        ],
        rows,
    }
}

/// Ablation: the §6.3 coalescing optimization on vs off (GPU-only and
/// advanced hybrid runs on HPU1).
pub fn ablation_coalescing(n: usize) -> Csv {
    let cfg = MachineConfig::hpu1_sim();
    let rec = <MergeSort as BfAlgorithm<u32>>::recurrence(&MergeSort::new());
    let strategy = auto_advanced(&cfg, &rec, n as u64).expect("valid size");
    let mut rows = Vec::new();
    for (label, algo) in [
        ("coalesced", MergeSort::new()),
        ("generic", MergeSort::generic()),
    ] {
        for (sname, strat) in [
            ("gpu_only", Strategy::GpuOnly),
            ("advanced", strategy.clone()),
        ] {
            let mut data = uniform_input(n, 42);
            let mut hpu = SimHpu::new(cfg.clone());
            let rep = run_sim(&algo, &mut data, &mut hpu, &strat).expect("run succeeds");
            rows.push(vec![
                label.to_string(),
                sname.to_string(),
                f(rep.virtual_time),
                rep.coalesced.to_string(),
                rep.uncoalesced.to_string(),
            ]);
        }
    }
    Csv {
        name: "ablation_coalescing",
        header: vec![
            "gpu_path",
            "strategy",
            "virtual_time",
            "coalesced",
            "uncoalesced",
        ],
        rows,
    }
}

/// Ablation: basic vs advanced schedule (plus the pure strategies) on both
/// platforms.
pub fn ablation_schedule(n: usize) -> Csv {
    let rec = <MergeSort as BfAlgorithm<u32>>::recurrence(&MergeSort::new());
    let mut rows = Vec::new();
    for spec in platforms::all() {
        let cfg = spec.config();
        let advanced = auto_advanced(&cfg, &rec, n as u64).expect("valid size");
        let base = run_once(&cfg, n, &Strategy::Sequential, 42).virtual_time;
        for (label, strat) in [
            ("sequential", Strategy::Sequential),
            ("cpu_only", Strategy::CpuOnly),
            ("gpu_only", Strategy::GpuOnly),
            ("basic", Strategy::Basic { crossover: None }),
            ("advanced", advanced),
        ] {
            let rep = run_once(&cfg, n, &strat, 42);
            rows.push(vec![
                spec.name.to_string(),
                label.to_string(),
                f(rep.virtual_time),
                f(base / rep.virtual_time),
                rep.transfers.to_string(),
            ]);
        }
    }
    Csv {
        name: "ablation_schedule",
        header: vec![
            "platform",
            "strategy",
            "virtual_time",
            "speedup_vs_1core",
            "transfers",
        ],
        rows,
    }
}

/// Extension beyond the paper's mergesort-only evaluation: the same
/// framework and model-tuned schedules applied to other D&C workloads
/// (sum, scan, max-subarray) on HPU1.
pub fn extension_workloads(n: usize) -> Csv {
    use hpu_algos::max_subarray::{to_segments, MaxSubarray};
    use hpu_algos::scan::DcScan;
    use hpu_algos::sum::DcSum;

    let cfg = MachineConfig::hpu1_sim();
    let mut rows = Vec::new();

    fn measure<T: hpu_core::Element, A: BfAlgorithm<T>>(
        cfg: &MachineConfig,
        algo: &A,
        make: impl Fn() -> Vec<T>,
        n: usize,
        rows: &mut Vec<Vec<String>>,
    ) {
        let rec = algo.recurrence();
        let strategy = hpu_core::tune::auto_strategy(cfg, &rec, n as u64);
        let mut base_data = make();
        let mut hpu = SimHpu::new(cfg.clone());
        let base = run_sim(algo, &mut base_data, &mut hpu, &Strategy::Sequential)
            .expect("baseline run succeeds")
            .virtual_time;
        let mut data = make();
        let mut hpu = SimHpu::new(cfg.clone());
        let rep = run_sim(algo, &mut data, &mut hpu, &strategy).expect("tuned run succeeds");
        // Comma-free strategy description (the cell lives in a CSV).
        let label = match rep.resolved {
            Strategy::Advanced {
                alpha,
                transfer_level,
            } => format!("advanced(alpha={alpha:.3}; y={transfer_level})"),
            ref other => format!("{other:?}"),
        };
        rows.push(vec![
            algo.name().to_string(),
            n.to_string(),
            label,
            f(base / rep.virtual_time),
            rep.transfers.to_string(),
        ]);
    }

    measure(
        &cfg,
        &MergeSort::new(),
        || uniform_input(n, 42),
        n,
        &mut rows,
    );
    measure(
        &cfg,
        &DcSum,
        || (0..n as u64).collect::<Vec<u64>>(),
        n,
        &mut rows,
    );
    measure(
        &cfg,
        &DcScan,
        || (0..n as u64).map(|i| i % 97).collect::<Vec<u64>>(),
        n,
        &mut rows,
    );
    measure(
        &cfg,
        &MaxSubarray,
        || {
            to_segments(
                &(0..n as i64)
                    .map(|i| ((i * 37) % 23) - 11)
                    .collect::<Vec<i64>>(),
            )
        },
        n,
        &mut rows,
    );
    Csv {
        name: "extension_workloads",
        header: vec![
            "algorithm",
            "n",
            "strategy",
            "speedup_vs_1core",
            "transfers",
        ],
        rows,
    }
}

/// The artifacts of a traced run: one Chrome-trace process per executor
/// plus a per-level metrics/drift table covering all of them.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// Chrome trace with one process per strategy (five simulated plus the
    /// native executor), ready for `chrome://tracing` / Perfetto.
    pub chrome: hpu_obs::ChromeTrace,
    /// Per-level metrics and model-vs-simulation drift, one row per
    /// (strategy, level).
    pub levels: Csv,
}

/// Runs mergesort at size `n` under every strategy (simulated and native)
/// with structured tracing and returns the combined artifacts.
pub fn trace_bundle(n: usize) -> TraceBundle {
    use std::collections::BTreeMap;

    let cfg = MachineConfig::hpu1_sim();
    let algo = MergeSort::new();
    let rec = <MergeSort as BfAlgorithm<u32>>::recurrence(&algo);
    let advanced = auto_advanced(&cfg, &rec, n as u64).expect("valid size");
    let mut chrome = hpu_obs::ChromeTrace::new();
    let mut rows = Vec::new();

    for (label, strat) in [
        ("sequential", Strategy::Sequential),
        ("cpu_only", Strategy::CpuOnly),
        ("gpu_only", Strategy::GpuOnly),
        ("basic", Strategy::Basic { crossover: None }),
        ("advanced", advanced),
    ] {
        let mut data = uniform_input(n, 42);
        let mut hpu = SimHpu::new(cfg.clone());
        let rep = run_sim(&algo, &mut data, &mut hpu, &strat).expect("traced run succeeds");
        chrome.add_process(label, hpu.timeline().trace_events());
        let drift: BTreeMap<u32, _> = rep.drift.iter().map(|d| (d.level, d)).collect();
        for l in &rep.levels {
            let (pred, err) = match drift.get(&l.level) {
                Some(d) => (f(d.predicted), f(d.rel_err)),
                None => (String::new(), String::new()),
            };
            rows.push(level_row(label, l, pred, err));
        }
    }

    // The native executor: same algorithm on real threads, wall-clock µs.
    let pool = hpu_core::LevelPool::new(cfg.cpu.cores);
    let mut data = uniform_input(n, 42);
    let rep = hpu_core::run_native_report(&algo, &mut data, &pool).expect("native run succeeds");
    chrome.add_process("native", rep.trace);
    for l in &rep.levels {
        rows.push(level_row("native", l, String::new(), String::new()));
    }

    TraceBundle {
        chrome,
        levels: Csv {
            name: "levels",
            header: vec![
                "strategy",
                "level",
                "chunk",
                "tasks",
                "ops",
                "mem",
                "coalesced",
                "uncoalesced",
                "words",
                "cpu_time",
                "gpu_time",
                "bus_time",
                "time",
                "predicted",
                "rel_err",
                "segment",
            ],
            rows,
        },
    }
}

fn spec_label(spec: &hpu_model::ScheduleSpec) -> String {
    use hpu_model::ScheduleSpec;
    match spec {
        ScheduleSpec::Sequential => "sequential".into(),
        ScheduleSpec::CpuParallel => "cpu_parallel".into(),
        ScheduleSpec::GpuOnly => "gpu_only".into(),
        ScheduleSpec::Basic { crossover: Some(c) } => format!("basic(crossover={c})"),
        ScheduleSpec::Basic { crossover: None } => "basic(crossover=auto)".into(),
        ScheduleSpec::Advanced {
            alpha,
            transfer_level,
        } => format!("advanced(alpha={alpha:.4}; y={transfer_level})"),
        ScheduleSpec::AdvancedAuto => "advanced(auto)".into(),
    }
}

fn placement_label(placement: &hpu_model::Placement) -> String {
    use hpu_model::Placement;
    match placement {
        Placement::Cpu { cores } => format!("cpu(cores={cores})"),
        Placement::Gpu => "gpu".to_string(),
        Placement::Split {
            alpha,
            cpu_tasks,
            tasks,
        } => format!("split(alpha={alpha:.4}; cpu_tasks={cpu_tasks}; tasks={tasks})"),
    }
}

/// One compilation an executable experiment performs:
/// `(platform, algorithm, recurrence, machine, schedule)`.
type PlanCase = (
    &'static str,
    &'static str,
    Recurrence,
    MachineConfig,
    hpu_model::ScheduleSpec,
);

/// The compilations behind an executable experiment, or `None` for
/// model-only and estimation experiments (the tables and Figures 3–6) —
/// they execute no plans.
fn plan_cases(experiment: &str) -> Option<Vec<PlanCase>> {
    use hpu_model::ScheduleSpec;

    let rec = <MergeSort as BfAlgorithm<u32>>::recurrence(&MergeSort::new());
    let hpu1 = MachineConfig::hpu1_sim();
    let mut cases: Vec<PlanCase> = Vec::new();
    let mut push = |platform, algo, r: &Recurrence, cfg: &MachineConfig, spec: ScheduleSpec| {
        cases.push((platform, algo, r.clone(), cfg.clone(), spec));
    };
    match experiment {
        "fig7" | "fig10" => {
            for spec in [ScheduleSpec::Sequential, ScheduleSpec::AdvancedAuto] {
                push("HPU1", "mergesort", &rec, &hpu1, spec);
            }
        }
        "fig8" | "ablation-schedule" => {
            for p in platforms::all() {
                let cfg = p.config();
                for spec in [
                    ScheduleSpec::Sequential,
                    ScheduleSpec::CpuParallel,
                    ScheduleSpec::GpuOnly,
                    ScheduleSpec::Basic { crossover: None },
                    ScheduleSpec::AdvancedAuto,
                ] {
                    push(p.name, "mergesort", &rec, &cfg, spec);
                }
            }
        }
        "fig9" => {
            for spec in [ScheduleSpec::Sequential, ScheduleSpec::GpuOnly] {
                push("HPU1", "mergesort", &rec, &hpu1, spec);
            }
        }
        "ablation-coalescing" => {
            for spec in [ScheduleSpec::GpuOnly, ScheduleSpec::AdvancedAuto] {
                push("HPU1", "mergesort", &rec, &hpu1, spec);
            }
        }
        "extension-workloads" => {
            use hpu_algos::max_subarray::{MaxSubarray, Segment};
            use hpu_algos::scan::DcScan;
            use hpu_algos::sum::DcSum;
            let recs = [
                ("mergesort", rec.clone()),
                ("sum", <DcSum as BfAlgorithm<u64>>::recurrence(&DcSum)),
                ("scan", <DcScan as BfAlgorithm<u64>>::recurrence(&DcScan)),
                (
                    "max_subarray",
                    <MaxSubarray as BfAlgorithm<Segment>>::recurrence(&MaxSubarray),
                ),
            ];
            for (name, r) in &recs {
                for spec in [ScheduleSpec::Sequential, ScheduleSpec::AdvancedAuto] {
                    push("HPU1", name, r, &hpu1, spec);
                }
            }
        }
        _ => return None,
    }
    Some(cases)
}

/// The compiled execution plans behind an executable experiment, one row
/// per plan segment: which level band runs where and what the transfer
/// edges move. Returns `None` for model-only and estimation experiments
/// (the tables and Figures 3–6) — they execute no plans.
pub fn plan_csv(experiment: &str, n: usize) -> Option<Csv> {
    use hpu_model::{compile, Direction};

    let cases = plan_cases(experiment)?;
    let mut rows = Vec::new();
    let n64 = n as u64;
    for (platform, algo, rec, cfg, spec) in &cases {
        let params = MachineParams::from_config(cfg);
        let levels = rec.num_levels(n64);
        let plan = compile(spec, &params, rec, n64, levels).expect("experiment schedules compile");
        for (i, seg) in plan.segments.iter().enumerate() {
            let words = |dir: Direction| -> u64 {
                seg.transfers
                    .iter()
                    .filter(|t| t.direction == dir)
                    .map(|t| t.words)
                    .sum()
            };
            rows.push(vec![
                platform.to_string(),
                algo.to_string(),
                spec_label(spec),
                spec_label(&plan.resolved),
                n64.to_string(),
                i.to_string(),
                seg.first_level.to_string(),
                seg.last_level.to_string(),
                placement_label(&seg.placement),
                words(Direction::ToGpu).to_string(),
                words(Direction::ToCpu).to_string(),
            ]);
        }
    }
    Some(Csv {
        name: "plan",
        header: vec![
            "platform",
            "algorithm",
            "schedule",
            "resolved",
            "n",
            "segment",
            "first_level",
            "last_level",
            "placement",
            "upload_words",
            "download_words",
        ],
        rows,
    })
}

/// The pass-pipeline dump behind `repro plan --passes`: every compilation
/// of the experiment starts from the naive lowered plan and runs each
/// optimizer pass in pipeline order, dumping the IR before and after every
/// pass — one CSV row per plan segment, with the plan's predicted cost
/// repeated on each row so the per-pass cost monotonicity is visible.
/// Returns `None` for model-only experiments, like [`plan_csv`].
pub fn plan_passes_csv(experiment: &str, n: usize) -> Option<Csv> {
    use hpu_model::{compile_unoptimized, default_passes, plan_cost, Direction, LevelProfile};

    let cases = plan_cases(experiment)?;
    let mut rows = Vec::new();
    let n64 = n as u64;
    for (platform, algo, rec, cfg, spec) in &cases {
        let params = MachineParams::from_config(cfg);
        let levels = rec.num_levels(n64);
        let mut plan = compile_unoptimized(spec, &params, rec, n64, levels)
            .expect("experiment schedules compile");
        let profile = LevelProfile::new(&params, rec, n64);
        let label = spec_label(spec);
        let mut push_stage = |pass: &str, stage: &str, plan: &hpu_model::Plan, cost: f64| {
            for (i, seg) in plan.segments.iter().enumerate() {
                let words = |dir: Direction| -> u64 {
                    seg.transfers
                        .iter()
                        .filter(|t| t.direction == dir)
                        .map(|t| t.words)
                        .sum()
                };
                rows.push(vec![
                    platform.to_string(),
                    algo.to_string(),
                    label.clone(),
                    pass.to_string(),
                    stage.to_string(),
                    n64.to_string(),
                    i.to_string(),
                    seg.first_level.to_string(),
                    seg.last_level.to_string(),
                    placement_label(&seg.placement),
                    words(Direction::ToGpu).to_string(),
                    words(Direction::ToCpu).to_string(),
                    format!("{cost:.4}"),
                ]);
            }
        };
        for pass in default_passes() {
            let before = plan_cost(&profile, &plan)
                .expect("unoptimized plans price")
                .total;
            push_stage(pass.name(), "before", &plan, before);
            plan = pass.run(plan);
            let after = plan_cost(&profile, &plan)
                .expect("optimized plans price")
                .total;
            push_stage(pass.name(), "after", &plan, after);
        }
    }
    Some(Csv {
        name: "plan_passes",
        header: vec![
            "platform",
            "algorithm",
            "schedule",
            "pass",
            "stage",
            "n",
            "segment",
            "first_level",
            "last_level",
            "placement",
            "upload_words",
            "download_words",
            "predicted_cost",
        ],
        rows,
    })
}

fn level_row(
    strategy: &str,
    l: &hpu_obs::LevelMetrics,
    predicted: String,
    rel_err: String,
) -> Vec<String> {
    vec![
        strategy.to_string(),
        l.level.to_string(),
        l.chunk.to_string(),
        l.tasks.to_string(),
        l.ops.to_string(),
        l.mem.to_string(),
        l.coalesced.to_string(),
        l.uncoalesced.to_string(),
        l.words.to_string(),
        f(l.cpu_time),
        f(l.gpu_time),
        f(l.bus_time),
        f(l.time),
        predicted,
        rel_err,
        l.segment.map(|s| s.to_string()).unwrap_or_default(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_csv_covers_executable_experiments() {
        // fig9's GPU-only plan: one upload, one device band, one download.
        let c = plan_csv("fig9", 1 << 10).expect("fig9 executes plans");
        assert_eq!(c.header.len(), 11);
        let gpu_rows: Vec<_> = c.rows.iter().filter(|r| r[2] == "gpu_only").collect();
        assert_eq!(gpu_rows.len(), 1, "GPU-only is a single segment");
        assert_eq!(gpu_rows[0][8], "gpu");
        assert_eq!(gpu_rows[0][9], (1 << 10).to_string(), "uploads all of n");
        assert_eq!(gpu_rows[0][10], (1 << 10).to_string(), "downloads all of n");
        // fig8's auto-advanced plan resolves to a split + CPU cleanup band.
        let c = plan_csv("fig8", 1 << 16).expect("fig8 executes plans");
        let adv: Vec<_> = c
            .rows
            .iter()
            .filter(|r| r[0] == "HPU1" && r[2] == "advanced(auto)")
            .collect();
        assert_eq!(adv.len(), 2, "split band plus CPU cleanup band");
        assert!(adv[0][8].starts_with("split(alpha="));
        assert!(adv[1][8].starts_with("cpu(cores="));
        assert!(adv[0][3].starts_with("advanced(alpha="), "resolved (α, y)");
        // Model-only experiments have no plan.
        assert!(plan_csv("table2", 1 << 10).is_none());
        assert!(plan_csv("fig4", 1 << 10).is_none());
    }

    #[test]
    fn plan_passes_csv_dumps_every_pass_and_never_raises_cost() {
        let c = plan_passes_csv("fig9", 1 << 10).expect("fig9 executes plans");
        assert_eq!(c.header.len(), 13);
        for pass in ["dead-level-prune", "transfer-elision", "segment-fusion"] {
            for stage in ["before", "after"] {
                assert!(
                    c.rows.iter().any(|r| r[3] == pass && r[4] == stage),
                    "missing {pass}/{stage} rows"
                );
            }
        }
        // Per (schedule, pass): cost after ≤ cost before.
        for row in &c.rows {
            if row[4] != "after" {
                continue;
            }
            let before = c
                .rows
                .iter()
                .find(|r| r[2] == row[2] && r[3] == row[3] && r[4] == "before")
                .expect("before row exists");
            let b: f64 = before[12].parse().unwrap();
            let a: f64 = row[12].parse().unwrap();
            assert!(
                a <= b * (1.0 + 1e-9),
                "{} {} raised cost {b} -> {a}",
                row[2],
                row[3]
            );
        }
        // The GPU-only pipeline visibly shrinks: the naive lowering has one
        // segment per device level, the fused output a single band.
        let naive = c
            .rows
            .iter()
            .filter(|r| r[2] == "gpu_only" && r[3] == "dead-level-prune" && r[4] == "before")
            .count();
        let fused = c
            .rows
            .iter()
            .filter(|r| r[2] == "gpu_only" && r[3] == "segment-fusion" && r[4] == "after")
            .count();
        assert!(
            naive > fused,
            "fusion must merge segments ({naive} -> {fused})"
        );
        assert_eq!(fused, 1, "GPU-only fuses to a single device band");
        // Model-only experiments have no pass dump.
        assert!(plan_passes_csv("table2", 1 << 10).is_none());
    }

    #[test]
    fn extension_workloads_rows() {
        let c = extension_workloads(1 << 10);
        assert_eq!(c.rows.len(), 4);
        for row in &c.rows {
            let s: f64 = row[3].parse().unwrap();
            assert!(s > 0.0, "row {row:?}");
        }
    }

    #[test]
    fn csv_rendering() {
        let c = Csv {
            name: "t",
            header: vec!["a", "b"],
            rows: vec![vec!["1".into(), "2".into()]],
        };
        assert_eq!(c.render(), "a,b\n1,2\n");
    }

    #[test]
    fn table1_has_both_platforms() {
        let t = table1();
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0][0] == "HPU1");
    }

    #[test]
    fn fig3_curves_are_monotone_where_expected() {
        let c = fig3(1 << 20);
        // y(α) is non-increasing.
        let ys: Vec<f64> = c.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for w in ys.windows(2) {
            assert!(w[1] <= w[0] + 1e-6);
        }
    }

    #[test]
    fn fig7_small_run_produces_all_rows() {
        let c = fig7(1 << 10, &[0.2, 0.4], &[3, 4]);
        assert_eq!(c.rows.len(), 4);
        for row in &c.rows {
            // At n = 2^10 a hybrid on a γ⁻¹ = 160 device is far slower
            // than sequential (like the paper's small-n regime); only
            // sanity-check the value.
            let speedup: f64 = row[2].parse().unwrap();
            assert!(speedup > 0.001 && speedup < 30.0, "row {row:?}");
        }
    }

    #[test]
    fn fig9_speedup_grows_with_n() {
        let c = fig9(&[1 << 8, 1 << 12]);
        let s0: f64 = c.rows[0][4].parse().unwrap();
        let s1: f64 = c.rows[1][4].parse().unwrap();
        assert!(s1 > s0, "parallel GPU sort scales with n: {s0} -> {s1}");
    }

    #[test]
    fn ablation_schedule_small() {
        let c = ablation_schedule(1 << 10);
        assert_eq!(c.rows.len(), 10);
    }
}
