//! The fleet-scaling experiment: the same open-loop job stream offered
//! to 1, 2, ... N heterogeneous nodes, showing aggregate goodput scale
//! near-linearly with fleet size at saturating offered load.
//!
//! Offered load is expressed against a *single* reference node (the
//! paper's HPU1 analogue): `rate = 1` submits, on average, exactly as
//! fast as that one node completes a solo reference job, so `rate = 6`
//! drowns one node while four nodes still keep up. The arrival stream
//! is a pure function of `(jobs, rate, seed)` — node counts see the
//! identical stream, which is what makes the scaling column meaningful.

use hpu_fleet::{fleet_sim, FleetConfig, FleetJobRequest, NodeSpec};
use hpu_machine::MachineConfig;
use hpu_obs::FleetReport;
use hpu_serve::ServeConfig;

use crate::experiments::Csv;
use crate::serving::{exp_gap, job_mix, sim_reference_time};
use crate::workload::SplitMix64;

/// Queue capacity per node: small enough that saturating load actually
/// rejects on an undersized fleet instead of queueing forever.
const NODE_QUEUE: usize = 8;

/// An alternating HPU1/HPU2 pool of `count` nodes — the heterogeneous
/// fleet every scaling row runs on (1 node = HPU1 alone).
pub(crate) fn scaling_nodes(count: usize) -> Vec<NodeSpec> {
    (0..count)
        .map(|i| {
            let (tag, machine) = if i % 2 == 0 {
                ("hpu1", MachineConfig::hpu1_sim())
            } else {
                ("hpu2", MachineConfig::hpu2_sim())
            };
            let serve = ServeConfig {
                queue_capacity: NODE_QUEUE,
                ..ServeConfig::default()
            };
            NodeSpec::new(format!("n{i}-{tag}"), machine).with_serve(serve)
        })
        .collect()
}

/// The pinned arrival stream for one `(jobs, rate, seed)` point: the
/// serving `job_mix` with exponential gaps against the single-node solo
/// reference, each job tagged with one of 8 recurring datasets so the
/// router's affinity term has something to bite on.
pub(crate) fn scaling_stream(jobs: usize, rate: f64, seed: u64) -> Vec<FleetJobRequest> {
    let solo = sim_reference_time(&MachineConfig::hpu1_sim(), &ServeConfig::default(), seed);
    let mean_gap = solo / rate.max(1e-6);
    let mut rng = SplitMix64::new(seed ^ rate.to_bits());
    let mut t = 0.0;
    (0..jobs)
        .map(|i| {
            let (name, spec, workload) = job_mix(i, seed);
            t += exp_gap(&mut rng, mean_gap);
            FleetJobRequest::new(name, spec, t, workload).with_dataset((i % 8) as u64)
        })
        .collect()
}

/// One scaling point: the pinned stream served on `nodes`.
pub(crate) fn scaling_point(
    nodes: Vec<NodeSpec>,
    jobs: usize,
    rate: f64,
    seed: u64,
) -> FleetReport {
    let cfg = FleetConfig::new(nodes);
    fleet_sim(&cfg, scaling_stream(jobs, rate, seed)).report
}

fn report_row(nodes: usize, rate: f64, r: &FleetReport) -> Vec<String> {
    let f = |v: f64| format!("{v:.4}");
    vec![
        nodes.to_string(),
        format!("{rate}"),
        r.submitted.to_string(),
        r.completed.to_string(),
        r.rejected.to_string(),
        f(r.goodput),
        format!("{:.6}", r.throughput),
        f(r.mean_latency),
        f(r.p95_latency),
        f(r.routing_quality),
        r.steals.to_string(),
        r.migrations.to_string(),
    ]
}

/// Runs the scaling matrix: the identical `(jobs, rate, seed)` stream on
/// every node count, one CSV row per `(node_count, rate)`.
pub fn fleet_scaling(jobs: usize, node_counts: &[usize], rates: &[f64], seed: u64) -> Csv {
    let mut rows = Vec::new();
    for &count in node_counts {
        for &rate in rates {
            let report = scaling_point(scaling_nodes(count), jobs, rate, seed);
            rows.push(report_row(count, rate, &report));
        }
    }
    Csv {
        name: "fleet",
        header: vec![
            "nodes",
            "rate",
            "submitted",
            "completed",
            "rejected",
            "goodput",
            "throughput",
            "mean_latency",
            "p95_latency",
            "routing_quality",
            "steals",
            "migrations",
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ISSUE acceptance: at saturating offered load, the 4-node
    /// heterogeneous fleet's aggregate goodput is at least 3x the best
    /// single node's on the identical stream. A single node absorbs a
    /// surprising amount of load through concurrent CPU reservations, so
    /// "saturating" here means the arrival stream overruns one node's
    /// admission queue many times over while four nodes still keep up.
    #[test]
    fn four_nodes_triple_the_best_single_node_at_saturation() {
        let (jobs, rate, seed) = (64, 96.0, 42);
        let four = scaling_point(scaling_nodes(4), jobs, rate, seed);
        let hpu1 = scaling_point(vec![scaling_nodes(1).remove(0)], jobs, rate, seed);
        let hpu2 = scaling_point(vec![scaling_nodes(2).remove(1)], jobs, rate, seed);
        let best = hpu1.goodput.max(hpu2.goodput);
        assert!(
            four.goodput >= 3.0 * best,
            "4-node goodput {:.4} must be >= 3x best single {:.4} (hpu1 {:.4}, hpu2 {:.4})",
            four.goodput,
            best,
            hpu1.goodput,
            hpu2.goodput
        );
    }

    /// ISSUE acceptance: the cost/affinity router's mean completion time
    /// stays within 25% of the omniscient lowest-completion-time oracle
    /// on the pinned workload matrix (rates 2 and 6, 4 nodes, seed 42).
    /// Rate 1 is reported in the CSV but not gated: at near-idle load
    /// the router's data-affinity term pins repeat datasets to their
    /// resident node even when the other machine type is faster, while
    /// the oracle charges no staging at all, so the two models diverge.
    #[test]
    fn router_tracks_the_oracle_within_25_percent() {
        for rate in [2.0, 6.0] {
            let report = scaling_point(scaling_nodes(4), 32, rate, 42);
            assert!(
                report.routing_quality > 0.0,
                "rate {rate}: the oracle must produce a baseline"
            );
            assert!(
                report.routing_quality <= 1.25,
                "rate {rate}: router mean latency is {:.3}x the oracle's",
                report.routing_quality
            );
        }
    }

    /// Schema-growth guard: the `repro fleet` CSV header is pinned —
    /// the CI determinism job and downstream parsers key on these exact
    /// columns in this order (recovery counters live in the `repro
    /// recover` CSV and the FleetReport JSON, not here).
    #[test]
    fn fleet_csv_header_is_pinned() {
        let csv = fleet_scaling(1, &[1], &[1.0], 42);
        assert_eq!(
            csv.header,
            vec![
                "nodes",
                "rate",
                "submitted",
                "completed",
                "rejected",
                "goodput",
                "throughput",
                "mean_latency",
                "p95_latency",
                "routing_quality",
                "steals",
                "migrations",
            ]
        );
    }

    #[test]
    fn scaling_matrix_is_deterministic_and_shaped() {
        let a = fleet_scaling(16, &[1, 4], &[1.0, 6.0], 7);
        let b = fleet_scaling(16, &[1, 4], &[1.0, 6.0], 7);
        assert_eq!(a, b);
        assert_eq!(a.rows.len(), 4);
        assert_eq!(a.header.len(), a.rows[0].len());
        // Goodput at a fixed rate never shrinks when nodes are added.
        let goodput = |row: &Vec<String>| row[5].parse::<f64>().unwrap();
        assert!(goodput(&a.rows[2]) >= goodput(&a.rows[0]) - 1e-9);
        assert!(goodput(&a.rows[3]) >= goodput(&a.rows[1]) - 1e-9);
    }
}
