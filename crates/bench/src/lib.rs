//! # hpu-bench — experiment harness for every table and figure
//!
//! One function per table/figure of the paper's evaluation; the `repro`
//! binary prints their rows as CSV (and, with `--trace DIR`, writes Chrome
//! trace JSON plus per-level drift CSVs) and the `benches/` harnesses time
//! them with the in-repo [`timing`] runner. Paper sizes (`n = 2^24`) are
//! available behind the `--full` flag of `repro`; the defaults are scaled
//! down so the whole suite completes in minutes on one host core.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod chaos;
pub mod experiments;
pub mod fleet;
pub mod perf;
pub mod recover;
pub mod serving;
pub mod timing;
pub mod workload;

pub use batch::{batch_curve, batch_perf_metrics};
pub use chaos::chaos_sweep;
pub use experiments::*;
pub use fleet::fleet_scaling;
pub use perf::{
    collect_perf, compare, newest_snapshot, render_deltas, Delta, PerfSnapshot, PERF_SCHEMA,
};
pub use recover::recover_sweep;
pub use serving::{calibrate_sweep, serve_fleet, ServeBackend};
pub use workload::{uniform_input, SplitMix64};
