//! # hpu-bench — experiment harness for every table and figure
//!
//! One function per table/figure of the paper's evaluation; the `repro`
//! binary prints their rows as CSV and the Criterion benches time them.
//! Paper sizes (`n = 2^24`) are available behind the `--full` flag of
//! `repro`; the defaults are scaled down so the whole suite completes in
//! minutes on one host core.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod workload;

pub use experiments::*;
pub use workload::uniform_input;
