//! The continuous perf trajectory: a pinned workload matrix distilled
//! into one schema-versioned snapshot per run, plus a comparator that
//! diffs two snapshots and fails on configurable regression thresholds.
//!
//! [`collect_perf`] runs the matrix — simulated serving (admission
//! latency, plan-compile time, launch-overhead share, sampled straight
//! from the live [`MetricsRegistry`]), chaos goodput, the cross-job
//! batching saturation lift off the pinned batching sweep, fleet
//! scaling and routing quality off the pinned fleet matrix, goodput and
//! MTTR under the pinned node-crash scenario, native serving
//! throughput, and the plan interpreter's wall-clock overhead against a
//! direct breadth-first loop — and returns a [`PerfSnapshot`].
//! Snapshots serialize to `BENCH_<label>.json`; [`compare`] is
//! direction-aware (latency must not grow, throughput must not shrink)
//! so a committed baseline plus the comparator turns every CI run into a
//! point on the repo's perf trajectory. Each snapshot carries a `seq`
//! number so [`newest_snapshot`] can pick the latest committed baseline
//! out of a directory of `BENCH_*.json` files.
//!
//! Virtual-time metrics (admission latency, goodput, overhead shares)
//! are deterministic per seed; wall-clock metrics (native throughput,
//! interpreter overhead) are best-of-k and inherently noisy — gate them
//! with generous thresholds, or `smoke` mode which only checks shape.

use std::collections::BTreeMap;
use std::time::Instant;

use hpu_algos::mergesort::MergeSort;
use hpu_core::charge::NullCharge;
use hpu_core::exec::run_native_report;
use hpu_core::{BfAlgorithm, LevelPool};
use hpu_machine::{MachineConfig, SimMachineParams};
use hpu_obs::json::Json;
use hpu_obs::{MetricValue, MetricsRegistry};
use hpu_serve::{serve_native, serve_sim, JobRequest, NativeJobRequest, ServeConfig};

use crate::serving::{exp_gap, job_mix, native_reference_us, sim_reference_time};
use crate::workload::{uniform_input, SplitMix64};
use crate::ServeBackend;

/// Current snapshot schema version. Bump when a metric is renamed,
/// removed, or changes meaning; the comparator refuses to diff across
/// versions.
pub const PERF_SCHEMA: u32 = 1;

/// Direction table: `(metric, higher_is_better)`. Metrics absent here
/// default to lower-is-better.
const DIRECTIONS: &[(&str, bool)] = &[
    ("admission_latency_p50", false),
    ("admission_latency_p99", false),
    ("serve_latency_p50", false),
    ("serve_latency_p99", false),
    ("plan_compile_p50_us", false),
    ("plan_acquire_p99_us_10x", false),
    ("plan_acquire_p99_us_100x", false),
    ("plan_acquire_nocache_p99_us_10x", false),
    ("plan_acquire_nocache_p99_us_100x", false),
    ("plan_cache_hit_rate_100x", true),
    ("launch_overhead_share", false),
    ("interpret_overhead_ratio", false),
    ("native_throughput_jobs_per_s", true),
    ("serve_goodput", true),
    ("batch_saturation_lift", true),
    ("batch_amortized_launches", true),
    ("fleet_goodput_4n", true),
    ("fleet_scaling_x", true),
    ("fleet_routing_quality", false),
    ("recover_goodput_crash", true),
    ("recover_mttr", false),
];

/// Whether a growth in `metric` is an improvement (true) or a
/// regression (false).
pub fn higher_is_better(metric: &str) -> bool {
    DIRECTIONS
        .iter()
        .find(|(m, _)| *m == metric)
        .map(|(_, up)| *up)
        .unwrap_or(false)
}

/// One schema-versioned point on the perf trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSnapshot {
    /// Snapshot schema version ([`PERF_SCHEMA`] at creation).
    pub schema: u32,
    /// Free-form label (e.g. `"seed"`, a branch name, a commit).
    pub label: String,
    /// Whether the quick (CI-sized) matrix produced this snapshot.
    pub quick: bool,
    /// The workload seed.
    pub seed: u64,
    /// Monotone position of this snapshot in the committed trajectory;
    /// `--compare-newest` picks the baseline with the highest `seq`.
    /// Snapshots written before this field existed parse as `seq` 0.
    pub seq: u64,
    /// Metric name → value, sorted by name.
    pub metrics: BTreeMap<String, f64>,
}

impl PerfSnapshot {
    /// Serializes the snapshot as stable, pinned-field-order JSON.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":{},\"label\":{},\"quick\":{},\"seed\":{},\"seq\":{},\"metrics\":{{",
            self.schema,
            json_str(&self.label),
            self.quick,
            self.seed,
            self.seq
        );
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(k), fmt_f64(*v));
        }
        out.push_str("}}");
        out
    }

    /// Parses a snapshot back from [`PerfSnapshot::to_json`] output.
    pub fn parse(s: &str) -> Result<PerfSnapshot, String> {
        let v = Json::parse(s)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_f64)
            .ok_or("missing schema field")? as u32;
        let label = v
            .get("label")
            .and_then(Json::as_str)
            .ok_or("missing label field")?
            .to_string();
        let quick = v
            .get("quick")
            .and_then(Json::as_bool)
            .ok_or("missing quick field")?;
        let seed = v
            .get("seed")
            .and_then(Json::as_f64)
            .ok_or("missing seed field")? as u64;
        // Pre-seq snapshots (the committed seed baseline) read as seq 0.
        let seq = v.get("seq").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let Some(Json::Obj(fields)) = v.get("metrics") else {
            return Err("missing metrics object".to_string());
        };
        let mut metrics = BTreeMap::new();
        for (k, mv) in fields {
            let x = mv
                .as_f64()
                .ok_or_else(|| format!("metric {k} is not a number"))?;
            metrics.insert(k.clone(), x);
        }
        Ok(PerfSnapshot {
            schema,
            label,
            quick,
            seed,
            seq,
            metrics,
        })
    }
}

/// One metric's movement between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// New value (NaN when the metric vanished from the new snapshot).
    pub new: f64,
    /// Signed relative change `(new - old) / old` (0 when `old` is 0).
    pub rel_change: f64,
    /// Whether this movement trips the regression gate.
    pub regressed: bool,
}

/// Diffs `new` against the `old` baseline. A metric regresses when it
/// moves in its bad direction (see [`higher_is_better`]) by more than
/// `threshold` (relative), or when it vanished from `new`. With
/// `smoke` set, magnitude is ignored — only schema compatibility and
/// metric presence gate, which is what CI wants on shared noisy runners.
/// Snapshots of different schema versions refuse to diff.
pub fn compare(
    old: &PerfSnapshot,
    new: &PerfSnapshot,
    threshold: f64,
    smoke: bool,
) -> Result<Vec<Delta>, String> {
    if old.schema != new.schema {
        return Err(format!(
            "schema mismatch: baseline v{} vs new v{} — regenerate the baseline",
            old.schema, new.schema
        ));
    }
    let mut deltas = Vec::new();
    for (metric, &ov) in &old.metrics {
        let Some(&nv) = new.metrics.get(metric) else {
            deltas.push(Delta {
                metric: metric.clone(),
                old: ov,
                new: f64::NAN,
                rel_change: f64::NAN,
                regressed: true,
            });
            continue;
        };
        let rel = if ov != 0.0 { (nv - ov) / ov } else { 0.0 };
        let bad = if higher_is_better(metric) { -rel } else { rel };
        deltas.push(Delta {
            metric: metric.clone(),
            old: ov,
            new: nv,
            rel_change: rel,
            regressed: !smoke && bad > threshold,
        });
    }
    Ok(deltas)
}

/// Renders comparator output as a fixed-width table, one line per
/// metric, regressions marked.
pub fn render_deltas(deltas: &[Delta]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for d in deltas {
        let mark = if d.regressed { "REGRESSED" } else { "ok" };
        let _ = writeln!(
            out,
            "{:<32} {:>14.6} -> {:>14.6}  {:>+8.2}%  {}",
            d.metric,
            d.old,
            d.new,
            d.rel_change * 100.0,
            mark
        );
    }
    out
}

/// Runs the pinned workload matrix and returns the snapshot. `quick`
/// shrinks sizes to CI scale (a few seconds); the full matrix uses
/// larger native inputs for steadier wall-clock numbers.
pub fn collect_perf(label: &str, quick: bool, seed: u64) -> PerfSnapshot {
    let mut metrics = BTreeMap::new();
    sim_serve_metrics(quick, seed, &mut metrics);
    plan_acquire_metrics(quick, seed, &mut metrics);
    fleet_metrics(quick, seed, &mut metrics);
    recover_metrics(quick, seed, &mut metrics);
    metrics.insert("serve_goodput".to_string(), chaos_goodput(quick, seed));
    let (batch_lift, batch_amortized) = crate::batch::batch_perf_metrics(seed);
    metrics.insert("batch_saturation_lift".to_string(), batch_lift);
    metrics.insert("batch_amortized_launches".to_string(), batch_amortized);
    metrics.insert(
        "native_throughput_jobs_per_s".to_string(),
        native_throughput(quick, seed),
    );
    metrics.insert(
        "interpret_overhead_ratio".to_string(),
        interpret_overhead(quick, seed),
    );
    PerfSnapshot {
        schema: PERF_SCHEMA,
        label: label.to_string(),
        quick,
        seed,
        seq: 0,
        metrics,
    }
}

/// Picks the newest committed baseline under `dir`: among the
/// `BENCH_*.json` files that parse as snapshots, the one with the
/// highest `seq` (name-ordered on ties, for determinism). Files that
/// fail to parse are skipped, not fatal — the trajectory directory may
/// hold other benchmark artifacts.
pub fn newest_snapshot(
    dir: &std::path::Path,
) -> Result<(std::path::PathBuf, PerfSnapshot), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut best: Option<(std::path::PathBuf, PerfSnapshot)> = None;
    let mut names: Vec<std::path::PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|s| s.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    names.sort();
    for path in names {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(snap) = PerfSnapshot::parse(&text) else {
            continue;
        };
        if best.as_ref().is_none_or(|(_, b)| snap.seq > b.seq) {
            best = Some((path, snap));
        }
    }
    best.ok_or_else(|| format!("no BENCH_*.json snapshot found in {}", dir.display()))
}

/// Simulated serving at offered load 1 with the live registry attached:
/// admission latency, fleet latency, plan-compile time and the
/// launch-overhead share all read off the metrics snapshot. Virtual
/// time — deterministic per seed.
fn sim_serve_metrics(quick: bool, seed: u64, out: &mut BTreeMap<String, f64>) {
    let jobs = if quick { 12 } else { 32 };
    let cfg = MachineConfig::hpu1_sim();
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let serve = ServeConfig {
        metrics: Some(registry.clone()),
        ..ServeConfig::default()
    };
    let solo = sim_reference_time(&cfg, &ServeConfig::default(), seed);
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0;
    let fleet: Vec<JobRequest> = (0..jobs)
        .map(|i| {
            let (name, spec, workload) = job_mix(i, seed);
            t += exp_gap(&mut rng, solo);
            JobRequest::new(name, spec, t, workload)
        })
        .collect();
    let _ = serve_sim(&cfg, &serve, fleet);
    let snap = registry.snapshot();
    let hist = |name: &str| match snap.get(name) {
        Some(MetricValue::Histogram(h)) => Some(*h),
        _ => None,
    };
    if let Some(h) = hist("serve.admission_wait") {
        out.insert("admission_latency_p50".to_string(), h.p50);
        out.insert("admission_latency_p99".to_string(), h.p99);
    }
    if let Some(h) = hist("serve.latency") {
        out.insert("serve_latency_p50".to_string(), h.p50);
        out.insert("serve_latency_p99".to_string(), h.p99);
    }
    if let Some(h) = hist("model.compile_ns") {
        out.insert("plan_compile_p50_us".to_string(), h.p50 / 1e3);
    }
    if let (Some(lo), Some(seg)) = (
        hist("interpret.launch_overhead"),
        hist("interpret.segment_time"),
    ) {
        if seg.sum > 0.0 {
            out.insert("launch_overhead_share".to_string(), lo.sum / seg.sum);
        }
    }
}

/// Wall-clock plan-acquisition latency of the admission hot path replayed
/// at 10× and 100× the pinned fleet size, with and without the plan
/// cache. The stream cycles the pinned `job_mix` shapes, so the load
/// multiplier sets the duplicate rate: at 10× the tail still lands on
/// compulsory-miss compiles, at 100× nearly every acquisition is a cache
/// hit — the regime the cache exists for. Nocache replays the same stream
/// through a fresh `compile` + `plan_cost` per job (the pre-cache
/// admission path).
fn plan_acquire_metrics(quick: bool, seed: u64, out: &mut BTreeMap<String, f64>) {
    use hpu_model::{
        compile, plan_cost, LevelProfile, MachineParams, PlanCache, Recurrence, ScheduleSpec,
    };

    let base = if quick { 12 } else { 32 };
    let cfg = MachineConfig::hpu1_sim();
    let params = MachineParams::from_config(&cfg);
    let shapes: Vec<(ScheduleSpec, Recurrence, u64, u32)> = (0..base)
        .map(|i| {
            let (_, spec, workload) = job_mix(i, seed);
            let rec = workload.recurrence();
            let n = workload.input_len() as u64;
            let levels = workload
                .exec_levels()
                .expect("pinned fleet sizes are valid");
            (spec, rec, n, levels)
        })
        .collect();
    for (mult, tag) in [(10usize, "10x"), (100, "100x")] {
        let total = base * mult;
        let mut cache = PlanCache::default();
        let mut cached = Vec::with_capacity(total);
        for i in 0..total {
            let (spec, rec, n, levels) = &shapes[i % base];
            let t0 = Instant::now();
            cache
                .lookup_or_compile(spec, &params, rec, *n, *levels, None)
                .expect("pinned shapes compile");
            cached.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        let stats = cache.stats();
        let mut fresh = Vec::with_capacity(total);
        for i in 0..total {
            let (spec, rec, n, levels) = &shapes[i % base];
            let t0 = Instant::now();
            let plan = compile(spec, &params, rec, *n, *levels).expect("pinned shapes compile");
            let profile = LevelProfile::new(&params, rec, *n);
            let _ = plan_cost(&profile, &plan).expect("pinned shapes price");
            fresh.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        out.insert(format!("plan_acquire_p99_us_{tag}"), p99(&mut cached));
        out.insert(
            format!("plan_acquire_nocache_p99_us_{tag}"),
            p99(&mut fresh),
        );
        if mult == 100 {
            out.insert("plan_cache_hit_rate_100x".to_string(), stats.hit_rate());
        }
    }
}

/// Nearest-rank p99 of a sample set (sorts in place).
fn p99(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    let idx = ((v.len() as f64) * 0.99).ceil() as usize;
    v[idx.saturating_sub(1).min(v.len() - 1)]
}

/// Fleet metrics off the pinned scaling matrix: 4-node goodput at
/// saturating offered load, its ratio over the best single node on the
/// identical stream, and routing quality (router mean latency over the
/// omniscient oracle's) at a moderate rate. Virtual time —
/// deterministic per seed.
fn fleet_metrics(quick: bool, seed: u64, out: &mut BTreeMap<String, f64>) {
    use crate::fleet::{scaling_nodes, scaling_point};
    let jobs = if quick { 32 } else { 64 };
    let rate = 96.0;
    let four = scaling_point(scaling_nodes(4), jobs, rate, seed);
    let hpu1 = scaling_point(vec![scaling_nodes(1).remove(0)], jobs, rate, seed);
    let hpu2 = scaling_point(vec![scaling_nodes(2).remove(1)], jobs, rate, seed);
    let best = hpu1.goodput.max(hpu2.goodput).max(1e-9);
    out.insert("fleet_goodput_4n".to_string(), four.goodput);
    out.insert("fleet_scaling_x".to_string(), four.goodput / best);
    let moderate = scaling_point(scaling_nodes(4), jobs, 6.0, seed);
    out.insert(
        "fleet_routing_quality".to_string(),
        moderate.routing_quality,
    );
}

/// Recovery metrics off the pinned crash scenario: goodput under one
/// mid-run node crash with `EveryLevel` checkpointing, and the mean
/// time-to-recovery (fault fire → evicted jobs safely re-placed, in
/// fleet virtual time). Virtual time — deterministic per seed.
fn recover_metrics(quick: bool, seed: u64, out: &mut BTreeMap<String, f64>) {
    use hpu_serve::CheckpointPolicy;
    // 16 jobs even in quick mode: the shorter stream drains before the
    // detector fires, collapsing MTTR to 0 — a baseline the comparator
    // could never flag movement against.
    let jobs = if quick { 16 } else { 24 };
    let crash_seed = crate::recover::one_crash_seed(seed, 0.3);
    let report = crate::recover::recover_point(CheckpointPolicy::EveryLevel, 0.3, jobs, crash_seed);
    out.insert("recover_goodput_crash".to_string(), report.goodput);
    out.insert("recover_mttr".to_string(), report.recovery.mttr);
}

/// Chaos goodput at a pinned fault rate on the simulated backend.
/// Deterministic per seed.
fn chaos_goodput(quick: bool, seed: u64) -> f64 {
    let jobs = if quick { 8 } else { 16 };
    let csv = crate::chaos_sweep(jobs, &[0.2], ServeBackend::Sim, seed);
    csv.rows[0][11].parse().unwrap_or(0.0)
}

/// Completed jobs per wall-clock second on the native fleet.
fn native_throughput(quick: bool, seed: u64) -> f64 {
    let jobs = if quick { 6 } else { 16 };
    let serve = ServeConfig::default();
    let solo_us = native_reference_us(&serve, 2, seed);
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0;
    let fleet: Vec<NativeJobRequest> = (0..jobs)
        .map(|i| {
            let (name, _, workload) = job_mix(i, seed);
            t += exp_gap(&mut rng, solo_us);
            NativeJobRequest::new(name, t as u64, workload)
        })
        .collect();
    let out = serve_native(&serve, 2, 2, fleet);
    let makespan_s = (out.report.makespan / 1e6).max(1e-9);
    out.report.completed as f64 / makespan_s
}

/// Wall-clock ratio of the plan-interpreted native run over a direct
/// breadth-first loop on the same single-threaded pool: ≥ 1, and the
/// closer to 1 the cheaper the interpreter. Best of 3.
fn interpret_overhead(quick: bool, seed: u64) -> f64 {
    let n = if quick { 1 << 13 } else { 1 << 17 };
    let algo = MergeSort::new();
    let pool = LevelPool::new(1);
    let interpreted = best_of(3, || {
        let mut data = uniform_input(n, seed);
        run_native_report(&algo, &mut data, &pool).expect("native run succeeds");
    });
    let direct = best_of(3, || {
        let mut data = uniform_input(n, seed);
        direct_mergesort(&algo, &mut data);
    });
    interpreted / direct.max(1e-9)
}

/// Best-of-k wall time of `f`, in seconds.
fn best_of(k: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..k {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The interpreter-free baseline: the same breadth-first level loop the
/// native backend runs, inlined without plans, books or recorders.
fn direct_mergesort(algo: &impl BfAlgorithm<u32>, data: &mut [u32]) {
    let n = data.len();
    let base = algo.base_chunk();
    let a = algo.branching();
    for c in data.chunks_mut(base) {
        algo.base_case(c, &mut NullCharge);
    }
    let mut scratch = vec![0u32; n];
    let mut src_is_data = true;
    let mut chunk = base.saturating_mul(a);
    while chunk <= n {
        if src_is_data {
            for (s, d) in data.chunks(chunk).zip(scratch.chunks_mut(chunk)) {
                algo.combine(s, d, &mut NullCharge);
            }
        } else {
            for (s, d) in scratch.chunks(chunk).zip(data.chunks_mut(chunk)) {
                algo.combine(s, d, &mut NullCharge);
            }
        }
        src_is_data = !src_is_data;
        chunk = chunk.saturating_mul(a);
    }
    if !src_is_data {
        data.copy_from_slice(&scratch);
    }
}

/// Formats an f64 as JSON (non-finite values collapse to `0`).
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// JSON string escaping (quotes the result).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(metrics: &[(&str, f64)]) -> PerfSnapshot {
        PerfSnapshot {
            schema: PERF_SCHEMA,
            label: "test".to_string(),
            quick: true,
            seed: 42,
            seq: 0,
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let snap = snapshot(&[("admission_latency_p50", 123.456), ("serve_goodput", 0.875)]);
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":1,\"label\":\"test\""));
        let back = PerfSnapshot::parse(&json).expect("parses back");
        assert_eq!(back, snap);
    }

    /// A snapshot without a `seq` field (the pre-seq committed baseline
    /// format) parses as seq 0; a written seq survives the roundtrip.
    #[test]
    fn seq_defaults_to_zero_and_roundtrips() {
        let legacy = "{\"schema\":1,\"label\":\"seed\",\"quick\":true,\"seed\":42,\"metrics\":{}}";
        assert_eq!(PerfSnapshot::parse(legacy).unwrap().seq, 0);
        let mut snap = snapshot(&[("serve_goodput", 1.0)]);
        snap.seq = 7;
        assert_eq!(PerfSnapshot::parse(&snap.to_json()).unwrap().seq, 7);
    }

    /// `newest_snapshot` picks the highest-seq parseable BENCH_*.json
    /// and skips non-snapshot files instead of failing on them.
    #[test]
    fn newest_snapshot_picks_highest_seq() {
        let dir = std::env::temp_dir().join(format!("hpu-perf-newest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, seq) in [("BENCH_seed.json", 0), ("BENCH_plancache.json", 1)] {
            let mut snap = snapshot(&[("serve_goodput", 1.0)]);
            snap.seq = seq;
            std::fs::write(dir.join(name), snap.to_json()).unwrap();
        }
        std::fs::write(dir.join("BENCH_notes.json"), "not json").unwrap();
        let (path, snap) = newest_snapshot(&dir).expect("finds a baseline");
        assert_eq!(path.file_name().unwrap(), "BENCH_plancache.json");
        assert_eq!(snap.seq, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Acceptance: the comparator flags an injected synthetic regression.
    #[test]
    fn comparator_flags_injected_regression() {
        let old = snapshot(&[
            ("admission_latency_p50", 100.0),
            ("native_throughput_jobs_per_s", 50.0),
        ]);
        // Latency up 50%, throughput down 40%: both bad directions.
        let new = snapshot(&[
            ("admission_latency_p50", 150.0),
            ("native_throughput_jobs_per_s", 30.0),
        ]);
        let deltas = compare(&old, &new, 0.10, false).unwrap();
        assert!(deltas.iter().all(|d| d.regressed), "{deltas:?}");
        // The reverse movement is an improvement, not a regression.
        let deltas = compare(&new, &old, 0.10, false).unwrap();
        assert!(deltas.iter().all(|d| !d.regressed), "{deltas:?}");
    }

    #[test]
    fn small_moves_within_threshold_pass() {
        let old = snapshot(&[("serve_latency_p99", 100.0)]);
        let new = snapshot(&[("serve_latency_p99", 104.0)]);
        let deltas = compare(&old, &new, 0.05, false).unwrap();
        assert!(!deltas[0].regressed);
    }

    #[test]
    fn missing_metric_regresses_even_in_smoke_mode() {
        let old = snapshot(&[("serve_goodput", 1.0)]);
        let new = snapshot(&[]);
        let deltas = compare(&old, &new, 0.1, true).unwrap();
        assert!(deltas[0].regressed);
        assert!(deltas[0].new.is_nan());
    }

    #[test]
    fn smoke_mode_ignores_magnitude() {
        let old = snapshot(&[("serve_latency_p99", 1.0)]);
        let new = snapshot(&[("serve_latency_p99", 1000.0)]);
        let deltas = compare(&old, &new, 0.01, true).unwrap();
        assert!(!deltas[0].regressed);
    }

    #[test]
    fn schema_mismatch_refuses_to_diff() {
        let old = snapshot(&[("serve_goodput", 1.0)]);
        let mut new = old.clone();
        new.schema = PERF_SCHEMA + 1;
        assert!(compare(&old, &new, 0.1, false).is_err());
    }

    /// The quick matrix produces every pinned metric, with sane values.
    #[test]
    fn quick_matrix_covers_every_metric() {
        let snap = collect_perf("test", true, 42);
        assert_eq!(snap.schema, PERF_SCHEMA);
        for (metric, _) in DIRECTIONS {
            assert!(
                snap.metrics.contains_key(*metric),
                "matrix must emit {metric}; got {:?}",
                snap.metrics.keys().collect::<Vec<_>>()
            );
        }
        assert!(snap.metrics["admission_latency_p50"] >= 0.0);
        assert!(snap.metrics["admission_latency_p99"] >= snap.metrics["admission_latency_p50"]);
        assert!(snap.metrics["serve_goodput"] > 0.0 && snap.metrics["serve_goodput"] <= 1.0);
        assert!(snap.metrics["batch_saturation_lift"] > 1.0);
        assert!(snap.metrics["batch_amortized_launches"] > 0.0);
        assert!(snap.metrics["native_throughput_jobs_per_s"] > 0.0);
        assert!(snap.metrics["plan_compile_p50_us"] > 0.0);
        assert!(snap.metrics["interpret_overhead_ratio"] > 0.0);
        assert!(snap.metrics["recover_goodput_crash"] > 0.0);
        let mttr = snap.metrics["recover_mttr"];
        assert!(mttr.is_finite() && mttr >= 0.0);
    }

    /// Acceptance: at the highest pinned offered-load point (100× the
    /// fleet) the cached admission path's p99 beats per-job fresh
    /// compiles, with a hot cache behind it.
    #[test]
    fn cached_plan_acquisition_beats_fresh_compiles_at_high_load() {
        let mut m = BTreeMap::new();
        plan_acquire_metrics(true, 42, &mut m);
        let cached = m["plan_acquire_p99_us_100x"];
        let fresh = m["plan_acquire_nocache_p99_us_100x"];
        assert!(
            cached < fresh,
            "cached p99 {cached}µs must beat fresh-compile p99 {fresh}µs"
        );
        assert!(
            m["plan_cache_hit_rate_100x"] > 0.9,
            "12 shapes over 1200 admissions must be hit-dominated: {}",
            m["plan_cache_hit_rate_100x"]
        );
        // The 10× point exists too (its p99 is compulsory-miss-dominated,
        // so only presence and sanity are asserted).
        assert!(m["plan_acquire_p99_us_10x"] > 0.0);
        assert!(m["plan_acquire_nocache_p99_us_10x"] > 0.0);
    }

    #[test]
    fn p99_is_nearest_rank() {
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(p99(&mut v), 99.0);
        let mut v = vec![5.0, 1.0, 3.0];
        assert_eq!(p99(&mut v), 5.0);
        let mut v = vec![7.0];
        assert_eq!(p99(&mut v), 7.0);
    }

    /// Virtual-time metrics are bit-for-bit deterministic per seed
    /// (plan-compile time is wall-clock and exempt).
    #[test]
    fn sim_metrics_are_deterministic() {
        let mut a = BTreeMap::new();
        let mut b = BTreeMap::new();
        sim_serve_metrics(true, 42, &mut a);
        sim_serve_metrics(true, 42, &mut b);
        a.remove("plan_compile_p50_us");
        b.remove("plan_compile_p50_us");
        assert_eq!(a, b);
        assert_eq!(chaos_goodput(true, 42), chaos_goodput(true, 42));
    }

    #[test]
    fn direct_mergesort_actually_sorts() {
        let algo = MergeSort::new();
        let mut data = uniform_input(1 << 10, 7);
        direct_mergesort(&algo, &mut data);
        assert!(data.windows(2).all(|w| w[0] <= w[1]));
    }
}
