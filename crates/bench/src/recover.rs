//! The crash-recovery experiment: a 4-node fleet served through one
//! mid-run node crash, swept over a grid of crash rates × checkpoint
//! policies. One CSV row per `(policy, crash_rate)` pair reports
//! goodput, MTTR and how much completed level-work the level-boundary
//! checkpoints saved from re-execution.
//!
//! The node-fault model is hash-coupled (see
//! [`hpu_machine::NodeFaultPlan`]): a node crashes iff its seeded
//! per-node draw falls below the rate, so the crash set at a low rate
//! is a subset of the crash set at any higher rate under the same
//! seed. The fire → detect → restart timeline runs on global event
//! ordinals, so every row is virtual-time deterministic.
//!
//! The workload is pinned to multi-segment `Basic` plans (a level
//! boundary at the CPU→GPU crossover) with staggered arrivals, so
//! `EveryLevel` checkpointing has consistent cuts to capture mid-job
//! and the crash window reliably lands on in-flight work.

use hpu_algos::MergeSort;
use hpu_fleet::{fleet_sim, FleetConfig, FleetJobRequest, NodeSpec, StealConfig};
use hpu_machine::{MachineConfig, NodeFaultPlan};
use hpu_model::ScheduleSpec;
use hpu_obs::FleetReport;
use hpu_serve::{AlgoJob, CheckpointPolicy, ServeConfig};

use crate::experiments::Csv;

/// Fleet size every recovery row runs on.
const NODES: usize = 4;

/// Event-ordinal window the crash fires in — pinned so the fault lands
/// while the staggered stream still has in-flight multi-segment jobs.
const CRASH_AT: u64 = 60;

/// A homogeneous 4-node HPU1 fleet, every node checkpointing under
/// `policy`, with load stealing off so the only cross-node movement a
/// row observes is crash recovery itself.
pub(crate) fn recover_fleet(policy: CheckpointPolicy, plan: Option<NodeFaultPlan>) -> FleetConfig {
    let serve = ServeConfig {
        queue_capacity: 32,
        cpu_fallback: false,
        checkpoint: policy,
        ..ServeConfig::default()
    };
    let mut cfg = FleetConfig::new(
        (0..NODES)
            .map(|i| {
                NodeSpec::new(format!("n{i}"), MachineConfig::hpu1_sim()).with_serve(serve.clone())
            })
            .collect(),
    );
    cfg.steal = StealConfig {
        enabled: false,
        min_imbalance: 2,
    };
    if let Some(plan) = plan {
        cfg = cfg.with_node_faults(plan);
    }
    cfg
}

/// The pinned arrival stream: `jobs` multi-segment mergesorts staggered
/// so the router spreads them over all four nodes.
pub(crate) fn recover_stream(jobs: usize) -> Vec<FleetJobRequest> {
    (0..jobs)
        .map(|i| {
            let data: Vec<u64> = (0..1u64 << 12).rev().collect();
            FleetJobRequest::new(
                format!("j{i}"),
                ScheduleSpec::Basic { crossover: Some(4) },
                i as f64 * 50.0,
                AlgoJob::boxed(MergeSort::new(), data),
            )
        })
        .collect()
}

/// Smallest seed at or above `seed` whose fault plan crashes exactly
/// one of the 4 nodes at `rate` — the pinned single-crash scenario,
/// found by replaying the same subset-stable draws the fleet will.
pub(crate) fn one_crash_seed(seed: u64, rate: f64) -> u64 {
    (seed..seed + 10_000)
        .find(|&s| {
            let plan = NodeFaultPlan::new(s).with_crash_rate(rate);
            (0..NODES as u64)
                .filter(|&i| plan.fault_for(i).is_some())
                .count()
                == 1
        })
        .expect("some seed crashes exactly one node")
}

/// One sweep point: the pinned stream on the pinned fleet under
/// `(policy, crash_rate)`.
pub(crate) fn recover_point(
    policy: CheckpointPolicy,
    rate: f64,
    jobs: usize,
    seed: u64,
) -> FleetReport {
    let plan = NodeFaultPlan::new(seed)
        .with_crash_rate(rate)
        .with_crash_window(CRASH_AT, CRASH_AT);
    fleet_sim(&recover_fleet(policy, Some(plan)), recover_stream(jobs)).report
}

fn policy_name(policy: CheckpointPolicy) -> String {
    match policy {
        CheckpointPolicy::Off => "off".to_string(),
        CheckpointPolicy::EveryLevel => "everylevel".to_string(),
        CheckpointPolicy::EveryKLevels(k) => format!("every{k}"),
    }
}

fn recover_row(policy: CheckpointPolicy, rate: f64, r: &FleetReport) -> Vec<String> {
    let c = &r.recovery;
    vec![
        policy_name(policy),
        format!("{rate}"),
        r.submitted.to_string(),
        r.completed.to_string(),
        format!("{:.4}", r.goodput),
        format!("{:.4}", c.mttr),
        c.crashes.to_string(),
        c.node_downs.to_string(),
        c.jobs_recovered.to_string(),
        c.jobs_restarted.to_string(),
        c.levels_saved.to_string(),
        c.checkpoint_bytes.to_string(),
    ]
}

/// Runs the recovery benchmark: the pinned stream under every
/// `(checkpoint policy, crash rate)` pair, one CSV row each. With the
/// same seed the rows are byte-identical across runs, and at rate 0
/// both policies complete everything with all-zero recovery counters.
pub fn recover_sweep(jobs: usize, crash_rates: &[f64], seed: u64) -> Csv {
    let mut rows = Vec::new();
    for &policy in &[CheckpointPolicy::Off, CheckpointPolicy::EveryLevel] {
        for &rate in crash_rates {
            let report = recover_point(policy, rate, jobs, seed);
            rows.push(recover_row(policy, rate, &report));
        }
    }
    Csv {
        name: "recover",
        header: vec![
            "policy",
            "crash_rate",
            "submitted",
            "completed",
            "goodput",
            "mttr",
            "crashes",
            "node_downs",
            "jobs_recovered",
            "jobs_restarted",
            "levels_saved",
            "checkpoint_bytes",
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ISSUE acceptance: at a crash rate that kills one node mid-run,
    /// `EveryLevel` checkpointing completes strictly more level-work
    /// without re-execution than restart-from-scratch — `levels_saved`
    /// is positive for the checkpointed row and zero for `off` — at
    /// fixed goodput (both rows complete the full stream).
    #[test]
    fn checkpointing_saves_levels_at_fixed_goodput() {
        let seed = one_crash_seed(42, 0.3);
        let csv = recover_sweep(16, &[0.3], seed);
        let row = |policy: &str| {
            csv.rows
                .iter()
                .find(|r| r[0] == policy)
                .unwrap_or_else(|| panic!("{policy} row present"))
        };
        let (off, ckpt) = (row("off"), row("everylevel"));
        for r in [off, ckpt] {
            assert_eq!(r[6], "1", "exactly one crash: {r:?}");
            assert_eq!(r[3], "16", "all jobs complete on healthy peers: {r:?}");
        }
        assert_eq!(off[4], ckpt[4], "the comparison is at fixed goodput");
        assert_eq!(off[10], "0", "off has no checkpoints to save levels with");
        let saved: u64 = ckpt[10].parse().expect("levels_saved parses");
        assert!(saved > 0, "everylevel must save levels: {ckpt:?}");
        let recovered: u64 = ckpt[8].parse().expect("jobs_recovered parses");
        assert!(recovered > 0, "some job resumes from its checkpoint");
    }

    /// Rate 0 injects nothing: both policy rows complete everything
    /// with all-zero recovery counters.
    #[test]
    fn rate_zero_rows_are_fault_free() {
        let csv = recover_sweep(8, &[0.0], 42);
        assert_eq!(csv.rows.len(), 2);
        for r in &csv.rows {
            assert_eq!(r[3], "8", "{r:?}");
            for col in 6..12 {
                assert_eq!(r[col], "0", "{r:?}");
            }
        }
    }

    #[test]
    fn recover_sweep_is_deterministic() {
        let seed = one_crash_seed(42, 0.3);
        let a = recover_sweep(12, &[0.0, 0.3], seed);
        let b = recover_sweep(12, &[0.0, 0.3], seed);
        assert_eq!(a, b);
        assert_eq!(a.rows.len(), 4);
        assert_eq!(a.header.len(), a.rows[0].len());
    }

    /// Schema-growth guard: the `repro recover` CSV header is pinned —
    /// downstream parsers key on these exact columns in this order.
    #[test]
    fn recover_csv_header_is_pinned() {
        let csv = recover_sweep(1, &[0.0], 42);
        assert_eq!(
            csv.header,
            vec![
                "policy",
                "crash_rate",
                "submitted",
                "completed",
                "goodput",
                "mttr",
                "crashes",
                "node_downs",
                "jobs_recovered",
                "jobs_restarted",
                "levels_saved",
                "checkpoint_bytes",
            ]
        );
    }
}
