//! The serving experiment: open-loop arrival of mixed D&C jobs on the
//! multi-job scheduler, on both the simulated and the native backend.
//!
//! The arrival rate is expressed as *offered load*: `rate = 1` submits
//! jobs, on average, exactly as fast as a solo reference job completes;
//! `rate = 0.5` underloads and `rate = 2` overloads the machine. Gaps are
//! exponentially distributed from a seeded [`SplitMix64`], so every run
//! is reproducible from `(jobs, rate, seed)` alone.

use hpu_algos::mergesort::MergeSort;
use hpu_algos::sum::DcSum;
use hpu_machine::{MachineConfig, SimMachineParams};
use hpu_model::{CalibratorConfig, MachineParams, ScheduleSpec};
use hpu_obs::{JobOutcome, JobRecord, ServeReport};
use hpu_serve::{
    serve_native, serve_sim, AlgoJob, JobRequest, NativeJobRequest, ServeConfig, Workload,
};

use crate::experiments::Csv;
use crate::workload::{uniform_input, SplitMix64};

/// Which serving backend(s) to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeBackend {
    /// Virtual time on the simulated machine.
    Sim,
    /// Wall clock on real threads.
    Native,
    /// Both, one CSV row group per backend.
    Both,
}

/// Exponentially distributed gap with the given mean.
pub(crate) fn exp_gap(rng: &mut SplitMix64, mean: f64) -> f64 {
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    -(1.0 - u).ln() * mean
}

/// The mixed fleet: mergesort and d&c-sum jobs over a spread of sizes and
/// schedules. `make(i)` is the workload for job `i`; sizes cycle through
/// `2^8..2^11` and schedules through basic-hybrid / GPU-only / CPU-parallel.
pub(crate) fn job_mix(i: usize, seed: u64) -> (String, ScheduleSpec, Box<dyn Workload>) {
    let n = 1usize << (8 + (i % 4));
    let spec = match i % 3 {
        0 => ScheduleSpec::Basic { crossover: Some(4) },
        1 => ScheduleSpec::GpuOnly,
        _ => ScheduleSpec::CpuParallel,
    };
    let job_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if i.is_multiple_of(2) {
        (
            format!("sort-{i}-n{n}"),
            spec,
            AlgoJob::boxed(MergeSort::new(), uniform_input(n, job_seed)),
        )
    } else {
        let mut rng = SplitMix64::new(job_seed);
        let data: Vec<u64> = (0..n).map(|_| rng.below(1 << 20)).collect();
        (format!("sum-{i}-n{n}"), spec, AlgoJob::boxed(DcSum, data))
    }
}

fn report_row(backend: &str, rate: f64, submitted: usize, r: &ServeReport) -> Vec<String> {
    let f = |v: f64| format!("{v:.4}");
    vec![
        backend.to_string(),
        format!("{rate}"),
        submitted.to_string(),
        r.completed.to_string(),
        r.rejected.to_string(),
        r.cancelled.to_string(),
        r.failed.to_string(),
        format!("{:.6}", r.throughput),
        f(r.p50_latency),
        f(r.p95_latency),
        f(r.p99_latency),
        f(r.max_latency),
        f(r.cpu_utilization),
        f(r.gpu_utilization),
        f(r.mean_abs_drift),
    ]
}

/// Solo virtual-time of a reference job, used to convert `rate` into a
/// mean inter-arrival gap for the simulated backend.
pub(crate) fn sim_reference_time(cfg: &MachineConfig, serve: &ServeConfig, seed: u64) -> f64 {
    let (name, spec, workload) = job_mix(0, seed);
    let out = serve_sim(cfg, serve, vec![JobRequest::new(name, spec, 0.0, workload)]);
    out.report.makespan.max(1.0)
}

/// Solo wall-time (µs) of a reference job on one native worker.
pub(crate) fn native_reference_us(serve: &ServeConfig, threads: usize, seed: u64) -> f64 {
    let (name, _, workload) = job_mix(0, seed);
    let out = serve_native(
        serve,
        1,
        threads,
        vec![NativeJobRequest::new(name, 0, workload)],
    );
    out.report.makespan.max(100.0)
}

/// Runs the serving benchmark: `jobs` submissions at each offered-load
/// `rate` on the selected backend(s); one CSV row per `(backend, rate)`.
pub fn serve_fleet(jobs: usize, rates: &[f64], backend: ServeBackend, seed: u64) -> Csv {
    let serve = ServeConfig::default();
    let mut rows = Vec::new();

    if matches!(backend, ServeBackend::Sim | ServeBackend::Both) {
        let cfg = MachineConfig::hpu1_sim();
        let solo = sim_reference_time(&cfg, &serve, seed);
        for &rate in rates {
            let mean_gap = solo / rate.max(1e-6);
            let mut rng = SplitMix64::new(seed ^ rate.to_bits());
            let mut t = 0.0;
            let fleet: Vec<JobRequest> = (0..jobs)
                .map(|i| {
                    let (name, spec, workload) = job_mix(i, seed);
                    t += exp_gap(&mut rng, mean_gap);
                    JobRequest::new(name, spec, t, workload)
                })
                .collect();
            let out = serve_sim(&cfg, &serve, fleet);
            rows.push(report_row("sim", rate, jobs, &out.report));
        }
    }

    if matches!(backend, ServeBackend::Native | ServeBackend::Both) {
        let (workers, threads) = (2, 2);
        let solo_us = native_reference_us(&serve, threads, seed);
        for &rate in rates {
            let mean_gap = solo_us / rate.max(1e-6);
            let mut rng = SplitMix64::new(seed ^ rate.to_bits());
            let mut t = 0.0;
            let fleet: Vec<NativeJobRequest> = (0..jobs)
                .map(|i| {
                    let (name, _, workload) = job_mix(i, seed);
                    t += exp_gap(&mut rng, mean_gap);
                    NativeJobRequest::new(name, t as u64, workload)
                })
                .collect();
            let out = serve_native(&serve, workers, threads, fleet);
            rows.push(report_row("native", rate, jobs, &out.report));
        }
    }

    Csv {
        name: "serve",
        header: vec![
            "backend",
            "rate",
            "submitted",
            "completed",
            "rejected",
            "cancelled",
            "failed",
            "throughput",
            "p50_latency",
            "p95_latency",
            "p99_latency",
            "max_latency",
            "cpu_util",
            "gpu_util",
            "mean_abs_drift",
        ],
        rows,
    }
}

/// Sort-only mix for the calibration sweep: sizes and schedules cycle as
/// in [`job_mix`], but the algorithm family is fixed so one correction
/// state fits the whole stream — mixing algorithms whose unmodeled
/// constants differ would thrash the shared work scale and measure model
/// mismatch, not the loop.
fn calibrate_mix(i: usize, seed: u64) -> (String, ScheduleSpec, Box<dyn Workload>) {
    let n = 1usize << (8 + (i % 4));
    let spec = match i % 3 {
        0 => ScheduleSpec::Basic { crossover: Some(4) },
        1 => ScheduleSpec::GpuOnly,
        _ => ScheduleSpec::CpuParallel,
    };
    let job_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (
        format!("sort-{i}-n{n}"),
        spec,
        AlgoJob::boxed(MergeSort::new(), uniform_input(n, job_seed)),
    )
}

/// The calibration sweep: an open-loop fleet served on a machine whose
/// `γ` the scheduler initially believes is `gamma_skew`× its true value,
/// with the closed calibration loop on. One CSV row per *completed* job
/// in completion order, so the `abs_drift` column read top to bottom is
/// the convergence curve of the recalibrated cost model.
pub fn calibrate_sweep(jobs: usize, gamma_skew: f64, seed: u64) -> Csv {
    let cfg = MachineConfig::hpu1_sim();
    let truth = MachineParams::from_config(&cfg);
    let assumed = MachineParams::new(truth.p, truth.g, (truth.gamma * gamma_skew).min(1.0))
        .expect("skewed gamma stays legal after clamping")
        .with_transfer_cost(truth.lambda, truth.delta);
    let serve = ServeConfig {
        assumed: Some(assumed),
        calibration: Some(CalibratorConfig::default()),
        cpu_fallback: false,
        ..Default::default()
    };
    let (ref_name, ref_spec, ref_workload) = calibrate_mix(0, seed);
    let solo = serve_sim(
        &cfg,
        &serve,
        vec![JobRequest::new(ref_name, ref_spec, 0.0, ref_workload)],
    )
    .report
    .makespan
    .max(1.0);
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0;
    let fleet: Vec<JobRequest> = (0..jobs)
        .map(|i| {
            let (name, spec, workload) = calibrate_mix(i, seed);
            t += exp_gap(&mut rng, solo);
            JobRequest::new(name, spec, t, workload)
        })
        .collect();
    let out = serve_sim(&cfg, &serve, fleet);
    let mut completed: Vec<&JobRecord> = out
        .report
        .jobs
        .iter()
        .filter(|r| r.outcome == JobOutcome::Completed)
        .collect();
    completed.sort_by(|a, b| a.end.total_cmp(&b.end).then(a.id.cmp(&b.id)));
    let rows = completed
        .iter()
        .enumerate()
        .map(|(seq, r)| {
            vec![
                seq.to_string(),
                r.id.to_string(),
                r.name.clone(),
                r.calibration_generation.to_string(),
                format!("{:.4}", r.predicted),
                format!("{:.4}", r.service),
                format!("{:.6}", r.drift().map_or(0.0, f64::abs)),
                out.replans.to_string(),
            ]
        })
        .collect();
    Csv {
        name: "calibrate",
        header: vec![
            "seq",
            "job",
            "name",
            "generation",
            "predicted",
            "service",
            "abs_drift",
            "replans",
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpu_obs::JobOutcome;

    fn rec(
        id: u64,
        outcome: JobOutcome,
        (arrival, start, end): (f64, f64, f64),
        predicted: f64,
        service: f64,
    ) -> JobRecord {
        JobRecord {
            id,
            name: format!("job-{id}"),
            outcome,
            arrival,
            start,
            end,
            predicted,
            service,
            fallback: false,
            retries: 0,
            degraded: false,
            calibration_generation: 0,
        }
    }

    /// Golden serialization of one serving CSV row: a hand-built
    /// [`ServeReport`] with exactly known percentiles, utilizations and
    /// drift renders to a pinned string — any column addition, reorder or
    /// format change must update this test.
    #[test]
    fn serve_csv_row_renders_golden() {
        // Latencies 2, 4, 8: the report's streaming histogram puts p50 in
        // the log-bucket holding 4 (rendering as 4.0436, within one bucket
        // width of exact) and clamps p95/p99 to the exact max 8. Drifts
        // 0.5, 0.5, 0.25 → mean 0.4167. Makespan 10, so the throughput is
        // 0.3 and busy times 6 / 2.5 become 0.6 / 0.25.
        let jobs = vec![
            rec(0, JobOutcome::Completed, (0.0, 0.5, 2.0), 1.0, 1.5),
            rec(1, JobOutcome::Completed, (1.0, 2.0, 5.0), 2.0, 3.0),
            rec(2, JobOutcome::Completed, (2.0, 5.0, 10.0), 4.0, 5.0),
            rec(3, JobOutcome::QueueFull, (3.0, 3.0, 3.0), 0.0, 0.0),
        ];
        let report = ServeReport::new(jobs, 6.0, 2.5);
        let csv = Csv {
            name: "serve",
            header: vec![
                "backend",
                "rate",
                "submitted",
                "completed",
                "rejected",
                "cancelled",
                "failed",
                "throughput",
                "p50_latency",
                "p95_latency",
                "p99_latency",
                "max_latency",
                "cpu_util",
                "gpu_util",
                "mean_abs_drift",
            ],
            rows: vec![report_row("sim", 0.5, 4, &report)],
        };
        assert_eq!(
            csv.render(),
            "backend,rate,submitted,completed,rejected,cancelled,failed,throughput,\
             p50_latency,p95_latency,p99_latency,max_latency,cpu_util,gpu_util,mean_abs_drift\n\
             sim,0.5,4,3,1,0,0,0.300000,4.0436,8.0000,8.0000,8.0000,0.6000,0.2500,0.4167\n"
        );
    }

    #[test]
    fn sim_rows_are_deterministic_per_seed() {
        let a = serve_fleet(8, &[0.5, 2.0], ServeBackend::Sim, 42);
        let b = serve_fleet(8, &[0.5, 2.0], ServeBackend::Sim, 42);
        assert_eq!(a, b);
        assert_eq!(a.rows.len(), 2);
        assert!(a.rows.iter().all(|r| r[0] == "sim"));
    }

    #[test]
    fn both_backends_emit_every_rate() {
        let csv = serve_fleet(4, &[0.5, 2.0], ServeBackend::Both, 7);
        assert_eq!(csv.rows.len(), 4);
        assert_eq!(csv.rows.iter().filter(|r| r[0] == "sim").count(), 2);
        assert_eq!(csv.rows.iter().filter(|r| r[0] == "native").count(), 2);
    }

    /// The ISSUE acceptance criterion: on a config whose γ is assumed 2×
    /// too fast, the mean |drift| over the last quartile of completed jobs
    /// is strictly below the first quartile's.
    #[test]
    fn calibrate_sweep_shrinks_drift_across_quartiles() {
        let csv = calibrate_sweep(24, 2.0, 42);
        let drifts: Vec<f64> = csv
            .rows
            .iter()
            .map(|r| r[6].parse().expect("abs_drift column parses"))
            .collect();
        assert!(drifts.len() >= 8, "most of the fleet should complete");
        let q = drifts.len() / 4;
        let first = drifts[..q].iter().sum::<f64>() / q as f64;
        let last = drifts[drifts.len() - q..].iter().sum::<f64>() / q as f64;
        assert!(
            last < first,
            "mean |drift| should shrink over the stream: first quartile {first:.4}, \
             last quartile {last:.4}"
        );
        // Rows arrive in completion order and carry the replan count.
        let replans: u64 = csv.rows[0][7].parse().unwrap();
        assert!(replans >= 1, "a 2x gamma error must trigger replanning");
        assert!(
            csv.rows.last().unwrap()[3].parse::<u64>().unwrap() >= 1,
            "late jobs should be priced under a recalibrated generation"
        );
    }

    #[test]
    fn calibrate_sweep_is_deterministic() {
        let a = calibrate_sweep(8, 2.0, 7);
        let b = calibrate_sweep(8, 2.0, 7);
        assert_eq!(a, b);
    }
}
