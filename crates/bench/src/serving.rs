//! The serving experiment: open-loop arrival of mixed D&C jobs on the
//! multi-job scheduler, on both the simulated and the native backend.
//!
//! The arrival rate is expressed as *offered load*: `rate = 1` submits
//! jobs, on average, exactly as fast as a solo reference job completes;
//! `rate = 0.5` underloads and `rate = 2` overloads the machine. Gaps are
//! exponentially distributed from a seeded [`SplitMix64`], so every run
//! is reproducible from `(jobs, rate, seed)` alone.

use hpu_algos::mergesort::MergeSort;
use hpu_algos::sum::DcSum;
use hpu_machine::MachineConfig;
use hpu_model::ScheduleSpec;
use hpu_obs::ServeReport;
use hpu_serve::{
    serve_native, serve_sim, AlgoJob, JobRequest, NativeJobRequest, ServeConfig, Workload,
};

use crate::experiments::Csv;
use crate::workload::{uniform_input, SplitMix64};

/// Which serving backend(s) to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeBackend {
    /// Virtual time on the simulated machine.
    Sim,
    /// Wall clock on real threads.
    Native,
    /// Both, one CSV row group per backend.
    Both,
}

/// Exponentially distributed gap with the given mean.
fn exp_gap(rng: &mut SplitMix64, mean: f64) -> f64 {
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    -(1.0 - u).ln() * mean
}

/// The mixed fleet: mergesort and d&c-sum jobs over a spread of sizes and
/// schedules. `make(i)` is the workload for job `i`; sizes cycle through
/// `2^8..2^11` and schedules through basic-hybrid / GPU-only / CPU-parallel.
fn job_mix(i: usize, seed: u64) -> (String, ScheduleSpec, Box<dyn Workload>) {
    let n = 1usize << (8 + (i % 4));
    let spec = match i % 3 {
        0 => ScheduleSpec::Basic { crossover: Some(4) },
        1 => ScheduleSpec::GpuOnly,
        _ => ScheduleSpec::CpuParallel,
    };
    let job_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if i.is_multiple_of(2) {
        (
            format!("sort-{i}-n{n}"),
            spec,
            AlgoJob::boxed(MergeSort::new(), uniform_input(n, job_seed)),
        )
    } else {
        let mut rng = SplitMix64::new(job_seed);
        let data: Vec<u64> = (0..n).map(|_| rng.below(1 << 20)).collect();
        (format!("sum-{i}-n{n}"), spec, AlgoJob::boxed(DcSum, data))
    }
}

fn report_row(backend: &str, rate: f64, submitted: usize, r: &ServeReport) -> Vec<String> {
    let f = |v: f64| format!("{v:.4}");
    vec![
        backend.to_string(),
        format!("{rate}"),
        submitted.to_string(),
        r.completed.to_string(),
        r.rejected.to_string(),
        r.cancelled.to_string(),
        r.failed.to_string(),
        format!("{:.6}", r.throughput),
        f(r.p50_latency),
        f(r.p95_latency),
        f(r.p99_latency),
        f(r.max_latency),
        f(r.cpu_utilization),
        f(r.gpu_utilization),
        f(r.mean_abs_drift),
    ]
}

/// Solo virtual-time of a reference job, used to convert `rate` into a
/// mean inter-arrival gap for the simulated backend.
fn sim_reference_time(cfg: &MachineConfig, serve: &ServeConfig, seed: u64) -> f64 {
    let (name, spec, workload) = job_mix(0, seed);
    let out = serve_sim(cfg, serve, vec![JobRequest::new(name, spec, 0.0, workload)]);
    out.report.makespan.max(1.0)
}

/// Solo wall-time (µs) of a reference job on one native worker.
fn native_reference_us(serve: &ServeConfig, threads: usize, seed: u64) -> f64 {
    let (name, _, workload) = job_mix(0, seed);
    let out = serve_native(
        serve,
        1,
        threads,
        vec![NativeJobRequest::new(name, 0, workload)],
    );
    out.report.makespan.max(100.0)
}

/// Runs the serving benchmark: `jobs` submissions at each offered-load
/// `rate` on the selected backend(s); one CSV row per `(backend, rate)`.
pub fn serve_fleet(jobs: usize, rates: &[f64], backend: ServeBackend, seed: u64) -> Csv {
    let serve = ServeConfig::default();
    let mut rows = Vec::new();

    if matches!(backend, ServeBackend::Sim | ServeBackend::Both) {
        let cfg = MachineConfig::hpu1_sim();
        let solo = sim_reference_time(&cfg, &serve, seed);
        for &rate in rates {
            let mean_gap = solo / rate.max(1e-6);
            let mut rng = SplitMix64::new(seed ^ rate.to_bits());
            let mut t = 0.0;
            let fleet: Vec<JobRequest> = (0..jobs)
                .map(|i| {
                    let (name, spec, workload) = job_mix(i, seed);
                    t += exp_gap(&mut rng, mean_gap);
                    JobRequest::new(name, spec, t, workload)
                })
                .collect();
            let out = serve_sim(&cfg, &serve, fleet);
            rows.push(report_row("sim", rate, jobs, &out.report));
        }
    }

    if matches!(backend, ServeBackend::Native | ServeBackend::Both) {
        let (workers, threads) = (2, 2);
        let solo_us = native_reference_us(&serve, threads, seed);
        for &rate in rates {
            let mean_gap = solo_us / rate.max(1e-6);
            let mut rng = SplitMix64::new(seed ^ rate.to_bits());
            let mut t = 0.0;
            let fleet: Vec<NativeJobRequest> = (0..jobs)
                .map(|i| {
                    let (name, _, workload) = job_mix(i, seed);
                    t += exp_gap(&mut rng, mean_gap);
                    NativeJobRequest::new(name, t as u64, workload)
                })
                .collect();
            let out = serve_native(&serve, workers, threads, fleet);
            rows.push(report_row("native", rate, jobs, &out.report));
        }
    }

    Csv {
        name: "serve",
        header: vec![
            "backend",
            "rate",
            "submitted",
            "completed",
            "rejected",
            "cancelled",
            "failed",
            "throughput",
            "p50_latency",
            "p95_latency",
            "p99_latency",
            "max_latency",
            "cpu_util",
            "gpu_util",
            "mean_abs_drift",
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_rows_are_deterministic_per_seed() {
        let a = serve_fleet(8, &[0.5, 2.0], ServeBackend::Sim, 42);
        let b = serve_fleet(8, &[0.5, 2.0], ServeBackend::Sim, 42);
        assert_eq!(a, b);
        assert_eq!(a.rows.len(), 2);
        assert!(a.rows.iter().all(|r| r[0] == "sim"));
    }

    #[test]
    fn both_backends_emit_every_rate() {
        let csv = serve_fleet(4, &[0.5, 2.0], ServeBackend::Both, 7);
        assert_eq!(csv.rows.len(), 4);
        assert_eq!(csv.rows.iter().filter(|r| r[0] == "sim").count(), 2);
        assert_eq!(csv.rows.iter().filter(|r| r[0] == "native").count(), 2);
    }
}
