//! Minimal wall-clock micro-benchmark runner for the `harness = false`
//! benches (this workspace builds offline, with no benchmarking crate).
//!
//! Reports the best and median wall time over a fixed number of
//! iterations; "best of k" is a robust point estimate for short
//! deterministic workloads since noise is strictly additive.

use std::hint::black_box;
use std::time::Instant;

/// Times `iters` runs of `f` and prints one result line:
/// `name  best <t> ms  median <t> ms  (k iters)`.
pub fn bench<R>(name: &str, iters: usize, mut f: impl FnMut() -> R) {
    assert!(iters > 0, "need at least one iteration");
    let mut samples_ms: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    samples_ms.sort_by(f64::total_cmp);
    let best = samples_ms[0];
    let median = samples_ms[samples_ms.len() / 2];
    println!("{name:<44} best {best:>9.3} ms  median {median:>9.3} ms  ({iters} iters)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut count = 0u32;
        bench("noop", 3, || count += 1);
        assert_eq!(count, 3);
    }
}
