//! Workload generation for the experiments.
//!
//! Uses an in-repo splitmix64 generator (Steele, Lea & Flood's finalizer,
//! the same one `java.util.SplittableRandom` and xoshiro seeding use) so
//! the harness stays dependency-free and every workload is reproducible
//! from its seed alone.

/// A tiny deterministic PRNG: splitmix64.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via 128-bit multiply (Lemire's
    /// method without the rejection step — bias is < 2⁻³² for the bounds
    /// used here, irrelevant for workload generation).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// The paper's sorting workload: `n` keys drawn uniformly at random from
/// `[0, 2n)` (§6.4), deterministic per seed.
pub fn uniform_input(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    let hi = (2 * n).max(2) as u64;
    (0..n).map(|_| rng.below(hi) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(uniform_input(100, 7), uniform_input(100, 7));
        assert_ne!(uniform_input(100, 7), uniform_input(100, 8));
    }

    #[test]
    fn range_respected() {
        let v = uniform_input(1000, 1);
        assert!(v.iter().all(|&x| x < 2000));
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference stream for seed 1234567 (from the splitmix64 paper's
        // reference implementation).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 0x599E_D017_FB08_FC85);
    }

    #[test]
    fn keys_are_spread_out() {
        let v = uniform_input(4096, 3);
        let distinct: std::collections::BTreeSet<u32> = v.iter().copied().collect();
        assert!(
            distinct.len() > 2048,
            "only {} distinct keys",
            distinct.len()
        );
    }
}
