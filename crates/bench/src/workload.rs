//! Workload generation for the experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's sorting workload: `n` keys drawn uniformly at random from
/// `[0, 2n)` (§6.4), deterministic per seed.
pub fn uniform_input(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hi = (2 * n).max(2) as u32;
    (0..n).map(|_| rng.gen_range(0..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(uniform_input(100, 7), uniform_input(100, 7));
        assert_ne!(uniform_input(100, 7), uniform_input(100, 8));
    }

    #[test]
    fn range_respected() {
        let v = uniform_input(1000, 1);
        assert!(v.iter().all(|&x| x < 2000));
    }
}
