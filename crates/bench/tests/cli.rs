//! CLI regression tests for the `repro` binary.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A unique, initially-absent scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn out_flag_creates_missing_directories() {
    let base = scratch("out");
    let dir = base.join("nested").join("deeper");
    let output = repro()
        .args(["table1", "--out", dir.to_str().unwrap()])
        .output()
        .expect("run repro");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let csv = std::fs::read_to_string(dir.join("table1.csv"))
        .expect("CSV written into a directory repro created itself");
    assert!(csv.starts_with("platform,"));
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn plan_rejects_model_only_experiments_by_name() {
    let output = repro()
        .args(["plan", "table2"])
        .output()
        .expect("run repro");
    assert_eq!(
        output.status.code(),
        Some(2),
        "plan on a model-only experiment must fail"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("table2"),
        "stderr must name the experiment: {stderr}"
    );
    assert!(stderr.contains("no execution plan"), "stderr: {stderr}");
}

#[test]
fn plan_passes_prints_the_optimizer_pipeline() {
    let base = scratch("plan-passes");
    let output = repro()
        .args(["plan", "fig9", "--passes", "--out", base.to_str().unwrap()])
        .output()
        .expect("run repro plan --passes");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("platform,algorithm,schedule,pass,stage,"),
        "pass-dump header missing: {stdout}"
    );
    for needle in [
        ",dead-level-prune,before,",
        ",dead-level-prune,after,",
        ",transfer-elision,after,",
        ",segment-fusion,after,",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
    let csv =
        std::fs::read_to_string(base.join("fig9.passes.csv")).expect("pass dump written to --out");
    assert!(csv.starts_with("platform,"));
    // Model-only experiments are rejected with the same error as plain plan.
    let output = repro()
        .args(["plan", "fig4", "--passes"])
        .output()
        .expect("run repro");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("no execution plan"));
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn serve_emits_both_backends_at_every_rate() {
    let base = scratch("serve");
    let output = repro()
        .args([
            "serve",
            "--jobs",
            "6",
            "--rates",
            "0.5,2",
            "--backend",
            "both",
            "--out",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("run repro serve");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let csv = std::fs::read_to_string(base.join("serve.csv")).expect("serve.csv written");
    let lines: Vec<&str> = csv.lines().collect();
    assert!(lines[0].starts_with("backend,rate,"));
    for prefix in ["sim,0.5,", "sim,2,", "native,0.5,", "native,2,"] {
        assert!(
            lines[1..].iter().any(|l| l.starts_with(prefix)),
            "missing row {prefix} in:\n{csv}"
        );
    }
    // stdout carries the same table.
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("throughput"));
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn calibrate_writes_a_convergence_curve() {
    let base = scratch("calibrate");
    let output = repro()
        .args([
            "calibrate",
            "--jobs",
            "16",
            "--gamma-skew",
            "2",
            "--seed",
            "42",
            "--out",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("run repro calibrate");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let csv = std::fs::read_to_string(base.join("calibrate.csv")).expect("calibrate.csv written");
    let lines: Vec<&str> = csv.lines().collect();
    assert!(lines[0].starts_with("seq,job,name,generation,predicted,service,abs_drift"));
    assert!(lines.len() > 4, "rows per completed job:\n{csv}");
    // The sweep replans at least once, so some job is priced under a
    // recalibrated generation.
    assert!(
        lines[1..]
            .iter()
            .any(|l| l.split(',').nth(3).is_some_and(|g| g != "0")),
        "no recalibrated generation in:\n{csv}"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn calibrate_rejects_a_nonsense_skew() {
    let output = repro()
        .args(["calibrate", "--gamma-skew", "0"])
        .output()
        .expect("run repro calibrate");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--gamma-skew"), "stderr: {stderr}");
}

#[test]
fn recover_rejects_rates_outside_unit_interval() {
    let output = repro()
        .args(["recover", "--jobs", "4", "--rates", "0,1.5"])
        .output()
        .expect("run repro recover");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("crash probabilities"));
}

#[test]
fn every_mode_answers_help_with_exit_zero() {
    for (args, needle) in [
        (vec!["--help"], "usage: repro"),
        (vec!["plan", "--help"], "usage: repro plan"),
        (vec!["serve", "--help"], "usage: repro serve"),
        (vec!["chaos", "--help"], "usage: repro chaos"),
        (vec!["calibrate", "--help"], "usage: repro calibrate"),
        (vec!["fleet", "--help"], "usage: repro fleet"),
        (vec!["recover", "--help"], "usage: repro recover"),
        (vec!["perf", "--help"], "usage: repro perf"),
        (vec!["perf", "-h"], "usage: repro perf"),
    ] {
        let output = repro().args(&args).output().expect("run repro");
        assert!(
            output.status.success(),
            "{args:?}: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains(needle),
            "{args:?} help missing {needle:?}: {stdout}"
        );
    }
}

#[test]
fn help_lists_seed_and_out_flags() {
    for mode in ["serve", "chaos", "calibrate", "fleet", "recover", "perf"] {
        let output = repro().args([mode, "--help"]).output().expect("run repro");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains("--seed"),
            "{mode} help misses --seed: {stdout}"
        );
        assert!(
            stdout.contains("--out"),
            "{mode} help misses --out: {stdout}"
        );
    }
}

#[test]
fn unknown_flags_exit_two_with_usage() {
    for args in [
        vec!["plan", "fig9", "--bogus"],
        vec!["serve", "--bogus"],
        vec!["chaos", "--nope", "3"],
        vec!["calibrate", "--jbos", "4"],
        vec!["fleet", "--ndoes", "1,2"],
        vec!["recover", "--rtaes", "0.3"],
        vec!["perf", "--labell", "x"],
        vec!["--frobnicate"],
    ] {
        let output = repro().args(&args).output().expect("run repro");
        assert_eq!(
            output.status.code(),
            Some(2),
            "{args:?} must exit 2: {}",
            String::from_utf8_lossy(&output.stdout)
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains("unknown argument"), "{args:?}: {stderr}");
        assert!(
            stderr.contains("usage:"),
            "{args:?} must echo usage: {stderr}"
        );
    }
}

#[test]
fn valued_flag_without_value_exits_two() {
    let output = repro()
        .args(["serve", "--jobs"])
        .output()
        .expect("run repro");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("expects"));
}

#[test]
fn perf_compare_gates_on_exit_code() {
    let base = scratch("perf-compare");
    std::fs::create_dir_all(&base).unwrap();
    let snap = |latency: f64| {
        format!(
            "{{\"schema\":1,\"label\":\"t\",\"quick\":true,\"seed\":1,\
             \"metrics\":{{\"serve_latency_p99\":{latency}}}}}"
        )
    };
    let old = base.join("base.json");
    let good = base.join("good.json");
    let bad = base.join("bad.json");
    std::fs::write(&old, snap(100.0)).unwrap();
    std::fs::write(&good, snap(101.0)).unwrap();
    std::fs::write(&bad, snap(200.0)).unwrap();

    let ok = repro()
        .args([
            "perf",
            "--compare",
            old.to_str().unwrap(),
            good.to_str().unwrap(),
        ])
        .output()
        .expect("run repro perf");
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(String::from_utf8_lossy(&ok.stdout).contains("no regressions"));

    // An injected 2x latency regression fails the gate with exit 1.
    let fail = repro()
        .args([
            "perf",
            "--compare",
            old.to_str().unwrap(),
            bad.to_str().unwrap(),
        ])
        .output()
        .expect("run repro perf");
    assert_eq!(fail.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&fail.stdout).contains("REGRESSED"));

    // Smoke mode ignores magnitude, so the same pair passes.
    let smoke = repro()
        .args([
            "perf",
            "--compare",
            old.to_str().unwrap(),
            bad.to_str().unwrap(),
            "--smoke",
        ])
        .output()
        .expect("run repro perf");
    assert!(
        smoke.status.success(),
        "{}",
        String::from_utf8_lossy(&smoke.stderr)
    );

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn fleet_writes_the_scaling_matrix() {
    let base = scratch("fleet");
    let output = repro()
        .args([
            "fleet",
            "--jobs",
            "8",
            "--nodes",
            "1,2",
            "--rates",
            "1,6",
            "--seed",
            "42",
            "--out",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("run repro fleet");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let csv = std::fs::read_to_string(base.join("fleet.csv")).expect("fleet.csv written");
    let lines: Vec<&str> = csv.lines().collect();
    assert!(lines[0].starts_with("nodes,rate,submitted,completed,rejected,goodput,"));
    for prefix in ["1,1,8,", "1,6,8,", "2,1,8,", "2,6,8,"] {
        assert!(
            lines[1..].iter().any(|l| l.starts_with(prefix)),
            "missing row {prefix} in:\n{csv}"
        );
    }
    // stdout carries the same table.
    assert!(String::from_utf8_lossy(&output.stdout).contains("routing_quality"));
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn fleet_rejects_a_zero_node_count() {
    let output = repro()
        .args(["fleet", "--nodes", "0,2"])
        .output()
        .expect("run repro fleet");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--nodes"));
}

#[test]
fn perf_compare_newest_picks_the_highest_seq_baseline() {
    let base = scratch("perf-newest");
    std::fs::create_dir_all(&base).unwrap();
    let snap = |seq: u64, latency: f64| {
        format!(
            "{{\"schema\":1,\"label\":\"t\",\"quick\":true,\"seed\":1,\"seq\":{seq},\
             \"metrics\":{{\"serve_latency_p99\":{latency}}}}}"
        )
    };
    // Old baseline would pass; the newest (highest-seq) one must be the
    // comparison target, and it flags the regression.
    std::fs::write(base.join("BENCH_old.json"), snap(0, 1000.0)).unwrap();
    std::fs::write(base.join("BENCH_new.json"), snap(5, 100.0)).unwrap();
    let candidate = base.join("candidate.json");
    std::fs::write(&candidate, snap(0, 200.0)).unwrap();

    let fail = repro()
        .args([
            "perf",
            "--compare-newest",
            base.to_str().unwrap(),
            candidate.to_str().unwrap(),
        ])
        .output()
        .expect("run repro perf");
    assert_eq!(fail.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&fail.stderr).contains("BENCH_new.json"),
        "stderr must name the chosen baseline: {}",
        String::from_utf8_lossy(&fail.stderr)
    );
    assert!(String::from_utf8_lossy(&fail.stdout).contains("REGRESSED"));

    // An empty directory is a hard error (exit 2), not a silent pass.
    let empty = base.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let none = repro()
        .args([
            "perf",
            "--compare-newest",
            empty.to_str().unwrap(),
            candidate.to_str().unwrap(),
        ])
        .output()
        .expect("run repro perf");
    assert_eq!(none.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&none.stderr).contains("no BENCH_"));

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn perf_seq_flag_stamps_the_snapshot() {
    let base = scratch("perf-seq");
    let output = repro()
        .args([
            "perf",
            "--quick",
            "--label",
            "seqtest",
            "--seed",
            "7",
            "--seq",
            "11",
            "--out",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("run repro perf");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(base.join("BENCH_seqtest.json")).expect("snapshot written");
    let snap = hpu_bench::PerfSnapshot::parse(&text).expect("snapshot parses");
    assert_eq!(snap.seq, 11);
    for metric in [
        "fleet_goodput_4n",
        "fleet_scaling_x",
        "fleet_routing_quality",
    ] {
        assert!(
            snap.metrics.contains_key(metric),
            "snapshot misses {metric}"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn perf_quick_writes_schema_versioned_snapshot() {
    let base = scratch("perf-quick");
    let output = repro()
        .args([
            "perf",
            "--quick",
            "--label",
            "citest",
            "--seed",
            "7",
            "--out",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("run repro perf");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let path = base.join("BENCH_citest.json");
    let text = std::fs::read_to_string(&path).expect("snapshot written");
    let snap = hpu_bench::PerfSnapshot::parse(&text).expect("snapshot parses");
    assert_eq!(snap.schema, hpu_bench::PERF_SCHEMA);
    assert_eq!(snap.label, "citest");
    assert!(snap.quick);
    assert_eq!(snap.seed, 7);
    for metric in [
        "admission_latency_p50",
        "admission_latency_p99",
        "native_throughput_jobs_per_s",
        "interpret_overhead_ratio",
        "plan_compile_p50_us",
        "serve_goodput",
    ] {
        assert!(
            snap.metrics.contains_key(metric),
            "snapshot misses {metric}"
        );
    }

    // A self-comparison is regression-free by construction.
    let cmp = repro()
        .args([
            "perf",
            "--compare",
            path.to_str().unwrap(),
            path.to_str().unwrap(),
        ])
        .output()
        .expect("run repro perf");
    assert!(
        cmp.status.success(),
        "{}",
        String::from_utf8_lossy(&cmp.stderr)
    );

    let _ = std::fs::remove_dir_all(&base);
}
