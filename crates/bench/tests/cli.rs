//! CLI regression tests for the `repro` binary.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A unique, initially-absent scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn out_flag_creates_missing_directories() {
    let base = scratch("out");
    let dir = base.join("nested").join("deeper");
    let output = repro()
        .args(["table1", "--out", dir.to_str().unwrap()])
        .output()
        .expect("run repro");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let csv = std::fs::read_to_string(dir.join("table1.csv"))
        .expect("CSV written into a directory repro created itself");
    assert!(csv.starts_with("platform,"));
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn plan_rejects_model_only_experiments_by_name() {
    let output = repro()
        .args(["plan", "table2"])
        .output()
        .expect("run repro");
    assert_eq!(
        output.status.code(),
        Some(2),
        "plan on a model-only experiment must fail"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("table2"),
        "stderr must name the experiment: {stderr}"
    );
    assert!(stderr.contains("no execution plan"), "stderr: {stderr}");
}

#[test]
fn serve_emits_both_backends_at_every_rate() {
    let base = scratch("serve");
    let output = repro()
        .args([
            "serve",
            "--jobs",
            "6",
            "--rates",
            "0.5,2",
            "--backend",
            "both",
            "--out",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("run repro serve");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let csv = std::fs::read_to_string(base.join("serve.csv")).expect("serve.csv written");
    let lines: Vec<&str> = csv.lines().collect();
    assert!(lines[0].starts_with("backend,rate,"));
    for prefix in ["sim,0.5,", "sim,2,", "native,0.5,", "native,2,"] {
        assert!(
            lines[1..].iter().any(|l| l.starts_with(prefix)),
            "missing row {prefix} in:\n{csv}"
        );
    }
    // stdout carries the same table.
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("throughput"));
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn calibrate_writes_a_convergence_curve() {
    let base = scratch("calibrate");
    let output = repro()
        .args([
            "calibrate",
            "--jobs",
            "16",
            "--gamma-skew",
            "2",
            "--seed",
            "42",
            "--out",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("run repro calibrate");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let csv = std::fs::read_to_string(base.join("calibrate.csv")).expect("calibrate.csv written");
    let lines: Vec<&str> = csv.lines().collect();
    assert!(lines[0].starts_with("seq,job,name,generation,predicted,service,abs_drift"));
    assert!(lines.len() > 4, "rows per completed job:\n{csv}");
    // The sweep replans at least once, so some job is priced under a
    // recalibrated generation.
    assert!(
        lines[1..]
            .iter()
            .any(|l| l.split(',').nth(3).is_some_and(|g| g != "0")),
        "no recalibrated generation in:\n{csv}"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn calibrate_rejects_a_nonsense_skew() {
    let output = repro()
        .args(["calibrate", "--gamma-skew", "0"])
        .output()
        .expect("run repro calibrate");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--gamma-skew"), "stderr: {stderr}");
}
