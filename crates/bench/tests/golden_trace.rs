//! Golden test of the `--trace` artifacts: the emitted Chrome trace JSON
//! must parse, contain one process per strategy with named tracks, and
//! carry non-negative, per-track monotone spans; the levels CSV must line
//! up with it.

use std::collections::BTreeMap;

use hpu_bench::experiments::trace_bundle;
use hpu_obs::json::Json;

#[test]
fn trace_bundle_emits_valid_chrome_trace() {
    let bundle = trace_bundle(1 << 8);
    let json = bundle.chrome.render();
    let v = Json::parse(&json).expect("trace JSON parses");
    let events = v
        .get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents is an array");
    assert!(!events.is_empty());

    // One process per strategy, named via metadata events.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .expect("process metadata carries a name")
        })
        .collect();
    assert_eq!(
        names,
        vec![
            "sequential",
            "cpu_only",
            "gpu_only",
            "basic",
            "advanced",
            "native"
        ]
    );

    // Spans: non-negative timestamps and durations, monotone start times
    // within each (process, track) row.
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut spans = 0usize;
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        spans += 1;
        let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
        let dur = e.get("dur").and_then(Json::as_f64).expect("dur");
        let pid = e.get("pid").and_then(Json::as_f64).expect("pid") as u64;
        let tid = e.get("tid").and_then(Json::as_f64).expect("tid") as u64;
        assert!(ts >= 0.0 && dur >= 0.0, "negative span: ts {ts} dur {dur}");
        assert!((1..=3).contains(&tid), "unknown track {tid}");
        let prev = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
        assert!(
            ts >= *prev,
            "track (pid {pid}, tid {tid}) goes back in time: {ts} < {prev}"
        );
        *prev = ts;
    }
    assert!(spans > 20, "expected a real trace, got {spans} spans");
    // Hybrid processes must show bus activity.
    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("cat").and_then(Json::as_str) == Some("transfer")
        }),
        "no transfer spans in the trace"
    );
}

#[test]
fn levels_csv_covers_every_strategy() {
    let bundle = trace_bundle(1 << 8);
    let csv = bundle.levels.render();
    let mut lines = csv.lines();
    let header = lines.next().expect("header line");
    assert!(header.starts_with("strategy,level,chunk,tasks,"));
    let rows: Vec<&str> = lines.collect();
    for strategy in [
        "sequential",
        "cpu_only",
        "gpu_only",
        "basic",
        "advanced",
        "native",
    ] {
        let n = rows
            .iter()
            .filter(|r| r.starts_with(&format!("{strategy},")))
            .count();
        assert!(n > 0, "no level rows for {strategy}");
    }
    // Simulated strategies carry a drift prediction; native rows leave it
    // empty. Every row names the plan segment that ran the level.
    let basic_row = rows
        .iter()
        .find(|r| r.starts_with("basic,"))
        .expect("basic row");
    let cells: Vec<&str> = basic_row.split(',').collect();
    assert_eq!(cells.len(), 16);
    assert!(
        !cells[13].is_empty(),
        "predicted column populated: {basic_row}"
    );
    assert_eq!(cells[15], "0", "level 0 runs in plan segment 0");
    // The advanced strategy's top levels run in its CPU cleanup segment.
    let advanced_top = rows
        .iter()
        .rfind(|r| r.starts_with("advanced,"))
        .expect("advanced top row");
    assert_eq!(
        advanced_top.split(',').nth(15),
        Some("1"),
        "advanced top level attributed to segment 1: {advanced_top}"
    );
    let native_row = rows
        .iter()
        .find(|r| r.starts_with("native,"))
        .expect("native row");
    let ncells: Vec<&str> = native_row.split(',').collect();
    assert!(ncells[13].is_empty(), "native rows have no prediction");
    assert_eq!(ncells[15], "0", "native runs are one host-only segment");
}
