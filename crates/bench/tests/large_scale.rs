//! Scale check (release-mode recommended): at cache-pressure sizes the
//! advanced hybrid must beat CPU-only, reproducing the paper's headline.

use hpu_bench::experiments::ablation_schedule;

#[test]
#[ignore = "slow: run with --release -- --ignored"]
fn advanced_beats_cpu_only_at_2_22() {
    let csv = ablation_schedule(1 << 22);
    let get = |platform: &str, strategy: &str| -> f64 {
        csv.rows
            .iter()
            .find(|r| r[0] == platform && r[1] == strategy)
            .map(|r| r[3].parse().unwrap())
            .unwrap()
    };
    for platform in ["HPU1", "HPU2"] {
        let cpu = get(platform, "cpu_only");
        let adv = get(platform, "advanced");
        assert!(
            adv > cpu,
            "{platform}: advanced {adv} must beat cpu-only {cpu} at scale"
        );
        assert!(
            adv > 3.5,
            "{platform}: advanced speedup {adv} should approach the paper's 4.5x"
        );
    }
}
