//! Plan-equivalence suite: pins the full `RunReport` of every strategy ×
//! breadth-first workload, and the fig7/fig8/fig9 series, to golden values
//! captured from the pre-plan-IR executors. The plan compiler + interpreter
//! must reproduce these byte for byte — placement, transfer and per-level
//! accounting included.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p hpu-bench` after an
//! *intentional* behavior change.

use std::fmt::Write as _;
use std::path::PathBuf;

use hpu_algos::scan::DcScan;
use hpu_algos::sum::DcSum;
use hpu_algos::MergeSort;
use hpu_bench::experiments as exp;
use hpu_bench::workload::uniform_input;
use hpu_core::exec::{run_sim, Strategy};
use hpu_core::{BfAlgorithm, Element, RunReport};
use hpu_machine::{MachineConfig, SimHpu};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `got` against the committed fixture, or rewrites the fixture
/// when `UPDATE_GOLDEN` is set.
fn assert_matches_fixture(name: &str, got: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "output diverged from golden fixture {name}; run with UPDATE_GOLDEN=1 only if the \
         change is intentional"
    );
}

fn f(v: f64) -> String {
    format!("{v:.6}")
}

/// Serializes everything in a report the refactor must preserve. The
/// per-level `segment` attribution (added with the plan IR) is deliberately
/// not part of the golden surface.
fn dump_report(out: &mut String, rep: &RunReport) {
    let _ = writeln!(out, "label={}", rep.label);
    let _ = writeln!(out, "virtual_time={}", f(rep.virtual_time));
    let _ = writeln!(
        out,
        "transfers={} words={} coalesced={} uncoalesced={}",
        rep.transfers, rep.words, rep.coalesced, rep.uncoalesced
    );
    let _ = writeln!(
        out,
        "cpu_busy={} gpu_busy={}",
        f(rep.cpu_busy),
        f(rep.gpu_busy)
    );
    match rep.concurrent {
        Some((c, g)) => {
            let _ = writeln!(out, "concurrent=({},{})", f(c), f(g));
        }
        None => {
            let _ = writeln!(out, "concurrent=none");
        }
    }
    for l in &rep.levels {
        let _ = writeln!(
            out,
            "level {} chunk={} tasks={} ops={} mem={} co={} unco={} words={} cpu={} gpu={} \
             bus={} time={}",
            l.level,
            l.chunk,
            l.tasks,
            l.ops,
            l.mem,
            l.coalesced,
            l.uncoalesced,
            l.words,
            f(l.cpu_time),
            f(l.gpu_time),
            f(l.bus_time),
            f(l.time),
        );
    }
    for d in &rep.drift {
        let _ = writeln!(
            out,
            "drift {} predicted={} simulated={}",
            d.level,
            f(d.predicted),
            f(d.simulated)
        );
    }
}

fn strategies() -> Vec<(&'static str, Strategy)> {
    vec![
        ("sequential", Strategy::Sequential),
        ("cpu_only", Strategy::CpuOnly),
        ("gpu_only", Strategy::GpuOnly),
        ("basic_auto", Strategy::Basic { crossover: None }),
        ("basic_2", Strategy::Basic { crossover: Some(2) }),
        (
            "advanced_a30_y3",
            Strategy::Advanced {
                alpha: 0.3,
                transfer_level: 3,
            },
        ),
        (
            "advanced_a50_y1",
            Strategy::Advanced {
                alpha: 0.5,
                transfer_level: 1,
            },
        ),
    ]
}

fn run_matrix_row<T: Element, A: BfAlgorithm<T>>(
    out: &mut String,
    platform: &str,
    cfg: &MachineConfig,
    algo: &A,
    make: impl Fn() -> Vec<T>,
) {
    for (label, strategy) in strategies() {
        let mut data = make();
        let n = data.len();
        let mut hpu = SimHpu::new(cfg.clone());
        let rep = run_sim(algo, &mut data, &mut hpu, &strategy).expect("golden run succeeds");
        let _ = writeln!(out, "== {platform} {} n={n} {label}", algo.name());
        dump_report(out, &rep);
    }
}

#[test]
fn run_reports_match_seed_golden() {
    let mut out = String::new();
    let hpu1 = MachineConfig::hpu1_sim();
    let hpu2 = MachineConfig::hpu2_sim();
    run_matrix_row(&mut out, "hpu1", &hpu1, &MergeSort::new(), || {
        uniform_input(1 << 12, 42)
    });
    run_matrix_row(&mut out, "hpu2", &hpu2, &MergeSort::new(), || {
        uniform_input(1 << 12, 42)
    });
    run_matrix_row(&mut out, "hpu1", &hpu1, &DcSum, || {
        (0..1u64 << 12).collect::<Vec<u64>>()
    });
    run_matrix_row(&mut out, "hpu1", &hpu1, &DcScan, || {
        (0..1u64 << 12).map(|i| i % 97).collect::<Vec<u64>>()
    });
    assert_matches_fixture("run_reports.txt", &out);
}

#[test]
fn fig7_series_match_seed_golden() {
    let csv = exp::fig7(1 << 12, &[0.1, 0.3, 0.5], &[2, 4]);
    assert_matches_fixture("fig7.csv", &csv.render());
}

#[test]
fn fig8_series_match_seed_golden() {
    let csv = exp::fig8(&[1 << 10, 1 << 12]);
    assert_matches_fixture("fig8.csv", &csv.render());
}

#[test]
fn fig9_series_match_seed_golden() {
    let csv = exp::fig9(&[1 << 8, 1 << 10]);
    assert_matches_fixture("fig9.csv", &csv.render());
}
