//! Plan-equivalence suite: pins the full `RunReport` of every strategy ×
//! breadth-first workload, and the fig7/fig8/fig9 series, to golden values
//! captured from the pre-plan-IR executors. The plan compiler + interpreter
//! must reproduce these byte for byte — placement, transfer and per-level
//! accounting included.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p hpu-bench` after an
//! *intentional* behavior change.

use std::fmt::Write as _;
use std::path::PathBuf;

use hpu_algos::closest_pair::ClosestPair;
use hpu_algos::karatsuba::Karatsuba;
use hpu_algos::matmul::DcMatmul;
use hpu_algos::max_subarray::{to_segments, MaxSubarray};
use hpu_algos::scan::DcScan;
use hpu_algos::sum::DcSum;
use hpu_algos::MergeSort;
use hpu_bench::experiments as exp;
use hpu_bench::workload::uniform_input;
use hpu_core::exec::{run_sim, Strategy};
use hpu_core::{BfAlgorithm, Element, RunReport};
use hpu_machine::{MachineConfig, SimHpu, SimMachineParams};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `got` against the committed fixture, or rewrites the fixture
/// when `UPDATE_GOLDEN` is set.
fn assert_matches_fixture(name: &str, got: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "output diverged from golden fixture {name}; run with UPDATE_GOLDEN=1 only if the \
         change is intentional"
    );
}

fn f(v: f64) -> String {
    format!("{v:.6}")
}

/// Serializes everything in a report the refactor must preserve. The
/// per-level `segment` attribution (added with the plan IR) is deliberately
/// not part of the golden surface.
fn dump_report(out: &mut String, rep: &RunReport) {
    let _ = writeln!(out, "label={}", rep.label);
    let _ = writeln!(out, "virtual_time={}", f(rep.virtual_time));
    let _ = writeln!(
        out,
        "transfers={} words={} coalesced={} uncoalesced={}",
        rep.transfers, rep.words, rep.coalesced, rep.uncoalesced
    );
    let _ = writeln!(
        out,
        "cpu_busy={} gpu_busy={}",
        f(rep.cpu_busy),
        f(rep.gpu_busy)
    );
    match rep.concurrent {
        Some((c, g)) => {
            let _ = writeln!(out, "concurrent=({},{})", f(c), f(g));
        }
        None => {
            let _ = writeln!(out, "concurrent=none");
        }
    }
    for l in &rep.levels {
        let _ = writeln!(
            out,
            "level {} chunk={} tasks={} ops={} mem={} co={} unco={} words={} cpu={} gpu={} \
             bus={} time={}",
            l.level,
            l.chunk,
            l.tasks,
            l.ops,
            l.mem,
            l.coalesced,
            l.uncoalesced,
            l.words,
            f(l.cpu_time),
            f(l.gpu_time),
            f(l.bus_time),
            f(l.time),
        );
    }
    for d in &rep.drift {
        let _ = writeln!(
            out,
            "drift {} predicted={} simulated={}",
            d.level,
            f(d.predicted),
            f(d.simulated)
        );
    }
}

fn strategies() -> Vec<(&'static str, Strategy)> {
    vec![
        ("sequential", Strategy::Sequential),
        ("cpu_only", Strategy::CpuOnly),
        ("gpu_only", Strategy::GpuOnly),
        ("basic_auto", Strategy::Basic { crossover: None }),
        ("basic_2", Strategy::Basic { crossover: Some(2) }),
        (
            "advanced_a30_y3",
            Strategy::Advanced {
                alpha: 0.3,
                transfer_level: 3,
            },
        ),
        (
            "advanced_a50_y1",
            Strategy::Advanced {
                alpha: 0.5,
                transfer_level: 1,
            },
        ),
    ]
}

fn run_matrix_row<T: Element, A: BfAlgorithm<T>>(
    out: &mut String,
    platform: &str,
    cfg: &MachineConfig,
    algo: &A,
    make: impl Fn() -> Vec<T>,
) {
    for (label, strategy) in strategies() {
        let mut data = make();
        let n = data.len();
        let mut hpu = SimHpu::new(cfg.clone());
        let rep = run_sim(algo, &mut data, &mut hpu, &strategy).expect("golden run succeeds");
        let _ = writeln!(out, "== {platform} {} n={n} {label}", algo.name());
        dump_report(out, &rep);
    }
}

#[test]
fn run_reports_match_seed_golden() {
    let mut out = String::new();
    let hpu1 = MachineConfig::hpu1_sim();
    let hpu2 = MachineConfig::hpu2_sim();
    run_matrix_row(&mut out, "hpu1", &hpu1, &MergeSort::new(), || {
        uniform_input(1 << 12, 42)
    });
    run_matrix_row(&mut out, "hpu2", &hpu2, &MergeSort::new(), || {
        uniform_input(1 << 12, 42)
    });
    run_matrix_row(&mut out, "hpu1", &hpu1, &DcSum, || {
        (0..1u64 << 12).collect::<Vec<u64>>()
    });
    run_matrix_row(&mut out, "hpu1", &hpu1, &DcScan, || {
        (0..1u64 << 12).map(|i| i % 97).collect::<Vec<u64>>()
    });
    // The §6.3 ablation pair's other half: the generic (uncoalesced) GPU
    // translation of mergesort executes different kernels, so its reports
    // are pinned separately from the coalesced default above.
    run_matrix_row(&mut out, "hpu1", &hpu1, &MergeSort::generic(), || {
        uniform_input(1 << 12, 42)
    });
    run_matrix_row(&mut out, "hpu1", &hpu1, &MaxSubarray, || {
        let data: Vec<i64> = (0..1i64 << 12).map(|i| (i * 37 % 201) - 100).collect();
        to_segments(&data)
    });
    assert_matches_fixture("run_reports.txt", &out);
}

/// The staged compiler across **all eight algorithms** in `hpu-algos`
/// (the coalesced and generic mergesort variants share a recurrence, so
/// their plans coincide — their executions are pinned separately above;
/// the tree-form algorithms compile plans through the same pipeline even
/// though the breadth-first executors never run them). For every
/// algorithm × strategy the naive lowering and each pass stage are pinned
/// byte-exactly, and every pass must satisfy its cost-monotone,
/// semantics-preserving invariant against the stage before it.
#[test]
fn pass_pipeline_plans_match_seed_golden_for_every_algorithm() {
    use hpu_model::{
        check_invariant, compile_unoptimized, default_passes, plan_cost, LevelProfile,
        MachineParams, Placement, Plan, Recurrence, ScheduleSpec,
    };

    fn dump_plan(out: &mut String, plan: &Plan, cost: f64) {
        let _ = writeln!(out, " segments={} cost={}", plan.segments.len(), f(cost));
        for seg in &plan.segments {
            let placement = match &seg.placement {
                Placement::Cpu { cores } => format!("cpu({cores})"),
                Placement::Gpu => "gpu".to_string(),
                Placement::Split {
                    alpha,
                    cpu_tasks,
                    tasks,
                } => format!("split({alpha:.6};{cpu_tasks}/{tasks})"),
            };
            let transfers: Vec<String> = seg
                .transfers
                .iter()
                .map(|t| format!("{:?}@{}x{}", t.direction, t.level, t.words))
                .collect();
            let _ = writeln!(
                out,
                "  seg [{}..{}] {} transfers=[{}]",
                seg.first_level,
                seg.last_level,
                placement,
                transfers.join(" ")
            );
        }
    }

    let algos: Vec<(&str, Recurrence)> = vec![
        (
            "mergesort",
            <MergeSort as BfAlgorithm<u32>>::recurrence(&MergeSort::new()),
        ),
        (
            "mergesort_generic",
            <MergeSort as BfAlgorithm<u32>>::recurrence(&MergeSort::generic()),
        ),
        ("sum", <DcSum as BfAlgorithm<u64>>::recurrence(&DcSum)),
        ("scan", <DcScan as BfAlgorithm<u64>>::recurrence(&DcScan)),
        (
            "max_subarray",
            <MaxSubarray as BfAlgorithm<hpu_algos::max_subarray::Segment>>::recurrence(
                &MaxSubarray,
            ),
        ),
        ("karatsuba", Karatsuba::recurrence()),
        ("matmul", DcMatmul::recurrence()),
        ("closest_pair", ClosestPair::recurrence()),
    ];
    let specs: Vec<(&str, ScheduleSpec)> = vec![
        ("sequential", ScheduleSpec::Sequential),
        ("cpu_parallel", ScheduleSpec::CpuParallel),
        ("gpu_only", ScheduleSpec::GpuOnly),
        ("basic_auto", ScheduleSpec::Basic { crossover: None }),
        ("basic_2", ScheduleSpec::Basic { crossover: Some(2) }),
        (
            "advanced_a30_y3",
            ScheduleSpec::Advanced {
                alpha: 0.3,
                transfer_level: 3,
            },
        ),
        ("advanced_auto", ScheduleSpec::AdvancedAuto),
    ];

    let params = MachineParams::from_config(&MachineConfig::hpu1_sim());
    let n = 1u64 << 10;
    let mut out = String::new();
    for (algo, rec) in &algos {
        let levels = rec.num_levels(n);
        let profile = LevelProfile::new(&params, rec, n);
        for (label, spec) in &specs {
            let _ = write!(out, "== {algo} n={n} {label}");
            let mut plan = match compile_unoptimized(spec, &params, rec, n, levels) {
                Ok(p) => p,
                Err(e) => {
                    let _ = writeln!(out, " error={e}");
                    continue;
                }
            };
            let cost = plan_cost(&profile, &plan).expect("naive plans price").total;
            let _ = write!(out, "\nunoptimized");
            dump_plan(&mut out, &plan, cost);
            for pass in default_passes() {
                let before = plan.clone();
                plan = pass.run(plan);
                check_invariant(&profile, &before, &plan).unwrap_or_else(|e| {
                    panic!(
                        "{algo}/{label}: pass {} broke its invariant: {e}",
                        pass.name()
                    )
                });
                let cost = plan_cost(&profile, &plan)
                    .expect("optimized plans price")
                    .total;
                let _ = write!(out, "pass {}", pass.name());
                dump_plan(&mut out, &plan, cost);
            }
        }
    }
    assert_matches_fixture("pass_plans.txt", &out);
}

#[test]
fn fig7_series_match_seed_golden() {
    let csv = exp::fig7(1 << 12, &[0.1, 0.3, 0.5], &[2, 4]);
    assert_matches_fixture("fig7.csv", &csv.render());
}

#[test]
fn fig8_series_match_seed_golden() {
    let csv = exp::fig8(&[1 << 10, 1 << 12]);
    assert_matches_fixture("fig8.csv", &csv.render());
}

#[test]
fn fig9_series_match_seed_golden() {
    let csv = exp::fig9(&[1 << 8, 1 << 10]);
    assert_matches_fixture("fig9.csv", &csv.render());
}
