//! The regular, in-place breadth-first form of a divide-and-conquer
//! algorithm (the shape of the paper's mergesort case study, Algorithm 7).
//!
//! A [`BfAlgorithm`] works over one contiguous buffer. Its recursion tree
//! is *regular*: a division splits a chunk into `a` equal sub-chunks
//! (`a = b` in the recurrence), so level `k` from the bottom consists of
//! all chunks of size `base_chunk · a^k` and the division step is implicit
//! (pure index arithmetic) — exactly the simplification the paper exploits
//! for mergesort (§6). The executors in [`crate::exec`] run such
//! algorithms bottom-up level by level, ping-ponging between the buffer
//! and a scratch buffer of the same length.
//!
//! The GPU path mirrors Algorithm 3: one work-item per chunk, addressing
//! derived from the global id. The default [`BfAlgorithm::gpu_level`] is
//! the *generic translation* — it reuses the CPU `combine` and charges its
//! memory traffic as uncoalesced scatter. Algorithms may override it with
//! an explicitly laid-out kernel (the paper's §6.3 coalescing
//! optimization) without touching any executor.

use hpu_machine::{DeviceBuffer, LaunchStats, MachineError, SimGpu};
use hpu_model::Recurrence;

use crate::charge::{Charge, GpuCharge};

/// Element type requirements for in-place breadth-first execution.
pub trait Element: Copy + Default + Send + Sync + 'static {}
impl<T: Copy + Default + Send + Sync + 'static> Element for T {}

/// Description of one level handed to GPU level implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelInfo {
    /// Output chunk size at this level (the `a` sub-chunks of size
    /// `chunk / a` are combined into one chunk of this size).
    pub chunk: usize,
    /// Number of chunks (work-items) at this level.
    pub tasks: usize,
}

/// A regular divide-and-conquer algorithm in breadth-first, in-place form.
pub trait BfAlgorithm<T: Element>: Sync {
    /// Short name used in timeline labels and reports.
    fn name(&self) -> &'static str;

    /// Branching factor `a` (= shrink factor `b`); chunks combine `a` at a
    /// time. Must be ≥ 2.
    fn branching(&self) -> usize {
        2
    }

    /// Chunk size at which the recursion bottoms out.
    fn base_chunk(&self) -> usize {
        1
    }

    /// Solves one base-case chunk in place.
    fn base_case(&self, chunk: &mut [T], charge: &mut dyn Charge);

    /// Combines the `a` consecutive solved sub-chunks of `src` into `dst`
    /// (both of length [`LevelInfo::chunk`]).
    fn combine(&self, src: &[T], dst: &mut [T], charge: &mut dyn Charge);

    /// The algorithm's recurrence, used by schedulers to derive crossover
    /// levels and optimal `(α, y)` parameters from the analytic model. The
    /// cost constants should match what [`BfAlgorithm::combine`] charges.
    fn recurrence(&self) -> Recurrence;

    /// Runs the base-case level on the device: one work-item per base
    /// chunk, executing [`BfAlgorithm::base_case`] with scatter charging.
    fn gpu_base_level(
        &self,
        gpu: &mut SimGpu,
        buf: &mut DeviceBuffer<T>,
        tasks: usize,
    ) -> Result<LaunchStats, MachineError> {
        let base = self.base_chunk();
        gpu.launch("base cases", tasks, buf, |id, ctx, data| {
            let lo = id * base;
            self.base_case(&mut data[lo..lo + base], &mut GpuCharge(ctx));
        })
    }

    /// Finalizes the device-side result after the last combine level and
    /// before download. The default does nothing (`Ok(None)`: the result
    /// stays in `cur`, laid out as contiguous chunks). Implementations
    /// that maintain a different device layout (e.g. the column-major
    /// layout of the paper's §6.3 coalescing optimization) restore the
    /// contiguous layout here by writing `cur` into `other` and returning
    /// the launch stats (`Some(..)`: the result is now in `other`).
    fn gpu_finalize(
        &self,
        _gpu: &mut SimGpu,
        _cur: &mut DeviceBuffer<T>,
        _other: &mut DeviceBuffer<T>,
        _level: &LevelInfo,
    ) -> Result<Option<LaunchStats>, MachineError> {
        Ok(None)
    }

    /// Runs one combine level on the device (src → dst). The default is
    /// the generic Algorithm-3 translation: each work-item calls the CPU
    /// [`BfAlgorithm::combine`] on its chunk, charging memory as
    /// uncoalesced scatter. Override to provide a coalesced layout
    /// (paper §6.3).
    fn gpu_level(
        &self,
        gpu: &mut SimGpu,
        src: &mut DeviceBuffer<T>,
        dst: &mut DeviceBuffer<T>,
        level: &LevelInfo,
    ) -> Result<LaunchStats, MachineError> {
        let chunk = level.chunk;
        gpu.launch2(
            &format!("{} combine (chunk {chunk})", self.name()),
            level.tasks,
            src,
            dst,
            |id, ctx, s, d| {
                let lo = id * chunk;
                self.combine(
                    &s[lo..lo + chunk],
                    &mut d[lo..lo + chunk],
                    &mut GpuCharge(ctx),
                );
            },
        )
    }
}

/// Validates that `len = base_chunk · a^k` and returns the number of
/// combine levels `k`.
pub fn num_levels<T: Element>(
    algo: &impl BfAlgorithm<T>,
    len: usize,
) -> Result<u32, crate::CoreError> {
    let a = algo.branching();
    let base = algo.base_chunk();
    if len == 0 {
        return Err(crate::CoreError::EmptyInput);
    }
    if !len.is_multiple_of(base) {
        return Err(crate::CoreError::InvalidSize {
            len,
            branching: a,
            base_chunk: base,
        });
    }
    let mut m = len / base;
    let mut k = 0u32;
    while m > 1 {
        if !m.is_multiple_of(a) {
            return Err(crate::CoreError::InvalidSize {
                len,
                branching: a,
                base_chunk: base,
            });
        }
        m /= a;
        k += 1;
    }
    Ok(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::CountingCharge;

    /// Toy algorithm: each chunk's "solution" is the sum of its elements,
    /// stored in its first slot.
    struct SumAlgo;

    impl BfAlgorithm<u64> for SumAlgo {
        fn name(&self) -> &'static str {
            "sum"
        }
        fn base_case(&self, chunk: &mut [u64], charge: &mut dyn Charge) {
            charge.ops(1);
            let _ = chunk;
        }
        fn combine(&self, src: &[u64], dst: &mut [u64], charge: &mut dyn Charge) {
            let half = src.len() / 2;
            dst[0] = src[0] + src[half];
            charge.ops(1);
            charge.mem(3);
        }
        fn recurrence(&self) -> Recurrence {
            Recurrence::dc_sum()
        }
    }

    #[test]
    fn num_levels_powers() {
        assert_eq!(num_levels(&SumAlgo, 1).unwrap(), 0);
        assert_eq!(num_levels(&SumAlgo, 2).unwrap(), 1);
        assert_eq!(num_levels(&SumAlgo, 1024).unwrap(), 10);
        assert!(num_levels(&SumAlgo, 0).is_err());
        assert!(num_levels(&SumAlgo, 3).is_err());
        assert!(num_levels(&SumAlgo, 12).is_err());
    }

    #[test]
    fn combine_contract() {
        let algo = SumAlgo;
        let src = vec![3u64, 0, 4, 0];
        let mut dst = vec![0u64; 4];
        let mut ch = CountingCharge::default();
        algo.combine(&src, &mut dst, &mut ch);
        assert_eq!(dst[0], 7);
        assert_eq!(ch.ops, 1);
        assert_eq!(ch.mem, 3);
    }

    #[test]
    fn default_gpu_level_runs_combine() {
        use hpu_machine::MachineConfig;
        let mut gpu = SimGpu::new(MachineConfig::tiny().gpu);
        let algo = SumAlgo;
        let mut src = gpu.alloc::<u64>(8).unwrap();
        let mut dst = gpu.alloc::<u64>(8).unwrap();
        // src holds 4 solved chunks of size 2 with sums in slots 0,2,4,6.
        gpu.launch("init", 8, &mut src, |id, ctx, d| {
            d[id] = id as u64;
            ctx.write(0, id, 1, 1);
        })
        .unwrap();
        let st = algo
            .gpu_level(
                &mut gpu,
                &mut src,
                &mut dst,
                &LevelInfo { chunk: 2, tasks: 4 },
            )
            .unwrap();
        assert_eq!(st.items, 4);
        // Chunk k combines src[2k] + src[2k+1].
        assert_eq!(dst.debug_view()[0], 1);
        assert_eq!(dst.debug_view()[6], 6 + 7);
        // Generic translation scatters: nothing coalesces.
        assert_eq!(st.coalesced, 0);
        assert!(st.uncoalesced > 0);
    }

    #[test]
    fn default_gpu_base_level_charges_leaves() {
        use hpu_machine::MachineConfig;
        let mut gpu = SimGpu::new(MachineConfig::tiny().gpu);
        let algo = SumAlgo;
        let mut buf = gpu.alloc::<u64>(16).unwrap();
        let st = algo.gpu_base_level(&mut gpu, &mut buf, 16).unwrap();
        assert_eq!(st.items, 16);
        assert_eq!(st.waves, 2); // 16 items / 8 lanes
    }
}
