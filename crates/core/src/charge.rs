//! Cost-charging abstraction shared by all executors.
//!
//! Algorithm code (base cases, combines) declares its cost through a
//! [`Charge`] so the *same* implementation runs unmodified on the simulated
//! CPU (charging a [`hpu_machine::CpuCtx`]), on the simulated GPU (charging
//! a [`hpu_machine::GpuCtx`] as scattered accesses), or natively (charges
//! discarded).

use hpu_machine::{CpuCtx, GpuCtx};

/// Sink for the abstract cost of a piece of algorithm work.
pub trait Charge {
    /// Charges `n` scalar operations (comparisons, arithmetic).
    fn ops(&mut self, n: u64);
    /// Charges `n` memory operations (element reads/writes) with no
    /// declared structure.
    fn mem(&mut self, n: u64);
}

/// Discards all charges — used by the native (real-thread) executors,
/// where wall-clock time is the measurement.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCharge;

impl Charge for NullCharge {
    #[inline]
    fn ops(&mut self, _n: u64) {}
    #[inline]
    fn mem(&mut self, _n: u64) {}
}

impl Charge for CpuCtx {
    #[inline]
    fn ops(&mut self, n: u64) {
        self.charge_ops(n);
    }
    #[inline]
    fn mem(&mut self, n: u64) {
        self.charge_mem(n);
    }
}

/// Adapts a GPU work-item context into a [`Charge`]: unstructured memory
/// charges become scattered (never-coalesced) accesses on buffer 0. This is
/// what the *generic* GPU translation uses — a kernel that knows nothing
/// about its access pattern cannot coalesce; algorithms that implement an
/// explicit layout (paper §6.3) bypass this adapter and declare streams.
#[derive(Debug)]
pub struct GpuCharge<'a>(pub &'a mut GpuCtx);

impl Charge for GpuCharge<'_> {
    #[inline]
    fn ops(&mut self, n: u64) {
        self.0.charge_ops(n);
    }
    #[inline]
    fn mem(&mut self, n: u64) {
        self.0.scatter_read(0, n as usize);
    }
}

/// Accumulates charges into plain counters — used by tests and by the
/// tree-form breadth-first executor to cost whole levels.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingCharge {
    /// Scalar operations charged.
    pub ops: u64,
    /// Memory operations charged.
    pub mem: u64,
}

impl Charge for CountingCharge {
    #[inline]
    fn ops(&mut self, n: u64) {
        self.ops += n;
    }
    #[inline]
    fn mem(&mut self, n: u64) {
        self.mem += n;
    }
}

impl CountingCharge {
    /// Total cost in CPU time units (memory factor 1).
    pub fn total(&self) -> u64 {
        self.ops + self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_charge_accumulates() {
        let mut c = CountingCharge::default();
        c.ops(3);
        c.mem(4);
        c.ops(1);
        assert_eq!(c.ops, 4);
        assert_eq!(c.mem, 4);
        assert_eq!(c.total(), 8);
    }

    #[test]
    fn null_charge_is_free() {
        let mut c = NullCharge;
        c.ops(1_000_000);
        c.mem(1_000_000);
    }
}
