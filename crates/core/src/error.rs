//! Error type for the framework.

use std::fmt;

use hpu_machine::MachineError;

/// Errors raised by framework executors.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The input length is not `base_chunk · a^k` for any `k ≥ 0`, which
    /// the in-place breadth-first executors require (the paper likewise
    /// assumes power-of-`b` inputs, §6 footnote 4). Pad the input (e.g.
    /// with a sentinel) or use the tree-form executors.
    InvalidSize {
        /// Offending input length.
        len: usize,
        /// Required branching factor.
        branching: usize,
        /// Required base-chunk size.
        base_chunk: usize,
    },
    /// The requested schedule parameter is outside the tree, e.g. a
    /// transfer level deeper than the recursion.
    InvalidLevel {
        /// Requested level (from the top).
        level: u32,
        /// Number of levels in the tree.
        levels: u32,
    },
    /// The split ratio `α` must leave at least one task on each side at the
    /// transfer level.
    InvalidAlpha {
        /// Offending ratio.
        alpha: f64,
    },
    /// Empty input.
    EmptyInput,
    /// A plan violated an interpreter invariant — e.g. a device band with
    /// no preceding upload edge, or a placement the backend cannot execute.
    MalformedPlan {
        /// The invariant that was violated.
        reason: &'static str,
    },
    /// An underlying simulated-machine fault.
    Machine(MachineError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidSize {
                len,
                branching,
                base_chunk,
            } => write!(
                f,
                "input length {len} is not base_chunk({base_chunk}) times a power of {branching}"
            ),
            CoreError::InvalidLevel { level, levels } => {
                write!(f, "level {level} outside recursion tree of {levels} levels")
            }
            CoreError::InvalidAlpha { alpha } => {
                write!(f, "alpha {alpha} leaves a side of the split empty")
            }
            CoreError::EmptyInput => write!(f, "input is empty"),
            CoreError::MalformedPlan { reason } => {
                write!(f, "malformed execution plan: {reason}")
            }
            CoreError::Machine(e) => write!(f, "machine fault: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for CoreError {
    fn from(e: MachineError) -> Self {
        CoreError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidSize {
            len: 100,
            branching: 2,
            base_chunk: 1,
        };
        assert!(e.to_string().contains("100"));
        let e = CoreError::from(MachineError::EmptyLaunch);
        assert!(std::error::Error::source(&e).is_some());
        assert!(CoreError::EmptyInput.to_string().contains("empty"));
        assert!(CoreError::InvalidAlpha { alpha: 0.0 }
            .to_string()
            .contains("alpha"));
        assert!(CoreError::InvalidLevel {
            level: 9,
            levels: 4
        }
        .to_string()
        .contains('9'));
    }
}
