//! The generic plan interpreter and the backend abstraction it drives.
//!
//! [`interpret`] walks a compiled [`Plan`] segment by segment and issues
//! backend operations: level bands, transfer edges and synchronization
//! barriers. All work-division strategies — sequential, CPU-parallel,
//! GPU-only, basic crossover, advanced `(α, y)` split — execute through
//! this one driver; what differs is only the plan. A [`Backend`] supplies
//! the substrate: the simulated HPU ([`super::SimBackend`]) or the native
//! thread pool ([`super::NativeBackend`]), and future real-device backends
//! slot in the same way.

use hpu_model::{Direction, Placement, Plan, Segment, Transfer};
use hpu_obs::{EventKind, LevelBook, MetricsRegistry};

use crate::bf::{BfAlgorithm, Element};
use crate::error::CoreError;

/// A contiguous band of bottom-up executor levels handed to a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelBand {
    /// First (lowest) level of the band, inclusive. A band starting at 0
    /// executes the base cases before its combines.
    pub first: u32,
    /// Last (highest) level of the band, inclusive.
    pub last: u32,
    /// Whether the band produces the root of the recursion tree.
    pub is_root: bool,
}

/// The share of a band's tasks one [`Backend::run_level_band`] call
/// executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Share {
    /// All tasks of every level, on the CPU with `cores` cores.
    Cpu {
        /// Cores the level waves are divided among (1 = sequential).
        cores: usize,
    },
    /// All tasks of every level, on the device (the device region was
    /// established by a preceding upload edge).
    Gpu,
    /// The CPU side of a concurrent split: the first `cpu_tasks` of the
    /// `tasks` chunks at the band's top level, on `cores` cores.
    SplitCpu {
        /// Chunks at the band's top level belonging to the CPU.
        cpu_tasks: u64,
        /// Total chunks at the band's top level.
        tasks: u64,
        /// Cores the CPU share runs on.
        cores: usize,
    },
}

/// Device-access tallies of one band (all zero for CPU shares).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BandStats {
    /// Memory accesses the device served coalesced.
    pub coalesced: u64,
    /// Memory accesses the device served uncoalesced.
    pub uncoalesced: u64,
}

/// An execution substrate the plan interpreter drives.
///
/// Implementations own the data buffer and whatever machine state the
/// substrate needs (virtual clocks and device buffers for the simulator, a
/// thread pool and wall clock for native runs). The interpreter guarantees
/// the call order of a compiled plan: upload edges precede the device band
/// they feed, download edges follow it, and a sync closes every segment
/// that used the device.
pub trait Backend<T: Element, A: BfAlgorithm<T>> {
    /// Executes `share` of the levels `band.first ..= band.last`.
    fn run_level_band(
        &mut self,
        algo: &A,
        band: &LevelBand,
        share: &Share,
    ) -> Result<BandStats, CoreError>;

    /// Performs one transfer edge of the plan.
    fn transfer(&mut self, algo: &A, edge: &Transfer) -> Result<(), CoreError>;

    /// Joins the substrate's timelines (barrier).
    fn sync(&mut self);

    /// Current time on the substrate's global clock.
    fn now(&self) -> f64;

    /// Current time on the CPU timeline.
    fn cpu_clock(&self) -> f64;

    /// Current time on the GPU timeline.
    fn gpu_clock(&self) -> f64;

    /// The per-level metrics book spans are recorded into.
    fn recorder(&mut self) -> &mut LevelBook;

    /// Charges `dur` idle time on the substrate's timelines — the recovery
    /// loop's backoff between retries of a faulted segment. Simulated
    /// backends advance their virtual clocks; wall-clock backends sleep.
    fn wait(&mut self, dur: f64);

    /// Records a recovery annotation span (retry, degradation) on the
    /// substrate's trace, if it keeps one. Default: dropped.
    fn note_recovery(&mut self, _start: f64, _end: f64, _kind: EventKind) {}

    /// The live metrics registry the interpreter samples per-segment
    /// timings into, when the caller attached one. Default: none — all
    /// sampling is skipped.
    fn metrics(&self) -> Option<&MetricsRegistry> {
        None
    }

    /// Cumulative `(kernel launches, launch-overhead time)` on the
    /// substrate's device, so the interpreter can attribute per-segment
    /// deltas. Default: zeros (substrates without a device model).
    fn launch_totals(&self) -> (u64, f64) {
        (0, 0.0)
    }
}

/// Aggregated outcome of interpreting a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterpretStats {
    /// Memory accesses the device served coalesced.
    pub coalesced: u64,
    /// Memory accesses the device served uncoalesced.
    pub uncoalesced: u64,
    /// Durations of a split segment's concurrent phase on each unit
    /// (CPU, GPU including the transfer back), when the plan had one.
    pub concurrent: Option<(f64, f64)>,
}

/// Runs a compiled `plan` for `algo` on `backend`.
///
/// Segments execute bottom-up in plan order. For each segment the
/// interpreter issues the segment's upload edges, the level band (both
/// shares of a split, device side first — the shares overlap on the
/// simulator's independent virtual timelines), the download edges, and a
/// closing sync for segments that touched the device.
pub fn interpret<T: Element, A: BfAlgorithm<T>, B: Backend<T, A>>(
    plan: &Plan,
    algo: &A,
    backend: &mut B,
) -> Result<InterpretStats, CoreError> {
    let mut stats = InterpretStats::default();
    for (idx, seg) in plan.segments.iter().enumerate() {
        let r = run_segment(plan, idx, seg, algo, backend, &mut stats);
        if r.is_err() {
            backend.recorder().set_segment(None);
            return r.map(|_| stats);
        }
    }
    backend.recorder().set_segment(None);
    Ok(stats)
}

/// Retry/backoff parameters for [`interpret_recover`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Maximum retries per segment before the fault is surfaced.
    pub max_retries: u32,
    /// Backoff charged before the first retry, in cost units.
    pub backoff_base: f64,
    /// Multiplier applied to the backoff per further retry.
    pub backoff_factor: f64,
    /// Ceiling on any single backoff: `base * factor^k` grows
    /// geometrically, so without a cap a policy tuned for a few retries
    /// sleeps essentially forever once `k` climbs (on the native path the
    /// backoff is a real `thread::sleep`). `f64::INFINITY` disables the
    /// cap.
    pub max_backoff: f64,
}

impl RecoveryPolicy {
    /// The backoff charged before retry number `attempt` (0-based),
    /// clamped to [`RecoveryPolicy::max_backoff`].
    ///
    /// `powi` overflows to ∞ for large attempt counts; the clamp keeps
    /// the result finite whenever `max_backoff` is, so callers can
    /// convert to sleep durations without guarding.
    pub fn backoff_at(&self, attempt: u32) -> f64 {
        let raw = self.backoff_base * self.backoff_factor.powi(attempt as i32);
        raw.min(self.max_backoff)
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_base: 16.0,
            backoff_factor: 2.0,
            max_backoff: 1.0e6,
        }
    }
}

/// What the recovery loop observed while interpreting a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Machine faults hit (transient and terminal).
    pub faults: u32,
    /// Segment retries performed.
    pub retries: u32,
    /// Total backoff idle time charged.
    pub backoff_time: f64,
}

/// Runs a compiled `plan` like [`interpret`], retrying faulted segments.
///
/// A segment that fails with a *transient* machine fault (a dropped kernel
/// launch or a bus error) is retried whole after an exponential backoff —
/// safe because every injected fault fires before any host data mutates, so
/// re-issuing the segment's upload edges restores device state from the
/// unmodified host buffer. Non-transient errors (device loss, algorithmic
/// errors) surface immediately. Returns the recovery tallies alongside the
/// result so callers can report retry counts even for failed runs.
///
/// Level metrics booked by failed attempts are kept: they reflect work the
/// machine really executed (and paid for) before the fault.
pub fn interpret_recover<T: Element, A: BfAlgorithm<T>, B: Backend<T, A>>(
    plan: &Plan,
    algo: &A,
    backend: &mut B,
    policy: &RecoveryPolicy,
) -> (Result<InterpretStats, CoreError>, RecoveryStats) {
    let mut stats = InterpretStats::default();
    let mut rstats = RecoveryStats::default();
    for (idx, seg) in plan.segments.iter().enumerate() {
        let mut attempt: u32 = 0;
        loop {
            match run_segment(plan, idx, seg, algo, backend, &mut stats) {
                Ok(()) => break,
                Err(CoreError::Machine(e)) if e.is_transient() && attempt < policy.max_retries => {
                    rstats.faults += 1;
                    let backoff = policy.backoff_at(attempt);
                    let t0 = backend.now();
                    backend.wait(backoff);
                    attempt += 1;
                    rstats.retries += 1;
                    rstats.backoff_time += backoff;
                    backend.note_recovery(t0, backend.now(), EventKind::Retry { attempt, backoff });
                }
                Err(e) => {
                    if matches!(e, CoreError::Machine(_)) {
                        rstats.faults += 1;
                    }
                    backend.recorder().set_segment(None);
                    return (Err(e), rstats);
                }
            }
        }
    }
    backend.recorder().set_segment(None);
    (Ok(stats), rstats)
}

/// Executes one segment of the plan: uploads, the level band (both shares
/// of a split), downloads, and the closing sync for device segments.
fn run_segment<T: Element, A: BfAlgorithm<T>, B: Backend<T, A>>(
    plan: &Plan,
    idx: usize,
    seg: &Segment,
    algo: &A,
    backend: &mut B,
    stats: &mut InterpretStats,
) -> Result<(), CoreError> {
    backend.recorder().set_segment(Some(idx as u32));
    let band = LevelBand {
        first: seg.first_level,
        last: seg.last_level,
        is_root: seg.last_level == plan.exec_levels,
    };
    let uploads = seg
        .transfers
        .iter()
        .filter(|t| t.direction == Direction::ToGpu);
    let downloads = seg
        .transfers
        .iter()
        .filter(|t| t.direction == Direction::ToCpu);
    // Per-segment attribution for the live registry: everything is a
    // delta between clock (or launch-counter) reads around the backend
    // calls, so an unattached registry costs two no-op calls.
    let seg_t0 = backend.now();
    let (launches0, launch_time0) = backend.launch_totals();
    match &seg.placement {
        Placement::Cpu { cores } => {
            let t0 = backend.cpu_clock();
            backend.run_level_band(algo, &band, &Share::Cpu { cores: *cores })?;
            let dt = backend.cpu_clock() - t0;
            if let Some(m) = backend.metrics() {
                m.observe("interpret.cpu_band_time", dt);
            }
        }
        Placement::Gpu => {
            let t0 = backend.now();
            for t in uploads {
                backend.transfer(algo, t)?;
            }
            let up = backend.now() - t0;
            let k0 = backend.gpu_clock();
            let st = backend.run_level_band(algo, &band, &Share::Gpu)?;
            let kernel = backend.gpu_clock() - k0;
            stats.coalesced += st.coalesced;
            stats.uncoalesced += st.uncoalesced;
            let t1 = backend.now();
            for t in downloads {
                backend.transfer(algo, t)?;
            }
            let down = backend.now() - t1;
            backend.sync();
            if let Some(m) = backend.metrics() {
                m.observe("interpret.transfer_time", up + down);
                m.observe("interpret.kernel_time", kernel);
            }
        }
        Placement::Split {
            cpu_tasks, tasks, ..
        } => {
            let t0 = backend.now();
            for t in uploads {
                backend.transfer(algo, t)?;
            }
            let up = backend.now() - t0;
            // The concurrent phase starts once both units hold their
            // shares; the device's share ends with its transfer back.
            let t_fork = backend.now();
            let st = backend.run_level_band(algo, &band, &Share::Gpu)?;
            stats.coalesced += st.coalesced;
            stats.uncoalesced += st.uncoalesced;
            for t in downloads {
                backend.transfer(algo, t)?;
            }
            let gpu_phase = backend.gpu_clock() - t_fork;
            backend.run_level_band(
                algo,
                &band,
                &Share::SplitCpu {
                    cpu_tasks: *cpu_tasks,
                    tasks: *tasks,
                    cores: cpu_cores_of(plan),
                },
            )?;
            let cpu_phase = backend.cpu_clock() - t_fork;
            backend.sync();
            stats.concurrent = Some((cpu_phase, gpu_phase));
            if let Some(m) = backend.metrics() {
                m.observe("interpret.transfer_time", up);
                m.observe("interpret.kernel_time", gpu_phase);
                m.observe("interpret.cpu_band_time", cpu_phase);
            }
        }
    }
    let seg_dt = backend.now() - seg_t0;
    let (launches1, launch_time1) = backend.launch_totals();
    if let Some(m) = backend.metrics() {
        m.observe("interpret.segment_time", seg_dt);
        m.inc("interpret.segments", 1);
        let dl = launches1.saturating_sub(launches0);
        if dl > 0 {
            m.inc("interpret.gpu_launches", dl);
            m.observe("interpret.launch_overhead", launch_time1 - launch_time0);
        }
    }
    Ok(())
}

/// The CPU core count a plan's host segments use (the split's CPU share
/// runs on the same cores as the cleanup band above it).
fn cpu_cores_of(plan: &Plan) -> usize {
    plan.segments
        .iter()
        .find_map(|s| match s.placement {
            Placement::Cpu { cores } => Some(cores),
            _ => None,
        })
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::RecoveryPolicy;

    #[test]
    fn backoff_sequence_is_geometric_then_clamped() {
        let policy = RecoveryPolicy {
            max_retries: 8,
            backoff_base: 50.0,
            backoff_factor: 2.0,
            max_backoff: 500.0,
        };
        let delays: Vec<f64> = (0..8).map(|k| policy.backoff_at(k)).collect();
        // Regression: the unclamped formula gave 50, 100, 200, 400, 800,
        // 1600, 3200, 6400 — everything past the cap now pins at 500.
        assert_eq!(
            delays,
            vec![50.0, 100.0, 200.0, 400.0, 500.0, 500.0, 500.0, 500.0]
        );
    }

    #[test]
    fn backoff_stays_finite_even_when_powi_overflows() {
        let policy = RecoveryPolicy {
            max_retries: u32::MAX,
            backoff_base: 1.0e300,
            backoff_factor: 10.0,
            ..RecoveryPolicy::default()
        };
        let d = policy.backoff_at(400);
        assert!(d.is_finite(), "clamp must tame the overflowed product");
        assert_eq!(d, policy.max_backoff);
    }

    #[test]
    fn default_cap_leaves_the_default_sequence_alone() {
        let policy = RecoveryPolicy::default();
        for k in 0..=policy.max_retries {
            assert_eq!(
                policy.backoff_at(k),
                policy.backoff_base * policy.backoff_factor.powi(k as i32)
            );
        }
    }
}
