//! CPU-side breadth-first execution on the simulated machine.

use hpu_machine::{CpuCtx, LevelPhase, SimCpu, SimHpu};
use hpu_obs::LevelBook;

use crate::bf::{BfAlgorithm, Element};
use crate::error::CoreError;

/// Runs the base-case level and the combine levels up to runs of
/// `to_chunk` elements on `cores` simulated cores, ping-ponging between
/// `data` and `scratch`, booking every level's metrics. Returns `true` when
/// the result ended up in `data`, `false` when it is in `scratch`.
pub(crate) fn run_levels_cpu<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    cpu: &mut SimCpu,
    data: &mut [T],
    scratch: &mut [T],
    to_chunk: usize,
    cores: usize,
    book: &mut LevelBook,
) -> bool {
    let a = algo.branching();
    let base = algo.base_chunk();
    debug_assert_eq!(data.len(), scratch.len());

    let run = cpu.run_level_obs(
        cores,
        algo.name(),
        LevelPhase::Base,
        base as u64,
        data.chunks_mut(base)
            .map(|c| move |ctx: &mut CpuCtx| algo.base_case(c, ctx)),
    );
    book.cpu(base as u64, run.tasks, run.ops, run.mem, run.start, run.end);

    let mut chunk = base.saturating_mul(a);
    let mut src_is_data = true;
    while chunk <= to_chunk && chunk <= data.len() {
        if src_is_data {
            run_combine_level(algo, cpu, data, scratch, chunk, cores, book);
        } else {
            run_combine_level(algo, cpu, scratch, data, chunk, cores, book);
        }
        src_is_data = !src_is_data;
        chunk = chunk.saturating_mul(a);
    }
    src_is_data
}

fn run_combine_level<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    cpu: &mut SimCpu,
    src: &[T],
    dst: &mut [T],
    chunk: usize,
    cores: usize,
    book: &mut LevelBook,
) {
    let run = cpu.run_level_obs(
        cores,
        algo.name(),
        LevelPhase::Combine,
        chunk as u64,
        src.chunks(chunk)
            .zip(dst.chunks_mut(chunk))
            .map(|(s, d)| move |ctx: &mut CpuCtx| algo.combine(s, d, ctx)),
    );
    book.cpu(
        chunk as u64,
        run.tasks,
        run.ops,
        run.mem,
        run.start,
        run.end,
    );
}

/// Copies `src` into `dst` as a level of chunked tasks (2 memory ops per
/// element), used when a run's ping-pong parity leaves the result in the
/// scratch buffer. The span is booked against `owner_chunk` — the chunk
/// size of the level whose results are being moved.
pub(crate) fn copy_level<T: Element>(
    cpu: &mut SimCpu,
    src: &[T],
    dst: &mut [T],
    chunk: usize,
    cores: usize,
    book: &mut LevelBook,
    owner_chunk: u64,
) {
    let chunk = chunk.min(src.len()).max(1);
    let run = cpu.run_level_obs(
        cores,
        "copy back",
        LevelPhase::CopyBack,
        owner_chunk,
        src.chunks(chunk).zip(dst.chunks_mut(chunk)).map(|(s, d)| {
            move |ctx: &mut CpuCtx| {
                d.copy_from_slice(s);
                ctx.charge_mem(2 * s.len() as u64);
            }
        }),
    );
    book.cpu(owner_chunk, 0, run.ops, run.mem, run.start, run.end);
}

/// Full CPU-only run (all levels), result guaranteed back in `data`.
pub(crate) fn run_cpu_only<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    cores: usize,
    book: &mut LevelBook,
) -> Result<(), CoreError> {
    let n = data.len();
    let mut scratch = vec![T::default(); n];
    hpu.cpu.set_footprint(2 * n * std::mem::size_of::<T>());
    let in_data = run_levels_cpu(algo, &mut hpu.cpu, data, &mut scratch, n, cores, book);
    if !in_data {
        copy_level(
            &mut hpu.cpu,
            &scratch,
            data,
            n.div_ceil(cores.max(1)),
            cores,
            book,
            n as u64,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::Charge;
    use hpu_machine::CpuConfig;
    use hpu_model::Recurrence;

    /// Chunk solution = max of the chunk, kept in slot 0.
    struct MaxAlgo;
    impl BfAlgorithm<u32> for MaxAlgo {
        fn name(&self) -> &'static str {
            "max"
        }
        fn base_case(&self, _c: &mut [u32], ch: &mut dyn Charge) {
            ch.ops(1);
        }
        fn combine(&self, src: &[u32], dst: &mut [u32], ch: &mut dyn Charge) {
            dst[0] = src[0].max(src[src.len() / 2]);
            ch.ops(1);
            ch.mem(3);
        }
        fn recurrence(&self) -> Recurrence {
            Recurrence::dc_sum()
        }
    }

    #[test]
    fn partial_climb_stops_at_to_chunk() {
        let mut cpu = SimCpu::new(CpuConfig::uniform(2));
        let mut data: Vec<u32> = vec![3, 9, 1, 4, 1, 5, 9, 2];
        let mut scratch = vec![0u32; 8];
        let mut book = LevelBook::new(1, 2);
        // Climb only to runs of 4: two partial maxima, no root combine.
        let in_data = run_levels_cpu(&MaxAlgo, &mut cpu, &mut data, &mut scratch, 4, 2, &mut book);
        // Two combine levels (chunk 2 and 4): result in data again.
        assert!(in_data);
        assert_eq!(data[0], 9);
        assert_eq!(data[4], 9);
        // Booked: base level plus chunks 2 and 4.
        let levels = book.finish();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].tasks, 8);
        assert_eq!(levels[1].chunk, 2);
        assert_eq!(levels[2].chunk, 4);
        assert_eq!(levels[2].tasks, 2);
    }

    #[test]
    fn copy_level_charges_two_mem_per_element() {
        let mut cpu = SimCpu::new(CpuConfig::uniform(1));
        let src: Vec<u32> = (0..16).collect();
        let mut dst = vec![0u32; 16];
        let mut book = LevelBook::new(1, 2);
        copy_level(&mut cpu, &src, &mut dst, 4, 1, &mut book, 16);
        assert_eq!(dst, src);
        assert_eq!(cpu.clock(), 32.0);
        let levels = book.finish();
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].level, 4, "booked against the owner chunk");
        assert_eq!(levels[0].mem, 32);
    }

    #[test]
    fn single_chunk_input_runs_base_only() {
        let mut cpu = SimCpu::new(CpuConfig::uniform(2));
        let mut data = vec![7u32];
        let mut scratch = vec![0u32];
        let mut book = LevelBook::new(1, 2);
        let in_data = run_levels_cpu(&MaxAlgo, &mut cpu, &mut data, &mut scratch, 1, 2, &mut book);
        assert!(in_data);
        assert_eq!(cpu.clock(), 1.0); // one leaf op, no combines
    }
}
