//! GPU-side breadth-first execution on the simulated device.

use hpu_machine::{DeviceBuffer, SimGpu, SimHpu};
use hpu_obs::LevelBook;

use crate::bf::{BfAlgorithm, Element, LevelInfo};
use crate::error::CoreError;

/// Outcome of running device levels: where the result lives and the
/// coalescing tally.
pub(crate) struct GpuRun {
    /// `true` if the result is in the first (upload) buffer.
    pub in_first: bool,
    /// Coalesced accesses across all launches.
    pub coalesced: u64,
    /// Uncoalesced accesses across all launches.
    pub uncoalesced: u64,
}

/// Runs the base level plus combines up to runs of `to_chunk` elements on
/// the device, ping-ponging `buf_a` → `buf_b`, booking every level's span
/// off the device clock.
pub(crate) fn run_levels_gpu<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    gpu: &mut SimGpu,
    buf_a: &mut DeviceBuffer<T>,
    buf_b: &mut DeviceBuffer<T>,
    to_chunk: usize,
    book: &mut LevelBook,
) -> Result<GpuRun, CoreError> {
    let a = algo.branching();
    let base = algo.base_chunk();
    let n = buf_a.len();
    let mut coalesced = 0u64;
    let mut uncoalesced = 0u64;

    let t0 = gpu.clock();
    let st = algo.gpu_base_level(gpu, buf_a, n / base)?;
    book.gpu(
        base as u64,
        (n / base) as u64,
        st.coalesced,
        st.uncoalesced,
        t0,
        gpu.clock(),
    );
    coalesced += st.coalesced;
    uncoalesced += st.uncoalesced;

    let mut chunk = base.saturating_mul(a);
    let mut in_first = true;
    while chunk <= to_chunk && chunk <= n {
        let level = LevelInfo {
            chunk,
            tasks: n / chunk,
        };
        let t0 = gpu.clock();
        let st = if in_first {
            algo.gpu_level(gpu, buf_a, buf_b, &level)?
        } else {
            algo.gpu_level(gpu, buf_b, buf_a, &level)?
        };
        book.gpu(
            chunk as u64,
            level.tasks as u64,
            st.coalesced,
            st.uncoalesced,
            t0,
            gpu.clock(),
        );
        coalesced += st.coalesced;
        uncoalesced += st.uncoalesced;
        in_first = !in_first;
        chunk = chunk.saturating_mul(a);
    }
    // Give layout-maintaining algorithms a chance to restore the
    // contiguous-chunk layout before download.
    let final_chunk = (chunk / a).max(base);
    let final_level = LevelInfo {
        chunk: final_chunk,
        tasks: n / final_chunk,
    };
    let t0 = gpu.clock();
    let fin = if in_first {
        algo.gpu_finalize(gpu, buf_a, buf_b, &final_level)?
    } else {
        algo.gpu_finalize(gpu, buf_b, buf_a, &final_level)?
    };
    if let Some(st) = fin {
        // A finalize pass reshuffles data already produced: book its span
        // and accesses against the finished level but no new tasks.
        book.gpu(
            final_chunk as u64,
            0,
            st.coalesced,
            st.uncoalesced,
            t0,
            gpu.clock(),
        );
        coalesced += st.coalesced;
        uncoalesced += st.uncoalesced;
        in_first = !in_first;
    }
    Ok(GpuRun {
        in_first,
        coalesced,
        uncoalesced,
    })
}

/// Full GPU-only run: upload, all levels on the device, download — the
/// comparison point of the paper's Figure 9.
pub(crate) fn run_gpu_only<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    book: &mut LevelBook,
) -> Result<(u64, u64), CoreError> {
    let n = data.len();
    let t0 = hpu.elapsed();
    let mut buf_a = hpu.upload(data)?;
    // The upload precedes any device work: booked against level 0.
    book.transfer(algo.base_chunk() as u64, n as u64, t0, hpu.elapsed());
    let mut buf_b = match hpu.gpu.alloc::<T>(n) {
        Ok(b) => b,
        Err(e) => {
            hpu.gpu.free(buf_a);
            return Err(e.into());
        }
    };
    let run = run_levels_gpu(algo, &mut hpu.gpu, &mut buf_a, &mut buf_b, n, book);
    let run = match run {
        Ok(r) => r,
        Err(e) => {
            hpu.gpu.free(buf_a);
            hpu.gpu.free(buf_b);
            return Err(e);
        }
    };
    let result = if run.in_first { &buf_a } else { &buf_b };
    let g0 = hpu.gpu.clock();
    let out = hpu.download(result);
    // The download carries the finished root back: booked at chunk n.
    book.transfer(n as u64, n as u64, g0, hpu.gpu.clock());
    data.copy_from_slice(&out);
    hpu.gpu.free(buf_a);
    hpu.gpu.free(buf_b);
    hpu.sync();
    Ok((run.coalesced, run.uncoalesced))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::Charge;
    use hpu_machine::MachineConfig;
    use hpu_model::Recurrence;

    struct SumAlgo;
    impl BfAlgorithm<u64> for SumAlgo {
        fn name(&self) -> &'static str {
            "sum"
        }
        fn base_case(&self, _c: &mut [u64], ch: &mut dyn Charge) {
            ch.ops(1);
        }
        fn combine(&self, src: &[u64], dst: &mut [u64], ch: &mut dyn Charge) {
            dst[0] = src[0] + src[src.len() / 2];
            ch.ops(1);
            ch.mem(3);
        }
        fn recurrence(&self) -> Recurrence {
            Recurrence::dc_sum()
        }
    }

    #[test]
    fn ping_pong_parity_tracked() {
        let mut gpu = SimGpu::new(MachineConfig::tiny().gpu);
        let mut book = LevelBook::new(1, 2);
        let mut a = gpu.alloc::<u64>(8).unwrap();
        let mut b = gpu.alloc::<u64>(8).unwrap();
        a.debug_fill(&[1, 2, 3, 4, 5, 6, 7, 8]);
        // 3 combine levels: result lands in the *other* buffer.
        let run = run_levels_gpu(&SumAlgo, &mut gpu, &mut a, &mut b, 8, &mut book).unwrap();
        assert!(!run.in_first);
        assert_eq!(b.debug_view()[0], 36);
        // Booked: base + chunks 2, 4, 8 on the GPU clock.
        let levels = book.finish();
        assert_eq!(levels.len(), 4);
        assert!(levels.iter().all(|l| l.gpu_time > 0.0));
        assert_eq!(levels[3].chunk, 8);
        assert_eq!(levels[3].tasks, 1);
        // 2 combine levels only: result back in the first buffer... no —
        // two levels means one swap then another: in_first again.
        let mut book2 = LevelBook::new(1, 2);
        let mut a2 = gpu.alloc::<u64>(4).unwrap();
        let mut b2 = gpu.alloc::<u64>(4).unwrap();
        a2.debug_fill(&[1, 2, 3, 4]);
        let run2 = run_levels_gpu(&SumAlgo, &mut gpu, &mut a2, &mut b2, 4, &mut book2).unwrap();
        assert!(run2.in_first);
        assert_eq!(a2.debug_view()[0], 10);
    }

    #[test]
    fn partial_climb_leaves_partial_sums() {
        let mut gpu = SimGpu::new(MachineConfig::tiny().gpu);
        let mut book = LevelBook::new(1, 2);
        let mut a = gpu.alloc::<u64>(8).unwrap();
        let mut b = gpu.alloc::<u64>(8).unwrap();
        a.debug_fill(&[1, 1, 1, 1, 2, 2, 2, 2]);
        // Climb to runs of 4 only.
        let run = run_levels_gpu(&SumAlgo, &mut gpu, &mut a, &mut b, 4, &mut book).unwrap();
        let result = if run.in_first {
            a.debug_view()
        } else {
            b.debug_view()
        };
        assert_eq!(result[0], 4);
        assert_eq!(result[4], 8);
    }
}
