//! The hybrid executors: basic (§5.1) and advanced (§5.2) work divisions.

use hpu_machine::{LevelPhase, SimHpu};
use hpu_obs::LevelBook;

use crate::bf::{num_levels, BfAlgorithm, Element};
use crate::error::CoreError;
use crate::exec::cpu::{copy_level, run_levels_cpu};
use crate::exec::gpu::run_levels_gpu;

/// Device-side accounting returned by the hybrid executors.
pub(crate) struct HybridStats {
    pub coalesced: u64,
    pub uncoalesced: u64,
    /// Durations of the concurrent phase on each unit (CPU, GPU incl. the
    /// transfer back) — advanced schedule only.
    pub concurrent: Option<(f64, f64)>,
}

/// Basic hybrid division: the GPU executes the leaves and every level with
/// at least `a^crossover` tasks (one upload before, one download after);
/// the CPU finishes the top levels. Exactly one round trip of data.
pub(crate) fn run_basic<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    crossover: u32,
    book: &mut LevelBook,
) -> Result<HybridStats, CoreError> {
    let n = data.len();
    let levels = num_levels(algo, n)?;
    if crossover > levels {
        return Err(CoreError::InvalidLevel {
            level: crossover,
            levels,
        });
    }
    let a = algo.branching();
    // Largest chunk the GPU builds: n / a^crossover.
    let gpu_to_chunk = n / a.pow(crossover);

    let t0 = hpu.elapsed();
    let mut buf_a = hpu.upload(data)?;
    // Upload precedes device work: booked against level 0.
    book.transfer(algo.base_chunk() as u64, n as u64, t0, hpu.elapsed());
    let mut buf_b = match hpu.gpu.alloc::<T>(n) {
        Ok(b) => b,
        Err(e) => {
            hpu.gpu.free(buf_a);
            return Err(e.into());
        }
    };
    let run = match run_levels_gpu(
        algo,
        &mut hpu.gpu,
        &mut buf_a,
        &mut buf_b,
        gpu_to_chunk,
        book,
    ) {
        Ok(r) => r,
        Err(e) => {
            hpu.gpu.free(buf_a);
            hpu.gpu.free(buf_b);
            return Err(e);
        }
    };
    let result = if run.in_first { &buf_a } else { &buf_b };
    let g0 = hpu.gpu.clock();
    let out = hpu.download(result);
    // The download hands back the crossover-level chunks.
    book.transfer(gpu_to_chunk as u64, n as u64, g0, hpu.gpu.clock());
    data.copy_from_slice(&out);
    hpu.gpu.free(buf_a);
    hpu.gpu.free(buf_b);
    // The CPU's first combine level depends on the downloaded data.
    hpu.sync();

    if gpu_to_chunk < n {
        let mut scratch = vec![T::default(); n];
        let cores = hpu.config().cpu.cores;
        hpu.cpu.set_footprint(2 * n * std::mem::size_of::<T>());
        let in_data =
            run_cpu_combines_from(algo, hpu, data, &mut scratch, gpu_to_chunk * a, cores, book);
        if !in_data {
            copy_level(
                &mut hpu.cpu,
                &scratch,
                data,
                n.div_ceil(cores),
                cores,
                book,
                n as u64,
            );
        }
    }
    Ok(HybridStats {
        coalesced: run.coalesced,
        uncoalesced: run.uncoalesced,
        concurrent: None,
    })
}

/// Runs CPU combine levels starting at `from_chunk` (inclusive) up to the
/// whole array; returns `true` if the result ended in `data`.
fn run_cpu_combines_from<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    hpu: &mut SimHpu,
    data: &mut [T],
    scratch: &mut [T],
    from_chunk: usize,
    cores: usize,
    book: &mut LevelBook,
) -> bool {
    let a = algo.branching();
    let n = data.len();
    let mut chunk = from_chunk;
    let mut src_is_data = true;
    while chunk <= n {
        if src_is_data {
            run_one_level(algo, hpu, data, scratch, chunk, cores, book);
        } else {
            run_one_level(algo, hpu, scratch, data, chunk, cores, book);
        }
        src_is_data = !src_is_data;
        chunk = chunk.saturating_mul(a);
    }
    src_is_data
}

fn run_one_level<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    hpu: &mut SimHpu,
    src: &[T],
    dst: &mut [T],
    chunk: usize,
    cores: usize,
    book: &mut LevelBook,
) {
    let run = hpu.cpu.run_level_obs(
        cores,
        algo.name(),
        LevelPhase::Combine,
        chunk as u64,
        src.chunks(chunk)
            .zip(dst.chunks_mut(chunk))
            .map(|(s, d)| move |ctx: &mut hpu_machine::CpuCtx| algo.combine(s, d, ctx)),
    );
    book.cpu(
        chunk as u64,
        run.tasks,
        run.ops,
        run.mem,
        run.start,
        run.end,
    );
}

/// Advanced hybrid division (§5.2, Figure 2, Algorithm 8):
///
/// 1. Split the input at the chunk grid of `transfer_level`:
///    `⌈α·a^y⌉` chunks to the CPU, the rest to the GPU.
/// 2. Upload the GPU share (transfer 1), then run both regions bottom-up
///    to runs of `chunk_y` elements *concurrently* (independent virtual
///    timelines); the GPU's results come back overlapping CPU work
///    (transfer 2).
/// 3. Join, then the CPU alone combines the remaining top levels.
pub(crate) fn run_advanced<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    alpha: f64,
    transfer_level: u32,
    book: &mut LevelBook,
) -> Result<HybridStats, CoreError> {
    let n = data.len();
    let levels = num_levels(algo, n)?;
    if transfer_level == 0 || transfer_level > levels {
        return Err(CoreError::InvalidLevel {
            level: transfer_level,
            levels,
        });
    }
    if !(0.0..=1.0).contains(&alpha) || !alpha.is_finite() {
        return Err(CoreError::InvalidAlpha { alpha });
    }
    let a = algo.branching();
    let tasks_y = a.pow(transfer_level);
    if tasks_y < 2 {
        return Err(CoreError::InvalidLevel {
            level: transfer_level,
            levels,
        });
    }
    let chunk_y = n / tasks_y;
    let cpu_tasks = ((alpha * tasks_y as f64).round() as usize).clamp(1, tasks_y - 1);
    let cpu_elems = cpu_tasks * chunk_y;
    let cores = hpu.config().cpu.cores;
    let elem_bytes = std::mem::size_of::<T>();

    // --- fork -----------------------------------------------------------
    hpu.sync();
    let (cpu_region, gpu_region) = data.split_at_mut(cpu_elems);

    // Transfer 1: the GPU share goes to the device (blocking upload; the
    // paper's schedule also starts with this single transfer down).
    let t0 = hpu.elapsed();
    let mut buf_a = hpu.upload(gpu_region)?;
    book.transfer(
        algo.base_chunk() as u64,
        gpu_region.len() as u64,
        t0,
        hpu.elapsed(),
    );
    // The concurrent phase starts once both units hold their shares.
    let t_fork = hpu.elapsed();
    let mut buf_b = match hpu.gpu.alloc::<T>(gpu_region.len()) {
        Ok(b) => b,
        Err(e) => {
            hpu.gpu.free(buf_a);
            return Err(e.into());
        }
    };

    // GPU timeline: climb to chunk_y, then send results back (transfer 2).
    let run = match run_levels_gpu(algo, &mut hpu.gpu, &mut buf_a, &mut buf_b, chunk_y, book) {
        Ok(r) => r,
        Err(e) => {
            hpu.gpu.free(buf_a);
            hpu.gpu.free(buf_b);
            return Err(e);
        }
    };
    let result = if run.in_first { &buf_a } else { &buf_b };
    let g0 = hpu.gpu.clock();
    let out = hpu.download(result);
    // The download hands back the transfer-level chunks.
    book.transfer(chunk_y as u64, gpu_region.len() as u64, g0, hpu.gpu.clock());
    gpu_region.copy_from_slice(&out);
    hpu.gpu.free(buf_a);
    hpu.gpu.free(buf_b);
    let gpu_phase = hpu.gpu.clock() - t_fork;

    // CPU timeline (concurrent with the GPU work above): climb the CPU
    // region to chunk_y.
    let mut scratch = vec![T::default(); n];
    hpu.cpu.set_footprint(2 * cpu_elems * elem_bytes);
    let in_data = run_levels_cpu(
        algo,
        &mut hpu.cpu,
        cpu_region,
        &mut scratch[..cpu_elems],
        chunk_y,
        cores,
        book,
    );
    if !in_data {
        copy_level(
            &mut hpu.cpu,
            &scratch[..cpu_elems],
            cpu_region,
            chunk_y,
            cores,
            book,
            chunk_y as u64,
        );
    }

    let cpu_phase = hpu.cpu.clock() - t_fork;

    // --- join: the cleanup combines depend on both regions ---------------
    hpu.sync();

    hpu.cpu.set_footprint(2 * n * elem_bytes);
    let in_data = run_cpu_combines_from(algo, hpu, data, &mut scratch, chunk_y * a, cores, book);
    if !in_data {
        copy_level(
            &mut hpu.cpu,
            &scratch,
            data,
            n.div_ceil(cores),
            cores,
            book,
            n as u64,
        );
    }
    Ok(HybridStats {
        coalesced: run.coalesced,
        uncoalesced: run.uncoalesced,
        concurrent: Some((cpu_phase, gpu_phase)),
    })
}
