//! Executors and scheduling strategies for breadth-first D&C algorithms on
//! the simulated HPU.
//!
//! [`run_sim`] is the single entry point: it validates the input, resolves
//! the [`Strategy`] (deriving model parameters where asked to), dispatches
//! to the matching executor and returns a [`RunReport`] with virtual-time,
//! communication and per-level accounting plus a model-vs-simulation drift
//! report.

mod cpu;
mod gpu;
mod hybrid;
mod native;

pub use native::{run_native, run_native_report, NativeReport};

use hpu_machine::SimHpu;
use hpu_model::{predict_levels, BasicSchedule, LevelProfile, MachineParams, PlannedSchedule};
use hpu_obs::{drift_rows, LevelBook, LevelDrift, LevelMetrics};

use crate::bf::{num_levels, BfAlgorithm, Element};
use crate::error::CoreError;

/// Work-division strategy for a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Everything on one CPU core — the paper's baseline.
    Sequential,
    /// Breadth-first levels on all `p` CPU cores.
    CpuOnly,
    /// Every level (and the leaves) on the GPU, one round trip of data.
    GpuOnly,
    /// The basic hybrid division (§5.1): levels below the crossover on the
    /// GPU, the rest on the CPU. `crossover = None` derives the level
    /// `⌈log_a(p/γ)⌉` from the machine configuration and the algorithm's
    /// recurrence.
    Basic {
        /// First level (from the top) executed on the GPU.
        crossover: Option<u32>,
    },
    /// The advanced hybrid division (§5.2): split the input `α : 1−α`
    /// between CPU and GPU, run both concurrently bottom-up, GPU transfers
    /// back at level `transfer_level` (from the top), CPU finishes.
    Advanced {
        /// Fraction of subproblems assigned to the CPU.
        alpha: f64,
        /// Level (from the top) at which the GPU hands its results back.
        transfer_level: u32,
    },
}

/// Accounting of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Human-readable description of the resolved strategy.
    pub label: String,
    /// Virtual time the run took (makespan over both units).
    pub virtual_time: f64,
    /// Number of CPU↔GPU transfers performed.
    pub transfers: u64,
    /// Words moved across the bus.
    pub words: u64,
    /// Memory accesses the device served coalesced.
    pub coalesced: u64,
    /// Memory accesses the device served uncoalesced.
    pub uncoalesced: u64,
    /// Total busy core-time on the CPU.
    pub cpu_busy: f64,
    /// Total busy time on the GPU.
    pub gpu_busy: f64,
    /// The strategy after parameter resolution (e.g. derived crossover).
    pub resolved: Strategy,
    /// Durations of the advanced schedule's concurrent phase on each unit
    /// (CPU, GPU including the transfer back): the paper's "GPU/CPU" ratio
    /// of Figure 8 is `concurrent.1 / concurrent.0`.
    pub concurrent: Option<(f64, f64)>,
    /// Per-level metrics (bottom-up: level 0 = base cases), aggregated from
    /// the structured execution spans.
    pub levels: Vec<LevelMetrics>,
    /// Per-level analytic prediction vs. simulated time for the resolved
    /// strategy (same bottom-up indexing as [`RunReport::levels`]).
    pub drift: Vec<LevelDrift>,
}

/// Extracts analytic-model machine parameters from a simulated machine's
/// configuration (`p` = cores, `g` = lanes, `γ` = 1/gamma_inv, `λ`/`δ`
/// from the bus).
pub fn model_params(hpu: &SimHpu) -> MachineParams {
    let cfg = hpu.config();
    MachineParams::new(cfg.cpu.cores, cfg.gpu.lanes, 1.0 / cfg.gpu.gamma_inv)
        .expect("simulated machine configuration is always valid")
        .with_transfer_cost(cfg.bus.lambda, cfg.bus.delta)
}

/// The analytic plan a resolved strategy corresponds to, for per-level
/// prediction.
fn plan_of(resolved: &Strategy) -> PlannedSchedule {
    match resolved {
        Strategy::Sequential => PlannedSchedule::Sequential,
        Strategy::CpuOnly => PlannedSchedule::CpuParallel,
        Strategy::GpuOnly => PlannedSchedule::GpuOnly,
        Strategy::Basic { crossover } => PlannedSchedule::Basic {
            // A resolved basic strategy always carries its crossover.
            crossover: crossover.unwrap_or(0),
        },
        Strategy::Advanced {
            alpha,
            transfer_level,
        } => PlannedSchedule::Advanced {
            alpha: *alpha,
            transfer_level: *transfer_level,
        },
    }
}

/// Runs `algo` over `data` on the simulated machine under `strategy`.
///
/// `data.len()` must be `base_chunk · a^k` (see
/// [`crate::CoreError::InvalidSize`]). On success `data` holds the result
/// and the report carries the virtual-time accounting, per-level metrics
/// and the model-vs-simulation drift rows.
pub fn run_sim<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    strategy: &Strategy,
) -> Result<RunReport, CoreError> {
    let levels = num_levels(algo, data.len())?;
    let n = data.len();
    hpu.sync();
    let t0 = hpu.elapsed();
    let transfers0 = hpu.bus.transfers();
    let words0 = hpu.bus.words();
    let cpu_busy0 = hpu.cpu.stats().busy_core_time;
    let gpu_busy0 = hpu.gpu.stats().busy;
    let mut book = LevelBook::new(algo.base_chunk() as u64, algo.branching() as u64);

    let (resolved, coalesced, uncoalesced, concurrent) = match strategy {
        Strategy::Sequential => {
            cpu::run_cpu_only(algo, data, hpu, 1, &mut book)?;
            (Strategy::Sequential, 0, 0, None)
        }
        Strategy::CpuOnly => {
            let cores = hpu.config().cpu.cores;
            cpu::run_cpu_only(algo, data, hpu, cores, &mut book)?;
            (Strategy::CpuOnly, 0, 0, None)
        }
        Strategy::GpuOnly => {
            let st = gpu::run_gpu_only(algo, data, hpu, &mut book)?;
            (Strategy::GpuOnly, st.0, st.1, None)
        }
        Strategy::Basic { crossover } => {
            let cross = match crossover {
                Some(c) => Some(*c),
                None => BasicSchedule::derive(&model_params(hpu), &algo.recurrence()).crossover,
            };
            match cross {
                // GPU not worth using: degrade to CPU-only (paper §5.1).
                None => {
                    let cores = hpu.config().cpu.cores;
                    cpu::run_cpu_only(algo, data, hpu, cores, &mut book)?;
                    (Strategy::CpuOnly, 0, 0, None)
                }
                Some(c) if c > levels => {
                    // Crossover below the leaves: nothing for the GPU —
                    // report what actually ran.
                    let cores = hpu.config().cpu.cores;
                    cpu::run_cpu_only(algo, data, hpu, cores, &mut book)?;
                    (Strategy::CpuOnly, 0, 0, None)
                }
                Some(c) => {
                    let st = hybrid::run_basic(algo, data, hpu, c, &mut book)?;
                    (
                        Strategy::Basic { crossover: Some(c) },
                        st.coalesced,
                        st.uncoalesced,
                        st.concurrent,
                    )
                }
            }
        }
        Strategy::Advanced {
            alpha,
            transfer_level,
        } => {
            let st = hybrid::run_advanced(algo, data, hpu, *alpha, *transfer_level, &mut book)?;
            (
                strategy.clone(),
                st.coalesced,
                st.uncoalesced,
                st.concurrent,
            )
        }
    };

    hpu.sync();
    let level_metrics = book.finish();
    let profile = LevelProfile::new(&model_params(hpu), &algo.recurrence(), n as u64);
    let predicted: Vec<(u32, f64)> = predict_levels(&profile, &plan_of(&resolved), levels)
        .into_iter()
        .map(|p| (p.level, p.time))
        .collect();
    let drift = drift_rows(&level_metrics, &predicted);
    Ok(RunReport {
        label: format!("{resolved:?} on {}", algo.name()),
        virtual_time: hpu.elapsed() - t0,
        transfers: hpu.bus.transfers() - transfers0,
        words: hpu.bus.words() - words0,
        coalesced,
        uncoalesced,
        cpu_busy: hpu.cpu.stats().busy_core_time - cpu_busy0,
        gpu_busy: hpu.gpu.stats().busy - gpu_busy0,
        resolved,
        concurrent,
        levels: level_metrics,
        drift,
    })
}
