//! Executors and scheduling strategies for breadth-first D&C algorithms on
//! the simulated HPU.
//!
//! [`run_sim`] is the single entry point: it validates the input, compiles
//! the [`Strategy`] to an execution [`Plan`] (deriving model parameters
//! where asked to) and hands the plan to the generic [`interpret`] driver
//! over the simulated-machine backend. Every strategy — sequential,
//! CPU-parallel, GPU-only, basic crossover, advanced split — runs through
//! this one interpret path; the returned [`RunReport`] carries
//! virtual-time, communication and per-level accounting plus a
//! model-vs-simulation drift report against the *same* plan the run
//! executed.

mod backend;
mod native;
mod sim;

pub use backend::{
    interpret, interpret_recover, Backend, BandStats, InterpretStats, LevelBand, RecoveryPolicy,
    RecoveryStats, Share,
};
pub use native::{run_native, run_native_report, NativeBackend, NativeReport};
pub use sim::SimBackend;

use hpu_machine::{SimHpu, SimMachineParams};
use hpu_model::{compile, predict_levels, LevelProfile, MachineParams, ModelError, ScheduleSpec};
use hpu_obs::{drift_rows, LevelBook, LevelDrift, LevelMetrics};

use crate::bf::{num_levels, BfAlgorithm, Element};
use crate::charge::NullCharge;
use crate::error::CoreError;

/// A consistent cut of a job captured at a plan-segment boundary.
///
/// The breadth-first interpreter only hands data between units at level
/// boundaries, so every segment boundary is a consistent cut: levels
/// `0..level` are complete and the partial results live in the host
/// buffer. A checkpoint records that cut so a crashed job can resume on
/// another machine via [`run_sim_plan_resume`] instead of restarting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkpoint {
    /// First level still to run (levels `0..level` are captured).
    pub level: u32,
    /// Words of host state the checkpoint captured (the whole working
    /// buffer for the in-place breadth-first form).
    pub resident_words: u64,
    /// Calibration generation of the plan the job was running under when
    /// the cut was taken; a resuming scheduler uses it to decide whether
    /// the suffix plan is still trustworthy.
    pub generation: u64,
}

/// Work-division strategy for a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Everything on one CPU core — the paper's baseline.
    Sequential,
    /// Breadth-first levels on all `p` CPU cores.
    CpuOnly,
    /// Every level (and the leaves) on the GPU, one round trip of data.
    GpuOnly,
    /// The basic hybrid division (§5.1): levels below the crossover on the
    /// GPU, the rest on the CPU. `crossover = None` derives the level
    /// `⌈log_a(p/γ)⌉` from the machine configuration and the algorithm's
    /// recurrence.
    Basic {
        /// First level (from the top) executed on the GPU.
        crossover: Option<u32>,
    },
    /// The advanced hybrid division (§5.2): split the input `α : 1−α`
    /// between CPU and GPU, run both concurrently bottom-up, GPU transfers
    /// back at level `transfer_level` (from the top), CPU finishes.
    Advanced {
        /// Fraction of subproblems assigned to the CPU.
        alpha: f64,
        /// Level (from the top) at which the GPU hands its results back.
        transfer_level: u32,
    },
}

/// Accounting of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Human-readable description of the resolved strategy.
    pub label: String,
    /// Virtual time the run took (makespan over both units).
    pub virtual_time: f64,
    /// Number of CPU↔GPU transfers performed.
    pub transfers: u64,
    /// Words moved across the bus.
    pub words: u64,
    /// Memory accesses the device served coalesced.
    pub coalesced: u64,
    /// Memory accesses the device served uncoalesced.
    pub uncoalesced: u64,
    /// Total busy core-time on the CPU.
    pub cpu_busy: f64,
    /// Total busy time on the GPU.
    pub gpu_busy: f64,
    /// The strategy after parameter resolution (e.g. derived crossover).
    pub resolved: Strategy,
    /// Durations of the advanced schedule's concurrent phase on each unit
    /// (CPU, GPU including the transfer back): the paper's "GPU/CPU" ratio
    /// of Figure 8 is `concurrent.1 / concurrent.0`.
    pub concurrent: Option<(f64, f64)>,
    /// Per-level metrics (bottom-up: level 0 = base cases), aggregated from
    /// the structured execution spans.
    pub levels: Vec<LevelMetrics>,
    /// Per-level analytic prediction vs. simulated time for the executed
    /// plan (same bottom-up indexing as [`RunReport::levels`]).
    pub drift: Vec<LevelDrift>,
}

/// The model-side schedule a strategy compiles as.
fn spec_of(strategy: &Strategy) -> ScheduleSpec {
    match strategy {
        Strategy::Sequential => ScheduleSpec::Sequential,
        Strategy::CpuOnly => ScheduleSpec::CpuParallel,
        Strategy::GpuOnly => ScheduleSpec::GpuOnly,
        Strategy::Basic { crossover } => ScheduleSpec::Basic {
            crossover: *crossover,
        },
        Strategy::Advanced {
            alpha,
            transfer_level,
        } => ScheduleSpec::Advanced {
            alpha: *alpha,
            transfer_level: *transfer_level,
        },
    }
}

/// The strategy a compiled plan's resolved schedule reports as.
fn strategy_of(resolved: &ScheduleSpec) -> Strategy {
    match resolved {
        ScheduleSpec::Sequential => Strategy::Sequential,
        ScheduleSpec::CpuParallel => Strategy::CpuOnly,
        ScheduleSpec::GpuOnly => Strategy::GpuOnly,
        ScheduleSpec::Basic { crossover: Some(c) } => Strategy::Basic {
            crossover: Some(*c),
        },
        // Compilation degrades a GPU-less basic schedule to CPU-parallel.
        ScheduleSpec::Basic { crossover: None } => Strategy::CpuOnly,
        ScheduleSpec::Advanced {
            alpha,
            transfer_level,
        } => Strategy::Advanced {
            alpha: *alpha,
            transfer_level: *transfer_level,
        },
        ScheduleSpec::AdvancedAuto => unreachable!("compile resolves AdvancedAuto"),
    }
}

/// Maps a plan-compilation error to the executor error space.
fn compile_error(e: ModelError) -> CoreError {
    match e {
        ModelError::InvalidAlpha(alpha) => CoreError::InvalidAlpha { alpha },
        ModelError::InvalidLevel { level, levels } => CoreError::InvalidLevel { level, levels },
        _ => CoreError::EmptyInput,
    }
}

/// Runs `algo` over `data` on the simulated machine under `strategy`.
///
/// `data.len()` must be `base_chunk · a^k` (see
/// [`crate::CoreError::InvalidSize`]). The strategy is compiled to an
/// execution [`Plan`](hpu_model::Plan) and interpreted on a [`SimBackend`];
/// invalid advanced parameters surface as [`CoreError::InvalidAlpha`] /
/// [`CoreError::InvalidLevel`] before any work runs. On success `data`
/// holds the result and the report carries the virtual-time accounting,
/// per-level metrics and the model-vs-simulation drift rows.
pub fn run_sim<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    strategy: &Strategy,
) -> Result<RunReport, CoreError> {
    let levels = num_levels(algo, data.len())?;
    let params = MachineParams::from_sim(hpu);
    let plan = compile(
        &spec_of(strategy),
        &params,
        &algo.recurrence(),
        data.len() as u64,
        levels,
    )
    .map_err(compile_error)?;
    run_sim_plan(algo, data, hpu, &plan)
}

/// Runs `algo` over `data` on the simulated machine under an
/// already-compiled `plan`.
///
/// This is the sharing hook multi-job schedulers (`hpu-serve`) build on:
/// the plan is compiled once — typically against the same machine the run
/// uses, possibly with a restricted core count — and executed later, or on
/// a machine of the caller's choosing. The plan must match the input
/// (`plan.n == data.len()`, `plan.exec_levels` = the algorithm's level
/// count for that size); a mismatched plan is rejected as
/// [`CoreError::MalformedPlan`] before any work runs.
pub fn run_sim_plan<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    plan: &hpu_model::Plan,
) -> Result<RunReport, CoreError> {
    run_sim_plan_inner(algo, data, hpu, plan, None, None).0
}

/// Runs an already-compiled `plan` like [`run_sim_plan`], sampling
/// per-segment interpreter timings (kernel, transfer, launch-overhead)
/// into `metrics` when one is attached.
pub fn run_sim_plan_metered<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    plan: &hpu_model::Plan,
    metrics: Option<std::sync::Arc<hpu_obs::MetricsRegistry>>,
) -> Result<RunReport, CoreError> {
    run_sim_plan_inner(algo, data, hpu, plan, None, metrics).0
}

/// Runs an already-compiled `plan` like [`run_sim_plan`], retrying faulted
/// segments under `policy` (see [`interpret_recover`]). The recovery
/// tallies come back alongside the result so callers can report retry
/// counts even when the run ultimately fails.
pub fn run_sim_plan_recover<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    plan: &hpu_model::Plan,
    policy: &RecoveryPolicy,
) -> (Result<RunReport, CoreError>, RecoveryStats) {
    run_sim_plan_inner(algo, data, hpu, plan, Some(policy), None)
}

/// [`run_sim_plan_recover`] with an optional live metrics registry, for
/// callers that want recovery *and* interpreter sampling.
pub fn run_sim_plan_recover_metered<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    plan: &hpu_model::Plan,
    policy: &RecoveryPolicy,
    metrics: Option<std::sync::Arc<hpu_obs::MetricsRegistry>>,
) -> (Result<RunReport, CoreError>, RecoveryStats) {
    run_sim_plan_inner(algo, data, hpu, plan, Some(policy), metrics)
}

/// Resumes an already-compiled `plan` from `ckpt` on a (possibly
/// different) simulated machine.
///
/// The checkpointed prefix — base cases and combine levels `0..level` —
/// is *restored*, not re-executed: the host buffer is brought to the
/// cut's state by a pure host replay that charges no virtual time, the
/// model of reloading saved state. The interpreter then runs only the
/// plan suffix ([`hpu_model::Plan::resume_from_level`]), re-staging any
/// device region the suffix needs via the retained upload edges. The
/// returned report accounts the resumed work only, so
/// `virtual_time` is the re-execution a recovery *avoided* paying.
pub fn run_sim_plan_resume<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    plan: &hpu_model::Plan,
    ckpt: &Checkpoint,
) -> Result<RunReport, CoreError> {
    let levels = num_levels(algo, data.len())?;
    if ckpt.level > levels {
        return Err(CoreError::InvalidLevel {
            level: ckpt.level,
            levels,
        });
    }
    let suffix = plan
        .resume_from_level(ckpt.level)
        .map_err(|_| CoreError::MalformedPlan {
            reason: "plan does not cover the checkpoint level",
        })?;
    restore_to_level(algo, data, ckpt.level);
    let t = hpu.elapsed();
    hpu.annotate(
        hpu_machine::Unit::Cpu,
        t,
        t,
        hpu_obs::EventKind::Resume { level: ckpt.level },
    );
    run_sim_plan_inner(algo, data, hpu, &suffix, None, None).0
}

/// Replays the checkpointed prefix (base cases plus combine levels below
/// `level`) directly on the host buffer, charging no machine time: this
/// models restoring saved state, not re-executing the work.
fn restore_to_level<T: Element, A: BfAlgorithm<T>>(algo: &A, data: &mut [T], level: u32) {
    if level == 0 {
        return;
    }
    let base = algo.base_chunk();
    let a = algo.branching();
    let mut ch = NullCharge;
    for c in data.chunks_mut(base) {
        algo.base_case(c, &mut ch);
    }
    let mut scratch = vec![T::default(); data.len()];
    let mut src_is_data = true;
    let mut chunk = base.saturating_mul(a);
    // Combine level k produces chunks of base·a^k; the cut completes
    // levels 1..level.
    let top_chunk = base.saturating_mul(a.saturating_pow(level.saturating_sub(1)));
    while chunk <= top_chunk && chunk <= data.len() {
        if src_is_data {
            for (s, d) in data.chunks(chunk).zip(scratch.chunks_mut(chunk)) {
                algo.combine(s, d, &mut ch);
            }
        } else {
            for (s, d) in scratch.chunks(chunk).zip(data.chunks_mut(chunk)) {
                algo.combine(s, d, &mut ch);
            }
        }
        src_is_data = !src_is_data;
        chunk = chunk.saturating_mul(a);
    }
    if !src_is_data {
        data.copy_from_slice(&scratch);
    }
}

fn run_sim_plan_inner<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    plan: &hpu_model::Plan,
    policy: Option<&RecoveryPolicy>,
    metrics: Option<std::sync::Arc<hpu_obs::MetricsRegistry>>,
) -> (Result<RunReport, CoreError>, RecoveryStats) {
    let mut rstats = RecoveryStats::default();
    let levels = match num_levels(algo, data.len()) {
        Ok(l) => l,
        Err(e) => return (Err(e), rstats),
    };
    let n = data.len();
    if plan.segments.is_empty() {
        return (
            Err(CoreError::MalformedPlan {
                reason: "plan has no segments",
            }),
            rstats,
        );
    }
    if plan.n != n as u64 || plan.exec_levels != levels {
        return (
            Err(CoreError::MalformedPlan {
                reason: "plan was compiled for a different input",
            }),
            rstats,
        );
    }
    hpu.sync();
    let t0 = hpu.elapsed();
    let transfers0 = hpu.bus.transfers();
    let words0 = hpu.bus.words();
    let cpu_busy0 = hpu.cpu.stats().busy_core_time;
    let gpu_busy0 = hpu.gpu.stats().busy;

    let params = MachineParams::from_sim(hpu);
    let rec = algo.recurrence();

    let book = LevelBook::new(algo.base_chunk() as u64, algo.branching() as u64);
    let mut backend = SimBackend::new(hpu, data, book);
    if let Some(m) = metrics {
        backend = backend.with_metrics(m);
    }
    let run = match policy {
        Some(p) => {
            let (r, rs) = interpret_recover(plan, algo, &mut backend, p);
            rstats = rs;
            r
        }
        None => interpret(plan, algo, &mut backend),
    };
    let stats = match run {
        Ok(s) => s,
        Err(e) => {
            drop(backend);
            hpu.sync();
            return (Err(e), rstats);
        }
    };
    let book = backend.into_book();

    hpu.sync();
    let level_metrics = book.finish();
    let resolved = strategy_of(&plan.resolved);
    let profile = LevelProfile::new(&params, &rec, n as u64);
    let predicted: Vec<(u32, f64)> = predict_levels(&profile, plan)
        .into_iter()
        .map(|p| (p.level, p.time))
        .collect();
    let drift = drift_rows(&level_metrics, &predicted);
    (
        Ok(RunReport {
            label: format!("{resolved:?} on {}", algo.name()),
            virtual_time: hpu.elapsed() - t0,
            transfers: hpu.bus.transfers() - transfers0,
            words: hpu.bus.words() - words0,
            coalesced: stats.coalesced,
            uncoalesced: stats.uncoalesced,
            cpu_busy: hpu.cpu.stats().busy_core_time - cpu_busy0,
            gpu_busy: hpu.gpu.stats().busy - gpu_busy0,
            resolved,
            concurrent: stats.concurrent,
            levels: level_metrics,
            drift,
        }),
        rstats,
    )
}
