//! Executors and scheduling strategies for breadth-first D&C algorithms on
//! the simulated HPU.
//!
//! [`run_sim`] is the single entry point: it validates the input, resolves
//! the [`Strategy`] (deriving model parameters where asked to), dispatches
//! to the matching executor and returns a [`RunReport`] with virtual-time
//! and communication accounting.

mod cpu;
mod gpu;
mod hybrid;
mod native;

pub use native::run_native;

use hpu_machine::SimHpu;
use hpu_model::{BasicSchedule, MachineParams};

use crate::bf::{num_levels, BfAlgorithm, Element};
use crate::error::CoreError;

/// Work-division strategy for a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Everything on one CPU core — the paper's baseline.
    Sequential,
    /// Breadth-first levels on all `p` CPU cores.
    CpuOnly,
    /// Every level (and the leaves) on the GPU, one round trip of data.
    GpuOnly,
    /// The basic hybrid division (§5.1): levels below the crossover on the
    /// GPU, the rest on the CPU. `crossover = None` derives the level
    /// `⌈log_a(p/γ)⌉` from the machine configuration and the algorithm's
    /// recurrence.
    Basic {
        /// First level (from the top) executed on the GPU.
        crossover: Option<u32>,
    },
    /// The advanced hybrid division (§5.2): split the input `α : 1−α`
    /// between CPU and GPU, run both concurrently bottom-up, GPU transfers
    /// back at level `transfer_level` (from the top), CPU finishes.
    Advanced {
        /// Fraction of subproblems assigned to the CPU.
        alpha: f64,
        /// Level (from the top) at which the GPU hands its results back.
        transfer_level: u32,
    },
}

/// Accounting of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Human-readable description of the resolved strategy.
    pub label: String,
    /// Virtual time the run took (makespan over both units).
    pub virtual_time: f64,
    /// Number of CPU↔GPU transfers performed.
    pub transfers: u64,
    /// Words moved across the bus.
    pub words: u64,
    /// Memory accesses the device served coalesced.
    pub coalesced: u64,
    /// Memory accesses the device served uncoalesced.
    pub uncoalesced: u64,
    /// Total busy core-time on the CPU.
    pub cpu_busy: f64,
    /// Total busy time on the GPU.
    pub gpu_busy: f64,
    /// The strategy after parameter resolution (e.g. derived crossover).
    pub resolved: Strategy,
    /// Durations of the advanced schedule's concurrent phase on each unit
    /// (CPU, GPU including the transfer back): the paper's "GPU/CPU" ratio
    /// of Figure 8 is `concurrent.1 / concurrent.0`.
    pub concurrent: Option<(f64, f64)>,
}

/// Extracts analytic-model machine parameters from a simulated machine's
/// configuration (`p` = cores, `g` = lanes, `γ` = 1/gamma_inv, `λ`/`δ`
/// from the bus).
pub fn model_params(hpu: &SimHpu) -> MachineParams {
    let cfg = hpu.config();
    MachineParams::new(cfg.cpu.cores, cfg.gpu.lanes, 1.0 / cfg.gpu.gamma_inv)
        .expect("simulated machine configuration is always valid")
        .with_transfer_cost(cfg.bus.lambda, cfg.bus.delta)
}

/// Runs `algo` over `data` on the simulated machine under `strategy`.
///
/// `data.len()` must be `base_chunk · a^k` (see
/// [`crate::CoreError::InvalidSize`]). On success `data` holds the result
/// and the report carries the virtual-time accounting.
pub fn run_sim<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    hpu: &mut SimHpu,
    strategy: &Strategy,
) -> Result<RunReport, CoreError> {
    let levels = num_levels(algo, data.len())?;
    hpu.sync();
    let t0 = hpu.elapsed();
    let transfers0 = hpu.bus.transfers();
    let words0 = hpu.bus.words();
    let cpu_busy0 = hpu.cpu.stats().busy_core_time;
    let gpu_busy0 = hpu.gpu.stats().busy;

    let (resolved, coalesced, uncoalesced, concurrent) = match strategy {
        Strategy::Sequential => {
            cpu::run_cpu_only(algo, data, hpu, 1)?;
            (Strategy::Sequential, 0, 0, None)
        }
        Strategy::CpuOnly => {
            let cores = hpu.config().cpu.cores;
            cpu::run_cpu_only(algo, data, hpu, cores)?;
            (Strategy::CpuOnly, 0, 0, None)
        }
        Strategy::GpuOnly => {
            let st = gpu::run_gpu_only(algo, data, hpu)?;
            (Strategy::GpuOnly, st.0, st.1, None)
        }
        Strategy::Basic { crossover } => {
            let cross = match crossover {
                Some(c) => Some(*c),
                None => BasicSchedule::derive(&model_params(hpu), &algo.recurrence()).crossover,
            };
            match cross {
                // GPU not worth using: degrade to CPU-only (paper §5.1).
                None => {
                    let cores = hpu.config().cpu.cores;
                    cpu::run_cpu_only(algo, data, hpu, cores)?;
                    (Strategy::CpuOnly, 0, 0, None)
                }
                Some(c) if c > levels => {
                    // Crossover below the leaves: nothing for the GPU —
                    // report what actually ran.
                    let cores = hpu.config().cpu.cores;
                    cpu::run_cpu_only(algo, data, hpu, cores)?;
                    (Strategy::CpuOnly, 0, 0, None)
                }
                Some(c) => {
                    let st = hybrid::run_basic(algo, data, hpu, c)?;
                    (
                        Strategy::Basic { crossover: Some(c) },
                        st.coalesced,
                        st.uncoalesced,
                        st.concurrent,
                    )
                }
            }
        }
        Strategy::Advanced {
            alpha,
            transfer_level,
        } => {
            let st = hybrid::run_advanced(algo, data, hpu, *alpha, *transfer_level)?;
            (strategy.clone(), st.coalesced, st.uncoalesced, st.concurrent)
        }
    };

    hpu.sync();
    Ok(RunReport {
        label: format!("{resolved:?} on {}", algo.name()),
        virtual_time: hpu.elapsed() - t0,
        transfers: hpu.bus.transfers() - transfers0,
        words: hpu.bus.words() - words0,
        coalesced,
        uncoalesced,
        cpu_busy: hpu.cpu.stats().busy_core_time - cpu_busy0,
        gpu_busy: hpu.gpu.stats().busy - gpu_busy0,
        resolved,
        concurrent,
    })
}
