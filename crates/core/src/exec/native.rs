//! Native (real-thread) breadth-first execution.
//!
//! This is the executor a downstream user runs on an actual multicore: the
//! same [`BfAlgorithm`] code, levels fork-joined on a [`LevelPool`],
//! wall-clock timed. [`run_native`] returns just the duration;
//! [`run_native_report`] additionally records every level as a structured
//! wall-clock span (µs) and aggregates the same per-level metrics the
//! simulator produces, so native runs appear in the same Chrome traces and
//! CSV reports as simulated ones.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hpu_obs::{EventKind, LevelBook, LevelMetrics, LevelPhase, TraceEvent, WallRecorder};

use crate::bf::{num_levels, BfAlgorithm, Element};
use crate::charge::NullCharge;
use crate::error::CoreError;
use crate::pool::LevelPool;

/// Wall-clock accounting of one native run.
#[derive(Debug)]
pub struct NativeReport {
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Per-level metrics (bottom-up; times in µs of wall clock; ops/mem
    /// are zero — native runs don't charge abstract costs).
    pub levels: Vec<LevelMetrics>,
    /// The structured spans recorded during the run (µs since run start).
    pub trace: Vec<TraceEvent>,
}

/// Runs `algo` over `data` on real threads; returns the wall-clock time.
/// On success `data` holds the result.
pub fn run_native<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    pool: &LevelPool,
) -> Result<Duration, CoreError> {
    Ok(run_native_report(algo, data, pool)?.wall)
}

/// Runs `algo` over `data` on real threads with structured tracing: every
/// level becomes a wall-clock span on a fresh [`WallRecorder`] and a row of
/// per-level metrics. On success `data` holds the result.
pub fn run_native_report<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    pool: &LevelPool,
) -> Result<NativeReport, CoreError> {
    num_levels(algo, data.len())?;
    let n = data.len();
    let a = algo.branching();
    let base = algo.base_chunk();
    let rec = Arc::new(Mutex::new(WallRecorder::new()));
    let pool = pool.clone().with_recorder(rec.clone());
    let mut book = LevelBook::new(base as u64, a as u64);
    let start = Instant::now();
    let mut scratch = vec![T::default(); n];

    let base_tasks = data.chunks_mut(base).len() as u64;
    let (s, e) = pool.run_tagged(
        EventKind::Level {
            name: algo.name().to_string(),
            phase: LevelPhase::Base,
            chunk: base as u64,
            tasks: base_tasks,
            ops: 0,
            mem: 0,
        },
        data.chunks_mut(base)
            .map(|c| move || algo.base_case(c, &mut NullCharge))
            .collect(),
    );
    book.cpu(base as u64, base_tasks, 0, 0, s, e);

    let mut chunk = base.saturating_mul(a);
    let mut src_is_data = true;
    while chunk <= n {
        if src_is_data {
            native_level(algo, &pool, data, &mut scratch, chunk, &mut book);
        } else {
            native_level(algo, &pool, &scratch, data, chunk, &mut book);
        }
        src_is_data = !src_is_data;
        chunk = chunk.saturating_mul(a);
    }
    if !src_is_data {
        let (s, e) = pool.run_tagged(
            EventKind::Level {
                name: "copy back".to_string(),
                phase: LevelPhase::CopyBack,
                chunk: n as u64,
                tasks: 1,
                ops: 0,
                mem: 0,
            },
            vec![|| data.copy_from_slice(&scratch)],
        );
        book.cpu(n as u64, 0, 0, 0, s, e);
    }
    let wall = start.elapsed();
    let trace = std::mem::take(
        &mut *rec
            .lock()
            .expect("recorder lock never poisoned while the pool is idle"),
    )
    .into_events();
    Ok(NativeReport {
        wall,
        levels: book.finish(),
        trace,
    })
}

fn native_level<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    pool: &LevelPool,
    src: &[T],
    dst: &mut [T],
    chunk: usize,
    book: &mut LevelBook,
) {
    let tasks = src.chunks(chunk).len() as u64;
    let (s, e) = pool.run_tagged(
        EventKind::Level {
            name: algo.name().to_string(),
            phase: LevelPhase::Combine,
            chunk: chunk as u64,
            tasks,
            ops: 0,
            mem: 0,
        },
        src.chunks(chunk)
            .zip(dst.chunks_mut(chunk))
            .map(|(s, d)| move || algo.combine(s, d, &mut NullCharge))
            .collect(),
    );
    book.cpu(chunk as u64, tasks, 0, 0, s, e);
}
