//! Native (real-thread) breadth-first execution.
//!
//! This is the executor a downstream user runs on an actual multicore: the
//! same [`BfAlgorithm`] code, levels fork-joined on a [`LevelPool`],
//! wall-clock timed, no cost accounting.

use std::time::{Duration, Instant};

use crate::bf::{num_levels, BfAlgorithm, Element};
use crate::charge::NullCharge;
use crate::error::CoreError;
use crate::pool::LevelPool;

/// Runs `algo` over `data` on real threads; returns the wall-clock time.
/// On success `data` holds the result.
pub fn run_native<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    pool: &LevelPool,
) -> Result<Duration, CoreError> {
    num_levels(algo, data.len())?;
    let n = data.len();
    let a = algo.branching();
    let base = algo.base_chunk();
    let start = Instant::now();
    let mut scratch = vec![T::default(); n];

    pool.run(
        data.chunks_mut(base)
            .map(|c| {
                move || algo.base_case(c, &mut NullCharge)
            })
            .collect(),
    );

    let mut chunk = base.saturating_mul(a);
    let mut src_is_data = true;
    while chunk <= n {
        if src_is_data {
            native_level(algo, pool, data, &mut scratch, chunk);
        } else {
            native_level(algo, pool, &scratch, data, chunk);
        }
        src_is_data = !src_is_data;
        chunk = chunk.saturating_mul(a);
    }
    if !src_is_data {
        data.copy_from_slice(&scratch);
    }
    Ok(start.elapsed())
}

fn native_level<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    pool: &LevelPool,
    src: &[T],
    dst: &mut [T],
    chunk: usize,
) {
    pool.run(
        src.chunks(chunk)
            .zip(dst.chunks_mut(chunk))
            .map(|(s, d)| move || algo.combine(s, d, &mut NullCharge))
            .collect(),
    );
}
