//! Native (real-thread) backend of the plan interpreter.
//!
//! This is the executor a downstream user runs on an actual multicore: the
//! same [`BfAlgorithm`] code, levels fork-joined on a [`LevelPool`],
//! wall-clock timed. Native runs execute the same way simulated ones do —
//! a host-only [`Plan`](hpu_model::Plan) fed to [`interpret`] — with
//! [`NativeBackend`] as the substrate. [`run_native`] returns just the
//! duration; [`run_native_report`] additionally records every level as a
//! structured wall-clock span (µs) and aggregates the same per-level
//! metrics the simulator produces, so native runs appear in the same
//! Chrome traces and CSV reports as simulated ones.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hpu_model::{Plan, ScheduleSpec, Transfer};
use hpu_obs::{EventKind, LevelBook, LevelMetrics, LevelPhase, TraceEvent, WallRecorder};

use crate::bf::{num_levels, BfAlgorithm, Element};
use crate::charge::NullCharge;
use crate::error::CoreError;
use crate::exec::backend::{interpret, Backend, BandStats, LevelBand, Share};
use crate::pool::LevelPool;

/// Wall-clock accounting of one native run.
#[derive(Debug)]
pub struct NativeReport {
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Per-level metrics (bottom-up; times in µs of wall clock; ops/mem
    /// are zero — native runs don't charge abstract costs).
    pub levels: Vec<LevelMetrics>,
    /// The structured spans recorded during the run (µs since run start).
    pub trace: Vec<TraceEvent>,
}

/// Plan-interpreter backend over a real thread pool.
///
/// Executes CPU placements only: native machines in this codebase have no
/// device, so plans with GPU or split segments are rejected as malformed
/// rather than silently run on the host.
pub struct NativeBackend<'a, T: Element> {
    pool: LevelPool,
    data: &'a mut [T],
    scratch: Vec<T>,
    book: LevelBook,
    start: Instant,
    metrics: Option<Arc<hpu_obs::MetricsRegistry>>,
}

impl<'a, T: Element> NativeBackend<'a, T> {
    /// Creates a backend over `data`, fork-joining levels on `pool` (its
    /// recorder receives the structured spans) and booking metrics into
    /// `book`. The wall clock starts now.
    pub fn new(pool: LevelPool, data: &'a mut [T], book: LevelBook) -> Self {
        let n = data.len();
        NativeBackend {
            pool,
            data,
            scratch: vec![T::default(); n],
            book,
            start: Instant::now(),
            metrics: None,
        }
    }

    /// Attaches a live metrics registry the interpreter samples
    /// per-segment wall timings (µs) into.
    pub fn with_metrics(mut self, metrics: Arc<hpu_obs::MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Consumes the backend and returns the filled metrics book.
    pub fn into_book(self) -> LevelBook {
        self.book
    }

    /// Wall-clock time since the backend was created.
    pub fn wall(&self) -> Duration {
        self.start.elapsed()
    }

    /// Wall-clock µs since the backend was created (the backend's clock).
    fn wall_us(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }
}

impl<T: Element, A: BfAlgorithm<T>> Backend<T, A> for NativeBackend<'_, T> {
    fn run_level_band(
        &mut self,
        algo: &A,
        band: &LevelBand,
        share: &Share,
    ) -> Result<BandStats, CoreError> {
        let Share::Cpu { .. } = share else {
            return Err(CoreError::MalformedPlan {
                reason: "the native backend executes CPU placements only",
            });
        };
        let n = self.data.len();
        let a = algo.branching();
        let base = algo.base_chunk();
        let mut src_is_data = true;
        let mut chunk = if band.first == 0 {
            let base_tasks = self.data.chunks_mut(base).len() as u64;
            let (s, e) = self.pool.run_tagged(
                EventKind::Level {
                    name: algo.name().to_string(),
                    phase: LevelPhase::Base,
                    chunk: base as u64,
                    tasks: base_tasks,
                    ops: 0,
                    mem: 0,
                },
                self.data
                    .chunks_mut(base)
                    .map(|c| move || algo.base_case(c, &mut NullCharge))
                    .collect(),
            );
            self.book.cpu(base as u64, base_tasks, 0, 0, s, e);
            base.saturating_mul(a)
        } else {
            base.saturating_mul(a.saturating_pow(band.first))
        };
        let top_chunk = base.saturating_mul(a.saturating_pow(band.last));
        while chunk <= top_chunk && chunk <= n {
            if src_is_data {
                native_level(
                    algo,
                    &self.pool,
                    self.data,
                    &mut self.scratch,
                    chunk,
                    &mut self.book,
                );
            } else {
                native_level(
                    algo,
                    &self.pool,
                    &self.scratch,
                    self.data,
                    chunk,
                    &mut self.book,
                );
            }
            src_is_data = !src_is_data;
            chunk = chunk.saturating_mul(a);
        }
        if !src_is_data {
            let data = &mut *self.data;
            let scratch = &self.scratch;
            let (s, e) = self.pool.run_tagged(
                EventKind::Level {
                    name: "copy back".to_string(),
                    phase: LevelPhase::CopyBack,
                    chunk: n as u64,
                    tasks: 1,
                    ops: 0,
                    mem: 0,
                },
                vec![|| data.copy_from_slice(scratch)],
            );
            self.book.cpu(n as u64, 0, 0, 0, s, e);
        }
        Ok(BandStats::default())
    }

    fn transfer(&mut self, _algo: &A, _edge: &Transfer) -> Result<(), CoreError> {
        Err(CoreError::MalformedPlan {
            reason: "the native backend has no device to transfer to",
        })
    }

    fn sync(&mut self) {}

    fn now(&self) -> f64 {
        self.wall_us()
    }

    fn cpu_clock(&self) -> f64 {
        self.wall_us()
    }

    fn gpu_clock(&self) -> f64 {
        self.wall_us()
    }

    fn recorder(&mut self) -> &mut LevelBook {
        &mut self.book
    }

    fn wait(&mut self, dur: f64) {
        // Clock unit is microseconds of wall time.
        std::thread::sleep(std::time::Duration::from_micros(dur.max(0.0) as u64));
    }

    fn metrics(&self) -> Option<&hpu_obs::MetricsRegistry> {
        self.metrics.as_deref()
    }
}

/// Runs `algo` over `data` on real threads; returns the wall-clock time.
/// On success `data` holds the result.
pub fn run_native<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    pool: &LevelPool,
) -> Result<Duration, CoreError> {
    Ok(run_native_report(algo, data, pool)?.wall)
}

/// Runs `algo` over `data` on real threads with structured tracing: a
/// host-only plan is compiled for the pool's core count and interpreted on
/// a [`NativeBackend`], so every level becomes a wall-clock span on a fresh
/// [`WallRecorder`] and a row of per-level metrics. On success `data` holds
/// the result.
pub fn run_native_report<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    data: &mut [T],
    pool: &LevelPool,
) -> Result<NativeReport, CoreError> {
    let levels = num_levels(algo, data.len())?;
    let n = data.len();
    let rec = Arc::new(Mutex::new(WallRecorder::new()));
    let pool = pool.clone().with_recorder(rec.clone());
    let plan = Plan::host_only(n as u64, levels, pool.threads(), ScheduleSpec::CpuParallel);
    let book = LevelBook::new(algo.base_chunk() as u64, algo.branching() as u64);
    let mut backend = NativeBackend::new(pool, data, book);
    interpret(&plan, algo, &mut backend)?;
    let wall = backend.wall();
    let book = backend.into_book();
    let trace = std::mem::take(
        &mut *rec
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
    .into_events();
    Ok(NativeReport {
        wall,
        levels: book.finish(),
        trace,
    })
}

fn native_level<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    pool: &LevelPool,
    src: &[T],
    dst: &mut [T],
    chunk: usize,
    book: &mut LevelBook,
) {
    let tasks = src.chunks(chunk).len() as u64;
    let (s, e) = pool.run_tagged(
        EventKind::Level {
            name: algo.name().to_string(),
            phase: LevelPhase::Combine,
            chunk: chunk as u64,
            tasks,
            ops: 0,
            mem: 0,
        },
        src.chunks(chunk)
            .zip(dst.chunks_mut(chunk))
            .map(|(s, d)| move || algo.combine(s, d, &mut NullCharge))
            .collect(),
    );
    book.cpu(chunk as u64, tasks, 0, 0, s, e);
}
