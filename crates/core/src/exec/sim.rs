//! The simulated-machine backend of the plan interpreter.
//!
//! [`SimBackend`] executes plan segments on a [`SimHpu`]: CPU bands run on
//! the virtual multicore (ping-ponging between the data and a scratch
//! buffer, with parity restored by an explicit copy-back level), device
//! bands run on the simulated GPU with launch overhead and coalescing
//! accounting, and transfer edges move suffix regions of the data over the
//! simulated bus. Every span is booked into a [`LevelBook`] keyed by
//! bottom-up level and plan segment.

use hpu_machine::{CpuCtx, DeviceBuffer, LevelPhase, SimCpu, SimHpu};
use hpu_model::{Direction, Transfer};
use hpu_obs::LevelBook;

use crate::bf::{BfAlgorithm, Element, LevelInfo};
use crate::error::CoreError;
use crate::exec::backend::{Backend, BandStats, LevelBand, Share};

/// The chunk size (output elements per task) of a bottom-up level.
fn chunk_of(base: usize, a: usize, level: u32) -> usize {
    base.saturating_mul(a.saturating_pow(level))
}

/// Runs the base-case level and the combine levels up to runs of
/// `to_chunk` elements on `cores` simulated cores, ping-ponging between
/// `data` and `scratch`, booking every level's metrics. Returns `true` when
/// the result ended up in `data`, `false` when it is in `scratch`.
fn run_levels_cpu<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    cpu: &mut SimCpu,
    data: &mut [T],
    scratch: &mut [T],
    to_chunk: usize,
    cores: usize,
    book: &mut LevelBook,
) -> bool {
    let a = algo.branching();
    let base = algo.base_chunk();
    debug_assert_eq!(data.len(), scratch.len());

    let run = cpu.run_level_obs(
        cores,
        algo.name(),
        LevelPhase::Base,
        base as u64,
        data.chunks_mut(base)
            .map(|c| move |ctx: &mut CpuCtx| algo.base_case(c, ctx)),
    );
    book.cpu(base as u64, run.tasks, run.ops, run.mem, run.start, run.end);

    run_combines_from(
        algo,
        cpu,
        data,
        scratch,
        base.saturating_mul(a),
        to_chunk,
        cores,
        book,
        true,
    )
}

/// Runs CPU combine levels from `from_chunk` up to `to_chunk` (both
/// inclusive); `src_is_data` names the buffer currently holding the input.
/// Returns `true` when the result ended up in `data`.
#[allow(clippy::too_many_arguments)]
fn run_combines_from<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    cpu: &mut SimCpu,
    data: &mut [T],
    scratch: &mut [T],
    from_chunk: usize,
    to_chunk: usize,
    cores: usize,
    book: &mut LevelBook,
    mut src_is_data: bool,
) -> bool {
    let a = algo.branching();
    let mut chunk = from_chunk;
    while chunk <= to_chunk && chunk <= data.len() {
        if src_is_data {
            run_combine_level(algo, cpu, data, scratch, chunk, cores, book);
        } else {
            run_combine_level(algo, cpu, scratch, data, chunk, cores, book);
        }
        src_is_data = !src_is_data;
        chunk = chunk.saturating_mul(a);
    }
    src_is_data
}

fn run_combine_level<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    cpu: &mut SimCpu,
    src: &[T],
    dst: &mut [T],
    chunk: usize,
    cores: usize,
    book: &mut LevelBook,
) {
    let run = cpu.run_level_obs(
        cores,
        algo.name(),
        LevelPhase::Combine,
        chunk as u64,
        src.chunks(chunk)
            .zip(dst.chunks_mut(chunk))
            .map(|(s, d)| move |ctx: &mut CpuCtx| algo.combine(s, d, ctx)),
    );
    book.cpu(
        chunk as u64,
        run.tasks,
        run.ops,
        run.mem,
        run.start,
        run.end,
    );
}

/// Copies `src` into `dst` as a level of chunked tasks (2 memory ops per
/// element), used when a run's ping-pong parity leaves the result in the
/// scratch buffer. The span is booked against `owner_chunk` — the chunk
/// size of the level whose results are being moved.
fn copy_level<T: Element>(
    cpu: &mut SimCpu,
    src: &[T],
    dst: &mut [T],
    chunk: usize,
    cores: usize,
    book: &mut LevelBook,
    owner_chunk: u64,
) {
    let chunk = chunk.min(src.len()).max(1);
    let run = cpu.run_level_obs(
        cores,
        "copy back",
        LevelPhase::CopyBack,
        owner_chunk,
        src.chunks(chunk).zip(dst.chunks_mut(chunk)).map(|(s, d)| {
            move |ctx: &mut CpuCtx| {
                d.copy_from_slice(s);
                ctx.charge_mem(2 * s.len() as u64);
            }
        }),
    );
    book.cpu(owner_chunk, 0, run.ops, run.mem, run.start, run.end);
}

/// Outcome of running device levels: where the result lives and the
/// coalescing tally.
struct GpuRun {
    /// `true` if the result is in the first (upload) buffer.
    in_first: bool,
    /// Coalesced accesses across all launches.
    coalesced: u64,
    /// Uncoalesced accesses across all launches.
    uncoalesced: u64,
}

/// Runs device levels `from_level ..` up to runs of `to_chunk` elements,
/// ping-ponging `buf_a` → `buf_b`, booking every level's span off the
/// device clock.
///
/// A band starting at level 0 executes the base cases first (the
/// historical whole-band path). A band starting higher continues from
/// partial results already resident on the device — either re-uploaded by
/// the segment's own edges or left behind by a previous device segment
/// whose round trip a transfer-elision pass removed; `start_in_first`
/// names the buffer currently holding them.
#[allow(clippy::too_many_arguments)]
fn run_levels_gpu<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    gpu: &mut hpu_machine::SimGpu,
    buf_a: &mut DeviceBuffer<T>,
    buf_b: &mut DeviceBuffer<T>,
    from_level: u32,
    to_chunk: usize,
    start_in_first: bool,
    book: &mut LevelBook,
) -> Result<GpuRun, CoreError> {
    let a = algo.branching();
    let base = algo.base_chunk();
    let n = buf_a.len();
    let mut coalesced = 0u64;
    let mut uncoalesced = 0u64;
    let mut in_first = start_in_first;

    let mut chunk;
    if from_level == 0 {
        let buf = if in_first { &mut *buf_a } else { &mut *buf_b };
        let t0 = gpu.clock();
        let st = algo.gpu_base_level(gpu, buf, n / base)?;
        book.gpu(
            base as u64,
            (n / base) as u64,
            st.coalesced,
            st.uncoalesced,
            t0,
            gpu.clock(),
        );
        coalesced += st.coalesced;
        uncoalesced += st.uncoalesced;
        chunk = base.saturating_mul(a);
    } else {
        chunk = chunk_of(base, a, from_level);
    }

    while chunk <= to_chunk && chunk <= n {
        let level = LevelInfo {
            chunk,
            tasks: n / chunk,
        };
        let t0 = gpu.clock();
        let st = if in_first {
            algo.gpu_level(gpu, buf_a, buf_b, &level)?
        } else {
            algo.gpu_level(gpu, buf_b, buf_a, &level)?
        };
        book.gpu(
            chunk as u64,
            level.tasks as u64,
            st.coalesced,
            st.uncoalesced,
            t0,
            gpu.clock(),
        );
        coalesced += st.coalesced;
        uncoalesced += st.uncoalesced;
        in_first = !in_first;
        chunk = chunk.saturating_mul(a);
    }
    // Give layout-maintaining algorithms a chance to restore the
    // contiguous-chunk layout before download.
    let final_chunk = (chunk / a).max(base);
    let final_level = LevelInfo {
        chunk: final_chunk,
        tasks: n / final_chunk,
    };
    let t0 = gpu.clock();
    let fin = if in_first {
        algo.gpu_finalize(gpu, buf_a, buf_b, &final_level)?
    } else {
        algo.gpu_finalize(gpu, buf_b, buf_a, &final_level)?
    };
    if let Some(st) = fin {
        // A finalize pass reshuffles data already produced: book its span
        // and accesses against the finished level but no new tasks.
        book.gpu(
            final_chunk as u64,
            0,
            st.coalesced,
            st.uncoalesced,
            t0,
            gpu.clock(),
        );
        coalesced += st.coalesced;
        uncoalesced += st.uncoalesced;
        in_first = !in_first;
    }
    Ok(GpuRun {
        in_first,
        coalesced,
        uncoalesced,
    })
}

/// Device-side state between an upload edge and its download edge.
struct DeviceState<T> {
    buf_a: DeviceBuffer<T>,
    buf_b: DeviceBuffer<T>,
    in_first: bool,
    /// Start of the uploaded suffix region within the host data.
    region_start: usize,
}

/// Plan-interpreter backend over the simulated HPU.
pub struct SimBackend<'a, T: Element> {
    hpu: &'a mut SimHpu,
    data: &'a mut [T],
    /// Host scratch for CPU ping-pong, lazily sized to the data on the
    /// first CPU band and reused by later bands.
    scratch: Vec<T>,
    device: Option<DeviceState<T>>,
    book: LevelBook,
    metrics: Option<std::sync::Arc<hpu_obs::MetricsRegistry>>,
}

impl<'a, T: Element> SimBackend<'a, T> {
    /// Creates a backend over the machine and host data, booking spans into
    /// `book`.
    pub fn new(hpu: &'a mut SimHpu, data: &'a mut [T], book: LevelBook) -> Self {
        SimBackend {
            hpu,
            data,
            scratch: Vec::new(),
            device: None,
            book,
            metrics: None,
        }
    }

    /// Attaches a live metrics registry the interpreter samples
    /// per-segment timings into.
    pub fn with_metrics(mut self, metrics: std::sync::Arc<hpu_obs::MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Consumes the backend and returns the filled metrics book.
    pub fn into_book(self) -> LevelBook {
        self.book
    }

    /// Runs a CPU band over the first `region_len` elements of the data.
    fn cpu_band<A: BfAlgorithm<T>>(
        &mut self,
        algo: &A,
        band: &LevelBand,
        cores: usize,
        region_len: usize,
    ) -> Result<(), CoreError> {
        if region_len == 0 || region_len > self.data.len() {
            return Err(CoreError::MalformedPlan {
                reason: "CPU band region outside the data",
            });
        }
        if self.scratch.is_empty() {
            self.scratch = vec![T::default(); self.data.len()];
        }
        let base = algo.base_chunk();
        let a = algo.branching();
        let top_chunk = chunk_of(base, a, band.last);
        let region = &mut self.data[..region_len];
        let scratch = &mut self.scratch[..region_len];
        self.hpu
            .cpu
            .set_footprint(2 * region_len * std::mem::size_of::<T>());
        let in_data = if band.first == 0 {
            run_levels_cpu(
                algo,
                &mut self.hpu.cpu,
                region,
                scratch,
                top_chunk,
                cores,
                &mut self.book,
            )
        } else {
            run_combines_from(
                algo,
                &mut self.hpu.cpu,
                region,
                scratch,
                chunk_of(base, a, band.first),
                top_chunk,
                cores,
                &mut self.book,
                true,
            )
        };
        if !in_data {
            // Restore parity. A root band moves the finished result in
            // core-sized chunks booked against the whole input; a split's
            // partial band moves its top-level chunks booked against them.
            let (copy_chunk, owner) = if band.is_root {
                (region_len.div_ceil(cores.max(1)), region_len as u64)
            } else {
                (top_chunk, top_chunk as u64)
            };
            copy_level(
                &mut self.hpu.cpu,
                &self.scratch[..region_len],
                &mut self.data[..region_len],
                copy_chunk,
                cores,
                &mut self.book,
                owner,
            );
        }
        Ok(())
    }

    /// Runs a device band over the live device region. The region comes
    /// from the segment's own upload edge, or — when a transfer-elision
    /// pass removed the round trip — is still resident from the previous
    /// device segment, in which case the band continues above the base
    /// level from the buffer that segment's parity left the data in.
    fn gpu_band<A: BfAlgorithm<T>>(
        &mut self,
        algo: &A,
        band: &LevelBand,
    ) -> Result<BandStats, CoreError> {
        let Some(dev) = self.device.as_mut() else {
            return Err(CoreError::MalformedPlan {
                reason: "device band with no live device region",
            });
        };
        let to_chunk = chunk_of(algo.base_chunk(), algo.branching(), band.last);
        match run_levels_gpu(
            algo,
            &mut self.hpu.gpu,
            &mut dev.buf_a,
            &mut dev.buf_b,
            band.first,
            to_chunk,
            dev.in_first,
            &mut self.book,
        ) {
            Ok(run) => {
                dev.in_first = run.in_first;
                Ok(BandStats {
                    coalesced: run.coalesced,
                    uncoalesced: run.uncoalesced,
                })
            }
            Err(e) => {
                let dev = self.device.take().expect("checked above");
                self.hpu.gpu.free(dev.buf_a);
                self.hpu.gpu.free(dev.buf_b);
                Err(e)
            }
        }
    }
}

impl<T: Element, A: BfAlgorithm<T>> Backend<T, A> for SimBackend<'_, T> {
    fn run_level_band(
        &mut self,
        algo: &A,
        band: &LevelBand,
        share: &Share,
    ) -> Result<BandStats, CoreError> {
        match share {
            Share::Cpu { cores } => {
                let n = self.data.len();
                self.cpu_band(algo, band, *cores, n)?;
                Ok(BandStats::default())
            }
            Share::SplitCpu {
                cpu_tasks,
                tasks,
                cores,
            } => {
                if *tasks < 2 || *cpu_tasks == 0 || cpu_tasks >= tasks {
                    return Err(CoreError::MalformedPlan {
                        reason: "split must leave work on both units",
                    });
                }
                let chunk_y = self.data.len() / *tasks as usize;
                let cpu_elems = *cpu_tasks as usize * chunk_y;
                self.cpu_band(algo, band, *cores, cpu_elems)?;
                Ok(BandStats::default())
            }
            Share::Gpu => self.gpu_band(algo, band),
        }
    }

    fn transfer(&mut self, algo: &A, edge: &Transfer) -> Result<(), CoreError> {
        let chunk = chunk_of(algo.base_chunk(), algo.branching(), edge.level) as u64;
        match edge.direction {
            Direction::ToGpu => {
                if self.device.is_some() {
                    return Err(CoreError::MalformedPlan {
                        reason: "upload edge while a device region is live",
                    });
                }
                let n = self.data.len();
                let words = (edge.words as usize).min(n);
                // The device always works on the trailing region: a full
                // upload for pure-GPU bands, the GPU share of a split.
                let region_start = n - words;
                let t0 = self.hpu.elapsed();
                let mut buf_a = self.hpu.gpu.alloc::<T>(words)?;
                if let Err(e) = self
                    .hpu
                    .try_upload_into(&mut buf_a, &self.data[region_start..])
                {
                    // The host data never left: freeing the buffer leaves
                    // the backend exactly as before the edge, so the whole
                    // segment can be retried.
                    self.hpu.gpu.free(buf_a);
                    return Err(e.into());
                }
                self.book
                    .transfer(chunk, words as u64, t0, self.hpu.elapsed());
                let buf_b = match self.hpu.gpu.alloc::<T>(words) {
                    Ok(b) => b,
                    Err(e) => {
                        self.hpu.gpu.free(buf_a);
                        return Err(e.into());
                    }
                };
                self.device = Some(DeviceState {
                    buf_a,
                    buf_b,
                    in_first: true,
                    region_start,
                });
                Ok(())
            }
            Direction::ToCpu => {
                let Some(dev) = self.device.take() else {
                    return Err(CoreError::MalformedPlan {
                        reason: "download edge with no live device region",
                    });
                };
                let result = if dev.in_first { &dev.buf_a } else { &dev.buf_b };
                let g0 = self.hpu.gpu.clock();
                let len = result.len();
                let out = &mut self.data[dev.region_start..dev.region_start + len];
                let res = self.hpu.try_download_range(result, 0, out);
                if res.is_ok() {
                    self.book
                        .transfer(chunk, edge.words, g0, self.hpu.gpu.clock());
                }
                // Freed on both paths: a faulted download leaves the host
                // data untouched, so a segment retry re-uploads it fresh.
                self.hpu.gpu.free(dev.buf_a);
                self.hpu.gpu.free(dev.buf_b);
                res.map_err(Into::into)
            }
        }
    }

    fn sync(&mut self) {
        self.hpu.sync();
    }

    fn now(&self) -> f64 {
        self.hpu.elapsed()
    }

    fn cpu_clock(&self) -> f64 {
        self.hpu.cpu.clock()
    }

    fn gpu_clock(&self) -> f64 {
        self.hpu.gpu.clock()
    }

    fn recorder(&mut self) -> &mut LevelBook {
        &mut self.book
    }

    fn wait(&mut self, dur: f64) {
        self.hpu.wait(dur);
    }

    fn note_recovery(&mut self, start: f64, end: f64, kind: hpu_obs::EventKind) {
        self.hpu.annotate(hpu_machine::Unit::Cpu, start, end, kind);
    }

    fn metrics(&self) -> Option<&hpu_obs::MetricsRegistry> {
        self.metrics.as_deref()
    }

    fn launch_totals(&self) -> (u64, f64) {
        let launches = self.hpu.gpu.stats().launches;
        let overhead = self.hpu.gpu.config().launch_overhead;
        (launches, launches as f64 * overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::Charge;
    use hpu_machine::{CpuConfig, MachineConfig, SimGpu};
    use hpu_model::Recurrence;

    /// Chunk solution = max of the chunk, kept in slot 0.
    struct MaxAlgo;
    impl BfAlgorithm<u32> for MaxAlgo {
        fn name(&self) -> &'static str {
            "max"
        }
        fn base_case(&self, _c: &mut [u32], ch: &mut dyn Charge) {
            ch.ops(1);
        }
        fn combine(&self, src: &[u32], dst: &mut [u32], ch: &mut dyn Charge) {
            dst[0] = src[0].max(src[src.len() / 2]);
            ch.ops(1);
            ch.mem(3);
        }
        fn recurrence(&self) -> Recurrence {
            Recurrence::dc_sum()
        }
    }

    #[test]
    fn partial_climb_stops_at_to_chunk() {
        let mut cpu = SimCpu::new(CpuConfig::uniform(2));
        let mut data: Vec<u32> = vec![3, 9, 1, 4, 1, 5, 9, 2];
        let mut scratch = vec![0u32; 8];
        let mut book = LevelBook::new(1, 2);
        // Climb only to runs of 4: two partial maxima, no root combine.
        let in_data = run_levels_cpu(&MaxAlgo, &mut cpu, &mut data, &mut scratch, 4, 2, &mut book);
        // Two combine levels (chunk 2 and 4): result in data again.
        assert!(in_data);
        assert_eq!(data[0], 9);
        assert_eq!(data[4], 9);
        // Booked: base level plus chunks 2 and 4.
        let levels = book.finish();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].tasks, 8);
        assert_eq!(levels[1].chunk, 2);
        assert_eq!(levels[2].chunk, 4);
        assert_eq!(levels[2].tasks, 2);
    }

    #[test]
    fn copy_level_charges_two_mem_per_element() {
        let mut cpu = SimCpu::new(CpuConfig::uniform(1));
        let src: Vec<u32> = (0..16).collect();
        let mut dst = vec![0u32; 16];
        let mut book = LevelBook::new(1, 2);
        copy_level(&mut cpu, &src, &mut dst, 4, 1, &mut book, 16);
        assert_eq!(dst, src);
        assert_eq!(cpu.clock(), 32.0);
        let levels = book.finish();
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].level, 4, "booked against the owner chunk");
        assert_eq!(levels[0].mem, 32);
    }

    #[test]
    fn single_chunk_input_runs_base_only() {
        let mut cpu = SimCpu::new(CpuConfig::uniform(2));
        let mut data = vec![7u32];
        let mut scratch = vec![0u32];
        let mut book = LevelBook::new(1, 2);
        let in_data = run_levels_cpu(&MaxAlgo, &mut cpu, &mut data, &mut scratch, 1, 2, &mut book);
        assert!(in_data);
        assert_eq!(cpu.clock(), 1.0); // one leaf op, no combines
    }

    struct SumAlgo;
    impl BfAlgorithm<u64> for SumAlgo {
        fn name(&self) -> &'static str {
            "sum"
        }
        fn base_case(&self, _c: &mut [u64], ch: &mut dyn Charge) {
            ch.ops(1);
        }
        fn combine(&self, src: &[u64], dst: &mut [u64], ch: &mut dyn Charge) {
            dst[0] = src[0] + src[src.len() / 2];
            ch.ops(1);
            ch.mem(3);
        }
        fn recurrence(&self) -> Recurrence {
            Recurrence::dc_sum()
        }
    }

    #[test]
    fn ping_pong_parity_tracked() {
        let mut gpu = SimGpu::new(MachineConfig::tiny().gpu);
        let mut book = LevelBook::new(1, 2);
        let mut a = gpu.alloc::<u64>(8).unwrap();
        let mut b = gpu.alloc::<u64>(8).unwrap();
        a.debug_fill(&[1, 2, 3, 4, 5, 6, 7, 8]);
        // 3 combine levels: result lands in the *other* buffer.
        let run =
            run_levels_gpu(&SumAlgo, &mut gpu, &mut a, &mut b, 0, 8, true, &mut book).unwrap();
        assert!(!run.in_first);
        assert_eq!(b.debug_view()[0], 36);
        // Booked: base + chunks 2, 4, 8 on the GPU clock.
        let levels = book.finish();
        assert_eq!(levels.len(), 4);
        assert!(levels.iter().all(|l| l.gpu_time > 0.0));
        assert_eq!(levels[3].chunk, 8);
        assert_eq!(levels[3].tasks, 1);
        // 2 combine levels only: result back in the first buffer... no —
        // two levels means one swap then another: in_first again.
        let mut book2 = LevelBook::new(1, 2);
        let mut a2 = gpu.alloc::<u64>(4).unwrap();
        let mut b2 = gpu.alloc::<u64>(4).unwrap();
        a2.debug_fill(&[1, 2, 3, 4]);
        let run2 =
            run_levels_gpu(&SumAlgo, &mut gpu, &mut a2, &mut b2, 0, 4, true, &mut book2).unwrap();
        assert!(run2.in_first);
        assert_eq!(a2.debug_view()[0], 10);
    }

    #[test]
    fn partial_climb_leaves_partial_sums() {
        let mut gpu = SimGpu::new(MachineConfig::tiny().gpu);
        let mut book = LevelBook::new(1, 2);
        let mut a = gpu.alloc::<u64>(8).unwrap();
        let mut b = gpu.alloc::<u64>(8).unwrap();
        a.debug_fill(&[1, 1, 1, 1, 2, 2, 2, 2]);
        // Climb to runs of 4 only.
        let run =
            run_levels_gpu(&SumAlgo, &mut gpu, &mut a, &mut b, 0, 4, true, &mut book).unwrap();
        let result = if run.in_first {
            a.debug_view()
        } else {
            b.debug_view()
        };
        assert_eq!(result[0], 4);
        assert_eq!(result[4], 8);
    }

    #[test]
    fn device_band_without_upload_is_rejected() {
        let mut hpu = SimHpu::new(MachineConfig::tiny());
        let mut data: Vec<u64> = vec![1, 2, 3, 4];
        let mut backend = SimBackend::new(&mut hpu, &mut data, LevelBook::new(1, 2));
        let band = LevelBand {
            first: 0,
            last: 2,
            is_root: true,
        };
        let got =
            Backend::<u64, SumAlgo>::run_level_band(&mut backend, &SumAlgo, &band, &Share::Gpu);
        assert!(matches!(got, Err(CoreError::MalformedPlan { .. })));
    }
}
