//! # hpu-core — generic hybrid CPU-GPU divide-and-conquer
//!
//! The paper's primary contribution: a *generic translation* of recursive
//! divide-and-conquer (D&C) algorithms into breadth-first form plus
//! work-division schedules that split the recursion tree between a
//! multi-core CPU and a GPU.
//!
//! Two levels of genericity are offered:
//!
//! * [`tree`] — the fully general form of Algorithms 1 & 2: any problem
//!   expressible as `endCondition / Divide / BaseCase / Combine` over
//!   arbitrary parameter types, with recursive, breadth-first and
//!   native-threaded executors. This is the faithful rendering of the
//!   paper's translation, applicable with "little knowledge of the
//!   particular algorithm".
//! * [`bf`] — the regular, in-place form over a contiguous buffer (the
//!   shape of the paper's case study): level `k` combines runs of
//!   `a` solved chunks into one. This form is what the hybrid schedulers
//!   in [`exec`] run on the simulated machine, including:
//!
//!   - [`exec::Strategy::Sequential`] — the 1-core baseline,
//!   - [`exec::Strategy::CpuOnly`] — level-parallel on `p` cores,
//!   - [`exec::Strategy::GpuOnly`] — every level on the device,
//!   - [`exec::Strategy::Basic`] — one crossover level (§5.1, Figure 1),
//!   - [`exec::Strategy::Advanced`] — the `(α, y)` concurrent split
//!     (§5.2, Figure 2), with parameters solvable by
//!     [`tune::auto_advanced`] from the analytic model.
//!
//! A from-scratch [`pool::LevelPool`] provides real-thread execution of the
//! same breadth-first levels for native use of the library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bf;
pub mod charge;
pub mod error;
pub mod exec;
pub mod pool;
pub mod tree;
pub mod tune;

pub use bf::{BfAlgorithm, Element, LevelInfo};
pub use charge::Charge;
pub use error::CoreError;
pub use exec::{
    interpret, interpret_recover, run_native, run_native_report, run_sim, run_sim_plan,
    run_sim_plan_recover, run_sim_plan_resume, Backend, BandStats, Checkpoint, InterpretStats,
    LevelBand, NativeBackend, NativeReport, RecoveryPolicy, RecoveryStats, RunReport, Share,
    SimBackend, Strategy,
};
pub use pool::LevelPool;
pub use tree::DivideConquer;
