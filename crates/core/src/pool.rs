//! A from-scratch level-synchronous thread pool for native execution.
//!
//! The breadth-first translation turns a D&C algorithm into a sequence of
//! *levels* of independent tasks, so the only primitive the native executor
//! needs is "run this batch of closures on `k` threads and wait" — a
//! fork-join per level, mirroring how the paper's implementation launches
//! CPU threads per recursion level (§6.1).
//!
//! Workers pull task indices from a shared atomic counter (self-balancing
//! for uneven task costs); scoped threads keep borrows of the caller's
//! data safe without `'static` bounds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use hpu_obs::{EventKind, Recorder, Track, WallRecorder};

/// A fork-join executor running each submitted level on `threads` OS
/// threads.
///
/// A pool can carry an optional wall-clock [`WallRecorder`]: levels
/// submitted through [`LevelPool::run_tagged`] are then recorded as
/// structured spans (µs since the recorder's origin) for Chrome trace
/// export. Cloned pools share the same recorder.
#[derive(Debug, Clone)]
pub struct LevelPool {
    threads: usize,
    recorder: Option<Arc<Mutex<WallRecorder>>>,
}

impl LevelPool {
    /// Creates a pool using `threads` worker threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        LevelPool {
            threads: threads.max(1),
            recorder: None,
        }
    }

    /// Creates a pool sized to the machine's available parallelism.
    pub fn host_sized() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        LevelPool::new(n)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a shared wall-clock recorder; levels run through
    /// [`LevelPool::run_tagged`] will be recorded as structured spans.
    pub fn with_recorder(mut self, rec: Arc<Mutex<WallRecorder>>) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<Mutex<WallRecorder>>> {
        self.recorder.as_ref()
    }

    /// Runs a level of independent tasks like [`LevelPool::run`], recording
    /// it on the attached recorder (if any) as an event of the given kind.
    /// Returns the level's wall-clock interval in µs since the recorder's
    /// origin (`(0, 0)` without a recorder).
    pub fn run_tagged<F>(&self, kind: EventKind, tasks: Vec<F>) -> (f64, f64)
    where
        F: FnOnce() + Send,
    {
        match &self.recorder {
            None => {
                self.run(tasks);
                (0.0, 0.0)
            }
            Some(rec) => {
                // Poison-tolerant: a panicked worker elsewhere must not
                // wedge the recorder for surviving levels.
                let start = rec.lock().unwrap_or_else(PoisonError::into_inner).now_us();
                self.run(tasks);
                let mut rec = rec.lock().unwrap_or_else(PoisonError::into_inner);
                let end = rec.now_us();
                rec.record_event(Track::Cpu, start, end, kind);
                (start, end)
            }
        }
    }

    /// Runs a level of independent tasks to completion.
    pub fn run<F>(&self, tasks: Vec<F>)
    where
        F: FnOnce() + Send,
    {
        let _: Vec<()> = self.run_collect(tasks.into_iter().map(|t| move || t()).collect());
    }

    /// Runs a level of independent tasks, returning their results in task
    /// order.
    pub fn run_collect<F, R>(&self, tasks: Vec<F>) -> Vec<R>
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        // Single thread or single task: run inline, no spawn cost.
        if self.threads == 1 || n == 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Poison-tolerant: if a sibling worker panicked mid-task
                    // the remaining workers still drain their slots; the
                    // original panic resurfaces when the scope joins.
                    let task = slots[i]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take()
                        .expect("each task taken once");
                    *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(task());
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every task ran")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_tasks() {
        let pool = LevelPool::new(4);
        let counter = AtomicU64::new(0);
        let tasks: Vec<_> = (0..100)
            .map(|_| {
                let c = &counter;
                move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn collect_preserves_order() {
        let pool = LevelPool::new(3);
        let tasks: Vec<_> = (0..50usize).map(|i| move || i * i).collect();
        let out = pool.run_collect(tasks);
        assert_eq!(out, (0..50).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_level_is_fine() {
        let pool = LevelPool::new(2);
        let out: Vec<u8> = pool.run_collect(Vec::<fn() -> u8>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = LevelPool::new(1);
        let out = pool.run_collect((0..5usize).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        assert_eq!(LevelPool::new(0).threads(), 1);
    }

    #[test]
    fn tasks_can_borrow_caller_data() {
        let pool = LevelPool::new(2);
        let mut data = [0u32; 16];
        {
            let tasks: Vec<_> = data
                .chunks_mut(4)
                .enumerate()
                .map(|(k, chunk)| {
                    move || {
                        for x in chunk.iter_mut() {
                            *x = k as u32;
                        }
                    }
                })
                .collect();
            pool.run(tasks);
        }
        assert_eq!(data[0], 0);
        assert_eq!(data[5], 1);
        assert_eq!(data[15], 3);
    }

    #[test]
    fn tagged_levels_land_on_the_recorder() {
        let rec = Arc::new(Mutex::new(WallRecorder::new()));
        let pool = LevelPool::new(2).with_recorder(rec.clone());
        let tasks: Vec<_> = (0..8).map(|_| || {}).collect();
        let (s, e) = pool.run_tagged(EventKind::Mark("lvl".into()), tasks);
        assert!(e >= s);
        let rec = rec.lock().unwrap();
        assert_eq!(rec.events().len(), 1);
        assert!(rec.events()[0].duration() >= 0.0);
    }

    #[test]
    fn uneven_tasks_self_balance() {
        // Just a smoke test that wildly uneven tasks complete.
        let pool = LevelPool::new(4);
        let out = pool.run_collect(
            (0..20usize)
                .map(|i| {
                    move || {
                        let mut acc = 0u64;
                        for k in 0..(i * 1000) {
                            acc = acc.wrapping_add(k as u64);
                        }
                        acc
                    }
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(out.len(), 20);
    }
}
