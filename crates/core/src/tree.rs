//! The fully general divide-and-conquer form (paper Algorithms 1 & 2).
//!
//! [`DivideConquer`] captures an arbitrary D&C algorithm through its four
//! primitives — `endCondition`, `BaseCase`, `Divide`, `Combine` — over any
//! parameter/output types. Three executors implement the paper's
//! translation pipeline:
//!
//! * [`run_recursive`] — Algorithm 1, the classic depth-first recursion;
//! * [`run_breadth_first`] — Algorithm 2, the level-order transformation:
//!   each level's subdivisions are batched and base cases are *deferred*
//!   until no recursive subproblems remain;
//! * [`run_threaded`] — the breadth-first form with each level's
//!   independent tasks executed on a real thread pool;
//! * [`run_sim_cpu`] — the breadth-first form with each level's tasks
//!   executed level-parallel on a simulated CPU, charging costs.
//!
//! Unlike the regular in-place form ([`crate::bf`]), trees here may be
//! irregular (data-dependent division counts and base-case depths).

use hpu_machine::{CpuCtx, SimCpu};

use crate::charge::{Charge, NullCharge};
use crate::pool::LevelPool;

/// A divide-and-conquer algorithm in the shape of Algorithm 1.
pub trait DivideConquer {
    /// Description of a subproblem.
    type Param: Send;
    /// Solution of a subproblem.
    type Output: Send;

    /// `endCondition(param)`: whether the subproblem is a base case.
    fn is_base(&self, param: &Self::Param) -> bool;

    /// Solves a base case.
    fn base_case(&self, param: Self::Param, charge: &mut dyn Charge) -> Self::Output;

    /// Splits a subproblem into its children (length = the branching of
    /// this node; may vary per node).
    fn divide(&self, param: &Self::Param, charge: &mut dyn Charge) -> Vec<Self::Param>;

    /// Combines child solutions into the parent solution.
    fn combine(
        &self,
        param: Self::Param,
        children: Vec<Self::Output>,
        charge: &mut dyn Charge,
    ) -> Self::Output;
}

/// Algorithm 1: plain depth-first recursion.
pub fn run_recursive<D: DivideConquer>(
    algo: &D,
    param: D::Param,
    charge: &mut dyn Charge,
) -> D::Output {
    if algo.is_base(&param) {
        return algo.base_case(param, charge);
    }
    let children = algo.divide(&param, charge);
    let outputs = children
        .into_iter()
        .map(|c| run_recursive(algo, c, charge))
        .collect();
    algo.combine(param, outputs, charge)
}

/// Arena node used by the breadth-first executors.
struct Node<P> {
    param: Option<P>,
    /// Indices of children in the arena; empty for base cases.
    children: Vec<usize>,
}

/// Builds the recursion tree level by level (the *down* phase of
/// Algorithm 2). Returns the arena and the node-index levels, root first.
fn build_levels<D: DivideConquer>(
    algo: &D,
    root: D::Param,
    charge: &mut dyn Charge,
) -> (Vec<Node<D::Param>>, Vec<Vec<usize>>) {
    let mut arena = vec![Node {
        param: Some(root),
        children: Vec::new(),
    }];
    let mut levels = vec![vec![0usize]];
    loop {
        let frontier = levels.last().expect("at least the root level");
        let mut next = Vec::new();
        for &idx in frontier {
            let param = arena[idx].param.as_ref().expect("param present going down");
            if algo.is_base(param) {
                continue;
            }
            let children = algo.divide(param, charge);
            for child in children {
                let cidx = arena.len();
                arena.push(Node {
                    param: Some(child),
                    children: Vec::new(),
                });
                arena[idx].children.push(cidx);
                next.push(cidx);
            }
        }
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }
    (arena, levels)
}

/// Algorithm 2: breadth-first execution. Subproblems are divided level by
/// level; base cases are deferred until no recursive subproblem remains,
/// then everything is combined bottom-up, one level at a time.
pub fn run_breadth_first<D: DivideConquer>(
    algo: &D,
    root: D::Param,
    charge: &mut dyn Charge,
) -> D::Output {
    let (mut arena, levels) = build_levels(algo, root, charge);
    let mut outputs: Vec<Option<D::Output>> = (0..arena.len()).map(|_| None).collect();
    // Up phase: deepest level first. Base cases may appear at any level
    // (they were carried down, matching Algorithm 2's `next_params`).
    for level in levels.iter().rev() {
        for &idx in level {
            let param = arena[idx].param.take().expect("param consumed once");
            let out = if arena[idx].children.is_empty() {
                algo.base_case(param, charge)
            } else {
                let children = std::mem::take(&mut arena[idx].children);
                let outs = children
                    .into_iter()
                    .map(|c| outputs[c].take().expect("child solved below"))
                    .collect();
                algo.combine(param, outs, charge)
            };
            outputs[idx] = Some(out);
        }
    }
    outputs[0].take().expect("root solved")
}

/// Breadth-first execution with each level's independent tasks run on a
/// real thread pool (the multi-core half of the paper's translation).
pub fn run_threaded<D>(algo: &D, root: D::Param, pool: &LevelPool) -> D::Output
where
    D: DivideConquer + Sync,
{
    let (mut arena, levels) = build_levels(algo, root, &mut NullCharge);
    let mut outputs: Vec<Option<D::Output>> = (0..arena.len()).map(|_| None).collect();
    for level in levels.iter().rev() {
        // Take each task's inputs out of the arena first (children live
        // strictly below this level, so the slots are disjoint), then run
        // the level on the pool; results come back by value.
        let tasks: Vec<_> = level
            .iter()
            .map(|&idx| {
                let param = arena[idx].param.take().expect("param consumed once");
                let children = std::mem::take(&mut arena[idx].children);
                let outs: Vec<D::Output> = children
                    .into_iter()
                    .map(|c| outputs[c].take().expect("child solved below"))
                    .collect();
                move || {
                    if outs.is_empty() {
                        algo.base_case(param, &mut NullCharge)
                    } else {
                        algo.combine(param, outs, &mut NullCharge)
                    }
                }
            })
            .collect();
        let results = pool.run_collect(tasks);
        for (&idx, out) in level.iter().zip(results) {
            outputs[idx] = Some(out);
        }
    }
    outputs[0].take().expect("root solved")
}

/// Breadth-first execution on a simulated CPU: each level's tasks run
/// level-parallel on `cores` cores with full cost accounting.
pub fn run_sim_cpu<D: DivideConquer>(
    algo: &D,
    root: D::Param,
    cpu: &mut SimCpu,
    cores: usize,
) -> D::Output {
    // The down phase (divisions) is pure bookkeeping in Algorithm 2's
    // one-recursion form; its cost is charged level-parallel as well.
    let (mut arena, levels) = build_levels(algo, root, &mut NullCharge);
    // Re-charge division costs per level (they were computed above to
    // discover the tree shape; the paper's divide step is part of f(n)).
    let mut outputs: Vec<Option<D::Output>> = (0..arena.len()).map(|_| None).collect();
    for (depth, level) in levels.iter().enumerate().rev() {
        let mut work: Vec<(usize, D::Param, Vec<D::Output>)> = Vec::with_capacity(level.len());
        for &idx in level {
            let param = arena[idx].param.take().expect("param consumed once");
            let children = std::mem::take(&mut arena[idx].children);
            let outs: Vec<D::Output> = children
                .into_iter()
                .map(|c| outputs[c].take().expect("child solved below"))
                .collect();
            work.push((idx, param, outs));
        }
        let label = format!("level {depth}");
        // run_level_with executes tasks sequentially on the host, so the
        // closures can push results into a shared local queue.
        let queue = std::cell::RefCell::new(Vec::with_capacity(work.len()));
        cpu.run_level_with(
            cores,
            &label,
            work.into_iter().map(|(idx, param, outs)| {
                let queue = &queue;
                move |ctx: &mut CpuCtx| {
                    let out = if outs.is_empty() {
                        algo.base_case(param, ctx)
                    } else {
                        algo.combine(param, outs, ctx)
                    };
                    queue.borrow_mut().push((idx, out));
                }
            }),
        );
        for (idx, out) in queue.into_inner() {
            outputs[idx] = Some(out);
        }
    }
    outputs[0].take().expect("root solved")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::CountingCharge;
    use hpu_machine::CpuConfig;

    /// D&C sum over a slice of numbers (paper Algorithm 4).
    struct TreeSum<'a> {
        data: &'a [u64],
    }

    /// A subproblem is a half-open range of the slice.
    type Range = (usize, usize);

    impl DivideConquer for TreeSum<'_> {
        type Param = Range;
        type Output = u64;

        fn is_base(&self, &(lo, hi): &Range) -> bool {
            hi - lo <= 1
        }
        fn base_case(&self, (lo, hi): Range, charge: &mut dyn Charge) -> u64 {
            charge.ops(1);
            if hi > lo {
                self.data[lo]
            } else {
                0
            }
        }
        fn divide(&self, &(lo, hi): &Range, charge: &mut dyn Charge) -> Vec<Range> {
            charge.ops(1);
            let mid = lo + (hi - lo) / 2;
            vec![(lo, mid), (mid, hi)]
        }
        fn combine(&self, _p: Range, children: Vec<u64>, charge: &mut dyn Charge) -> u64 {
            charge.ops(1);
            children.iter().sum()
        }
    }

    fn data(n: usize) -> Vec<u64> {
        (1..=n as u64).collect()
    }

    #[test]
    fn recursive_sums() {
        let d = data(100);
        let algo = TreeSum { data: &d };
        let s = run_recursive(&algo, (0, 100), &mut NullCharge);
        assert_eq!(s, 5050);
    }

    #[test]
    fn breadth_first_matches_recursive() {
        for n in [1usize, 2, 3, 7, 64, 100, 255] {
            let d = data(n);
            let algo = TreeSum { data: &d };
            let r = run_recursive(&algo, (0, n), &mut NullCharge);
            let b = run_breadth_first(&algo, (0, n), &mut NullCharge);
            assert_eq!(r, b, "n = {n}");
        }
    }

    #[test]
    fn breadth_first_charges_same_base_and_combine_work() {
        let d = data(64);
        let algo = TreeSum { data: &d };
        let mut cr = CountingCharge::default();
        let mut cb = CountingCharge::default();
        run_recursive(&algo, (0, 64), &mut cr);
        run_breadth_first(&algo, (0, 64), &mut cb);
        assert_eq!(cr, cb);
    }

    #[test]
    fn threaded_matches_recursive() {
        let pool = LevelPool::new(3);
        for n in [1usize, 5, 64, 100] {
            let d = data(n);
            let algo = TreeSum { data: &d };
            let t = run_threaded(&algo, (0, n), &pool);
            assert_eq!(t, (n as u64) * (n as u64 + 1) / 2, "n = {n}");
        }
    }

    #[test]
    fn sim_cpu_matches_and_speeds_up_with_cores() {
        let d = data(256);
        let algo = TreeSum { data: &d };
        let mut cpu1 = SimCpu::new(CpuConfig::uniform(8));
        let s1 = run_sim_cpu(&algo, (0, 256), &mut cpu1, 1);
        let mut cpu8 = SimCpu::new(CpuConfig::uniform(8));
        let s8 = run_sim_cpu(&algo, (0, 256), &mut cpu8, 8);
        assert_eq!(s1, 32896);
        assert_eq!(s8, 32896);
        assert!(
            cpu8.clock() < cpu1.clock(),
            "8 cores ({}) should beat 1 core ({})",
            cpu8.clock(),
            cpu1.clock()
        );
    }

    /// Irregular tree: division count depends on the value (3 children for
    /// ranges divisible by 3, else 2) — exercises non-uniform branching.
    struct Irregular<'a> {
        data: &'a [u64],
    }

    impl DivideConquer for Irregular<'_> {
        type Param = Range;
        type Output = u64;
        fn is_base(&self, &(lo, hi): &Range) -> bool {
            hi - lo <= 2
        }
        fn base_case(&self, (lo, hi): Range, _c: &mut dyn Charge) -> u64 {
            self.data[lo..hi].iter().sum()
        }
        fn divide(&self, &(lo, hi): &Range, _c: &mut dyn Charge) -> Vec<Range> {
            let len = hi - lo;
            if len % 3 == 0 {
                let t = len / 3;
                vec![(lo, lo + t), (lo + t, lo + 2 * t), (lo + 2 * t, hi)]
            } else {
                let mid = lo + len / 2;
                vec![(lo, mid), (mid, hi)]
            }
        }
        fn combine(&self, _p: Range, ch: Vec<u64>, _c: &mut dyn Charge) -> u64 {
            ch.iter().sum()
        }
    }

    #[test]
    fn irregular_trees_execute_correctly_everywhere() {
        let pool = LevelPool::new(2);
        for n in [3usize, 9, 17, 54, 100] {
            let d = data(n);
            let algo = Irregular { data: &d };
            let expect = (n as u64) * (n as u64 + 1) / 2;
            assert_eq!(run_recursive(&algo, (0, n), &mut NullCharge), expect);
            assert_eq!(run_breadth_first(&algo, (0, n), &mut NullCharge), expect);
            assert_eq!(run_threaded(&algo, (0, n), &pool), expect);
            let mut cpu = SimCpu::new(CpuConfig::uniform(4));
            assert_eq!(run_sim_cpu(&algo, (0, n), &mut cpu, 4), expect);
        }
    }
}
