//! Automatic schedule tuning: analytic (from `hpu-model`) and empirical
//! (grid search on the simulator, as in the paper's Figures 7 and 10).

use hpu_machine::{MachineConfig, SimHpu, SimMachineParams};
use hpu_model::{compile, BasicSchedule, MachineParams, Recurrence, ScheduleSpec};

use crate::bf::{BfAlgorithm, Element};
use crate::error::CoreError;
use crate::exec::{run_sim, Strategy};

/// Derives the model-optimal advanced schedule `(α*, y*)` for `rec` at
/// input size `n` on the given machine, with `y` rounded to an executable
/// integer level clamped to `[1, L]`. Compiles an
/// [`ScheduleSpec::AdvancedAuto`] plan and reads the resolved parameters
/// off it, so tuning and execution can never derive different `(α, y)`.
pub fn auto_advanced(cfg: &MachineConfig, rec: &Recurrence, n: u64) -> Result<Strategy, CoreError> {
    let params = MachineParams::from_config(cfg);
    let levels = rec.num_levels(n);
    let plan = compile(&ScheduleSpec::AdvancedAuto, &params, rec, n, levels)
        .map_err(|_| CoreError::EmptyInput)?;
    match plan.resolved {
        ScheduleSpec::Advanced {
            alpha,
            transfer_level,
        } => Ok(Strategy::Advanced {
            alpha,
            transfer_level,
        }),
        _ => Err(CoreError::EmptyInput),
    }
}

/// Picks a strategy automatically: the advanced division when the GPU is
/// worth using (`γ·g > p`), CPU-only otherwise.
pub fn auto_strategy(cfg: &MachineConfig, rec: &Recurrence, n: u64) -> Strategy {
    let params = MachineParams::from_config(cfg);
    if BasicSchedule::derive(&params, rec).crossover.is_none() {
        return Strategy::CpuOnly;
    }
    auto_advanced(cfg, rec, n).unwrap_or(Strategy::CpuOnly)
}

/// Result of an empirical grid search over `(α, y)`.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchResult {
    /// Best split ratio found.
    pub alpha: f64,
    /// Best transfer level found.
    pub transfer_level: u32,
    /// Virtual time of the best run.
    pub best_time: f64,
    /// All sampled points as `(α, y, virtual_time)`.
    pub samples: Vec<(f64, u32, f64)>,
}

/// Empirically tunes the advanced schedule by running the simulator over a
/// grid of `(α, y)` pairs (the procedure behind the paper's Figures 7 and
/// 10). `make_input` regenerates the identical input for every run.
pub fn grid_search_sim<T: Element, A: BfAlgorithm<T>>(
    algo: &A,
    cfg: &MachineConfig,
    alphas: &[f64],
    transfer_levels: &[u32],
    make_input: impl Fn() -> Vec<T>,
) -> Result<GridSearchResult, CoreError> {
    let mut samples = Vec::with_capacity(alphas.len() * transfer_levels.len());
    let mut best: Option<(f64, u32, f64)> = None;
    for &y in transfer_levels {
        for &alpha in alphas {
            let mut data = make_input();
            let mut hpu = SimHpu::new(cfg.clone());
            let report = run_sim(
                algo,
                &mut data,
                &mut hpu,
                &Strategy::Advanced {
                    alpha,
                    transfer_level: y,
                },
            )?;
            samples.push((alpha, y, report.virtual_time));
            if best.is_none_or(|(_, _, t)| report.virtual_time < t) {
                best = Some((alpha, y, report.virtual_time));
            }
        }
    }
    let (alpha, transfer_level, best_time) = best.ok_or(CoreError::EmptyInput)?;
    Ok(GridSearchResult {
        alpha,
        transfer_level,
        best_time,
        samples,
    })
}
