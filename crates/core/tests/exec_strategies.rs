//! Integration tests of every execution strategy on a toy mergesort,
//! independent of the algorithm library.

use hpu_core::charge::Charge;
use hpu_core::exec::{run_native, run_sim, Strategy};
use hpu_core::pool::LevelPool;
use hpu_core::tune::{auto_advanced, grid_search_sim};
use hpu_core::{BfAlgorithm, CoreError};
use hpu_machine::{CpuConfig, GpuConfig, MachineConfig, SimHpu};
use hpu_model::{CostFn, Recurrence};

/// Minimal 2-way mergesort in breadth-first form.
struct ToySort;

impl BfAlgorithm<u32> for ToySort {
    fn name(&self) -> &'static str {
        "toysort"
    }

    fn base_case(&self, _chunk: &mut [u32], charge: &mut dyn Charge) {
        charge.ops(1);
    }

    fn combine(&self, src: &[u32], dst: &mut [u32], charge: &mut dyn Charge) {
        let half = src.len() / 2;
        let (a, b) = src.split_at(half);
        let (mut i, mut j) = (0, 0);
        let mut compares = 0u64;
        for slot in dst.iter_mut() {
            let take_a = if i < a.len() && j < b.len() {
                compares += 1;
                a[i] <= b[j]
            } else {
                i < a.len()
            };
            *slot = if take_a {
                let v = a[i];
                i += 1;
                v
            } else {
                let v = b[j];
                j += 1;
                v
            };
        }
        charge.ops(compares);
        charge.mem(2 * dst.len() as u64);
    }

    fn recurrence(&self) -> Recurrence {
        Recurrence::new(2, 2, CostFn::Linear(3.0), 1.0).unwrap()
    }
}

/// A mid-size test machine: strong enough GPU that hybrids win.
fn test_machine() -> MachineConfig {
    MachineConfig {
        cpu: CpuConfig::uniform(4),
        gpu: GpuConfig {
            lanes: 64,
            gamma_inv: 8.0,
            uncoalesced_penalty: 1.0,
            global_mem_bytes: 64 << 20,
            launch_overhead: 0.0,
            strict: false,
        },
        bus: hpu_machine::config::BusConfig {
            lambda: 10.0,
            delta: 0.01,
        },
    }
}

fn input(n: usize) -> Vec<u32> {
    // Deterministic pseudo-random permutation-ish data.
    (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761) ^ 0xBEEF)
        .collect()
}

fn sorted_copy(v: &[u32]) -> Vec<u32> {
    let mut s = v.to_vec();
    s.sort_unstable();
    s
}

fn run(strategy: &Strategy, n: usize) -> (Vec<u32>, hpu_core::RunReport) {
    let mut data = input(n);
    let expect = sorted_copy(&data);
    let mut hpu = SimHpu::new(test_machine());
    let report = run_sim(&ToySort, &mut data, &mut hpu, strategy).expect("run succeeds");
    assert_eq!(data, expect, "strategy {strategy:?} must sort correctly");
    (data, report)
}

#[test]
fn every_strategy_sorts_correctly() {
    let n = 1 << 10;
    for strategy in [
        Strategy::Sequential,
        Strategy::CpuOnly,
        Strategy::GpuOnly,
        Strategy::Basic { crossover: None },
        Strategy::Basic { crossover: Some(3) },
        Strategy::Advanced {
            alpha: 0.25,
            transfer_level: 4,
        },
    ] {
        run(&strategy, n);
    }
}

#[test]
fn cpu_only_beats_sequential_by_about_p() {
    let n = 1 << 12;
    let (_, seq) = run(&Strategy::Sequential, n);
    let (_, par) = run(&Strategy::CpuOnly, n);
    let speedup = seq.virtual_time / par.virtual_time;
    // 4 cores, serial top levels: between 2x and 4x.
    assert!(
        speedup > 2.0 && speedup <= 4.01,
        "CPU speedup {speedup} out of range"
    );
}

#[test]
fn hybrid_transfers_exactly_twice() {
    let n = 1 << 10;
    let (_, basic) = run(&Strategy::Basic { crossover: Some(3) }, n);
    assert_eq!(basic.transfers, 2, "basic: one round trip");
    let (_, adv) = run(
        &Strategy::Advanced {
            alpha: 0.25,
            transfer_level: 4,
        },
        n,
    );
    assert_eq!(adv.transfers, 2, "advanced: exactly two transfers");
    // The advanced schedule only ships the GPU share, not the whole input.
    assert!(adv.words < basic.words);
}

#[test]
fn advanced_beats_cpu_only_at_scale() {
    let n = 1 << 14;
    let (_, cpu) = run(&Strategy::CpuOnly, n);
    let cfg = test_machine();
    let strategy = auto_advanced(&cfg, &ToySort.recurrence(), n as u64).unwrap();
    let (_, adv) = run(&strategy, n);
    assert!(
        adv.virtual_time < cpu.virtual_time,
        "advanced {} should beat CPU-only {}",
        adv.virtual_time,
        cpu.virtual_time
    );
}

#[test]
fn basic_beats_gpu_only_and_sequential() {
    let n = 1 << 12;
    let (_, seq) = run(&Strategy::Sequential, n);
    let (_, gpu) = run(&Strategy::GpuOnly, n);
    let (_, basic) = run(&Strategy::Basic { crossover: None }, n);
    assert!(basic.virtual_time < seq.virtual_time);
    assert!(
        basic.virtual_time < gpu.virtual_time,
        "basic {} vs gpu-only {}: the GPU pays dearly for serial top levels",
        basic.virtual_time,
        gpu.virtual_time
    );
}

#[test]
fn invalid_parameters_are_rejected() {
    let mut data = input(1 << 8);
    let mut hpu = SimHpu::new(test_machine());
    // Transfer level outside the tree.
    let err = run_sim(
        &ToySort,
        &mut data,
        &mut hpu,
        &Strategy::Advanced {
            alpha: 0.5,
            transfer_level: 99,
        },
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::InvalidLevel { .. }));
    // Level 0 cannot split.
    let err = run_sim(
        &ToySort,
        &mut data,
        &mut hpu,
        &Strategy::Advanced {
            alpha: 0.5,
            transfer_level: 0,
        },
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::InvalidLevel { .. }));
    // Invalid alpha.
    let err = run_sim(
        &ToySort,
        &mut data,
        &mut hpu,
        &Strategy::Advanced {
            alpha: f64::NAN,
            transfer_level: 4,
        },
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::InvalidAlpha { .. }));
}

#[test]
fn non_power_of_two_input_is_rejected() {
    let mut data = input(1000);
    let mut hpu = SimHpu::new(test_machine());
    let err = run_sim(&ToySort, &mut data, &mut hpu, &Strategy::Sequential).unwrap_err();
    assert!(matches!(err, CoreError::InvalidSize { .. }));
    let mut empty: Vec<u32> = vec![];
    let err = run_sim(&ToySort, &mut empty, &mut hpu, &Strategy::Sequential).unwrap_err();
    assert!(matches!(err, CoreError::EmptyInput));
}

#[test]
fn native_executor_sorts() {
    let pool = LevelPool::new(2);
    for n in [1usize, 2, 64, 1 << 12] {
        let mut data = input(n);
        let expect = sorted_copy(&data);
        run_native(&ToySort, &mut data, &pool).unwrap();
        assert_eq!(data, expect, "n = {n}");
    }
}

#[test]
fn grid_search_finds_minimum_of_its_samples() {
    let cfg = test_machine();
    let result = grid_search_sim(&ToySort, &cfg, &[0.1, 0.25, 0.5], &[3, 5], || {
        input(1 << 10)
    })
    .unwrap();
    assert_eq!(result.samples.len(), 6);
    let min = result
        .samples
        .iter()
        .map(|&(_, _, t)| t)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(result.best_time, min);
}

#[test]
fn trivial_input_sizes_work() {
    // n = 1: no combine levels at all.
    run(&Strategy::Sequential, 1);
    run(&Strategy::CpuOnly, 1);
    run(&Strategy::GpuOnly, 1);
    // n = 2: a single combine level.
    run(&Strategy::Sequential, 2);
    run(&Strategy::GpuOnly, 2);
    run(
        &Strategy::Advanced {
            alpha: 0.5,
            transfer_level: 1,
        },
        2,
    );
}

#[test]
fn unoptimized_and_partially_optimized_plans_execute_identically() {
    // The interpreter must handle every optimization stage of the pass
    // pipeline: the naive one-segment-per-level IR (each device level with
    // its own round trip), the elided form (device state kept live across
    // segment boundaries), and the fully fused plans the compiler emits.
    use hpu_machine::SimMachineParams;
    use hpu_model::{compile_unoptimized, default_passes, MachineParams, ScheduleSpec};

    let n = 1 << 10;
    let rec = ToySort.recurrence();
    for spec in [
        ScheduleSpec::Sequential,
        ScheduleSpec::CpuParallel,
        ScheduleSpec::GpuOnly,
        ScheduleSpec::Basic { crossover: Some(3) },
        ScheduleSpec::Advanced {
            alpha: 0.25,
            transfer_level: 4,
        },
    ] {
        let mut hpu = SimHpu::new(test_machine());
        let params = MachineParams::from_sim(&hpu);
        let unopt = compile_unoptimized(&spec, &params, &rec, n as u64, 10).unwrap();
        // Execute the plan at every optimization stage: 0 passes (naive),
        // 1 (pruned), 2 (elided, unfused), 3 (fully optimized).
        let mut stages = vec![unopt.clone()];
        let mut plan = unopt;
        for pass in default_passes() {
            plan = pass.run(plan);
            stages.push(plan.clone());
        }
        let expect = sorted_copy(&input(n));
        for (i, stage) in stages.iter().enumerate() {
            let mut data = input(n);
            hpu_core::run_sim_plan(&ToySort, &mut data, &mut hpu, stage)
                .unwrap_or_else(|e| panic!("{spec:?} stage {i}: {e:?}"));
            assert_eq!(data, expect, "{spec:?} at optimization stage {i}");
        }
    }
}

#[test]
fn weak_gpu_machine_degrades_basic_to_cpu() {
    // γ·g = 2·(1/8) ... lanes=2, gamma_inv=8 -> γg = 0.25 < p = 4.
    let cfg = MachineConfig {
        gpu: GpuConfig {
            lanes: 2,
            gamma_inv: 8.0,
            uncoalesced_penalty: 1.0,
            global_mem_bytes: 1 << 20,
            launch_overhead: 0.0,
            strict: false,
        },
        ..test_machine()
    };
    let mut data = input(1 << 8);
    let expect = sorted_copy(&data);
    let mut hpu = SimHpu::new(cfg);
    let report = run_sim(
        &ToySort,
        &mut data,
        &mut hpu,
        &Strategy::Basic { crossover: None },
    )
    .unwrap();
    assert_eq!(data, expect);
    assert_eq!(report.transfers, 0, "no GPU use on a weak device");
    assert_eq!(report.resolved, Strategy::CpuOnly);
}

#[test]
fn resume_from_checkpoint_skips_completed_levels_and_stays_correct() {
    use hpu_core::{run_sim_plan_resume, Checkpoint};
    use hpu_machine::SimMachineParams;
    use hpu_model::{compile, MachineParams, ScheduleSpec};

    let n = 1 << 10;
    let mut hpu = SimHpu::new(test_machine());
    let params = MachineParams::from_sim(&hpu);
    let plan = compile(
        &ScheduleSpec::Basic { crossover: Some(4) },
        &params,
        &ToySort.recurrence(),
        n as u64,
        10,
    )
    .unwrap();
    let expect = sorted_copy(&input(n));

    let mut data = input(n);
    let full = hpu_core::run_sim_plan(&ToySort, &mut data, &mut hpu, &plan).unwrap();
    assert_eq!(data, expect);

    // Resuming from level 0 restores nothing and runs the whole plan.
    let mut hpu0 = SimHpu::new(test_machine());
    let mut data0 = input(n);
    let from0 = run_sim_plan_resume(
        &ToySort,
        &mut data0,
        &mut hpu0,
        &plan,
        &Checkpoint {
            level: 0,
            resident_words: n as u64,
            generation: 0,
        },
    )
    .unwrap();
    assert_eq!(data0, expect);
    assert!((from0.virtual_time - full.virtual_time).abs() < 1e-9);

    // Resuming from a mid-plan cut is still correct and strictly cheaper:
    // the restored prefix charges no virtual time.
    for level in [3u32, 6, 9] {
        let mut hpu2 = SimHpu::new(test_machine());
        let mut data2 = input(n);
        let resumed = run_sim_plan_resume(
            &ToySort,
            &mut data2,
            &mut hpu2,
            &plan,
            &Checkpoint {
                level,
                resident_words: n as u64,
                generation: 0,
            },
        )
        .unwrap();
        assert_eq!(data2, expect, "resume from level {level}");
        assert!(
            resumed.virtual_time < full.virtual_time,
            "resume from level {level} must beat the full run ({} vs {})",
            resumed.virtual_time,
            full.virtual_time
        );
    }

    // A checkpoint past the plan's levels is rejected before any work.
    let mut data3 = input(n);
    let got = run_sim_plan_resume(
        &ToySort,
        &mut data3,
        &mut SimHpu::new(test_machine()),
        &plan,
        &Checkpoint {
            level: 11,
            resident_words: n as u64,
            generation: 0,
        },
    );
    assert!(got.is_err());
}
