//! Invariants every [`RunReport`] must satisfy, across all five
//! strategies: makespan bounds, the schedules' transfer-count guarantees
//! (checked on the *structured* timeline events, not just the bus
//! counters), and the per-level metrics / drift report populated by the
//! observability layer.

use hpu_core::charge::Charge;
use hpu_core::exec::{run_sim, Strategy};
use hpu_core::{BfAlgorithm, RunReport};
use hpu_machine::{CpuConfig, EventKind, GpuConfig, MachineConfig, SimHpu, Unit};
use hpu_model::{CostFn, Recurrence};
use hpu_obs::Track;

/// Minimal 2-way mergesort in breadth-first form.
struct ToySort;

impl BfAlgorithm<u32> for ToySort {
    fn name(&self) -> &'static str {
        "toysort"
    }

    fn base_case(&self, _chunk: &mut [u32], charge: &mut dyn Charge) {
        charge.ops(1);
    }

    fn combine(&self, src: &[u32], dst: &mut [u32], charge: &mut dyn Charge) {
        let half = src.len() / 2;
        let (a, b) = src.split_at(half);
        let (mut i, mut j) = (0, 0);
        for slot in dst.iter_mut() {
            let take_a = if i < a.len() && j < b.len() {
                a[i] <= b[j]
            } else {
                i < a.len()
            };
            *slot = if take_a {
                let v = a[i];
                i += 1;
                v
            } else {
                let v = b[j];
                j += 1;
                v
            };
        }
        charge.ops(dst.len() as u64);
        charge.mem(2 * dst.len() as u64);
    }

    fn recurrence(&self) -> Recurrence {
        Recurrence::new(2, 2, CostFn::Linear(3.0), 1.0).unwrap()
    }
}

fn test_machine() -> MachineConfig {
    MachineConfig {
        cpu: CpuConfig::uniform(4),
        gpu: GpuConfig {
            lanes: 64,
            gamma_inv: 8.0,
            uncoalesced_penalty: 1.0,
            global_mem_bytes: 64 << 20,
            launch_overhead: 0.0,
            strict: false,
        },
        bus: hpu_machine::config::BusConfig {
            lambda: 10.0,
            delta: 0.01,
        },
    }
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Sequential,
        Strategy::CpuOnly,
        Strategy::GpuOnly,
        // An explicit crossover: `None` may degrade to CpuOnly and then the
        // transfer guarantees don't apply.
        Strategy::Basic { crossover: Some(3) },
        Strategy::Advanced {
            alpha: 0.25,
            transfer_level: 4,
        },
    ]
}

fn run(strategy: &Strategy, n: usize) -> (RunReport, SimHpu) {
    let mut data: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761) ^ 0xBEEF)
        .collect();
    let mut hpu = SimHpu::new(test_machine());
    let report = run_sim(&ToySort, &mut data, &mut hpu, strategy).expect("run succeeds");
    assert!(data.windows(2).all(|w| w[0] <= w[1]));
    (report, hpu)
}

#[test]
fn makespan_bounds_hold_for_every_strategy() {
    let p = test_machine().cpu.cores as f64;
    for strategy in strategies() {
        let (rep, _) = run(&strategy, 1 << 10);
        // The makespan can't beat perfect CPU parallelism or the GPU's
        // serial fraction.
        assert!(
            rep.virtual_time >= rep.cpu_busy / p - 1e-9,
            "{strategy:?}: {} < {} / {p}",
            rep.virtual_time,
            rep.cpu_busy
        );
        assert!(
            rep.virtual_time >= rep.gpu_busy - 1e-9,
            "{strategy:?}: {} < gpu busy {}",
            rep.virtual_time,
            rep.gpu_busy
        );
        assert!(rep.virtual_time > 0.0, "{strategy:?}");
    }
}

/// §5.1/§5.2: both hybrid schedules move the data across the bus exactly
/// once in each direction — one upload, one download — verified on the
/// typed `Transfer` events.
#[test]
fn hybrid_schedules_do_one_round_trip() {
    for strategy in [
        Strategy::Basic { crossover: Some(3) },
        Strategy::Advanced {
            alpha: 0.25,
            transfer_level: 4,
        },
    ] {
        let (rep, hpu) = run(&strategy, 1 << 10);
        assert_eq!(rep.transfers, 2, "{strategy:?}");
        let tl = hpu.timeline();
        let uploads = tl
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Transfer { to_gpu: true, .. }))
            .count();
        let downloads = tl
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Transfer { to_gpu: false, .. }))
            .count();
        assert_eq!((uploads, downloads), (1, 1), "{strategy:?}");
    }
}

#[test]
fn levels_are_populated_and_consistent() {
    for strategy in strategies() {
        let (rep, _) = run(&strategy, 1 << 10);
        assert!(!rep.levels.is_empty(), "{strategy:?}");
        // Bottom-up ordering, base level first with one task per element.
        assert_eq!(rep.levels[0].level, 0, "{strategy:?}");
        assert_eq!(rep.levels[0].chunk, 1, "{strategy:?}");
        assert_eq!(rep.levels[0].tasks, 1 << 10, "{strategy:?}");
        for w in rep.levels.windows(2) {
            assert!(w[0].level < w[1].level, "{strategy:?}");
        }
        // Each level's merged occupancy fits inside the makespan and
        // matches its per-unit parts.
        for l in &rep.levels {
            assert!(l.time <= rep.virtual_time + 1e-9, "{strategy:?} {l:?}");
            assert!(
                l.time <= l.cpu_time + l.gpu_time + l.bus_time + 1e-9,
                "{strategy:?} {l:?}"
            );
            assert!(l.time > 0.0, "{strategy:?} {l:?}");
        }
        // The combine levels halve the task count as the chunk doubles.
        for w in rep.levels.windows(2) {
            if w[1].tasks > 0 && w[0].tasks > 0 && w[0].level > 0 {
                assert_eq!(w[0].tasks, 2 * w[1].tasks, "{strategy:?}");
            }
        }
    }
}

#[test]
fn drift_report_covers_every_level() {
    for strategy in strategies() {
        let (rep, _) = run(&strategy, 1 << 10);
        assert!(!rep.drift.is_empty(), "{strategy:?}");
        // Every executed level has a drift row with both sides populated.
        for l in &rep.levels {
            let row = rep
                .drift
                .iter()
                .find(|d| d.level == l.level)
                .unwrap_or_else(|| panic!("{strategy:?}: no drift row for level {}", l.level));
            assert!(row.predicted > 0.0, "{strategy:?} level {}", l.level);
            assert!(
                (row.simulated - l.time).abs() < 1e-9,
                "{strategy:?} level {}",
                l.level
            );
            assert!(row.rel_err.is_finite(), "{strategy:?} level {}", l.level);
        }
    }
}

#[test]
fn sync_barriers_are_excluded_from_utilization() {
    let (_, hpu) = run(&Strategy::Basic { crossover: Some(3) }, 1 << 10);
    let tl = hpu.timeline();
    // The basic schedule syncs after the download: the CPU waited, so a
    // Sync span exists and utilization < busy-window.
    assert!(
        tl.events()
            .iter()
            .any(|e| e.unit == Unit::Cpu && e.kind == EventKind::Sync),
        "expected a CPU sync barrier span"
    );
    let util = tl.utilization(Track::Cpu);
    assert!(util > 0.0);
    assert!(util <= tl.makespan() + 1e-9);
}
