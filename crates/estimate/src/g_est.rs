//! Estimating `g`, the effective GPU core count (paper §6.4, Figure 5).
//!
//! The probe is an elementwise sum of two arrays `C[i] = A[i] + B[i]`,
//! executed with `N` work-items, each handling an interleaved slice
//! (work-item `t` touches elements `t, t+N, t+2N, …` — the coalesced
//! layout the paper's optimized merge also uses). The running time falls
//! roughly as `1/N` until the device saturates; `g` is set to the thread
//! count after which no further improvement is measured.

use hpu_machine::{MachineConfig, SimGpu};

/// One probe sample: thread count and the launch's virtual time.
pub type Sample = (usize, f64);

/// Result of a `g` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GSweep {
    /// Estimated effective core count.
    pub g: usize,
    /// All `(threads, time)` samples, ascending in threads (Figure 5's
    /// data).
    pub samples: Vec<Sample>,
}

/// Times one elementwise-sum launch with `threads` work-items over arrays
/// of `len` elements.
fn probe(gpu: &mut SimGpu, len: usize, threads: usize) -> f64 {
    let mut input = gpu
        .alloc::<u64>(2 * len)
        .expect("probe arrays fit in device memory");
    let mut out = gpu.alloc::<u64>(len).expect("probe output fits");
    let stats = gpu
        .launch2(
            "g-probe elementwise sum",
            threads,
            &mut input,
            &mut out,
            |t, ctx, a, c| {
                let mut count = 0u64;
                let mut i = t;
                while i < len {
                    c[i] = a[i].wrapping_add(a[len + i]);
                    i += threads;
                    count += 1;
                }
                ctx.charge_ops(count);
                ctx.read(0, t, count as usize, threads);
                ctx.read(0, len + t, count as usize, threads);
                ctx.write(1, t, count as usize, threads);
            },
        )
        .expect("probe launch is well-formed");
    gpu.free(input);
    gpu.free(out);
    stats.time
}

/// Sweeps thread counts and finds the saturation knee.
///
/// Below the knee the device serves all `N` work-items at once, so the
/// time scales as `t(1)/N`; past it, waves serialize and the scaling
/// breaks. `g` is the largest `N` that still scales (the paper's "number
/// of threads that fully saturates the device"): a doubling sweep
/// brackets the knee — which need not be a power of two, the paper's HPU2
/// saturates at 1200 — and a binary search pins it down.
pub fn estimate_g(cfg: &MachineConfig, len: usize) -> GSweep {
    let mut gpu = SimGpu::new(cfg.gpu.clone());
    let mut samples = Vec::new();
    // Measure the fixed launch overhead with a do-nothing kernel, so the
    // scaling test below sees compute time only (the paper's measurement
    // on real hardware implicitly does the same by using large arrays).
    let mut dummy = gpu.alloc::<u64>(1).expect("one element fits");
    let overhead = gpu
        .launch("overhead probe", 1, &mut dummy, |_, _, _| {})
        .expect("empty kernel runs")
        .time;
    gpu.free(dummy);

    let t1_raw = probe(&mut gpu, len, 1);
    samples.push((1, t1_raw));
    let t1 = t1_raw - overhead;
    // Still perfectly scaling at N? (5% tolerance for wave-edge effects.)
    let scales = |t_raw: f64, n: usize| t_raw - overhead <= 1.05 * t1 / n as f64;

    let mut lo = 1usize;
    let mut hi = None;
    let mut n = 2usize;
    while n <= len {
        let t = probe(&mut gpu, len, n);
        samples.push((n, t));
        if scales(t, n) {
            lo = n;
        } else {
            hi = Some(n);
            break;
        }
        n *= 2;
    }
    if let Some(mut hi) = hi {
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let t = probe(&mut gpu, len, mid);
            samples.push((mid, t));
            if scales(t, mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    samples.sort_by_key(|&(n, _)| n);
    GSweep { g: lo, samples }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knee_matches_configured_lanes_power_of_two() {
        let mut cfg = MachineConfig::tiny(); // 8 lanes
        cfg.gpu.strict = false;
        let sweep = estimate_g(&cfg, 1 << 12);
        assert_eq!(sweep.g, 8, "samples: {:?}", sweep.samples);
    }

    #[test]
    fn knee_matches_non_power_of_two_lanes() {
        let mut cfg = MachineConfig::tiny();
        cfg.gpu.strict = false;
        cfg.gpu.lanes = 48;
        let sweep = estimate_g(&cfg, 1 << 12);
        let rel = (sweep.g as f64 - 48.0).abs() / 48.0;
        assert!(rel < 0.1, "estimated {} for 48 lanes", sweep.g);
    }

    #[test]
    fn times_fall_then_flatten() {
        let mut cfg = MachineConfig::tiny();
        cfg.gpu.strict = false;
        let sweep = estimate_g(&cfg, 1 << 12);
        let t1 = sweep.samples.iter().find(|&&(n, _)| n == 1).unwrap().1;
        let t8 = sweep.samples.iter().find(|&&(n, _)| n == 8).unwrap().1;
        assert!(t1 / t8 > 6.0, "near-linear scaling below the knee");
        if let Some(&(_, t16)) = sweep.samples.iter().find(|&&(n, _)| n == 16) {
            assert!(t16 >= t8 * 0.99, "flat beyond the knee");
        }
    }
}
