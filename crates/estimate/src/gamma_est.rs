//! Estimating `γ`, the GPU:CPU scalar speed ratio (paper §6.4, Figure 6).
//!
//! A single-thread merge of two sorted runs is timed on one CPU core and
//! as a one-work-item kernel on the GPU; the time ratio approximates
//! `γ⁻¹` and is expected to be roughly constant across input sizes (the
//! model's "balanced architecture" assumption, §3.2).

use hpu_machine::{MachineConfig, SimCpu, SimGpu};

/// Result of a `γ` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GammaSweep {
    /// Estimated `γ⁻¹` (median ratio across sizes).
    pub gamma_inv: f64,
    /// All `(size, gpu_time/cpu_time)` samples (Figure 6's data).
    pub samples: Vec<(usize, f64)>,
}

fn merge_workload(size: usize) -> Vec<u64> {
    // Two interleaved sorted runs of `size/2` each.
    let half = size / 2;
    let mut v: Vec<u64> = (0..half as u64).map(|i| 2 * i).collect();
    v.extend((0..half as u64).map(|i| 2 * i + 1));
    v
}

/// Performs the actual merge, returning comparisons.
fn merge(src: &[u64], dst: &mut [u64]) -> u64 {
    let half = src.len() / 2;
    let (a, b) = src.split_at(half);
    let (mut i, mut j) = (0usize, 0usize);
    let mut compares = 0;
    for slot in dst.iter_mut() {
        let take_a = if i < a.len() && j < b.len() {
            compares += 1;
            a[i] <= b[j]
        } else {
            i < a.len()
        };
        *slot = if take_a {
            let v = a[i];
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
    }
    compares
}

/// Times a 1-thread merge of `size` elements on both units and returns
/// `(cpu_time, gpu_time)`.
pub fn probe(cfg: &MachineConfig, size: usize) -> (f64, f64) {
    let src = merge_workload(size);

    let mut cpu = SimCpu::new(cfg.cpu.clone());
    let mut dst = vec![0u64; size];
    cpu.run_serial("gamma-probe merge (CPU)", |ctx| {
        let c = merge(&src, &mut dst);
        ctx.charge_ops(c);
        ctx.charge_mem(2 * size as u64);
    });
    let cpu_time = cpu.clock();

    let mut gpu = SimGpu::new(cfg.gpu.clone());
    let mut buf_src = gpu.alloc::<u64>(size).expect("probe fits");
    let mut buf_dst = gpu.alloc::<u64>(size).expect("probe fits");
    // Same workload on both units (the probe measures speed, not the bus,
    // so the setup transfer is kept off the timeline).
    buf_src.debug_fill(&src);
    let stats = gpu
        .launch2(
            "gamma-probe merge (GPU)",
            1,
            &mut buf_src,
            &mut buf_dst,
            |_, ctx, s, d| {
                let c = merge(s, d);
                ctx.charge_ops(c);
                ctx.read(0, 0, size / 2, 1);
                ctx.read(0, size / 2, size / 2, 1);
                ctx.write(1, 0, size, 1);
            },
        )
        .expect("probe launch is well-formed");
    gpu.free(buf_src);
    gpu.free(buf_dst);
    (cpu_time, stats.time)
}

/// Sweeps sizes and estimates `γ⁻¹` as the median ratio.
pub fn estimate_gamma(cfg: &MachineConfig, sizes: &[usize]) -> GammaSweep {
    let mut samples = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let (tc, tg) = probe(cfg, size);
        samples.push((size, tg / tc));
    }
    let mut ratios: Vec<f64> = samples.iter().map(|&(_, r)| r).collect();
    ratios.sort_by(f64::total_cmp);
    let gamma_inv = ratios[ratios.len() / 2];
    GammaSweep { gamma_inv, samples }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_recovers_configured_gamma() {
        let cfg = MachineConfig::hpu1_sim();
        let sweep = estimate_gamma(&cfg, &[1 << 10, 1 << 12, 1 << 14]);
        // Upload-free probes on idle units: the ratio is γ⁻¹ exactly
        // (merge charges are identical on both sides, single-item waves
        // coalesce).
        assert!(
            (sweep.gamma_inv - 160.0).abs() < 1.0,
            "γ⁻¹ = {}",
            sweep.gamma_inv
        );
    }

    #[test]
    fn ratio_is_flat_across_sizes() {
        let cfg = MachineConfig::hpu2_sim();
        let sweep = estimate_gamma(&cfg, &[1 << 8, 1 << 10, 1 << 12, 1 << 14]);
        let (min, max) = sweep
            .samples
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &(_, r)| {
                (lo.min(r), hi.max(r))
            });
        assert!(max / min < 1.05, "Figure 6: the ratio stays ~constant");
    }

    #[test]
    fn workload_is_two_sorted_runs() {
        let w = merge_workload(16);
        assert!(w[..8].windows(2).all(|p| p[0] <= p[1]));
        assert!(w[8..].windows(2).all(|p| p[0] <= p[1]));
        let mut d = vec![0u64; 16];
        merge(&w, &mut d);
        assert!(d.windows(2).all(|p| p[0] <= p[1]));
    }
}
