//! # hpu-estimate — empirical HPU parameter estimation
//!
//! The paper's §6.4 procedures for measuring the two free parameters of
//! the HPU model on a concrete machine:
//!
//! * [`estimate_g`] — the effective GPU core count `g`: run an
//!   elementwise array sum with an increasing number of work-items and
//!   find the saturation knee after which more threads stop helping
//!   (Figure 5);
//! * [`estimate_gamma`] — the CPU:GPU scalar speed ratio `γ`: time a
//!   single-thread merge on each unit over a range of sizes and take the
//!   ratio (Figure 6).
//!
//! [`estimate_params`] bundles both into [`hpu_model::MachineParams`]
//! ready for the schedule solvers — closing the same loop the authors
//! used (measure → model → schedule). [`platforms`] carries the paper's
//! Table 1/2 presets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod g_est;
pub mod gamma_est;
pub mod platforms;

pub use g_est::{estimate_g, GSweep};
pub use gamma_est::{estimate_gamma, GammaSweep};
pub use platforms::{PlatformSpec, HPU1, HPU2};

use hpu_machine::MachineConfig;
use hpu_model::MachineParams;

/// Runs both estimation procedures against a simulated machine and
/// returns model parameters (the paper's Table 2 for that machine).
pub fn estimate_params(cfg: &MachineConfig) -> MachineParams {
    let g = estimate_g(cfg, 1 << 16).g;
    let gamma_inv = estimate_gamma(cfg, &[1 << 12, 1 << 14, 1 << 16]).gamma_inv;
    MachineParams::new(cfg.cpu.cores, g, 1.0 / gamma_inv)
        .expect("estimated parameters are positive")
        .with_transfer_cost(cfg.bus.lambda, cfg.bus.delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_recover_configured_hpu1() {
        let cfg = MachineConfig::hpu1_sim();
        let params = estimate_params(&cfg);
        assert_eq!(params.p, 4);
        let rel = (params.g as f64 - 4096.0).abs() / 4096.0;
        assert!(rel < 0.1, "estimated g = {} (configured 4096)", params.g);
        let gi = 1.0 / params.gamma;
        assert!((gi - 160.0).abs() / 160.0 < 0.05, "estimated γ⁻¹ = {gi}");
    }

    #[test]
    fn estimates_recover_configured_hpu2() {
        let cfg = MachineConfig::hpu2_sim();
        let params = estimate_params(&cfg);
        let rel = (params.g as f64 - 1200.0).abs() / 1200.0;
        assert!(rel < 0.15, "estimated g = {} (configured 1200)", params.g);
        let gi = 1.0 / params.gamma;
        assert!((gi - 65.0).abs() / 65.0 < 0.05, "estimated γ⁻¹ = {gi}");
    }
}
