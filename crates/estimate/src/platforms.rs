//! The paper's experimental platforms (Tables 1 and 2) as simulated
//! presets.

use hpu_machine::MachineConfig;
use hpu_model::MachineParams;

/// Description of a hybrid platform (paper Table 1) plus its simulated
/// configuration and its published model parameters (Table 2).
#[derive(Debug, Clone)]
pub struct PlatformSpec {
    /// Platform name as used in the paper.
    pub name: &'static str,
    /// CPU description (Table 1).
    pub cpu: &'static str,
    /// GPU description (Table 1).
    pub gpu: &'static str,
    /// Published parameters `(p, g, γ⁻¹)` (Table 2).
    pub published: (usize, usize, f64),
}

impl PlatformSpec {
    /// The simulated machine configuration for this platform.
    pub fn config(&self) -> MachineConfig {
        match self.name {
            "HPU1" => MachineConfig::hpu1_sim(),
            _ => MachineConfig::hpu2_sim(),
        }
    }

    /// The published model parameters as [`MachineParams`].
    pub fn published_params(&self) -> MachineParams {
        let (p, g, gamma_inv) = self.published;
        MachineParams::new(p, g, 1.0 / gamma_inv).expect("published parameters are valid")
    }
}

/// HPU1: Intel Core 2 Extreme Q6850 + ATI Radeon HD 5970 (Table 1).
pub const HPU1: PlatformSpec = PlatformSpec {
    name: "HPU1",
    cpu: "Intel Core 2 Extreme Q6850 (4 cores @ 3.00 GHz, 8 MB cache)",
    gpu: "ATI Radeon HD 5970",
    published: (4, 4096, 160.0),
};

/// HPU2: AMD A6-3650 APU + integrated ATI Radeon HD 6530D (Table 1).
pub const HPU2: PlatformSpec = PlatformSpec {
    name: "HPU2",
    cpu: "AMD A6 3650 (4 cores @ 2.6 GHz, 4 MB cache)",
    gpu: "ATI Radeon HD 6530D (integrated)",
    published: (4, 1200, 65.0),
};

/// Both platforms, in paper order.
pub fn all() -> [&'static PlatformSpec; 2] {
    [&HPU1, &HPU2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_params_match_table_2() {
        let p1 = HPU1.published_params();
        assert_eq!((p1.p, p1.g), (4, 4096));
        assert!((1.0 / p1.gamma - 160.0).abs() < 1e-9);
        let p2 = HPU2.published_params();
        assert_eq!((p2.p, p2.g), (4, 1200));
        assert!((1.0 / p2.gamma - 65.0).abs() < 1e-9);
    }

    #[test]
    fn configs_are_consistent_with_published() {
        for spec in all() {
            let cfg = spec.config();
            assert_eq!(cfg.cpu.cores, spec.published.0);
            assert_eq!(cfg.gpu.lanes, spec.published.1);
            assert_eq!(cfg.gpu.gamma_inv, spec.published.2);
        }
    }
}
