//! The §6.4 estimation procedures are pure functions of the machine
//! configuration: repeated sweeps must reproduce every sample and land on
//! the same knee, and the Figure-5 curve must fall monotonically up to
//! the saturation point.

use hpu_estimate::{estimate_g, estimate_gamma};
use hpu_machine::MachineConfig;

#[test]
fn g_sweep_is_deterministic_under_a_fixed_config() {
    let cfg = MachineConfig::hpu1_sim();
    let a = estimate_g(&cfg, 1 << 14);
    let b = estimate_g(&cfg, 1 << 14);
    assert_eq!(a, b, "same config and length must give identical sweeps");
    assert_eq!(a.g, b.g, "the knee must not move between runs");
    assert!(!a.samples.is_empty());
}

#[test]
fn gamma_sweep_is_deterministic_under_a_fixed_config() {
    let cfg = MachineConfig::hpu2_sim();
    let sizes = [1 << 12, 1 << 13, 1 << 14];
    let a = estimate_gamma(&cfg, &sizes);
    let b = estimate_gamma(&cfg, &sizes);
    assert_eq!(a, b, "same config and sizes must give identical sweeps");
    assert!(a.gamma_inv > 0.0 && a.gamma_inv.is_finite());
    assert_eq!(a.samples.len(), sizes.len());
}

/// Figure-5 sanity: more work-items never make the probe meaningfully
/// slower before the knee, and the sweep overall shows real speedup from
/// one thread to saturation.
#[test]
fn g_sweep_falls_monotonically_to_the_knee() {
    let cfg = MachineConfig::hpu1_sim();
    let sweep = estimate_g(&cfg, 1 << 14);
    let pre_knee: Vec<_> = sweep
        .samples
        .iter()
        .filter(|&&(threads, _)| threads <= sweep.g)
        .collect();
    assert!(pre_knee.len() >= 2, "need a curve, got {:?}", sweep.samples);
    for pair in pre_knee.windows(2) {
        let (t_prev, time_prev) = *pair[0];
        let (t_next, time_next) = *pair[1];
        assert!(
            time_next <= time_prev * 1.05,
            "probe slowed down before the knee: {t_prev} threads took {time_prev}, \
             {t_next} threads took {time_next}"
        );
    }
    let first = pre_knee.first().unwrap().1;
    let knee = pre_knee.last().unwrap().1;
    assert!(
        first / knee > 2.0,
        "saturation should be far below the serial time: {first} vs {knee}"
    );
}
