//! Typed fleet-level failures.
//!
//! The fleet simulation used to `expect`/panic on internally malformed
//! states (an arrival routed twice, a steal pass over an empty fleet).
//! Those states should never arise, but a bug that produces one must
//! surface as a recorded error on the run's output — aborting the whole
//! multi-node simulation loses every other node's results.

use std::error::Error;
use std::fmt;

/// A malformed routing or stealing decision observed during a fleet run.
///
/// These are *fleet-internal* invariant violations, distinct from
/// per-job serving errors (`hpu_serve::ServeError`): the run continues,
/// the offending decision is skipped, and the error is appended to
/// [`crate::FleetOutput::errors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetError {
    /// An arrival's job payload was already consumed when the router
    /// tried to place it — the arrival would have routed twice.
    ArrivalAlreadyRouted {
        /// The fleet-wide job id of the duplicate arrival.
        job: u64,
    },
    /// A selection over fleet nodes ran against an empty fleet.
    EmptyFleet {
        /// Which selection hit the empty fleet (e.g. `"steal victim"`).
        context: &'static str,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::ArrivalAlreadyRouted { job } => {
                write!(f, "arrival for job {job} was already routed")
            }
            FleetError::EmptyFleet { context } => {
                write!(f, "{context}: the fleet has no nodes")
            }
        }
    }
}

impl Error for FleetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_job_and_context() {
        let e = FleetError::ArrivalAlreadyRouted { job: 7 };
        assert_eq!(e.to_string(), "arrival for job 7 was already routed");
        let e = FleetError::EmptyFleet {
            context: "steal victim",
        };
        assert_eq!(e.to_string(), "steal victim: the fleet has no nodes");
    }
}
