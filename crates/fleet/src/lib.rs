//! # hpu-fleet — multi-node serving across heterogeneous HPU machines
//!
//! `hpu-serve` answers "how do many jobs share *one* hybrid CPU-GPU
//! machine?". This crate scales that out: a fleet of N independent,
//! possibly heterogeneous nodes — each with its own machine parameters
//! (the paper's HPU1/HPU2 and anything between), its own device
//! arbiter, bounded queue, calibrator, fault plan, metrics registry and
//! plan cache — served as one pool.
//!
//! The pieces:
//!
//! - [`NodeSpec`] / [`FleetConfig`] — per-node machine + scheduler
//!   configuration, plus fleet-level routing and stealing knobs.
//! - [`RouterPolicy`] — placement: each arriving job is priced *under
//!   every node's own beliefs* (its assumed parameters corrected by its
//!   private calibration, served by its plan cache), plus a load
//!   penalty from the node's believed backlog and a data-affinity
//!   transfer term for non-resident datasets; breaker-open nodes are
//!   demoted. [`RouterPolicy::RoundRobin`] is the trivial baseline — a
//!   1-node fleet under it is observationally identical to plain
//!   [`hpu_serve::serve_sim`].
//! - [`StealConfig`] — cross-node work stealing at deterministic event
//!   boundaries: an overloaded node's backfillable (non-rigid) queued
//!   jobs migrate to idle nodes, and a node whose GPU circuit breaker
//!   trips has its whole queue evacuated to healthy peers; migrated
//!   jobs re-price from scratch under the receiving node's beliefs.
//! - [`DetectorConfig`] + [`hpu_machine::NodeFaultPlan`] — the node-crash
//!   fault domain: seeded whole-node crashes and partitions at
//!   deterministic event ordinals, a wall-clock-free failure detector
//!   that counts missed event boundaries, quarantine of down nodes from
//!   routing/stealing/affinity, and recovery of a dead node's jobs on
//!   reachable peers — resumed from their last level-boundary
//!   checkpoint (see [`hpu_serve::CheckpointPolicy`]) when one exists,
//!   restarted from scratch when not. Restarted nodes rejoin cold:
//!   bumped pricing generation, cleared residency.
//! - [`fleet_sim`] — the deterministic event-driven entry point,
//!   merging per-node [`hpu_obs::ServeReport`]s into a
//!   [`hpu_obs::FleetReport`]: aggregate goodput, per-node utilization,
//!   steal/migration counts, and routing quality against an omniscient
//!   lowest-completion-time oracle.
//!
//! Calibration drift stays node-local by construction: each node owns
//! its calibrator and plan cache, so a drifting (or breaker-tripped)
//! node re-prices only itself — peers' pricing generations never move.
//!
//! ```
//! use hpu_algos::MergeSort;
//! use hpu_fleet::{fleet_sim, FleetConfig, FleetJobRequest, NodeSpec};
//! use hpu_machine::MachineConfig;
//! use hpu_model::ScheduleSpec;
//! use hpu_serve::AlgoJob;
//!
//! let cfg = FleetConfig::new(vec![
//!     NodeSpec::new("hpu1", MachineConfig::hpu1_sim()),
//!     NodeSpec::new("hpu2", MachineConfig::hpu2_sim()),
//! ]);
//! let jobs = (0..6)
//!     .map(|i| {
//!         let data: Vec<u64> = (0..512u64).rev().collect();
//!         FleetJobRequest::new(
//!             format!("sort-{i}"),
//!             ScheduleSpec::Basic { crossover: Some(4) },
//!             i as f64,
//!             AlgoJob::boxed(MergeSort::new(), data),
//!         )
//!         .with_dataset(i % 2)
//!     })
//!     .collect();
//! let out = fleet_sim(&cfg, jobs);
//! assert_eq!(out.report.completed, 6);
//! assert_eq!(out.assignments.len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod node;
mod recover;
mod router;
mod sim;
mod steal;

pub use error::FleetError;
pub use node::{Node, NodeHealth, NodeSpec};
pub use recover::DetectorConfig;
pub use router::RouterPolicy;
pub use sim::{fleet_sim, FleetConfig, FleetJobRequest, FleetOutput};
pub use steal::{StealConfig, StealEvent, StealReason};
