//! One fleet node: a resumable single-machine scheduler plus the
//! fleet-side bookkeeping the router and stealer need.

use hpu_machine::MachineConfig;
use hpu_serve::{NodeSim, ServeConfig, StolenJob};

/// Static description of one fleet node: its (possibly heterogeneous)
/// machine and its private scheduler configuration — queue capacity,
/// policy, assumed parameters, calibration, faults, metrics and plan
/// cache are all per node.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Human-readable node label, carried into the fleet report.
    pub name: String,
    /// The node's machine.
    pub machine: MachineConfig,
    /// The node's scheduler configuration.
    pub serve: ServeConfig,
}

impl NodeSpec {
    /// A node over `machine` with the default scheduler configuration.
    pub fn new(name: impl Into<String>, machine: MachineConfig) -> Self {
        NodeSpec {
            name: name.into(),
            machine,
            serve: ServeConfig::default(),
        }
    }

    /// Replaces the node's scheduler configuration.
    pub fn with_serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }
}

/// A node's reachability as the fleet's failure detector sees it.
///
/// The detector is deterministic and virtual-time-free: it counts missed
/// event boundaries, so a node is never `Down` because of wall-clock
/// noise — equal inputs flip health at equal boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeHealth {
    /// Reachable: the router places work here and residency credit
    /// applies.
    #[default]
    Up,
    /// Declared down by the failure detector: quarantined from routing
    /// and stealing (in both directions) until it rejoins.
    Down,
}

/// A live node: the resumable scheduler plus residency and migration
/// tallies.
pub struct Node {
    /// The node's label.
    pub name: String,
    /// The node's scheduler, driven one event at a time by the fleet.
    pub sim: NodeSim,
    /// Jobs the router placed here.
    pub routed: usize,
    /// Queued jobs migrated here from other nodes.
    pub steals_in: usize,
    /// Queued jobs migrated away to other nodes.
    pub steals_out: usize,
    /// Detector-visible health. Lags the machine's true state by the
    /// detector's miss threshold: a crashed node stays `Up` (and keeps
    /// attracting arrivals, which die with it) until the detector fires.
    pub health: NodeHealth,
    /// Whether the machine itself is dead (crash fired, restart not yet).
    /// A crashed node processes no events; a *partitioned* node keeps
    /// executing but reads `Down` to the detector.
    pub(crate) crashed: bool,
    /// Jobs a crash evicted, held here until the detector fires and the
    /// fleet re-places them on reachable peers.
    pub(crate) evicted: Vec<StolenJob>,
    /// Fleet virtual time the in-progress fault fired, for MTTR; taken
    /// (once) when its jobs are safely re-placed.
    pub(crate) fault_time: Option<f64>,
    /// Dataset ids resident on this node, least recently used first.
    resident: Vec<u64>,
}

impl Node {
    pub(crate) fn new(spec: &NodeSpec) -> Node {
        Node {
            name: spec.name.clone(),
            sim: NodeSim::new(&spec.machine, &spec.serve),
            routed: 0,
            steals_in: 0,
            steals_out: 0,
            health: NodeHealth::Up,
            crashed: false,
            evicted: Vec::new(),
            fault_time: None,
            resident: Vec::new(),
        }
    }

    /// Whether the fleet may send work here: `Up` per the failure
    /// detector. (A crashed-but-undetected node is still "reachable" —
    /// that window is exactly what the detector's miss threshold costs.)
    pub fn reachable(&self) -> bool {
        self.health == NodeHealth::Up
    }

    /// Drops every residency claim — a rejoining node restarts cold and
    /// re-earns its affinity credit.
    pub(crate) fn clear_resident(&mut self) {
        self.resident.clear();
    }

    /// Whether dataset `d` is already resident on this node — routing a
    /// job over it here skips the host↔device staging transfer.
    pub fn is_resident(&self, d: u64) -> bool {
        self.resident.contains(&d)
    }

    /// Marks dataset `d` most recently used on this node, evicting the
    /// least recently used id beyond `cap`.
    pub(crate) fn touch_resident(&mut self, d: u64, cap: usize) {
        self.resident.retain(|&r| r != d);
        self.resident.push(d);
        while self.resident.len() > cap.max(1) {
            self.resident.remove(0);
        }
    }
}
