//! One fleet node: a resumable single-machine scheduler plus the
//! fleet-side bookkeeping the router and stealer need.

use hpu_machine::MachineConfig;
use hpu_serve::{NodeSim, ServeConfig};

/// Static description of one fleet node: its (possibly heterogeneous)
/// machine and its private scheduler configuration — queue capacity,
/// policy, assumed parameters, calibration, faults, metrics and plan
/// cache are all per node.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Human-readable node label, carried into the fleet report.
    pub name: String,
    /// The node's machine.
    pub machine: MachineConfig,
    /// The node's scheduler configuration.
    pub serve: ServeConfig,
}

impl NodeSpec {
    /// A node over `machine` with the default scheduler configuration.
    pub fn new(name: impl Into<String>, machine: MachineConfig) -> Self {
        NodeSpec {
            name: name.into(),
            machine,
            serve: ServeConfig::default(),
        }
    }

    /// Replaces the node's scheduler configuration.
    pub fn with_serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }
}

/// A live node: the resumable scheduler plus residency and migration
/// tallies.
pub struct Node {
    /// The node's label.
    pub name: String,
    /// The node's scheduler, driven one event at a time by the fleet.
    pub sim: NodeSim,
    /// Jobs the router placed here.
    pub routed: usize,
    /// Queued jobs migrated here from other nodes.
    pub steals_in: usize,
    /// Queued jobs migrated away to other nodes.
    pub steals_out: usize,
    /// Dataset ids resident on this node, least recently used first.
    resident: Vec<u64>,
}

impl Node {
    pub(crate) fn new(spec: &NodeSpec) -> Node {
        Node {
            name: spec.name.clone(),
            sim: NodeSim::new(&spec.machine, &spec.serve),
            routed: 0,
            steals_in: 0,
            steals_out: 0,
            resident: Vec::new(),
        }
    }

    /// Whether dataset `d` is already resident on this node — routing a
    /// job over it here skips the host↔device staging transfer.
    pub fn is_resident(&self, d: u64) -> bool {
        self.resident.contains(&d)
    }

    /// Marks dataset `d` most recently used on this node, evicting the
    /// least recently used id beyond `cap`.
    pub(crate) fn touch_resident(&mut self, d: u64, cap: usize) {
        self.resident.retain(|&r| r != d);
        self.resident.push(d);
        while self.resident.len() > cap.max(1) {
            self.resident.remove(0);
        }
    }
}
