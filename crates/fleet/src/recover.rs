//! Deterministic node-crash failure detection and recovery.
//!
//! The fleet's node-fault machinery is a three-stage timeline per
//! faulted node, driven entirely by the global event loop's ordinal —
//! no wall clock, no randomness beyond the seeded [`NodeFaultPlan`]:
//!
//! 1. **Fire** — at the fault's scheduled ordinal the machine dies
//!    ([`NodeFaultKind::Crash`]: queue, pending arrivals and in-flight
//!    work are evicted via `NodeSim::crash`, completion records of lost
//!    jobs revoked) or goes silent ([`NodeFaultKind::Partition`]: the
//!    machine keeps executing, the fleet just can't reach it). The
//!    fleet does not know yet; the router keeps placing work there.
//! 2. **Detect** — after [`DetectorConfig::miss_threshold`] further
//!    global event boundaries the failure detector declares the node
//!    `Down`: it is quarantined from routing and stealing, and a
//!    crashed node's evicted jobs (plus any strays routed into it
//!    during the detection window) are re-placed on reachable peers —
//!    resumed from their last level-boundary checkpoint when they
//!    carry one, restarted from scratch when they don't.
//! 3. **Restart** — at the fault's rejoin ordinal (if the plan allows
//!    restarts) the node returns to service: a crashed node rejoins
//!    *cold* (bumped pricing generation, cleared residency — see
//!    `NodeSim::rejoin`), a healed partition rejoins warm.
//!
//! [`NodeFaultPlan`]: hpu_machine::NodeFaultPlan

use hpu_machine::{NodeFault, NodeFaultKind};
use hpu_obs::RecoveryCounters;

use crate::node::{Node, NodeHealth};
use crate::steal::{StealEvent, StealReason};

/// Deterministic failure-detector configuration.
///
/// The detector counts *global event boundaries*, not time: a node that
/// misses `miss_threshold` consecutive boundaries after its fault fires
/// is declared down. Equal inputs flip health at equal boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Event boundaries between a fault firing and the fleet declaring
    /// the node down; clamping to 0 detects at the next boundary.
    pub miss_threshold: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { miss_threshold: 2 }
    }
}

/// One faulted node's progress through fire → detect → restart.
pub(crate) struct FaultTimeline {
    /// Fleet node index the fault targets.
    pub node: usize,
    fault: NodeFault,
    /// Ordinal the fault actually fired at (`None` until it does).
    fired: Option<u64>,
    detected: bool,
    restarted: bool,
}

impl FaultTimeline {
    pub(crate) fn new(node: usize, fault: NodeFault) -> FaultTimeline {
        FaultTimeline {
            node,
            fault,
            fired: None,
            detected: false,
            restarted: false,
        }
    }

    /// Whether a fired fault still owes a detection or restart stage.
    /// The event loop must keep advancing the ordinal (even with no
    /// events left) until this clears, or evicted jobs would never be
    /// re-placed and a scheduled rejoin would never happen. An unfired
    /// fault owes nothing: a workload too short to reach its ordinal
    /// simply never crashes.
    pub(crate) fn pending(&self) -> bool {
        match self.fired {
            None => false,
            Some(_) => !self.restarted && (!self.detected || self.fault.restart_at.is_some()),
        }
    }
}

/// Recovery tallies accumulated across the run, folded into
/// [`RecoveryCounters`] at the end.
#[derive(Default)]
pub(crate) struct RecoveryLog {
    pub counters: RecoveryCounters,
    mttr_sum: f64,
    mttr_events: u64,
}

impl RecoveryLog {
    /// Finalizes the counters (derives the MTTR mean).
    pub(crate) fn finish(mut self) -> RecoveryCounters {
        self.counters.mttr = if self.mttr_events > 0 {
            self.mttr_sum / self.mttr_events as f64
        } else {
            0.0
        };
        self.counters
    }
}

/// Advances every fault timeline to `ordinal` (fleet virtual time
/// `now`). Called once per event-loop iteration, *before* the next
/// event is selected, so a fault at ordinal `k` shapes event `k`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fault_step(
    detector: &DetectorConfig,
    timelines: &mut [FaultTimeline],
    nodes: &mut [Node],
    ordinal: u64,
    now: f64,
    datasets: &[Option<u64>],
    residency_capacity: usize,
    log: &mut RecoveryLog,
    steals_log: &mut Vec<StealEvent>,
) {
    for tl in timelines.iter_mut() {
        // Stage 1: the fault fires. A crash kills the machine now; a
        // partition changes nothing physical yet — both stay invisible
        // to the fleet until the detector notices.
        if tl.fired.is_none() && ordinal >= tl.fault.at {
            tl.fired = Some(ordinal);
            let node = &mut nodes[tl.node];
            node.fault_time = Some(now);
            if tl.fault.kind == NodeFaultKind::Crash {
                node.crashed = true;
                let report = node.sim.crash(now);
                node.evicted.extend(report.queued);
                node.evicted.extend(report.in_flight);
                log.counters.crashes += 1;
            }
        }
        // Stage 2: the detector declares the node down and the fleet
        // recovers its jobs. Skipped entirely when the node restarted
        // before the detector's patience ran out.
        if let Some(fired) = tl.fired {
            if !tl.detected && !tl.restarted && ordinal >= fired + detector.miss_threshold {
                tl.detected = true;
                nodes[tl.node].health = NodeHealth::Down;
                log.counters.node_downs += 1;
                if tl.fault.kind == NodeFaultKind::Crash {
                    // Arrivals routed into the dead node during the
                    // detection window sat in its (dead) event heap;
                    // they die with it now and are recovered too.
                    let strays = nodes[tl.node].sim.crash(now);
                    nodes[tl.node].evicted.extend(strays.queued);
                    nodes[tl.node].evicted.extend(strays.in_flight);
                    redistribute(
                        tl.node,
                        nodes,
                        now,
                        datasets,
                        residency_capacity,
                        log,
                        steals_log,
                    );
                }
            }
        }
        // Stage 3: the node rejoins. A crash rejoins cold; a partition
        // heals warm. Evictees that found no reachable peer at
        // detection restart here — the rejoined node is a peer again.
        if tl.fired.is_some() && !tl.restarted && tl.fault.restart_at.is_some_and(|r| ordinal >= r)
        {
            tl.restarted = true;
            if tl.detected {
                log.counters.node_ups += 1;
            }
            let node = &mut nodes[tl.node];
            node.health = NodeHealth::Up;
            if tl.fault.kind == NodeFaultKind::Crash {
                node.crashed = false;
                node.sim.rejoin(now);
                node.clear_resident();
                redistribute(
                    tl.node,
                    nodes,
                    now,
                    datasets,
                    residency_capacity,
                    log,
                    steals_log,
                );
            } else if let Some(t0) = node.fault_time.take() {
                log.mttr_sum += now - t0;
                log.mttr_events += 1;
            }
        }
    }
}

/// Re-places everything `from` evicted onto reachable, non-crashed
/// nodes, shortest effective queue first (nodes with admission room
/// before full ones, lowest index on ties). Jobs carrying a usable
/// checkpoint count as *recovered* — their completed levels are not
/// re-executed — the rest as *restarted*. Jobs that fit nowhere stay
/// in the stash for the next recovery boundary (a later rejoin).
fn redistribute(
    from: usize,
    nodes: &mut [Node],
    now: f64,
    datasets: &[Option<u64>],
    residency_capacity: usize,
    log: &mut RecoveryLog,
    steals_log: &mut Vec<StealEvent>,
) {
    let evicted = std::mem::take(&mut nodes[from].evicted);
    let mut injected = vec![0usize; nodes.len()];
    let mut kept = Vec::new();
    for stolen in evicted {
        let target = (0..nodes.len())
            .filter(|&i| nodes[i].reachable() && !nodes[i].crashed)
            .min_by_key(|&i| {
                let len = nodes[i].sim.queue_len() + injected[i];
                let full = len >= nodes[i].sim.queue_capacity();
                (full as usize, len, i)
            });
        let Some(target) = target else {
            kept.push(stolen);
            continue;
        };
        match &stolen.checkpoint {
            Some(ck) if ck.level > 0 => {
                log.counters.jobs_recovered += 1;
                log.counters.levels_saved += ck.level as u64;
                log.counters.checkpoint_bytes += ck.resident_words.saturating_mul(8);
            }
            _ => log.counters.jobs_restarted += 1,
        }
        let id = stolen.id;
        nodes[from].steals_out += 1;
        nodes[target].steals_in += 1;
        nodes[target].sim.inject(stolen, now);
        injected[target] += 1;
        if let Some(d) = datasets.get(id as usize).copied().flatten() {
            nodes[target].touch_resident(d, residency_capacity);
        }
        steals_log.push(StealEvent {
            at: now,
            job: id,
            from,
            to: target,
            reason: StealReason::NodeDown,
        });
    }
    nodes[from].evicted = kept;
    // Recovery of this fault completes when the stash drains: MTTR
    // spans fault-fire to jobs-safely-re-placed, in fleet virtual time.
    if nodes[from].evicted.is_empty() {
        if let Some(t0) = nodes[from].fault_time.take() {
            log.mttr_sum += now - t0;
            log.mttr_events += 1;
        }
    }
}
