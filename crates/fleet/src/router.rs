//! Job placement across fleet nodes.
//!
//! The cost/affinity router scores every node for each arriving job and
//! places it on the minimum: the job's predicted cost *under that
//! node's own beliefs* (assumed parameters corrected by its private
//! calibration, served by its plan cache), plus a load penalty from the
//! node's believed backlog, plus the believed staging-transfer time when
//! the job's dataset is not already resident there — the XKaapi-style
//! data-affinity term. A node whose GPU circuit breaker is open has its
//! whole score multiplied by a demotion penalty: it can still serve
//! (CPU-only), but only when every healthy node is far more loaded.

use hpu_serve::QueuedShape;

use crate::node::Node;

/// How the fleet places arriving jobs.
#[derive(Debug, Clone, PartialEq)]
pub enum RouterPolicy {
    /// Trivial placement: node `k mod N` for the `k`-th arrival, no
    /// pricing, no affinity. A 1-node fleet under this router is
    /// observationally identical to plain `serve_sim`.
    RoundRobin,
    /// Cost/affinity scoring (the default — see the module docs).
    CostAffinity {
        /// Weight of the believed-backlog term (queued predicted cost
        /// plus committed calendar beyond now).
        load_weight: f64,
        /// Multiplier applied to the score of a breaker-open node;
        /// clamped to at least 1.
        breaker_penalty: f64,
        /// Whether the data-affinity transfer term is applied.
        affinity: bool,
    },
}

impl Default for RouterPolicy {
    fn default() -> Self {
        RouterPolicy::CostAffinity {
            load_weight: 1.0,
            breaker_penalty: 4.0,
            affinity: true,
        }
    }
}

/// One routing decision.
pub(crate) struct Placement {
    /// Chosen node index.
    pub node: usize,
    /// The winning score (0 for [`RouterPolicy::RoundRobin`]).
    pub score: f64,
    /// Nodes skipped this decision because their pricing produced no
    /// finite score (plan-cache compile error, NaN/∞ beliefs).
    pub unpriceable: usize,
}

/// Scores `shape` on every node and returns the placement. `rr` is the
/// round-robin cursor, advanced only by that policy. Nodes with a full
/// admission queue are skipped while any node has room (when all are
/// full, the cheapest node takes the rejection).
///
/// A node whose pricing fails — its plan cache cannot compile the shape,
/// or its believed parameters yield a NaN/∞ score — is *skipped*, not
/// priced at zero: a zero price made a broken node look free and
/// attracted every arrival (and NaN scores poisoned the `<` comparison
/// silently). Skipped nodes are counted in [`Placement::unpriceable`].
/// Only when *no* node produces a finite score does the router fall back
/// to pure load balancing across all admissible nodes, so every arrival
/// still places deterministically.
pub(crate) fn route(
    policy: &RouterPolicy,
    nodes: &mut [Node],
    shape: Option<&QueuedShape>,
    dataset: Option<u64>,
    words: u64,
    now: f64,
    rr: &mut usize,
) -> Placement {
    debug_assert!(!nodes.is_empty());
    let (load_weight, breaker_penalty, affinity) = match policy {
        RouterPolicy::RoundRobin => {
            // Scan at most one full cycle for a reachable node; a fully
            // quarantined fleet falls back to the raw cursor so placement
            // stays total and deterministic.
            let mut node = *rr % nodes.len();
            for probe in 0..nodes.len() {
                let i = (*rr + probe) % nodes.len();
                if nodes[i].reachable() {
                    node = i;
                    *rr += probe;
                    break;
                }
            }
            *rr += 1;
            return Placement {
                node,
                score: 0.0,
                unpriceable: 0,
            };
        }
        RouterPolicy::CostAffinity {
            load_weight,
            breaker_penalty,
            affinity,
        } => (*load_weight, *breaker_penalty, *affinity),
    };
    let any_room = nodes
        .iter()
        .any(|n| n.reachable() && n.sim.queue_len() < n.sim.queue_capacity());
    let mut unpriceable = 0usize;
    let mut best: Option<Placement> = None;
    // Pass 1 prices under each node's beliefs; pass 2 (reached only when
    // pass 1 found no finite score anywhere) ignores prices and load-
    // balances, preserving the old all-nodes-unpriceable behavior.
    for priced in [true, false] {
        for (i, node) in nodes.iter_mut().enumerate() {
            // A down node is quarantined outright — not demoted like a
            // breaker-open one: there is no machine to run CPU-only on.
            if !node.reachable() {
                continue;
            }
            if any_room && node.sim.queue_len() >= node.sim.queue_capacity() {
                continue;
            }
            let price = if priced {
                match shape {
                    // No shape at all: nothing to price, pure load
                    // balancing on every node.
                    None => 0.0,
                    Some(s) => match node.sim.price(s).filter(|c| c.is_finite()) {
                        Some(c) => c,
                        None => {
                            unpriceable += 1;
                            continue;
                        }
                    },
                }
            } else {
                0.0
            };
            let backlog = node.sim.queued_cost() + (node.sim.horizon() - now).max(0.0);
            // Residency credit requires a *healthy* holder. A breaker-open
            // node runs the job CPU-only and re-stages regardless of what
            // its device once held, so its stale residency used to pull
            // arrivals toward the degraded node; charge the transfer.
            let transfer = match dataset.filter(|_| affinity) {
                Some(d) if node.is_resident(d) && !node.sim.breaker_open() => 0.0,
                Some(_) => node.sim.believed_transfer_time(words),
                None => 0.0,
            };
            let mut score = price + load_weight * backlog + transfer;
            if node.sim.breaker_open() {
                score *= breaker_penalty.max(1.0);
            }
            // Backlog or transfer can still go non-finite (e.g. λ = ∞
            // beliefs): such a score never wins a `<` race, but NaN loses
            // them *silently* — treat both as unpriceable instead.
            if !score.is_finite() {
                unpriceable += 1;
                continue;
            }
            if best.as_ref().is_none_or(|b| score < b.score) {
                best = Some(Placement {
                    node: i,
                    score,
                    unpriceable: 0,
                });
            }
        }
        if best.is_some() {
            break;
        }
    }
    // Last resort (every node unreachable or unpriceable in both
    // passes): the first reachable node, else node 0 — total either way.
    let fallback = nodes.iter().position(|n| n.reachable()).unwrap_or(0);
    let mut placement = best.unwrap_or(Placement {
        node: fallback,
        score: f64::INFINITY,
        unpriceable: 0,
    });
    placement.unpriceable = unpriceable;
    placement
}

#[cfg(test)]
mod tests {
    use hpu_machine::MachineConfig;
    use hpu_model::{MachineParams, Recurrence, ScheduleSpec};
    use hpu_serve::ServeConfig;

    use super::*;
    use crate::node::NodeSpec;

    fn two_idle_nodes() -> Vec<Node> {
        vec![
            Node::new(&NodeSpec::new("a", MachineConfig::hpu1_sim())),
            Node::new(&NodeSpec::new("b", MachineConfig::hpu1_sim())),
        ]
    }

    fn gpu_shape() -> QueuedShape {
        let rec = Recurrence::mergesort();
        let n = 4096u64;
        let levels = rec.num_levels(n);
        QueuedShape {
            spec: ScheduleSpec::GpuOnly,
            rec,
            n,
            levels,
        }
    }

    /// A node whose believed transfer latency is `lambda` — ∞ or NaN
    /// make every GPU-using price non-finite, i.e. unpriceable.
    fn node_with_lambda(name: &str, lambda: f64) -> Node {
        let assumed = MachineParams::hpu1().with_transfer_cost(lambda, 0.0);
        Node::new(
            &NodeSpec::new(name, MachineConfig::hpu1_sim()).with_serve(ServeConfig {
                assumed: Some(assumed),
                ..ServeConfig::default()
            }),
        )
    }

    #[test]
    fn one_bad_node_is_skipped_counted_and_routing_stays_deterministic() {
        // Regression: a node whose pricing blew up to ∞ used to fall
        // back to a price of 0.0 — the *broken* node looked free and
        // attracted every arrival. It must be skipped and counted.
        for bad_lambda in [f64::INFINITY, f64::NAN] {
            let mut nodes = vec![
                Node::new(&NodeSpec::new("good", MachineConfig::hpu1_sim())),
                node_with_lambda("bad", bad_lambda),
            ];
            let shape = gpu_shape();
            let mut rr = 0;
            for _ in 0..8 {
                let p = route(
                    &RouterPolicy::default(),
                    &mut nodes,
                    Some(&shape),
                    None,
                    0,
                    0.0,
                    &mut rr,
                );
                assert_eq!(p.node, 0, "every arrival must land on the healthy node");
                assert_eq!(p.unpriceable, 1, "the bad node is counted once per probe");
                assert!(p.score.is_finite());
            }
        }
    }

    #[test]
    fn all_bad_nodes_fall_back_to_load_balancing() {
        let mut nodes = vec![
            node_with_lambda("bad-a", f64::INFINITY),
            node_with_lambda("bad-b", f64::INFINITY),
        ];
        let shape = gpu_shape();
        let mut rr = 0;
        let p = route(
            &RouterPolicy::default(),
            &mut nodes,
            Some(&shape),
            None,
            0,
            0.0,
            &mut rr,
        );
        // No node prices, so the load-only fallback places on the lowest
        // index — deterministic, never a NaN comparison.
        assert_eq!(p.node, 0);
        assert_eq!(p.unpriceable, 2);
        assert!(p.score.is_finite());
    }

    #[test]
    fn round_robin_cycles_without_pricing() {
        let mut nodes = two_idle_nodes();
        let mut rr = 0;
        let seq: Vec<usize> = (0..4)
            .map(|_| {
                route(
                    &RouterPolicy::RoundRobin,
                    &mut nodes,
                    None,
                    None,
                    0,
                    0.0,
                    &mut rr,
                )
                .node
            })
            .collect();
        assert_eq!(seq, vec![0, 1, 0, 1]);
    }

    #[test]
    fn affinity_prefers_the_resident_node() {
        let mut nodes = two_idle_nodes();
        nodes[1].touch_resident(7, 8);
        let mut rr = 0;
        let p = route(
            &RouterPolicy::default(),
            &mut nodes,
            None,
            Some(7),
            1 << 20,
            0.0,
            &mut rr,
        );
        assert_eq!(
            p.node, 1,
            "equal idle nodes: residency must break the tie toward node 1"
        );
    }

    #[test]
    fn a_down_node_is_quarantined_even_when_resident_and_cheapest() {
        use crate::node::NodeHealth;
        // Regression companion to the stale-affinity fix: a node the
        // detector declared down must never win a placement, however
        // attractive its residency or price looks on paper.
        let mut nodes = two_idle_nodes();
        nodes[1].touch_resident(7, 8);
        nodes[1].health = NodeHealth::Down;
        let mut rr = 0;
        for _ in 0..4 {
            let p = route(
                &RouterPolicy::default(),
                &mut nodes,
                None,
                Some(7),
                1 << 20,
                0.0,
                &mut rr,
            );
            assert_eq!(p.node, 0, "a down node must be skipped outright");
        }
        // Round-robin skips it too instead of blindly cycling onto it.
        let mut rr = 0;
        for _ in 0..4 {
            let p = route(
                &RouterPolicy::RoundRobin,
                &mut nodes,
                None,
                None,
                0,
                0.0,
                &mut rr,
            );
            assert_eq!(p.node, 0);
        }
    }

    #[test]
    fn residency_credit_is_suspended_while_the_holder_breaker_is_open() {
        use hpu_machine::FaultPlan;
        use hpu_model::ScheduleSpec;
        use hpu_serve::{AlgoJob, FaultConfig, JobRequest};
        // Regression: a breaker-open node used to keep its 0-transfer
        // residency discount, so arrivals over a resident dataset were
        // still pulled toward the degraded node. With the penalty
        // multiplier neutralized (1.0) the discount was the *only* pull —
        // it must be gone while the breaker is open.
        let doomed = ServeConfig {
            cpu_fallback: false,
            faults: Some(FaultConfig::new(FaultPlan::new(3).with_device_loss_at(0))),
            ..ServeConfig::default()
        };
        let mut nodes = vec![
            Node::new(&NodeSpec::new("doomed", MachineConfig::hpu1_sim()).with_serve(doomed)),
            Node::new(&NodeSpec::new("healthy", MachineConfig::hpu1_sim())),
        ];
        // Trip node 0's breaker: its first GPU launch loses the device.
        let data: Vec<u64> = (0..256u64).rev().collect();
        nodes[0].sim.submit(
            99,
            JobRequest::new(
                "trip",
                ScheduleSpec::GpuOnly,
                0.0,
                AlgoJob::boxed(hpu_algos::MergeSort::new(), data),
            ),
        );
        while !nodes[0].sim.breaker_open() {
            assert!(nodes[0].sim.step().is_some(), "breaker must trip");
        }
        // Both nodes hold the dataset: pre-fix both were discounted and
        // the index tie-break kept the arrival on the degraded node 0;
        // post-fix only the healthy holder keeps the credit.
        nodes[0].touch_resident(7, 8);
        nodes[1].touch_resident(7, 8);
        let policy = RouterPolicy::CostAffinity {
            load_weight: 0.0,
            breaker_penalty: 1.0,
            affinity: true,
        };
        let mut rr = 0;
        let p = route(&policy, &mut nodes, None, Some(7), 1 << 20, 0.0, &mut rr);
        assert_eq!(
            p.node, 1,
            "stale residency on a breaker-open node must not attract the job"
        );
    }

    #[test]
    fn affinity_off_falls_back_to_the_index_tiebreak() {
        let mut nodes = two_idle_nodes();
        nodes[1].touch_resident(7, 8);
        let policy = RouterPolicy::CostAffinity {
            load_weight: 1.0,
            breaker_penalty: 4.0,
            affinity: false,
        };
        let mut rr = 0;
        let p = route(&policy, &mut nodes, None, Some(7), 1 << 20, 0.0, &mut rr);
        assert_eq!(p.node, 0, "without affinity the transfer term vanishes");
    }
}
