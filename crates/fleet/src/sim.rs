//! The deterministic multi-node fleet simulation.
//!
//! [`fleet_sim`] interleaves N independent [`NodeSim`] schedulers in one
//! global virtual time: the earliest pending event — a fleet arrival or
//! any node's next internal event — is processed first, with arrivals
//! winning ties so a job routed at time `t` is admissible in the same
//! instant. After every node event the stealer runs ([`crate::steal`]),
//! and a node whose GPU circuit breaker newly tripped has its queue
//! evacuated to healthy peers. Everything is deterministic: equal
//! inputs give equal outputs, migration for migration.
//!
//! [`NodeSim`]: hpu_serve::NodeSim

use std::sync::Arc;

use hpu_machine::{NodeFaultPlan, SimMachineParams};
use hpu_model::{compile, plan_cost, LevelProfile, MachineParams, ScheduleSpec};
use hpu_obs::{FleetReport, MetricsRegistry, ServeReport};
use hpu_serve::{JobRequest, QueuedShape, ServeOutput, Workload};

use crate::error::FleetError;
use crate::node::{Node, NodeSpec};
use crate::recover::{fault_step, DetectorConfig, FaultTimeline, RecoveryLog};
use crate::router::{route, RouterPolicy};
use crate::steal::{balance, evacuate, StealConfig, StealEvent, StealReason};

/// One job submission to the fleet.
pub struct FleetJobRequest {
    /// Human-readable label, carried into the records.
    pub name: String,
    /// The schedule to compile the job's plan from.
    pub spec: ScheduleSpec,
    /// Submission time (fleet virtual time).
    pub arrival: f64,
    /// Latest acceptable completion time, if any.
    pub deadline: Option<f64>,
    /// Dataset the job reads, for the router's affinity term: jobs over
    /// the same id prefer nodes where it is already resident.
    pub dataset: Option<u64>,
    /// The work itself.
    pub workload: Box<dyn Workload>,
}

impl FleetJobRequest {
    /// A deadline-free, affinity-free fleet submission.
    pub fn new(
        name: impl Into<String>,
        spec: ScheduleSpec,
        arrival: f64,
        workload: Box<dyn Workload>,
    ) -> Self {
        FleetJobRequest {
            name: name.into(),
            spec,
            arrival,
            deadline: None,
            dataset: None,
            workload,
        }
    }

    /// Attaches a completion deadline (fleet virtual time).
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tags the job with the dataset it reads (see
    /// [`FleetJobRequest::dataset`]).
    pub fn with_dataset(mut self, dataset: u64) -> Self {
        self.dataset = Some(dataset);
        self
    }
}

/// Fleet configuration: the nodes plus routing and stealing knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The fleet's nodes, possibly heterogeneous.
    pub nodes: Vec<NodeSpec>,
    /// Job placement policy.
    pub router: RouterPolicy,
    /// Work-stealing knobs.
    pub steal: StealConfig,
    /// Datasets each node keeps resident (LRU) for the affinity term.
    pub residency_capacity: usize,
    /// Whether to run the omniscient lowest-completion-time oracle on
    /// the same submission stream and report routing quality against it.
    pub oracle: bool,
    /// Fleet-level metrics registry (`fleet.*` counters, the routing
    /// score histogram, end-of-run goodput/quality gauges). `None` —
    /// the default — serves unmetered.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Seeded whole-node fault plan (crashes, partitions, restarts).
    /// `None` — the default — injects nothing, and the run is
    /// event-for-event identical to a fleet without the fault machinery.
    pub node_faults: Option<NodeFaultPlan>,
    /// Failure-detector configuration (event-boundary miss threshold).
    pub detector: DetectorConfig,
}

impl FleetConfig {
    /// A fleet over `nodes` with default routing (cost/affinity),
    /// default stealing, an 8-dataset residency LRU, the oracle on, and
    /// no node faults.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        FleetConfig {
            nodes,
            router: RouterPolicy::default(),
            steal: StealConfig::default(),
            residency_capacity: 8,
            oracle: true,
            metrics: None,
            node_faults: None,
            detector: DetectorConfig::default(),
        }
    }

    /// Attaches a node-fault plan (see [`FleetConfig::node_faults`]).
    pub fn with_node_faults(mut self, plan: NodeFaultPlan) -> Self {
        self.node_faults = Some(plan);
        self
    }
}

/// Everything a fleet run produces.
pub struct FleetOutput {
    /// Merged fleet-level metrics.
    pub report: FleetReport,
    /// Each node's full [`ServeOutput`], fleet node order.
    pub nodes: Vec<ServeOutput>,
    /// `(job id, node index)` for every routed job, submission order —
    /// the *initial* placement; migrations are in
    /// [`FleetOutput::steals`].
    pub assignments: Vec<(u64, usize)>,
    /// Every cross-node migration, occurrence order.
    pub steals: Vec<StealEvent>,
    /// Fleet-internal invariant violations observed during the run
    /// (malformed routing or stealing decisions). The offending decision
    /// is skipped rather than aborting every node's simulation; an empty
    /// vec is the healthy case.
    pub errors: Vec<FleetError>,
}

/// One fleet arrival, pre-digested: the pricing shape is extracted
/// before the workload moves into a node, so the router and the oracle
/// can price it without touching the job.
struct Incoming {
    id: u64,
    at: f64,
    shape: Option<QueuedShape>,
    dataset: Option<u64>,
    words: u64,
    job: Option<FleetJobRequest>,
}

/// Serves `jobs` over the fleet `cfg`. Deterministic: equal inputs give
/// equal outputs, event for event and migration for migration.
pub fn fleet_sim(cfg: &FleetConfig, jobs: Vec<FleetJobRequest>) -> FleetOutput {
    let submitted = jobs.len();
    let mut nodes: Vec<Node> = cfg.nodes.iter().map(Node::new).collect();
    if nodes.is_empty() {
        let report = FleetReport::new(Vec::new(), &[], Vec::new(), Vec::new(), Vec::new(), 0, 0, 0);
        return FleetOutput {
            report,
            nodes: Vec::new(),
            assignments: Vec::new(),
            steals: Vec::new(),
            errors: Vec::new(),
        };
    }

    // Digest and order arrivals: stable by (clamped arrival, submission
    // index) — exactly the event order a single node's heap would use.
    let mut incoming: Vec<Incoming> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, job)| Incoming {
            id: i as u64,
            at: job.arrival.max(0.0),
            shape: job.workload.exec_levels().ok().map(|levels| QueuedShape {
                spec: job.spec.clone(),
                rec: job.workload.recurrence(),
                n: job.workload.input_len() as u64,
                levels,
            }),
            dataset: job.dataset,
            words: job.workload.input_len() as u64,
            job: Some(job),
        })
        .collect();
    incoming.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.id.cmp(&b.id)));

    let oracle_mean = if cfg.oracle {
        oracle_mean_latency(cfg, &incoming)
    } else {
        0.0
    };

    let mut datasets: Vec<Option<u64>> = vec![None; submitted];
    let mut assignments: Vec<(u64, usize)> = Vec::new();
    let mut steals_log: Vec<StealEvent> = Vec::new();
    let mut errors: Vec<FleetError> = Vec::new();
    let mut unpriceable = 0usize;
    let mut rr = 0usize;
    let mut idx = 0usize;
    // Resolve the node-fault plan up front: one optional timeline per
    // node, advanced by the global event ordinal. Empty without a plan —
    // the fault machinery then touches nothing at all.
    let mut timelines: Vec<FaultTimeline> = match &cfg.node_faults {
        Some(plan) if !plan.is_fault_free() => (0..nodes.len())
            .filter_map(|i| plan.fault_for(i as u64).map(|f| FaultTimeline::new(i, f)))
            .collect(),
        _ => Vec::new(),
    };
    let mut recovery = RecoveryLog::default();
    let mut ordinal: u64 = 0;
    let mut gnow = 0.0f64;
    loop {
        fault_step(
            &cfg.detector,
            &mut timelines,
            &mut nodes,
            ordinal,
            gnow,
            &datasets,
            cfg.residency_capacity,
            &mut recovery,
            &mut steals_log,
        );
        let next_arrival = incoming.get(idx).map(|inc| inc.at);
        let next_node = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.crashed)
            .filter_map(|(i, n)| n.sim.next_event_time().map(|t| (t, i)))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        match (next_arrival, next_node) {
            (None, None) => {
                // Fired faults still owing a detection or restart stage
                // keep the ordinal advancing past the last real event,
                // or evicted jobs would never be re-placed.
                if timelines.iter().any(FaultTimeline::pending) {
                    ordinal += 1;
                    continue;
                }
                break;
            }
            // Arrival-first on ties: the routed job must be in its
            // node's heap before that node processes the same instant.
            (Some(at), ev) if ev.is_none_or(|(t, _)| at <= t) => {
                ordinal += 1;
                gnow = gnow.max(at);
                let inc = &mut incoming[idx];
                idx += 1;
                let placement = route(
                    &cfg.router,
                    &mut nodes,
                    inc.shape.as_ref(),
                    inc.dataset,
                    inc.words,
                    at,
                    &mut rr,
                );
                unpriceable += placement.unpriceable;
                // A consumed payload means this arrival already routed —
                // a fleet bug, but one that must not abort every other
                // node's simulation.
                let job = match take_routed(inc) {
                    Ok(job) => job,
                    Err(e) => {
                        errors.push(e);
                        continue;
                    }
                };
                datasets[inc.id as usize] = inc.dataset;
                let target = &mut nodes[placement.node];
                target.routed += 1;
                if let Some(d) = inc.dataset {
                    target.touch_resident(d, cfg.residency_capacity);
                }
                target.sim.submit(
                    inc.id,
                    JobRequest {
                        name: job.name,
                        spec: job.spec,
                        arrival: at,
                        deadline: job.deadline,
                        workload: job.workload,
                    },
                );
                assignments.push((inc.id, placement.node));
                if let Some(m) = &cfg.metrics {
                    m.inc("fleet.submitted", 1);
                    if placement.score.is_finite() {
                        m.observe("fleet.route_score", placement.score);
                    }
                }
            }
            (_, Some((_, i))) => {
                ordinal += 1;
                let was_open = nodes[i].sim.breaker_open();
                nodes[i].sim.step();
                let now = nodes[i].sim.now();
                gnow = gnow.max(now);
                if !was_open && nodes[i].sim.breaker_open() {
                    let evs = evacuate(&mut nodes, i, now);
                    settle_migrations(&mut nodes, &datasets, &evs, cfg.residency_capacity);
                    if let Some(m) = &cfg.metrics {
                        m.inc("fleet.migrations", evs.len() as u64);
                    }
                    steals_log.extend(evs);
                }
                let evs = balance(&cfg.steal, &mut nodes, now, &mut errors);
                settle_migrations(&mut nodes, &datasets, &evs, cfg.residency_capacity);
                if let Some(m) = &cfg.metrics {
                    m.inc("fleet.steals", evs.len() as u64);
                }
                steals_log.extend(evs);
            }
            (Some(_), None) => unreachable!("the guarded arm admits every arrival-only state"),
        }
    }

    let names: Vec<String> = nodes.iter().map(|n| n.name.clone()).collect();
    // Net responsibility: router placements corrected by migrations, so
    // per-node goodput compares completions to what the node actually
    // kept.
    let routed_net: Vec<usize> = nodes
        .iter()
        .map(|n| (n.routed + n.steals_in).saturating_sub(n.steals_out))
        .collect();
    let steal_flow: Vec<(usize, usize)> =
        nodes.iter().map(|n| (n.steals_out, n.steals_in)).collect();
    let replans: Vec<u64> = nodes.iter().map(|n| n.sim.replans()).collect();
    let outputs: Vec<ServeOutput> = nodes.into_iter().map(|n| n.sim.finish()).collect();
    let reports: Vec<ServeReport> = outputs.iter().map(|o| o.report.clone()).collect();
    let steals = steals_log
        .iter()
        .filter(|e| e.reason == StealReason::Load)
        .count();
    // Recovery re-placements (`NodeDown`) are tallied separately in the
    // recovery counters; `migrations` stays breaker-evacuations only.
    let migrations = steals_log
        .iter()
        .filter(|e| e.reason == StealReason::DeviceLost)
        .count();
    let faulted = !timelines.is_empty();
    let recovery = recovery.finish();
    let mut report = FleetReport::new(
        names, &reports, routed_net, steal_flow, replans, submitted, steals, migrations,
    )
    .with_unpriceable(unpriceable)
    .with_recovery(recovery);
    if oracle_mean > 0.0 {
        report = report.with_oracle(oracle_mean);
    }
    if let Some(m) = &cfg.metrics {
        m.set_gauge("fleet.goodput", report.goodput);
        m.set_gauge("fleet.routing_quality", report.routing_quality);
        m.set_gauge("fleet.makespan", report.makespan);
        if unpriceable > 0 {
            m.inc("fleet.unpriceable", unpriceable as u64);
        }
        // Gated on a live fault plan so fault-free metered runs keep a
        // byte-identical registry snapshot.
        if faulted {
            m.inc("recovery.crashes", recovery.crashes);
            m.inc("recovery.node_down", recovery.node_downs);
            m.inc("recovery.node_up", recovery.node_ups);
            m.inc("recovery.jobs_recovered", recovery.jobs_recovered);
            m.inc("recovery.jobs_restarted", recovery.jobs_restarted);
            m.inc("recovery.levels_saved", recovery.levels_saved);
            m.inc("recovery.checkpoint_bytes", recovery.checkpoint_bytes);
            m.set_gauge("recovery.mttr", recovery.mttr);
        }
    }
    FleetOutput {
        report,
        nodes: outputs,
        assignments,
        steals: steals_log,
        errors,
    }
}

/// Consumes an arrival's job payload for routing; an already-consumed
/// payload is the [`FleetError::ArrivalAlreadyRouted`] invariant
/// violation (this used to be a process-aborting `expect`).
fn take_routed(inc: &mut Incoming) -> Result<FleetJobRequest, FleetError> {
    inc.job
        .take()
        .ok_or(FleetError::ArrivalAlreadyRouted { job: inc.id })
}

/// Moves each migrated job's dataset residency with it.
fn settle_migrations(nodes: &mut [Node], datasets: &[Option<u64>], evs: &[StealEvent], cap: usize) {
    for e in evs {
        if let Some(d) = datasets.get(e.job as usize).copied().flatten() {
            nodes[e.to].touch_resident(d, cap);
        }
    }
}

/// Mean completed-job latency of the omniscient lowest-completion-time
/// oracle: for each arrival in order, it prices the job on every node
/// under that node's *true* parameters (no mis-specification, no
/// calibration lag, no compile failures it doesn't know about) and
/// places it where `max(arrival, node available) + true cost` is
/// smallest, then occupies the node for exactly that cost. No queueing
/// model, no stealing — a lower-bound-style reference the real router
/// is measured against.
fn oracle_mean_latency(cfg: &FleetConfig, incoming: &[Incoming]) -> f64 {
    let params: Vec<MachineParams> = cfg
        .nodes
        .iter()
        .map(|s| {
            let mut m = s.machine.clone();
            if let Some(k) = s.serve.cores_per_job {
                m.cpu.cores = k.clamp(1, s.machine.cpu.cores);
            }
            MachineParams::from_config(&m)
        })
        .collect();
    let mut avail = vec![0.0f64; params.len()];
    let mut total = 0.0f64;
    let mut count = 0usize;
    for inc in incoming {
        let Some(shape) = &inc.shape else { continue };
        let mut best: Option<(f64, usize)> = None;
        for (i, p) in params.iter().enumerate() {
            let Ok(plan) = compile(&shape.spec, p, &shape.rec, shape.n, shape.levels) else {
                continue;
            };
            let profile = LevelProfile::new(p, &shape.rec, shape.n);
            let Ok(cost) = plan_cost(&profile, &plan) else {
                continue;
            };
            let completion = inc.at.max(avail[i]) + cost.total;
            if best.is_none_or(|(b, _)| completion < b) {
                best = Some((completion, i));
            }
        }
        if let Some((completion, i)) = best {
            avail[i] = completion;
            total += completion - inc.at;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_twice_routed_arrival_is_a_typed_error_not_a_panic() {
        // Regression: `fleet_sim` used to `expect` here, so a duplicate
        // take aborted the whole multi-node run.
        let mut inc = Incoming {
            id: 42,
            at: 0.0,
            shape: None,
            dataset: None,
            words: 0,
            job: None,
        };
        assert_eq!(
            take_routed(&mut inc).map(|_| ()),
            Err(FleetError::ArrivalAlreadyRouted { job: 42 })
        );
    }
}
