//! Cross-node work stealing at deterministic event boundaries.
//!
//! Two triggers move queued jobs between nodes:
//!
//! * **Load imbalance** ([`balance`]): after each node event, while the
//!   longest queue exceeds the shortest (accepting) queue by at least
//!   [`StealConfig::min_imbalance`], one job migrates from the victim's
//!   *backfillable suffix* — never its rigid prefix, which the dispatch
//!   policy has already promised to run next — to the thief.
//! * **Device loss** ([`evacuate`]): when a node's GPU circuit breaker
//!   trips, every job still queued there is rerouted to healthy nodes
//!   with queue room, rather than running degraded CPU-only.
//!
//! A migrated job keeps its original spec, arrival and deadline; the
//! receiving node re-prices and re-compiles it from scratch under its
//! own beliefs and plan cache. All decisions read only queue lengths and
//! deterministic orderings, so fleet runs stay bit-for-bit reproducible.

use crate::error::FleetError;
use crate::node::Node;

/// Work-stealing configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StealConfig {
    /// Whether load-triggered stealing runs at all (device-loss
    /// evacuation always does).
    pub enabled: bool,
    /// Minimum queue-length gap between victim and thief before a steal
    /// fires; clamped to at least 1.
    pub min_imbalance: usize,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig {
            enabled: true,
            min_imbalance: 2,
        }
    }
}

/// Why a job migrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealReason {
    /// Load-triggered: the victim's queue was too long.
    Load,
    /// Fault-triggered: the victim's GPU circuit breaker tripped.
    DeviceLost,
    /// Recovery-triggered: the victim node crashed (or was declared
    /// down) and its evicted jobs were re-placed on reachable peers.
    NodeDown,
}

/// One cross-node migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StealEvent {
    /// Fleet virtual time of the migration.
    pub at: f64,
    /// The migrated job's id.
    pub job: u64,
    /// Victim node index.
    pub from: usize,
    /// Receiving node index.
    pub to: usize,
    /// What triggered it.
    pub reason: StealReason,
}

/// Effective queue length of a prospective thief: its admitted queue
/// plus migrations already injected this boundary (they become arrivals,
/// not queue entries, until the node's next event).
fn effective(nodes: &[Node], injected: &[usize], i: usize) -> usize {
    nodes[i].sim.queue_len() + injected[i]
}

/// Picks the steal victim: the *reachable* node with the longest queue
/// (lowest index on ties) — a down node cannot be negotiated with, in
/// either direction. An empty fleet is a typed error, not a panic — the
/// caller records it and skips the stealing pass.
pub(crate) fn pick_victim(nodes: &[Node]) -> Result<usize, FleetError> {
    (0..nodes.len())
        .filter(|&i| nodes[i].reachable())
        .max_by_key(|&i| (nodes[i].sim.queue_len(), usize::MAX - i))
        .ok_or(FleetError::EmptyFleet {
            context: "steal victim",
        })
}

/// Load-balancing pass at one event boundary (time `now`): migrates
/// jobs one at a time from the longest queue to the shortest accepting
/// queue until the gap falls below the threshold (or the victim has no
/// stealable suffix). Breaker-open nodes never steal *in* — a stolen
/// GPU job would instantly degrade there. A malformed selection is
/// appended to `errors` and ends the pass.
pub(crate) fn balance(
    cfg: &StealConfig,
    nodes: &mut [Node],
    now: f64,
    errors: &mut Vec<FleetError>,
) -> Vec<StealEvent> {
    let mut events = Vec::new();
    if !cfg.enabled || nodes.iter().filter(|n| n.reachable()).count() < 2 {
        return events;
    }
    let mut injected = vec![0usize; nodes.len()];
    loop {
        let victim = match pick_victim(nodes) {
            Ok(v) => v,
            Err(e) => {
                errors.push(e);
                break;
            }
        };
        let thief = (0..nodes.len())
            .filter(|&i| i != victim && nodes[i].reachable() && !nodes[i].sim.breaker_open())
            .filter(|&i| effective(nodes, &injected, i) < nodes[i].sim.queue_capacity())
            .min_by_key(|&i| (effective(nodes, &injected, i), i));
        let Some(thief) = thief else { break };
        let gap = nodes[victim]
            .sim
            .queue_len()
            .saturating_sub(effective(nodes, &injected, thief));
        if gap < cfg.min_imbalance.max(1) {
            break;
        }
        // Lowest-dispatch-priority candidate first; an empty list means
        // everything left is rigid — this node keeps its promises.
        let Some(&id) = nodes[victim].sim.steal_candidates().first() else {
            break;
        };
        let Some(stolen) = nodes[victim].sim.steal(id) else {
            break;
        };
        nodes[victim].steals_out += 1;
        nodes[thief].steals_in += 1;
        nodes[thief].sim.inject(stolen, now);
        injected[thief] += 1;
        events.push(StealEvent {
            at: now,
            job: id,
            from: victim,
            to: thief,
            reason: StealReason::Load,
        });
    }
    events
}

/// Evacuates every queued job off `victim` (whose GPU circuit breaker
/// just tripped) onto healthy nodes with queue room, shortest queue
/// first. Jobs that fit nowhere stay behind and run degraded CPU-only.
pub(crate) fn evacuate(nodes: &mut [Node], victim: usize, now: f64) -> Vec<StealEvent> {
    let mut events = Vec::new();
    if nodes.len() < 2 {
        return events;
    }
    let mut injected = vec![0usize; nodes.len()];
    for id in nodes[victim].sim.queued_ids() {
        let target = (0..nodes.len())
            .filter(|&i| i != victim && nodes[i].reachable() && !nodes[i].sim.breaker_open())
            .filter(|&i| effective(nodes, &injected, i) < nodes[i].sim.queue_capacity())
            .min_by_key(|&i| (effective(nodes, &injected, i), i));
        let Some(target) = target else { break };
        let Some(stolen) = nodes[victim].sim.steal(id) else {
            continue;
        };
        nodes[victim].steals_out += 1;
        nodes[target].steals_in += 1;
        nodes[target].sim.inject(stolen, now);
        injected[target] += 1;
        events.push(StealEvent {
            at: now,
            job: id,
            from: victim,
            to: target,
            reason: StealReason::DeviceLost,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_selection_over_an_empty_fleet_is_an_error_not_a_panic() {
        // Regression: this used to be an `expect` that aborted the whole
        // fleet simulation if the guard above it ever regressed.
        assert_eq!(
            pick_victim(&[]),
            Err(FleetError::EmptyFleet {
                context: "steal victim"
            })
        );
    }

    #[test]
    fn balance_records_nothing_and_no_errors_on_a_degenerate_fleet() {
        let mut errors = Vec::new();
        let events = balance(&StealConfig::default(), &mut [], 0.0, &mut errors);
        assert!(events.is_empty());
        assert!(errors.is_empty(), "the <2-node guard short-circuits first");
    }
}
