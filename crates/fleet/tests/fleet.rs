//! Fleet integration tests: 1-node equivalence with `serve_sim`,
//! load spreading, device-loss evacuation, and per-node calibration
//! isolation.

use hpu_algos::MergeSort;
use hpu_fleet::{
    fleet_sim, FleetConfig, FleetJobRequest, NodeSpec, RouterPolicy, StealConfig, StealReason,
};
use hpu_machine::{FaultPlan, MachineConfig, SimMachineParams};
use hpu_model::{CalibratorConfig, MachineParams, ScheduleSpec};
use hpu_serve::{serve_sim, AlgoJob, FaultConfig, JobRequest, ServeConfig};

fn sort_job(name: &str, spec: ScheduleSpec, n: u64, arrival: f64) -> JobRequest {
    let data: Vec<u64> = (0..n).rev().collect();
    JobRequest::new(name, spec, arrival, AlgoJob::boxed(MergeSort::new(), data))
}

fn fleet_job(name: &str, spec: ScheduleSpec, n: u64, arrival: f64) -> FleetJobRequest {
    let data: Vec<u64> = (0..n).rev().collect();
    FleetJobRequest::new(name, spec, arrival, AlgoJob::boxed(MergeSort::new(), data))
}

/// A scheduler that believes the GPU is twice as fast as it really is,
/// with the calibration loop on — the drift-and-replan scenario.
fn miscalibrated(cfg: &MachineConfig) -> ServeConfig {
    let truth = MachineParams::from_config(cfg);
    let assumed = MachineParams::new(truth.p, truth.g, (truth.gamma * 2.0).min(1.0))
        .unwrap()
        .with_transfer_cost(truth.lambda, truth.delta);
    ServeConfig {
        assumed: Some(assumed),
        calibration: Some(CalibratorConfig::default()),
        cpu_fallback: false,
        ..Default::default()
    }
}

fn mixed_spec(i: usize) -> ScheduleSpec {
    match i % 3 {
        0 => ScheduleSpec::Basic { crossover: Some(4) },
        1 => ScheduleSpec::GpuOnly,
        _ => ScheduleSpec::CpuParallel,
    }
}

/// Satellite: a 1-node fleet under the trivial round-robin router is
/// observationally identical to plain `serve_sim` — same records, same
/// device leases, same replans, same final calibration state.
#[test]
fn one_node_round_robin_fleet_matches_serve_sim() {
    let machine = MachineConfig::hpu1_sim();
    let serve = miscalibrated(&machine);

    let solo_jobs: Vec<JobRequest> = (0..10)
        .map(|i| {
            sort_job(
                &format!("j{i}"),
                mixed_spec(i),
                256 << (i % 2),
                i as f64 * 250.0,
            )
        })
        .collect();
    let solo = serve_sim(&machine, &serve, solo_jobs);

    let mut cfg = FleetConfig::new(vec![
        NodeSpec::new("solo", machine.clone()).with_serve(serve.clone())
    ]);
    cfg.router = RouterPolicy::RoundRobin;
    let fleet_jobs: Vec<FleetJobRequest> = (0..10)
        .map(|i| {
            fleet_job(
                &format!("j{i}"),
                mixed_spec(i),
                256 << (i % 2),
                i as f64 * 250.0,
            )
        })
        .collect();
    let fleet = fleet_sim(&cfg, fleet_jobs);

    assert!(fleet.steals.is_empty(), "a 1-node fleet cannot steal");
    let node = &fleet.nodes[0];
    assert_eq!(solo.report, node.report);
    assert_eq!(solo.replans, node.replans);
    assert_eq!(solo.calibration, node.calibration);
    assert_eq!(solo.gpu_leases, node.gpu_leases);
    assert_eq!(solo.cpu_reservations, node.cpu_reservations);
    assert_eq!(fleet.report.completed, solo.report.completed);
    assert_eq!(fleet.report.submitted, 10);
    assert_eq!(fleet.assignments.len(), 10);
    assert!(fleet.assignments.iter().all(|&(_, n)| n == 0));
}

/// The cost/affinity router spreads a staggered stream over
/// heterogeneous nodes instead of piling everything on one, and the
/// whole stream completes.
#[test]
fn cost_router_spreads_staggered_load() {
    let serve = ServeConfig {
        queue_capacity: 64,
        ..Default::default()
    };
    let cfg = FleetConfig::new(vec![
        NodeSpec::new("hpu1", MachineConfig::hpu1_sim()).with_serve(serve.clone()),
        NodeSpec::new("hpu2", MachineConfig::hpu2_sim()).with_serve(serve.clone()),
        NodeSpec::new("hpu1b", MachineConfig::hpu1_sim()).with_serve(serve.clone()),
        NodeSpec::new("hpu2b", MachineConfig::hpu2_sim()).with_serve(serve),
    ]);
    let jobs: Vec<FleetJobRequest> = (0..24)
        .map(|i| {
            fleet_job(
                &format!("s{i}"),
                ScheduleSpec::Basic { crossover: Some(4) },
                1 << 10,
                i as f64 * 50.0,
            )
        })
        .collect();
    let out = fleet_sim(&cfg, jobs);
    assert_eq!(out.report.completed, 24);
    assert!((out.report.goodput - 1.0).abs() < 1e-12);
    let mut used: Vec<usize> = out.assignments.iter().map(|&(_, n)| n).collect();
    used.sort_unstable();
    used.dedup();
    assert!(
        used.len() >= 2,
        "staggered load should reach more than one node, got {used:?}"
    );
    assert!(
        out.report.routing_quality > 0.0,
        "the oracle baseline should be reported"
    );
}

/// Satellite: killing one node's GPU reroutes its queued jobs — the
/// breaker trip triggers an evacuation to the healthy peer, and the
/// evacuated jobs complete there.
#[test]
fn device_loss_evacuates_queued_jobs_to_healthy_peer() {
    // No CPU fallback: contended GPU jobs wait in the queue instead of
    // degrading locally, so the breaker trip finds a queue to evacuate.
    let doomed = ServeConfig {
        queue_capacity: 16,
        cpu_fallback: false,
        faults: Some(FaultConfig::new(FaultPlan::new(9).with_device_loss_at(25))),
        ..Default::default()
    };
    let healthy = ServeConfig {
        queue_capacity: 16,
        cpu_fallback: false,
        ..Default::default()
    };
    let mut cfg = FleetConfig::new(vec![
        NodeSpec::new("doomed", MachineConfig::hpu1_sim()).with_serve(doomed),
        NodeSpec::new("healthy", MachineConfig::hpu1_sim()).with_serve(healthy),
    ]);
    // Isolate the evacuation path from load-triggered stealing.
    cfg.steal = StealConfig {
        enabled: false,
        min_imbalance: 2,
    };
    // A same-instant burst all lands on node 0 (equal idle scores, index
    // tie-break), so earlier admissions are still queued behind the
    // dispatched head job when a later admission's solo run crosses
    // launch ordinal 25 and loses the device.
    let jobs: Vec<FleetJobRequest> = (0..8)
        .map(|i| fleet_job(&format!("g{i}"), ScheduleSpec::GpuOnly, 1 << 10, 0.0))
        .collect();
    let out = fleet_sim(&cfg, jobs);

    assert!(out.assignments.iter().all(|&(_, n)| n == 0));
    let evacuated: Vec<_> = out
        .steals
        .iter()
        .filter(|e| e.reason == StealReason::DeviceLost)
        .collect();
    assert!(
        !evacuated.is_empty(),
        "a tripped breaker must evacuate the queue"
    );
    assert!(evacuated.iter().all(|e| e.from == 0 && e.to == 1));
    assert_eq!(out.report.migrations, evacuated.len());
    assert!(
        out.nodes[1].report.completed >= evacuated.len(),
        "the healthy node completes what it received"
    );
    let accounted = out.report.completed + out.report.failed + out.report.rejected;
    assert_eq!(accounted, 8, "every job is accounted for");
}

/// Tentpole invariant: calibration drift is node-local. A drifting node
/// replans and bumps its own pricing generation; its accurate peer's
/// generation never moves.
#[test]
fn calibration_drift_stays_node_local() {
    let machine = MachineConfig::hpu1_sim();
    let accurate = ServeConfig {
        calibration: Some(CalibratorConfig::default()),
        cpu_fallback: false,
        ..Default::default()
    };
    let mut cfg = FleetConfig::new(vec![
        NodeSpec::new("drifting", machine.clone()).with_serve(miscalibrated(&machine)),
        NodeSpec::new("accurate", machine.clone()).with_serve(accurate),
    ]);
    cfg.router = RouterPolicy::RoundRobin;
    cfg.steal = StealConfig {
        enabled: false,
        min_imbalance: 2,
    };
    let jobs: Vec<FleetJobRequest> = (0..16)
        .map(|i| {
            fleet_job(
                &format!("c{i}"),
                ScheduleSpec::GpuOnly,
                1 << 10,
                i as f64 * 500.0,
            )
        })
        .collect();
    let out = fleet_sim(&cfg, jobs);

    assert_eq!(out.report.completed, 16);
    assert!(
        out.nodes[0].replans >= 1,
        "a 2x gamma error must trigger a replan on the drifting node"
    );
    assert_eq!(out.nodes[1].replans, 0, "the accurate peer must not replan");
    assert!(out.nodes[0]
        .report
        .jobs
        .iter()
        .any(|r| r.calibration_generation >= 1));
    assert!(out.nodes[1]
        .report
        .jobs
        .iter()
        .all(|r| r.calibration_generation == 0));
}
