//! Node-crash fault-domain acceptance tests: deterministic crash
//! injection, level-boundary checkpoint recovery vs. restart-from-
//! scratch, detector quarantine, rejoin semantics, and the
//! faults-off-is-identical guarantee.

use hpu_algos::MergeSort;
use hpu_fleet::{fleet_sim, FleetConfig, FleetJobRequest, NodeSpec, StealConfig, StealReason};
use hpu_machine::{MachineConfig, NodeFaultPlan};
use hpu_model::ScheduleSpec;
use hpu_serve::{AlgoJob, CheckpointPolicy, ServeConfig};

const NODES: usize = 4;

fn fleet_job(name: &str, spec: ScheduleSpec, n: u64, arrival: f64) -> FleetJobRequest {
    let data: Vec<u64> = (0..n).rev().collect();
    FleetJobRequest::new(name, spec, arrival, AlgoJob::boxed(MergeSort::new(), data))
}

/// A 4-node fleet whose nodes all checkpoint under `policy`.
fn four_nodes(policy: CheckpointPolicy) -> FleetConfig {
    let serve = ServeConfig {
        queue_capacity: 32,
        cpu_fallback: false,
        checkpoint: policy,
        ..Default::default()
    };
    let mut cfg = FleetConfig::new(
        (0..NODES)
            .map(|i| {
                NodeSpec::new(format!("n{i}"), MachineConfig::hpu1_sim()).with_serve(serve.clone())
            })
            .collect(),
    );
    // Load stealing off: jobs stay where routed, so the only cross-node
    // movement these tests observe is crash recovery itself.
    cfg.steal = StealConfig {
        enabled: false,
        min_imbalance: 2,
    };
    cfg
}

/// 16 multi-segment jobs, staggered so the router spreads them over all
/// four nodes: the `Basic` split puts a level boundary at the CPU→GPU
/// crossover, so `EveryLevel` checkpointing has a consistent cut to
/// capture mid-job.
fn workload() -> Vec<FleetJobRequest> {
    (0..16)
        .map(|i| {
            fleet_job(
                &format!("j{i}"),
                ScheduleSpec::Basic { crossover: Some(4) },
                1 << 12,
                i as f64 * 50.0,
            )
        })
        .collect()
}

/// Smallest seed whose plan crashes exactly one of the 4 nodes at
/// `rate` — deterministic, found by the same subset-stable draws the
/// fleet will replay.
fn one_crash_seed(rate: f64) -> u64 {
    (0..10_000u64)
        .find(|&seed| {
            let plan = NodeFaultPlan::new(seed).with_crash_rate(rate);
            (0..NODES as u64)
                .filter(|&i| plan.fault_for(i).is_some())
                .count()
                == 1
        })
        .expect("some seed crashes exactly one node")
}

fn crashed_node(plan: &NodeFaultPlan) -> usize {
    (0..NODES as u64)
        .find(|&i| plan.fault_for(i).is_some())
        .expect("plan crashes one node") as usize
}

/// Tentpole acceptance: one mid-run crash under `EveryLevel`
/// checkpointing completes strictly more level-work without
/// re-execution than restart-from-scratch (`levels_saved > 0`), loses
/// zero completed jobs, and recovers or restarts every in-flight job
/// from the dead node.
#[test]
fn checkpointed_recovery_saves_levels_over_restart_from_scratch() {
    let seed = one_crash_seed(0.3);
    let plan = NodeFaultPlan::new(seed)
        .with_crash_rate(0.3)
        .with_crash_window(60, 60);
    let victim = crashed_node(&plan);

    let ckpt = fleet_sim(
        &four_nodes(CheckpointPolicy::EveryLevel).with_node_faults(plan.clone()),
        workload(),
    );
    let scratch = fleet_sim(
        &four_nodes(CheckpointPolicy::Off).with_node_faults(plan),
        workload(),
    );

    for (label, out) in [("everylevel", &ckpt), ("scratch", &scratch)] {
        let r = &out.report.recovery;
        assert_eq!(r.crashes, 1, "{label}: exactly one node crashes");
        assert_eq!(r.node_downs, 1, "{label}: the detector declares it down");
        let recoveries: Vec<_> = out
            .steals
            .iter()
            .filter(|e| e.reason == StealReason::NodeDown)
            .collect();
        assert!(
            !recoveries.is_empty(),
            "{label}: the dead node's jobs are re-placed"
        );
        assert!(
            recoveries
                .iter()
                .all(|e| e.from == victim && e.to != victim),
            "{label}: recovery flows off the crashed node {victim}"
        );
        assert_eq!(
            r.jobs_recovered + r.jobs_restarted,
            recoveries.len() as u64,
            "{label}: every evicted job is either recovered or restarted"
        );
        // Zero completed jobs lost, every submission accounted for: a
        // record with a terminal outcome exists for every job id.
        let accounted =
            out.report.completed + out.report.failed + out.report.rejected + out.report.cancelled;
        assert_eq!(accounted, 16, "{label}: every job is accounted for");
        assert_eq!(
            out.report.completed, 16,
            "{label}: with room on healthy peers nothing is actually lost"
        );
        // Boundaries can share a virtual instant, so MTTR may be 0 —
        // but it must be a well-defined, non-negative duration.
        assert!(
            r.mttr.is_finite() && r.mttr >= 0.0,
            "{label}: MTTR is a well-defined duration"
        );
    }

    // The payoff: checkpointed recovery re-executes strictly fewer
    // levels. Restart-from-scratch saves none by definition.
    assert!(
        ckpt.report.recovery.jobs_recovered > 0,
        "at least one in-flight job resumes from its checkpoint"
    );
    assert!(
        ckpt.report.recovery.levels_saved > 0,
        "EveryLevel must save completed levels from re-execution"
    );
    assert!(
        ckpt.report.recovery.checkpoint_bytes > 0,
        "used checkpoints carry host state"
    );
    assert_eq!(
        scratch.report.recovery.levels_saved, 0,
        "CheckpointPolicy::Off has no checkpoints to save levels with"
    );
    assert_eq!(scratch.report.recovery.jobs_recovered, 0);
    // Goodput is fixed (both complete everything) — the claim is about
    // saved re-execution at equal goodput.
    assert_eq!(ckpt.report.completed, scratch.report.completed);
}

/// A crashed node that restarts rejoins cold: `NodeUp` fires, its
/// pricing generation is bumped, and the fleet still completes every
/// job.
#[test]
fn restarted_node_rejoins_cold_and_serves_again() {
    let seed = one_crash_seed(0.3);
    let plan = NodeFaultPlan::new(seed)
        .with_crash_rate(0.3)
        .with_crash_window(60, 60)
        .with_restart_after(8);
    let victim = crashed_node(&plan);

    let out = fleet_sim(
        &four_nodes(CheckpointPolicy::EveryLevel).with_node_faults(plan),
        workload(),
    );
    let r = &out.report.recovery;
    assert_eq!(r.crashes, 1);
    assert_eq!(r.node_downs, 1);
    assert_eq!(r.node_ups, 1, "the restart must surface as NodeUp");
    assert_eq!(out.report.completed, 16);
    assert!(
        out.nodes[victim].replans >= 1,
        "rejoin bumps the crashed node's pricing generation"
    );
}

/// A partition quarantines without killing: no crash is counted, no job
/// is evicted, and the heal brings the node back with everything it was
/// running intact.
#[test]
fn partition_quarantines_and_heals_without_losing_work() {
    let seed = one_crash_seed(0.3);
    let plan = NodeFaultPlan::new(seed)
        .with_crash_rate(0.3)
        .with_partition_rate(1.0)
        .with_crash_window(60, 60)
        .with_restart_after(8);

    let out = fleet_sim(
        &four_nodes(CheckpointPolicy::EveryLevel).with_node_faults(plan),
        workload(),
    );
    let r = &out.report.recovery;
    assert_eq!(r.crashes, 0, "a partition is not a crash");
    assert_eq!(r.node_downs, 1);
    assert_eq!(r.node_ups, 1);
    assert_eq!(r.jobs_recovered + r.jobs_restarted, 0, "nothing is evicted");
    assert_eq!(out.report.completed, 16);
}

/// Guard rail: a `None` fault plan and a fault-free plan are both
/// event-for-event identical to each other and across repeat runs — the
/// fault machinery is observationally absent when off.
#[test]
fn fault_free_plan_is_identical_to_no_plan_at_all() {
    for seed in [1u64, 7, 42] {
        let off = fleet_sim(&four_nodes(CheckpointPolicy::Off), workload());
        let free = fleet_sim(
            &four_nodes(CheckpointPolicy::Off).with_node_faults(NodeFaultPlan::new(seed)),
            workload(),
        );
        assert_eq!(off.report, free.report, "seed {seed}");
        assert_eq!(off.assignments, free.assignments, "seed {seed}");
        assert_eq!(off.steals, free.steals, "seed {seed}");
        for (a, b) in off.nodes.iter().zip(free.nodes.iter()) {
            assert_eq!(a.report, b.report, "seed {seed}");
            assert_eq!(a.gpu_leases, b.gpu_leases, "seed {seed}");
            assert_eq!(a.cpu_reservations, b.cpu_reservations, "seed {seed}");
        }
        assert_eq!(off.report.recovery, Default::default(), "all-zero recovery");
    }
}
