//! Bridge from simulated machine descriptions to analytic model parameters.
//!
//! The analytic [`MachineParams`] (in `hpu-model`) and the simulator's
//! [`MachineConfig`] describe the same machine at different fidelities.
//! This module is the single place that maps one onto the other, so every
//! consumer — executors, tuners, experiments — derives `p`, `g`, `γ`, `λ`
//! and `δ` identically.

use crate::config::MachineConfig;
use crate::hpu::SimHpu;
use hpu_model::MachineParams;

/// Constructors binding [`MachineParams`] to the simulator's machine
/// descriptions. Implemented for [`MachineParams`] itself, so with this
/// trait in scope the analytic parameters of a simulated machine are
/// `MachineParams::from_sim(&hpu)`.
pub trait SimMachineParams {
    /// Analytic parameters of a machine configuration: `p` = cores,
    /// `g` = lanes, `γ = 1 / γ⁻¹`, transfer cost `λ + δ·w` from the bus.
    fn from_config(cfg: &MachineConfig) -> MachineParams;

    /// Analytic parameters of a live simulated machine.
    fn from_sim(hpu: &SimHpu) -> MachineParams;
}

impl SimMachineParams for MachineParams {
    fn from_config(cfg: &MachineConfig) -> MachineParams {
        MachineParams::new(cfg.cpu.cores, cfg.gpu.lanes, 1.0 / cfg.gpu.gamma_inv)
            .expect("simulated machine configuration is always valid")
            .with_transfer_cost(cfg.bus.lambda, cfg.bus.delta)
    }

    fn from_sim(hpu: &SimHpu) -> MachineParams {
        Self::from_config(hpu.config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpu1_config_maps_to_hpu1_params() {
        let params = MachineParams::from_config(&MachineConfig::hpu1_sim());
        assert_eq!(params.p, 4);
        assert_eq!(params.g, 4096);
        assert!((params.gamma - 1.0 / 160.0).abs() < 1e-12);
        let cfg = MachineConfig::hpu1_sim();
        assert_eq!(params.lambda, cfg.bus.lambda);
        assert_eq!(params.delta, cfg.bus.delta);
    }

    #[test]
    fn from_sim_reads_the_live_config() {
        let hpu = SimHpu::new(MachineConfig::hpu2_sim());
        let params = MachineParams::from_sim(&hpu);
        assert_eq!(params, MachineParams::from_config(hpu.config()));
        assert_eq!(params.g, hpu.config().gpu.lanes);
    }
}
