//! The CPU↔GPU transfer link.
//!
//! Moving `w` words costs `λ + δ·w` (paper §3.2). The bus counts transfers
//! and words so schedules can prove their communication claims (the basic
//! schedule makes one round trip, the advanced one exactly two transfers).

use std::sync::{Arc, Mutex};

use hpu_obs::EventKind;

use crate::config::BusConfig;
use crate::error::MachineError;
use crate::fault::{FaultInjector, FaultKind};
use crate::timeline::{Timeline, Unit};

/// Direction of a transfer, for the event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Host (CPU memory) to device (GPU global memory).
    ToGpu,
    /// Device to host.
    ToCpu,
}

/// The simulated link with transfer accounting.
#[derive(Debug)]
pub struct Bus {
    cfg: BusConfig,
    transfers: u64,
    words: u64,
    total_time: f64,
    timeline: Option<Arc<Mutex<Timeline>>>,
    faults: Option<Arc<Mutex<FaultInjector>>>,
}

impl Bus {
    /// Creates a bus from its configuration.
    pub fn new(cfg: BusConfig) -> Self {
        Bus {
            cfg,
            transfers: 0,
            words: 0,
            total_time: 0.0,
            timeline: None,
            faults: None,
        }
    }

    /// Attaches a shared timeline for event logging.
    pub fn with_timeline(mut self, t: Arc<Mutex<Timeline>>) -> Self {
        self.timeline = Some(t);
        self
    }

    /// Attaches a shared fault injector, consulted by
    /// [`Bus::try_transfer`] (the plain [`Bus::transfer`] stays
    /// fault-blind for probe and setup traffic).
    pub fn attach_faults(&mut self, inj: Arc<Mutex<FaultInjector>>) {
        self.faults = Some(inj);
    }

    /// Cost of transferring `words` words: `λ + δ·w`.
    pub fn cost(&self, words: u64) -> f64 {
        self.cfg.lambda + self.cfg.delta * words as f64
    }

    /// Records a transfer starting at virtual time `start`, returning its
    /// end time.
    pub fn transfer(&mut self, direction: Direction, words: u64, start: f64) -> f64 {
        let dt = self.cost(words);
        self.transfers += 1;
        self.words += words;
        self.total_time += dt;
        if let Some(t) = &self.timeline {
            t.lock().unwrap().record_kind(
                Unit::Bus,
                start,
                start + dt,
                EventKind::Transfer {
                    to_gpu: direction == Direction::ToGpu,
                    words,
                },
            );
        }
        start + dt
    }

    /// Like [`Bus::transfer`], but consults the attached fault injector
    /// first. On a transient fault the link handshake (`λ`) is still
    /// charged — the failure is detected device-side — and the caller
    /// must advance its clocks by [`Bus::cost`]`(0)`; no data moves. On
    /// device loss the transfer fails instantly and for good.
    pub fn try_transfer(
        &mut self,
        direction: Direction,
        words: u64,
        start: f64,
    ) -> Result<f64, MachineError> {
        if let Some(inj) = &self.faults {
            let (ordinal, fault) = inj.lock().unwrap().on_transfer();
            match fault {
                Some(FaultKind::DeviceLost) => {
                    self.record_fault(start, start, false);
                    return Err(MachineError::DeviceLost);
                }
                Some(FaultKind::TransferError) => {
                    let dt = self.cfg.lambda;
                    self.total_time += dt;
                    self.record_fault(start, start + dt, true);
                    return Err(MachineError::TransferFault { transfer: ordinal });
                }
                _ => {}
            }
        }
        Ok(self.transfer(direction, words, start))
    }

    fn record_fault(&self, t0: f64, t1: f64, transient: bool) {
        if let Some(t) = &self.timeline {
            t.lock().unwrap().record_kind(
                Unit::Bus,
                t0,
                t1,
                EventKind::Fault {
                    label: "transfer".to_string(),
                    transient,
                },
            );
        }
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total words moved.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Total time spent transferring.
    pub fn total_time(&self) -> f64 {
        self.total_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> Bus {
        Bus::new(BusConfig {
            lambda: 10.0,
            delta: 0.5,
        })
    }

    #[test]
    fn affine_cost() {
        let b = bus();
        assert_eq!(b.cost(0), 10.0);
        assert_eq!(b.cost(100), 60.0);
    }

    #[test]
    fn transfer_accounting() {
        let mut b = bus();
        let end = b.transfer(Direction::ToGpu, 100, 5.0);
        assert_eq!(end, 65.0);
        b.transfer(Direction::ToCpu, 10, end);
        assert_eq!(b.transfers(), 2);
        assert_eq!(b.words(), 110);
        assert_eq!(b.total_time(), 60.0 + 15.0);
    }

    #[test]
    fn timeline_logs_direction() {
        let t = Arc::new(Mutex::new(Timeline::new()));
        let mut b = bus().with_timeline(t.clone());
        b.transfer(Direction::ToGpu, 7, 0.0);
        let tl = t.lock().unwrap();
        assert!(tl.events()[0].label().contains("→GPU"));
        assert!(tl.events()[0].label().contains('7'));
        assert!(matches!(
            tl.events()[0].kind,
            EventKind::Transfer {
                to_gpu: true,
                words: 7
            }
        ));
    }
}
