//! Configuration of the simulated machine.
//!
//! The presets [`MachineConfig::hpu1_sim`] and [`MachineConfig::hpu2_sim`]
//! are calibrated so that running the paper's *estimation procedures*
//! (§6.4) against the simulated devices recovers parameters close to the
//! paper's Table 2 — `g` from the saturation knee, `γ` from the
//! single-thread merge ratio — which are then fed into `hpu-model` exactly
//! like the authors fed their measurements.

/// Configuration of the simulated multi-core CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Number of cores (`p`). One core performs one cost unit per time unit.
    pub cores: usize,
    /// Last-level cache size in bytes, shared by all cores.
    pub llc_bytes: usize,
    /// Multiplier applied to memory-operation cost when the active working
    /// set is far larger than the LLC (the penalty ramps linearly between
    /// `llc_bytes` and `2·llc_bytes`).
    pub llc_miss_penalty: f64,
    /// Memory-bandwidth contention between cores: once the working set
    /// spills the LLC, each *additional* active core makes memory
    /// operations this fraction dearer (they now compete for the shared
    /// bus). This is what makes multi-core speedups decay past the cache
    /// size while the 1-core baseline is unaffected — the effect the paper
    /// observes from `n = 2^20` on (§6.4).
    pub bw_contention: f64,
}

impl CpuConfig {
    /// A CPU with no cache effects (infinite LLC) — useful in unit tests.
    pub fn uniform(cores: usize) -> Self {
        CpuConfig {
            cores,
            llc_bytes: usize::MAX,
            llc_miss_penalty: 1.0,
            bw_contention: 0.0,
        }
    }
}

/// Configuration of the simulated GPU device.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of lanes (`g`): work-items executed truly in parallel. A
    /// launch of `N` items runs in `⌈N/g⌉` waves.
    pub lanes: usize,
    /// Slowdown of one lane relative to a CPU core (`γ⁻¹ > 1`): a lane
    /// needs `gamma_inv` time units per cost unit.
    pub gamma_inv: f64,
    /// Cost multiplier for *uncoalesced* memory streams (streams whose
    /// addresses are not consecutive across adjacent work-items of a wave).
    /// Coalesced streams and single-item waves cost 1 per access.
    pub uncoalesced_penalty: f64,
    /// Global memory size in bytes; allocations beyond this fail.
    pub global_mem_bytes: usize,
    /// Fixed virtual-time cost of every kernel launch (driver/queue
    /// overhead). Real devices pay microseconds per launch, which is what
    /// keeps fine-grained GPU execution unprofitable at small sizes.
    pub launch_overhead: f64,
    /// When true, work-items' declared write ranges are checked for
    /// overlap within each launch (racy kernels are rejected).
    pub strict: bool,
}

/// Configuration of the CPU↔GPU link: a transfer of `w` words costs
/// `λ + δ·w` time units on both timelines.
#[derive(Debug, Clone, PartialEq)]
pub struct BusConfig {
    /// Fixed latency per transfer (`λ`).
    pub lambda: f64,
    /// Cost per word (`δ`).
    pub delta: f64,
}

/// Full simulated-machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// CPU side.
    pub cpu: CpuConfig,
    /// GPU side.
    pub gpu: GpuConfig,
    /// Link.
    pub bus: BusConfig,
}

impl MachineConfig {
    /// Simulated analogue of the paper's HPU1 (Intel Q6850 + Radeon
    /// HD 5970): `p = 4`, 8 MB LLC, `g = 4096` lanes, `γ⁻¹ = 160`.
    pub fn hpu1_sim() -> Self {
        MachineConfig {
            cpu: CpuConfig {
                cores: 4,
                llc_bytes: 8 << 20,
                llc_miss_penalty: 1.8,
                bw_contention: 0.15,
            },
            gpu: GpuConfig {
                lanes: 4096,
                gamma_inv: 160.0,
                uncoalesced_penalty: 4.0,
                global_mem_bytes: 1 << 30,
                launch_overhead: 3_000.0,
                strict: false,
            },
            bus: BusConfig {
                lambda: 2_000.0,
                delta: 0.05,
            },
        }
    }

    /// Simulated analogue of the paper's HPU2 (AMD A6-3650 APU + integrated
    /// HD 6530D): `p = 4`, 4 MB LLC, `g = 1200` lanes, `γ⁻¹ = 65`. The
    /// integrated GPU shares the die, so the link is cheaper.
    pub fn hpu2_sim() -> Self {
        MachineConfig {
            cpu: CpuConfig {
                cores: 4,
                llc_bytes: 4 << 20,
                llc_miss_penalty: 1.8,
                bw_contention: 0.15,
            },
            gpu: GpuConfig {
                lanes: 1200,
                gamma_inv: 65.0,
                uncoalesced_penalty: 4.0,
                global_mem_bytes: 512 << 20,
                launch_overhead: 1_500.0,
                strict: false,
            },
            bus: BusConfig {
                lambda: 1_000.0,
                delta: 0.02,
            },
        }
    }

    /// A tiny machine for fast, exhaustive unit tests: 2 cores, 8 lanes,
    /// `γ⁻¹ = 4`, no cache effects, free transfers, strict mode on.
    pub fn tiny() -> Self {
        MachineConfig {
            cpu: CpuConfig::uniform(2),
            gpu: GpuConfig {
                lanes: 8,
                gamma_inv: 4.0,
                uncoalesced_penalty: 4.0,
                global_mem_bytes: 1 << 20,
                launch_overhead: 0.0,
                strict: true,
            },
            bus: BusConfig {
                lambda: 0.0,
                delta: 0.0,
            },
        }
    }

    /// Effective `γ` of this device (`1 / gamma_inv`).
    pub fn gamma(&self) -> f64 {
        1.0 / self.gpu.gamma_inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_table_2() {
        let h1 = MachineConfig::hpu1_sim();
        assert_eq!(h1.cpu.cores, 4);
        assert_eq!(h1.gpu.lanes, 4096);
        assert_eq!(h1.gpu.gamma_inv, 160.0);
        assert_eq!(h1.cpu.llc_bytes, 8 << 20);

        let h2 = MachineConfig::hpu2_sim();
        assert_eq!(h2.gpu.lanes, 1200);
        assert_eq!(h2.gpu.gamma_inv, 65.0);
        assert_eq!(h2.cpu.llc_bytes, 4 << 20);
    }

    #[test]
    fn gamma_inverse() {
        assert!((MachineConfig::hpu1_sim().gamma() - 1.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_cpu_has_no_cache_effect() {
        let c = CpuConfig::uniform(4);
        assert_eq!(c.llc_miss_penalty, 1.0);
    }
}
