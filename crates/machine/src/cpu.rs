//! The simulated multi-core CPU.
//!
//! A [`SimCpu`] executes *levels* of independent tasks: a level of `k` tasks
//! on `p` cores runs in `⌈k/p⌉` rounds, each round as long as its slowest
//! task. Tasks are ordinary Rust closures that perform real work and charge
//! their cost to a [`CpuCtx`].
//!
//! Memory-operation cost depends on the *active working set* (set by the
//! scheduler via [`SimCpu::set_footprint`]): once it outgrows the shared
//! last-level cache, each memory operation becomes up to
//! [`crate::CpuConfig::llc_miss_penalty`] times dearer, ramping linearly
//! between `llc` and `2·llc` bytes. This reproduces the cache-contention
//! slowdown the paper reports for inputs past `n = 2^20` (§6.4, Figure 8).

use std::sync::{Arc, Mutex};

use hpu_obs::{EventKind, LevelPhase};

use crate::config::CpuConfig;
use crate::timeline::{Timeline, Unit};

/// Cost-accounting context handed to every CPU task.
#[derive(Debug, Default)]
pub struct CpuCtx {
    ops: u64,
    mem: u64,
}

impl CpuCtx {
    /// Charges `n` scalar operations (comparisons, arithmetic, branches).
    #[inline]
    pub fn charge_ops(&mut self, n: u64) {
        self.ops += n;
    }

    /// Charges `n` memory operations (element reads or writes).
    #[inline]
    pub fn charge_mem(&mut self, n: u64) {
        self.mem += n;
    }

    /// Cost of this task in time units given the memory-cost factor.
    fn cost(&self, mem_factor: f64) -> f64 {
        self.ops as f64 + self.mem as f64 * mem_factor
    }
}

/// Execution statistics of a [`SimCpu`].
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct CpuStats {
    /// Number of tasks executed.
    pub tasks: u64,
    /// Number of rounds (waves of up to `p` tasks).
    pub rounds: u64,
    /// Total busy time summed over cores.
    pub busy_core_time: f64,
}

/// Summary of one executed level, returned by [`SimCpu::run_level_obs`] so
/// schedulers can feed per-level metrics without parsing the timeline.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct LevelRun {
    /// Virtual time at which the level started.
    pub start: f64,
    /// Virtual time at which the level ended.
    pub end: f64,
    /// Tasks executed.
    pub tasks: u64,
    /// Total operation charges across the tasks.
    pub ops: u64,
    /// Total memory charges across the tasks.
    pub mem: u64,
}

impl LevelRun {
    /// Duration of the level.
    pub fn time(&self) -> f64 {
        self.end - self.start
    }
}

/// The simulated `p`-core CPU with its own virtual clock.
#[derive(Debug)]
pub struct SimCpu {
    cfg: CpuConfig,
    clock: f64,
    footprint: usize,
    stats: CpuStats,
    timeline: Option<Arc<Mutex<Timeline>>>,
}

impl SimCpu {
    /// Creates a CPU from its configuration.
    pub fn new(cfg: CpuConfig) -> Self {
        SimCpu {
            cfg,
            clock: 0.0,
            footprint: 0,
            stats: CpuStats::default(),
            timeline: None,
        }
    }

    /// Attaches a shared timeline for event logging.
    pub fn with_timeline(mut self, t: Arc<Mutex<Timeline>>) -> Self {
        self.timeline = Some(t);
        self
    }

    /// Number of cores `p`.
    pub fn cores(&self) -> usize {
        self.cfg.cores
    }

    /// Current virtual time of this unit.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advances the clock to `t` if it is behind (used by the fork/join
    /// coordinator).
    pub fn advance_to(&mut self, t: f64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// Declares the active working set in bytes; affects the cost of every
    /// memory operation charged afterwards.
    pub fn set_footprint(&mut self, bytes: usize) {
        self.footprint = bytes;
    }

    /// Current memory-cost factor from the LLC model: 1 while the working
    /// set fits, ramping to `llc_miss_penalty` at twice the LLC size.
    pub fn mem_factor(&self) -> f64 {
        self.mem_factor_for(1)
    }

    /// Memory-cost factor when `active_cores` cores stream concurrently:
    /// the LLC ramp plus bandwidth contention between the extra cores once
    /// the working set spills the cache. A single core (the paper's
    /// sequential baseline) never pays contention.
    pub fn mem_factor_for(&self, active_cores: usize) -> f64 {
        let llc = self.cfg.llc_bytes as f64;
        if !llc.is_finite() || self.footprint as f64 <= llc {
            return 1.0;
        }
        let over = ((self.footprint as f64 - llc) / llc).clamp(0.0, 1.0);
        let miss = 1.0 + (self.cfg.llc_miss_penalty - 1.0) * over;
        let contention =
            1.0 + self.cfg.bw_contention * (active_cores.saturating_sub(1) as f64) * over;
        miss * contention
    }

    /// Runs a single task on one core, advancing the clock by its cost.
    pub fn run_serial<R>(&mut self, label: &str, f: impl FnOnce(&mut CpuCtx) -> R) -> R {
        let mut ctx = CpuCtx::default();
        let r = f(&mut ctx);
        let dt = ctx.cost(self.mem_factor());
        let start = self.clock;
        self.clock += dt;
        self.stats.tasks += 1;
        self.stats.rounds += 1;
        self.stats.busy_core_time += dt;
        self.record(start, self.clock, EventKind::Mark(label.to_string()));
        r
    }

    /// Runs a level of independent tasks on all `p` cores: tasks are taken
    /// in order in rounds of `p`; each round lasts as long as its slowest
    /// task. Returns the level's duration.
    ///
    /// Tasks execute sequentially on the host (the simulation is
    /// deterministic); parallelism exists only in the virtual clock.
    pub fn run_level<F>(&mut self, label: &str, tasks: impl IntoIterator<Item = F>) -> f64
    where
        F: FnOnce(&mut CpuCtx),
    {
        self.run_level_with(self.cfg.cores, label, tasks)
    }

    /// Like [`SimCpu::run_level`] but using only `cores` of the CPU — the
    /// 1-core variant is the paper's sequential baseline.
    pub fn run_level_with<F>(
        &mut self,
        cores: usize,
        label: &str,
        tasks: impl IntoIterator<Item = F>,
    ) -> f64
    where
        F: FnOnce(&mut CpuCtx),
    {
        let run = self.run_level_impl(cores, tasks);
        if run.tasks > 0 {
            let label = format!("{label} ({} tasks)", run.tasks);
            self.record(run.start, run.end, EventKind::Mark(label));
        }
        run.time()
    }

    /// Like [`SimCpu::run_level_with`] but recording a structured
    /// [`EventKind::Level`] span (phase, chunk size, charge totals) and
    /// returning the full [`LevelRun`] summary for metrics aggregation.
    pub fn run_level_obs<F>(
        &mut self,
        cores: usize,
        name: &str,
        phase: LevelPhase,
        chunk: u64,
        tasks: impl IntoIterator<Item = F>,
    ) -> LevelRun
    where
        F: FnOnce(&mut CpuCtx),
    {
        let run = self.run_level_impl(cores, tasks);
        if run.tasks > 0 {
            self.record(
                run.start,
                run.end,
                EventKind::Level {
                    name: name.to_string(),
                    phase,
                    chunk,
                    tasks: run.tasks,
                    ops: run.ops,
                    mem: run.mem,
                },
            );
        }
        run
    }

    fn run_level_impl<F>(&mut self, cores: usize, tasks: impl IntoIterator<Item = F>) -> LevelRun
    where
        F: FnOnce(&mut CpuCtx),
    {
        let cores = cores.clamp(1, self.cfg.cores);
        let factor = self.mem_factor_for(cores);
        let start = self.clock;
        let mut level_time = 0.0;
        let mut round_max = 0.0_f64;
        let mut in_round = 0usize;
        let mut run = LevelRun {
            start,
            ..LevelRun::default()
        };
        for task in tasks {
            let mut ctx = CpuCtx::default();
            task(&mut ctx);
            let cost = ctx.cost(factor);
            self.stats.busy_core_time += cost;
            run.ops += ctx.ops;
            run.mem += ctx.mem;
            round_max = round_max.max(cost);
            in_round += 1;
            run.tasks += 1;
            if in_round == cores {
                level_time += round_max;
                self.stats.rounds += 1;
                round_max = 0.0;
                in_round = 0;
            }
        }
        if in_round > 0 {
            level_time += round_max;
            self.stats.rounds += 1;
        }
        self.stats.tasks += run.tasks;
        self.clock += level_time;
        run.end = self.clock;
        run
    }

    fn record(&self, start: f64, end: f64, kind: EventKind) {
        if let Some(t) = &self.timeline {
            t.lock().unwrap().record_kind(Unit::Cpu, start, end, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu(cores: usize) -> SimCpu {
        SimCpu::new(CpuConfig::uniform(cores))
    }

    #[test]
    fn serial_task_advances_clock_by_cost() {
        let mut c = cpu(4);
        let out = c.run_serial("t", |ctx| {
            ctx.charge_ops(10);
            ctx.charge_mem(5);
            42
        });
        assert_eq!(out, 42);
        assert_eq!(c.clock(), 15.0);
    }

    #[test]
    fn level_rounds_of_p() {
        let mut c = cpu(2);
        // 5 equal tasks of cost 10 on 2 cores: ceil(5/2) = 3 rounds.
        let t = c.run_level("lvl", (0..5).map(|_| |ctx: &mut CpuCtx| ctx.charge_ops(10)));
        assert_eq!(t, 30.0);
        assert_eq!(c.clock(), 30.0);
        assert_eq!(c.stats().tasks, 5);
        assert_eq!(c.stats().rounds, 3);
    }

    #[test]
    fn round_lasts_as_long_as_slowest_task() {
        let mut c = cpu(2);
        let costs = [10u64, 50, 20, 20];
        let t = c.run_level(
            "lvl",
            costs
                .iter()
                .map(|&k| move |ctx: &mut CpuCtx| ctx.charge_ops(k)),
        );
        // Rounds: {10,50} -> 50, {20,20} -> 20.
        assert_eq!(t, 70.0);
    }

    #[test]
    fn empty_level_is_free() {
        let mut c = cpu(4);
        let t = c.run_level("lvl", std::iter::empty::<fn(&mut CpuCtx)>());
        assert_eq!(t, 0.0);
        assert_eq!(c.clock(), 0.0);
    }

    #[test]
    fn llc_ramp() {
        let mut c = SimCpu::new(CpuConfig {
            cores: 1,
            llc_bytes: 1000,
            llc_miss_penalty: 3.0,
            bw_contention: 0.0,
        });
        c.set_footprint(500);
        assert_eq!(c.mem_factor(), 1.0);
        c.set_footprint(1000);
        assert_eq!(c.mem_factor(), 1.0);
        c.set_footprint(1500);
        assert!((c.mem_factor() - 2.0).abs() < 1e-12);
        c.set_footprint(2000);
        assert!((c.mem_factor() - 3.0).abs() < 1e-12);
        c.set_footprint(10_000);
        assert!((c.mem_factor() - 3.0).abs() < 1e-12); // clamped
    }

    #[test]
    fn llc_affects_mem_but_not_ops() {
        let mut c = SimCpu::new(CpuConfig {
            cores: 1,
            llc_bytes: 100,
            llc_miss_penalty: 2.0,
            bw_contention: 0.0,
        });
        c.set_footprint(200);
        c.run_serial("t", |ctx| {
            ctx.charge_ops(10);
            ctx.charge_mem(10);
        });
        assert_eq!(c.clock(), 10.0 + 20.0);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut c = cpu(1);
        c.run_serial("t", |ctx| ctx.charge_ops(100));
        c.advance_to(50.0);
        assert_eq!(c.clock(), 100.0);
        c.advance_to(150.0);
        assert_eq!(c.clock(), 150.0);
    }

    #[test]
    fn timeline_records_levels() {
        let t = Arc::new(Mutex::new(Timeline::new()));
        let mut c = cpu(2).with_timeline(t.clone());
        c.run_level(
            "merge level 3",
            (0..4).map(|_| |ctx: &mut CpuCtx| ctx.charge_ops(1)),
        );
        let tl = t.lock().unwrap();
        assert_eq!(tl.events().len(), 1);
        assert!(tl.events()[0].label().contains("merge level 3"));
        assert!(tl.events()[0].label().contains("4 tasks"));
    }

    #[test]
    fn obs_level_returns_charge_totals() {
        let t = Arc::new(Mutex::new(Timeline::new()));
        let mut c = cpu(2).with_timeline(t.clone());
        let run = c.run_level_obs(
            2,
            "merge",
            LevelPhase::Combine,
            8,
            (0..4).map(|_| {
                |ctx: &mut CpuCtx| {
                    ctx.charge_ops(3);
                    ctx.charge_mem(2);
                }
            }),
        );
        assert_eq!(run.tasks, 4);
        assert_eq!(run.ops, 12);
        assert_eq!(run.mem, 8);
        assert_eq!(run.time(), 10.0, "2 rounds of cost 5");
        let tl = t.lock().unwrap();
        assert!(matches!(
            tl.events()[0].kind,
            EventKind::Level {
                chunk: 8,
                tasks: 4,
                ..
            }
        ));
        assert_eq!(tl.events()[0].label(), "merge combine chunk 8 (4 tasks)");
    }

    #[test]
    fn contention_charges_extra_cores_only_past_llc() {
        let mut c = SimCpu::new(CpuConfig {
            cores: 4,
            llc_bytes: 1000,
            llc_miss_penalty: 2.0,
            bw_contention: 0.25,
        });
        // Within the LLC: no contention whatever the core count.
        c.set_footprint(500);
        assert_eq!(c.mem_factor_for(4), 1.0);
        // Fully spilled (2x LLC): miss factor 2, contention 1 + 0.25·3.
        c.set_footprint(2000);
        assert_eq!(c.mem_factor_for(1), 2.0);
        assert!((c.mem_factor_for(4) - 2.0 * 1.75).abs() < 1e-12);
    }

    #[test]
    fn busy_core_time_counts_all_work() {
        let mut c = cpu(4);
        c.run_level("lvl", (0..8).map(|_| |ctx: &mut CpuCtx| ctx.charge_ops(5)));
        assert_eq!(c.stats().busy_core_time, 40.0);
        // 8 tasks / 4 cores = 2 rounds of 5.
        assert_eq!(c.clock(), 10.0);
    }
}
