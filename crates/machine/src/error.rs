//! Error type for simulated-machine misuse.

use std::fmt;

/// Errors raised by the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// A device allocation would exceed the configured global memory size.
    OutOfDeviceMemory {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes still available on the device.
        available: usize,
    },
    /// A kernel was launched with zero work-items.
    EmptyLaunch,
    /// A kernel work-item accessed an address outside its buffer.
    OutOfBounds {
        /// Global id of the offending work-item.
        item: usize,
        /// Offending address (element index).
        addr: usize,
        /// Length of the buffer that was accessed.
        len: usize,
    },
    /// Two work-items of the same launch declared overlapping writes
    /// (detected in strict mode; racy kernels are not SIMD-faithful).
    WriteOverlap {
        /// First work-item.
        a: usize,
        /// Second work-item.
        b: usize,
    },
    /// An injected transient kernel fault: the launch failed before doing
    /// any work and may be retried.
    DeviceFault {
        /// 0-based launch ordinal that faulted.
        launch: u64,
    },
    /// An injected transient bus fault: the transfer failed before moving
    /// any data and may be retried.
    TransferFault {
        /// 0-based transfer ordinal that faulted.
        transfer: u64,
    },
    /// The device is permanently lost: no launch or transfer will ever
    /// succeed again on this machine.
    DeviceLost,
}

impl MachineError {
    /// Whether retrying the failed operation can succeed: true for the
    /// injected transient faults, false for permanent loss and for every
    /// programming error (retrying a racy kernel stays racy).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MachineError::DeviceFault { .. } | MachineError::TransferFault { .. }
        )
    }
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::OutOfDeviceMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes, {available} available"
            ),
            MachineError::EmptyLaunch => write!(f, "kernel launched with zero work-items"),
            MachineError::OutOfBounds { item, addr, len } => write!(
                f,
                "work-item {item} accessed element {addr} of a buffer of length {len}"
            ),
            MachineError::WriteOverlap { a, b } => write!(
                f,
                "work-items {a} and {b} declared overlapping writes in one launch"
            ),
            MachineError::DeviceFault { launch } => {
                write!(f, "transient device fault on kernel launch {launch}")
            }
            MachineError::TransferFault { transfer } => {
                write!(f, "transient bus fault on transfer {transfer}")
            }
            MachineError::DeviceLost => write!(f, "device permanently lost"),
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = MachineError::OutOfDeviceMemory {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(MachineError::EmptyLaunch.to_string().contains("zero"));
        let e = MachineError::OutOfBounds {
            item: 1,
            addr: 9,
            len: 8,
        };
        assert!(e.to_string().contains('9'));
        let e = MachineError::WriteOverlap { a: 0, b: 1 };
        assert!(e.to_string().contains("overlap"));
    }
}
