//! Error type for simulated-machine misuse.

use std::fmt;

/// Errors raised by the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// A device allocation would exceed the configured global memory size.
    OutOfDeviceMemory {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes still available on the device.
        available: usize,
    },
    /// A kernel was launched with zero work-items.
    EmptyLaunch,
    /// A kernel work-item accessed an address outside its buffer.
    OutOfBounds {
        /// Global id of the offending work-item.
        item: usize,
        /// Offending address (element index).
        addr: usize,
        /// Length of the buffer that was accessed.
        len: usize,
    },
    /// Two work-items of the same launch declared overlapping writes
    /// (detected in strict mode; racy kernels are not SIMD-faithful).
    WriteOverlap {
        /// First work-item.
        a: usize,
        /// Second work-item.
        b: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::OutOfDeviceMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes, {available} available"
            ),
            MachineError::EmptyLaunch => write!(f, "kernel launched with zero work-items"),
            MachineError::OutOfBounds { item, addr, len } => write!(
                f,
                "work-item {item} accessed element {addr} of a buffer of length {len}"
            ),
            MachineError::WriteOverlap { a, b } => write!(
                f,
                "work-items {a} and {b} declared overlapping writes in one launch"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = MachineError::OutOfDeviceMemory {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(MachineError::EmptyLaunch.to_string().contains("zero"));
        let e = MachineError::OutOfBounds {
            item: 1,
            addr: 9,
            len: 8,
        };
        assert!(e.to_string().contains('9'));
        let e = MachineError::WriteOverlap { a: 0, b: 1 };
        assert!(e.to_string().contains("overlap"));
    }
}
