//! Deterministic device fault injection.
//!
//! A [`FaultPlan`] is a seeded, declarative description of which faults the
//! simulated device should suffer: transient kernel failures, transfer/bus
//! errors, permanent device loss, and slowdown (straggler) launches. A
//! [`FaultInjector`] interprets the plan statefully — it counts kernel
//! launches and bus transfers and decides, per ordinal, whether that
//! operation faults.
//!
//! ## Determinism and monotone coupling
//!
//! Decisions are pure functions of `(seed, stream, ordinal)`: a splitmix64
//! hash maps each operation to a point in `[0, 1)` and the operation faults
//! iff the point falls below the configured rate. Two consequences the
//! fault-tolerance tests rely on:
//!
//! * The same plan replays the identical fault pattern on every run.
//! * For a fixed seed, the fault set at rate `r₁` is a **subset** of the
//!   fault set at any rate `r₂ ≥ r₁` (the hash point does not move, only
//!   the threshold does), which is what makes goodput-vs-fault-rate curves
//!   monotone rather than merely correlated.
//!
//! The injector is shared as `Arc<Mutex<FaultInjector>>` so that permanent
//! state — a lost device, consecutive-fault counts — survives across the
//! many short-lived [`crate::SimHpu`] instances a serving scheduler spins up
//! (one per priced or executed job).

use std::sync::{Arc, Mutex};

/// A typed fault the injector can raise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A kernel launch fails before doing any work; retryable.
    TransientKernel,
    /// A bus transfer fails before moving any data; retryable.
    TransferError,
    /// The device is gone for good: every later launch or transfer fails.
    DeviceLost,
    /// The launch completes but runs `factor`× slower (a straggler).
    Slowdown {
        /// Multiplier applied to the launch's virtual duration (≥ 1).
        factor: f64,
    },
}

/// Seeded description of the faults to inject.
///
/// Rates are per-operation probabilities in `[0, 1]`. `scripted` entries
/// pin a specific fault to a specific launch ordinal (0-based), on top of
/// whatever the rates produce — the deterministic way to write "the third
/// kernel of this run fails".
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-operation hash draws.
    pub seed: u64,
    /// Probability that a kernel launch fails transiently.
    pub kernel_rate: f64,
    /// Probability that a bus transfer fails transiently.
    pub transfer_rate: f64,
    /// Probability that a (non-faulting) launch is a straggler.
    pub slowdown_rate: f64,
    /// Straggler duration multiplier (≥ 1).
    pub slowdown_factor: f64,
    /// Permanently lose the device at this launch ordinal (0-based):
    /// that launch and everything after it fails with device loss.
    pub lose_device_at: Option<u64>,
    /// Pinned faults: `(launch ordinal, fault)` pairs.
    pub scripted: Vec<(u64, FaultKind)>,
}

impl FaultPlan {
    /// A fault-free plan with the given seed: every rate zero, no loss.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            kernel_rate: 0.0,
            transfer_rate: 0.0,
            slowdown_rate: 0.0,
            slowdown_factor: 4.0,
            lose_device_at: None,
            scripted: Vec::new(),
        }
    }

    /// Sets the transient kernel-failure rate.
    pub fn with_kernel_rate(mut self, rate: f64) -> Self {
        self.kernel_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the transient transfer-failure rate.
    pub fn with_transfer_rate(mut self, rate: f64) -> Self {
        self.transfer_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the straggler rate and factor.
    pub fn with_slowdown(mut self, rate: f64, factor: f64) -> Self {
        self.slowdown_rate = rate.clamp(0.0, 1.0);
        self.slowdown_factor = factor.max(1.0);
        self
    }

    /// Permanently loses the device at launch ordinal `at`.
    pub fn with_device_loss_at(mut self, at: u64) -> Self {
        self.lose_device_at = Some(at);
        self
    }

    /// Pins `fault` to launch ordinal `at`.
    pub fn with_scripted(mut self, at: u64, fault: FaultKind) -> Self {
        self.scripted.push((at, fault));
        self
    }

    /// Whether the plan can never produce a fault.
    pub fn is_fault_free(&self) -> bool {
        self.kernel_rate == 0.0
            && self.transfer_rate == 0.0
            && self.slowdown_rate == 0.0
            && self.lose_device_at.is_none()
            && self.scripted.is_empty()
    }

    /// Whether the plan injects only transient (retryable) faults.
    pub fn is_transient_only(&self) -> bool {
        self.lose_device_at.is_none()
            && !self
                .scripted
                .iter()
                .any(|(_, f)| matches!(f, FaultKind::DeviceLost))
    }
}

/// splitmix64 finalizer: a well-mixed 64-bit hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `(seed, stream, ordinal)` to a uniform point in `[0, 1)`.
fn draw(seed: u64, stream: u64, ordinal: u64) -> f64 {
    let h = mix(seed ^ mix(stream) ^ mix(ordinal));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

const STREAM_KERNEL: u64 = 0x4B45_524E;
const STREAM_TRANSFER: u64 = 0x5452_414E;
const STREAM_SLOW: u64 = 0x534C_4F57;
const STREAM_CRASH: u64 = 0x4352_5348;
const STREAM_CRASH_AT: u64 = 0x4352_4154;
const STREAM_PARTITION: u64 = 0x5052_544E;

/// What a node-level fault does to the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// The node process dies: in-flight and queued work is lost, and a
    /// restart comes back with cold caches and re-earned residency.
    Crash,
    /// The node stays alive but the router cannot reach it: work already
    /// on the node keeps executing, nothing new arrives, and a heal
    /// restores it with its warm state intact.
    Partition,
}

/// One node's scheduled fault, fully resolved from a [`NodeFaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFault {
    /// Global fleet event ordinal (0-based) at which the fault strikes.
    pub at: u64,
    /// Crash or partition.
    pub kind: NodeFaultKind,
    /// Global event ordinal at which the node rejoins, when the plan
    /// allows restarts.
    pub restart_at: Option<u64>,
}

/// Seeded description of whole-node faults across a fleet.
///
/// Decisions are pure functions of `(seed, stream, node index)`, exactly
/// like [`FaultPlan`]'s per-operation draws: the same plan replays the
/// identical crash pattern on every run, and for a fixed seed the set of
/// crashing nodes at rate `r₁` is a **subset** of the set at any rate
/// `r₂ ≥ r₁` (the hash point per node does not move, only the threshold
/// does). Fault times are deterministic *event ordinals* of the fleet's
/// global event loop — no wall clock anywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFaultPlan {
    /// Seed for the per-node hash draws.
    pub seed: u64,
    /// Probability that a node suffers a fault at all.
    pub crash_rate: f64,
    /// Inclusive global-event-ordinal window faults land in; the exact
    /// ordinal per node is drawn deterministically inside it.
    pub crash_window: (u64, u64),
    /// Rejoin the faulted node this many global events after the fault
    /// (`None`: the node never comes back).
    pub restart_after: Option<u64>,
    /// Fraction of faults that are router partitions (node alive but
    /// unreachable) instead of crashes.
    pub partition_rate: f64,
}

impl NodeFaultPlan {
    /// A fault-free plan with the given seed.
    pub fn new(seed: u64) -> Self {
        NodeFaultPlan {
            seed,
            crash_rate: 0.0,
            crash_window: (4, 16),
            restart_after: None,
            partition_rate: 0.0,
        }
    }

    /// Sets the per-node fault probability.
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        self.crash_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the inclusive event-ordinal window faults are drawn in.
    pub fn with_crash_window(mut self, lo: u64, hi: u64) -> Self {
        self.crash_window = (lo.min(hi), lo.max(hi));
        self
    }

    /// Rejoins faulted nodes `events` global events after the fault.
    pub fn with_restart_after(mut self, events: u64) -> Self {
        self.restart_after = Some(events);
        self
    }

    /// Sets the fraction of faults that are partitions, not crashes.
    pub fn with_partition_rate(mut self, rate: f64) -> Self {
        self.partition_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Whether the plan can never fault a node.
    pub fn is_fault_free(&self) -> bool {
        self.crash_rate == 0.0
    }

    /// The fault scheduled for `node` (a stable per-fleet index), or
    /// `None` when that node survives this plan. Pure per `(plan, node)`.
    pub fn fault_for(&self, node: u64) -> Option<NodeFault> {
        if draw(self.seed, STREAM_CRASH, node) >= self.crash_rate {
            return None;
        }
        let (lo, hi) = self.crash_window;
        let span = hi - lo + 1;
        let at = lo + (draw(self.seed, STREAM_CRASH_AT, node) * span as f64) as u64;
        let kind = if draw(self.seed, STREAM_PARTITION, node) < self.partition_rate {
            NodeFaultKind::Partition
        } else {
            NodeFaultKind::Crash
        };
        NodeFault {
            at: at.min(hi),
            kind,
            restart_at: self.restart_after.map(|d| at.min(hi) + d),
        }
        .into()
    }
}

/// Stateful interpreter of a [`FaultPlan`].
///
/// Attach one (shared) injector to a machine via
/// [`crate::SimHpu::with_faults`]; the device and bus consult it on every
/// launch and (fallible) transfer.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    launches: u64,
    transfers: u64,
    kernel_faults: u64,
    transfer_faults: u64,
    slowdowns: u64,
    lost: bool,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            launches: 0,
            transfers: 0,
            kernel_faults: 0,
            transfer_faults: 0,
            slowdowns: 0,
            lost: false,
        }
    }

    /// Builds a shareable injector, ready for [`crate::SimHpu::with_faults`].
    pub fn shared(plan: FaultPlan) -> Arc<Mutex<FaultInjector>> {
        Arc::new(Mutex::new(FaultInjector::new(plan)))
    }

    /// The plan being interpreted.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of the next kernel launch. Returns the launch
    /// ordinal (0-based) and the fault, if any.
    pub fn on_launch(&mut self) -> (u64, Option<FaultKind>) {
        let ordinal = self.launches;
        self.launches += 1;
        if self.lost {
            return (ordinal, Some(FaultKind::DeviceLost));
        }
        if self.plan.lose_device_at.is_some_and(|at| ordinal >= at) {
            self.lost = true;
            return (ordinal, Some(FaultKind::DeviceLost));
        }
        if let Some(&(_, fault)) = self.plan.scripted.iter().find(|(at, _)| *at == ordinal) {
            if matches!(fault, FaultKind::DeviceLost) {
                self.lost = true;
            } else if matches!(fault, FaultKind::TransientKernel) {
                self.kernel_faults += 1;
            }
            return (ordinal, Some(fault));
        }
        if draw(self.plan.seed, STREAM_KERNEL, ordinal) < self.plan.kernel_rate {
            self.kernel_faults += 1;
            return (ordinal, Some(FaultKind::TransientKernel));
        }
        if draw(self.plan.seed, STREAM_SLOW, ordinal) < self.plan.slowdown_rate {
            self.slowdowns += 1;
            return (
                ordinal,
                Some(FaultKind::Slowdown {
                    factor: self.plan.slowdown_factor,
                }),
            );
        }
        (ordinal, None)
    }

    /// Decides the fate of the next bus transfer. Returns the transfer
    /// ordinal (0-based) and the fault, if any.
    pub fn on_transfer(&mut self) -> (u64, Option<FaultKind>) {
        let ordinal = self.transfers;
        self.transfers += 1;
        if self.lost {
            return (ordinal, Some(FaultKind::DeviceLost));
        }
        if draw(self.plan.seed, STREAM_TRANSFER, ordinal) < self.plan.transfer_rate {
            self.transfer_faults += 1;
            return (ordinal, Some(FaultKind::TransferError));
        }
        (ordinal, None)
    }

    /// Marks the device permanently lost (e.g. a breaker decision made
    /// above the machine layer).
    pub fn mark_lost(&mut self) {
        self.lost = true;
    }

    /// Whether the device is permanently lost.
    pub fn lost(&self) -> bool {
        self.lost
    }

    /// Kernel launches decided so far.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Bus transfers decided so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Transient kernel faults raised so far.
    pub fn kernel_faults(&self) -> u64 {
        self.kernel_faults
    }

    /// Transient transfer faults raised so far.
    pub fn transfer_faults(&self) -> u64 {
        self.transfer_faults
    }

    /// Straggler launches raised so far.
    pub fn slowdowns(&self) -> u64 {
        self.slowdowns
    }

    /// All faults raised so far (kernel + transfer; loss counts once via
    /// the `lost` flag, not per refused operation).
    pub fn fault_events(&self) -> u64 {
        self.kernel_faults + self.transfer_faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault_ordinals(plan: &FaultPlan, n: u64) -> Vec<u64> {
        let mut inj = FaultInjector::new(plan.clone());
        (0..n)
            .filter_map(|_| {
                let (ord, f) = inj.on_launch();
                matches!(f, Some(FaultKind::TransientKernel)).then_some(ord)
            })
            .collect()
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(42).with_kernel_rate(0.3);
        assert_eq!(fault_ordinals(&plan, 100), fault_ordinals(&plan, 100));
    }

    #[test]
    fn fault_sets_nest_as_rate_grows() {
        let lo = fault_ordinals(&FaultPlan::new(7).with_kernel_rate(0.1), 200);
        let hi = fault_ordinals(&FaultPlan::new(7).with_kernel_rate(0.4), 200);
        assert!(lo.iter().all(|o| hi.contains(o)), "lo ⊄ hi: {lo:?} {hi:?}");
        assert!(hi.len() > lo.len());
    }

    #[test]
    fn rate_roughly_matches_frequency() {
        let faults = fault_ordinals(&FaultPlan::new(1).with_kernel_rate(0.25), 1000);
        let freq = faults.len() as f64 / 1000.0;
        assert!((freq - 0.25).abs() < 0.05, "empirical rate {freq}");
    }

    #[test]
    fn device_loss_is_permanent() {
        let mut inj = FaultInjector::new(FaultPlan::new(3).with_device_loss_at(2));
        assert_eq!(inj.on_launch(), (0, None));
        assert_eq!(inj.on_launch(), (1, None));
        assert_eq!(inj.on_launch(), (2, Some(FaultKind::DeviceLost)));
        assert_eq!(inj.on_launch(), (3, Some(FaultKind::DeviceLost)));
        assert!(inj.lost());
        let (_, f) = inj.on_transfer();
        assert_eq!(f, Some(FaultKind::DeviceLost));
    }

    #[test]
    fn scripted_fault_fires_at_its_ordinal() {
        let plan = FaultPlan::new(0).with_scripted(1, FaultKind::TransientKernel);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.on_launch().1, None);
        assert_eq!(inj.on_launch().1, Some(FaultKind::TransientKernel));
        assert_eq!(inj.on_launch().1, None);
        assert_eq!(inj.kernel_faults(), 1);
    }

    #[test]
    fn transient_only_classification() {
        assert!(FaultPlan::new(0).with_kernel_rate(0.9).is_transient_only());
        assert!(!FaultPlan::new(0).with_device_loss_at(0).is_transient_only());
        assert!(!FaultPlan::new(0)
            .with_scripted(0, FaultKind::DeviceLost)
            .is_transient_only());
        assert!(FaultPlan::new(5).is_fault_free());
        assert!(!FaultPlan::new(5).with_transfer_rate(0.1).is_fault_free());
    }

    fn crashing_nodes(plan: &NodeFaultPlan, n: u64) -> Vec<u64> {
        (0..n).filter(|&i| plan.fault_for(i).is_some()).collect()
    }

    #[test]
    fn node_faults_are_deterministic_and_nest_as_rate_grows() {
        let lo = NodeFaultPlan::new(11).with_crash_rate(0.15);
        let hi = NodeFaultPlan::new(11).with_crash_rate(0.6);
        assert_eq!(crashing_nodes(&lo, 128), crashing_nodes(&lo, 128));
        let a = crashing_nodes(&lo, 128);
        let b = crashing_nodes(&hi, 128);
        assert!(a.iter().all(|o| b.contains(o)), "lo ⊄ hi: {a:?} {b:?}");
        assert!(b.len() > a.len());
        // Nesting keeps the *shared* nodes' fault details identical: the
        // ordinal and kind draws only depend on (seed, node).
        for node in &a {
            assert_eq!(lo.fault_for(*node), hi.fault_for(*node));
        }
    }

    #[test]
    fn node_fault_ordinals_stay_in_the_window() {
        let plan = NodeFaultPlan::new(5)
            .with_crash_rate(1.0)
            .with_crash_window(8, 24)
            .with_restart_after(10);
        for node in 0..64 {
            let f = plan.fault_for(node).expect("rate 1 faults every node");
            assert!((8..=24).contains(&f.at), "ordinal {} escaped", f.at);
            assert_eq!(f.restart_at, Some(f.at + 10));
        }
    }

    #[test]
    fn node_fault_free_plan_faults_nobody() {
        let plan = NodeFaultPlan::new(42);
        assert!(plan.is_fault_free());
        assert!(crashing_nodes(&plan, 64).is_empty());
    }

    #[test]
    fn partition_rate_splits_fault_kinds() {
        let all_crash = NodeFaultPlan::new(3).with_crash_rate(1.0);
        assert!((0..32).all(|n| all_crash.fault_for(n).unwrap().kind == NodeFaultKind::Crash));
        let all_part = NodeFaultPlan::new(3)
            .with_crash_rate(1.0)
            .with_partition_rate(1.0);
        assert!((0..32).all(|n| all_part.fault_for(n).unwrap().kind == NodeFaultKind::Partition));
    }

    #[test]
    fn slowdown_surfaces_factor() {
        let plan = FaultPlan::new(9).with_slowdown(1.0, 6.0);
        let mut inj = FaultInjector::new(plan);
        match inj.on_launch().1 {
            Some(FaultKind::Slowdown { factor }) => assert_eq!(factor, 6.0),
            other => panic!("expected slowdown, got {other:?}"),
        }
        assert_eq!(inj.slowdowns(), 1);
    }
}
