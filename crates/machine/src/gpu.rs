//! The simulated GPU device (OpenCL-style, paper §3.1).
//!
//! A [`SimGpu`] owns device-resident [`DeviceBuffer`]s and executes *kernel
//! launches*: `N` work-items, each receiving its global id, run in waves of
//! `g` lanes (`⌈N/g⌉` waves per launch), every lane `γ⁻¹` times slower than
//! a CPU core. Work-items perform real work on the buffer and declare their
//! cost to a [`GpuCtx`] as scalar operations plus *memory streams*.
//!
//! ## Coalescing model
//!
//! A memory stream is a strided sequence of element accesses
//! `base, base+step, base+2·step, …`. Within a wave, stream slot `s` is
//! **coalesced** when every adjacent pair of work-items declared bases that
//! differ by exactly 1 — the lanes then access consecutive words at each
//! step, which the hardware serves in one transaction. Coalesced accesses
//! cost 1 unit; uncoalesced ones cost
//! [`crate::GpuConfig::uncoalesced_penalty`]. A single-item wave has no
//! cross-lane conflicts and counts as coalesced. This makes the paper's
//! §6.3 permutation optimization directly measurable: the permuted layout
//! turns the merge's streams from stride-`2m` bases into consecutive bases.
//!
//! ## Fidelity caveat
//!
//! Work-items execute sequentially (in id order) on the host; a data race
//! between items would not behave as on real SIMD hardware. In
//! [`crate::GpuConfig::strict`] mode the device rejects launches whose
//! declared write ranges overlap across items.

use std::sync::{Arc, Mutex};

use hpu_obs::EventKind;

use crate::config::GpuConfig;
use crate::error::MachineError;
use crate::fault::{FaultInjector, FaultKind};
use crate::timeline::{Timeline, Unit};

/// A typed buffer resident in the device's global memory.
///
/// Created by [`SimGpu::alloc`]; filled via `SimHpu::upload` or by kernels.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    pub(crate) data: Vec<T>,
    id: u64,
}

impl<T> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Device-unique buffer id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Host-side debugging view of the device contents. Free of (virtual)
    /// charge — use [`crate::SimHpu::download`] for an accounted transfer.
    pub fn debug_view(&self) -> &[T] {
        &self.data
    }

    /// Host-side initialization of the device contents, free of (virtual)
    /// charge — for tests and probe setup where the transfer itself must
    /// not appear on any timeline. Use [`crate::SimHpu::upload_into`] for
    /// an accounted transfer.
    ///
    /// # Panics
    /// Panics if `data` is longer than the buffer.
    pub fn debug_fill(&mut self, data: &[T])
    where
        T: Clone,
    {
        self.data[..data.len()].clone_from_slice(data);
    }
}

/// One declared memory stream of a work-item.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stream {
    buf: u8,
    base: usize,
    count: usize,
    step: usize,
    write: bool,
    scatter: bool,
}

/// Cost-accounting context handed to every GPU work-item.
#[derive(Debug)]
pub struct GpuCtx {
    ops: u64,
    streams: Vec<Stream>,
    lens: [usize; 2],
    item: usize,
    error: Option<MachineError>,
}

impl GpuCtx {
    fn new(lens: [usize; 2]) -> Self {
        GpuCtx {
            ops: 0,
            streams: Vec::new(),
            lens,
            item: 0,
            error: None,
        }
    }

    fn reset(&mut self, item: usize) {
        self.ops = 0;
        self.streams.clear();
        self.item = item;
    }

    /// Charges `n` scalar operations.
    #[inline]
    pub fn charge_ops(&mut self, n: u64) {
        self.ops += n;
    }

    fn record(&mut self, buf: u8, base: usize, count: usize, step: usize, write: bool) {
        if count == 0 {
            return;
        }
        let len = self.lens[buf as usize];
        let last = base + (count - 1) * step;
        if base >= len || last >= len {
            self.error.get_or_insert(MachineError::OutOfBounds {
                item: self.item,
                addr: last.max(base),
                len,
            });
            return;
        }
        self.streams.push(Stream {
            buf,
            base,
            count,
            step,
            write,
            scatter: false,
        });
    }

    /// Declares a strided read stream on buffer `buf` (0 or 1):
    /// `count` elements at `base, base+step, …`.
    #[inline]
    pub fn read(&mut self, buf: u8, base: usize, count: usize, step: usize) {
        self.record(buf, base, count, step, false);
    }

    /// Declares a strided write stream on buffer `buf`.
    #[inline]
    pub fn write(&mut self, buf: u8, base: usize, count: usize, step: usize) {
        self.record(buf, base, count, step, true);
    }

    /// Declares `count` reads at data-dependent addresses (never coalesced).
    #[inline]
    pub fn scatter_read(&mut self, buf: u8, count: usize) {
        self.streams.push(Stream {
            buf,
            base: 0,
            count,
            step: 0,
            write: false,
            scatter: true,
        });
    }

    /// Declares `count` writes at data-dependent addresses (never
    /// coalesced; exempt from the strict overlap check).
    #[inline]
    pub fn scatter_write(&mut self, buf: u8, count: usize) {
        self.streams.push(Stream {
            buf,
            base: 0,
            count,
            step: 0,
            write: true,
            scatter: true,
        });
    }
}

/// Statistics of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchStats {
    /// Number of work-items.
    pub items: usize,
    /// Number of waves (`⌈items/g⌉`).
    pub waves: usize,
    /// Virtual duration of the launch.
    pub time: f64,
    /// Memory accesses served coalesced.
    pub coalesced: u64,
    /// Memory accesses served uncoalesced.
    pub uncoalesced: u64,
}

/// Cumulative device statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct GpuStats {
    /// Kernel launches executed.
    pub launches: u64,
    /// Total waves executed.
    pub waves: u64,
    /// Total work-items executed.
    pub items: u64,
    /// Total busy time of the device.
    pub busy: f64,
}

/// The simulated GPU device with its own virtual clock.
#[derive(Debug)]
pub struct SimGpu {
    cfg: GpuConfig,
    clock: f64,
    allocated: usize,
    next_id: u64,
    stats: GpuStats,
    timeline: Option<Arc<Mutex<Timeline>>>,
    faults: Option<Arc<Mutex<FaultInjector>>>,
}

impl SimGpu {
    /// Creates a device from its configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        SimGpu {
            cfg,
            clock: 0.0,
            allocated: 0,
            next_id: 0,
            stats: GpuStats::default(),
            timeline: None,
            faults: None,
        }
    }

    /// Attaches a shared timeline for event logging.
    pub fn with_timeline(mut self, t: Arc<Mutex<Timeline>>) -> Self {
        self.timeline = Some(t);
        self
    }

    /// Attaches a shared fault injector: every launch consults it.
    pub fn attach_faults(&mut self, inj: Arc<Mutex<FaultInjector>>) {
        self.faults = Some(inj);
    }

    /// Device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current virtual time of this unit.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advances the clock to `t` if it is behind.
    pub fn advance_to(&mut self, t: f64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> GpuStats {
        self.stats
    }

    /// Bytes currently allocated in global memory.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated
    }

    /// Allocates a zero-initialized buffer of `len` elements.
    pub fn alloc<T: Default + Clone>(
        &mut self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, MachineError> {
        let bytes = len * std::mem::size_of::<T>();
        let available = self.cfg.global_mem_bytes.saturating_sub(self.allocated);
        if bytes > available {
            return Err(MachineError::OutOfDeviceMemory {
                requested: bytes,
                available,
            });
        }
        self.allocated += bytes;
        self.next_id += 1;
        Ok(DeviceBuffer {
            data: vec![T::default(); len],
            id: self.next_id,
        })
    }

    /// Frees a buffer, returning its memory to the device.
    pub fn free<T>(&mut self, buf: DeviceBuffer<T>) {
        self.allocated = self
            .allocated
            .saturating_sub(buf.data.len() * std::mem::size_of::<T>());
    }

    /// Launches a kernel over one buffer: `n_items` work-items execute
    /// `kernel(global_id, ctx, data)` in waves of `g` lanes.
    pub fn launch<T>(
        &mut self,
        label: &str,
        n_items: usize,
        buf: &mut DeviceBuffer<T>,
        mut kernel: impl FnMut(usize, &mut GpuCtx, &mut [T]),
    ) -> Result<LaunchStats, MachineError> {
        let lens = [buf.data.len(), 0];
        let data = &mut buf.data;
        self.launch_impl(label, n_items, lens, |id, ctx| kernel(id, ctx, data))
    }

    /// Launches a kernel over two buffers (e.g. a permutation with distinct
    /// source and destination). Buffer tags in [`GpuCtx`] calls: `0` for
    /// `a`, `1` for `b`.
    pub fn launch2<T, U>(
        &mut self,
        label: &str,
        n_items: usize,
        a: &mut DeviceBuffer<T>,
        b: &mut DeviceBuffer<U>,
        mut kernel: impl FnMut(usize, &mut GpuCtx, &mut [T], &mut [U]),
    ) -> Result<LaunchStats, MachineError> {
        let lens = [a.data.len(), b.data.len()];
        let da = &mut a.data;
        let db = &mut b.data;
        self.launch_impl(label, n_items, lens, |id, ctx| kernel(id, ctx, da, db))
    }

    fn launch_impl(
        &mut self,
        label: &str,
        n_items: usize,
        lens: [usize; 2],
        mut run: impl FnMut(usize, &mut GpuCtx),
    ) -> Result<LaunchStats, MachineError> {
        if n_items == 0 {
            return Err(MachineError::EmptyLaunch);
        }
        // Fault injection decides before any work-item runs, so a faulted
        // launch never mutates device data and a whole-segment retry is
        // safe. A transient fault still burns the launch overhead; device
        // loss fails instantly.
        let mut slowdown = 1.0;
        if let Some(inj) = &self.faults {
            let (ordinal, fault) = inj.lock().unwrap().on_launch();
            match fault {
                Some(FaultKind::DeviceLost) => {
                    self.record_fault(label, self.clock, self.clock, false);
                    return Err(MachineError::DeviceLost);
                }
                Some(FaultKind::TransientKernel) => {
                    let t0 = self.clock;
                    self.clock += self.cfg.launch_overhead;
                    self.record_fault(label, t0, self.clock, true);
                    return Err(MachineError::DeviceFault { launch: ordinal });
                }
                Some(FaultKind::Slowdown { factor }) => slowdown = factor.max(1.0),
                Some(FaultKind::TransferError) | None => {}
            }
        }
        let lanes = self.cfg.lanes.max(1);
        let penalty = self.cfg.uncoalesced_penalty;
        let mut ctx = GpuCtx::new(lens);

        let mut time = self.cfg.launch_overhead;
        let mut waves = 0usize;
        let mut coalesced = 0u64;
        let mut uncoalesced = 0u64;
        // Per-wave scratch: flattened streams plus per-item (ops, range).
        let mut wave_streams: Vec<Stream> = Vec::new();
        let mut wave_items: Vec<(u64, usize, usize)> = Vec::new();
        // Strict mode: declared write progressions over the whole launch,
        // as (step, residue, base, last, item).
        let mut write_ranges: Vec<(usize, usize, usize, usize, usize)> = Vec::new();

        let mut start = 0usize;
        while start < n_items {
            let end = (start + lanes).min(n_items);
            wave_streams.clear();
            wave_items.clear();
            for id in start..end {
                ctx.reset(id);
                run(id, &mut ctx);
                if let Some(e) = ctx.error.take() {
                    return Err(e);
                }
                let s0 = wave_streams.len();
                wave_streams.extend_from_slice(&ctx.streams);
                wave_items.push((ctx.ops, s0, wave_streams.len()));
                if self.cfg.strict {
                    for s in &ctx.streams {
                        if s.write && !s.scatter {
                            let step = s.step.max(1);
                            // Key by (step, residue class): two arithmetic
                            // progressions with the same step intersect iff
                            // they share a residue and their spans overlap.
                            // Progressions of different shapes are skipped
                            // (best-effort detection, no false positives on
                            // interleaved column writes).
                            let hi = s.base + (s.count - 1) * step;
                            write_ranges.push((step, s.base % step, s.base, hi, id));
                        }
                    }
                }
            }

            // Resolve coalescing per stream slot across the wave.
            let wave_len = wave_items.len();
            let slots = wave_items[0].2 - wave_items[0].1;
            let uniform = wave_items.iter().all(|&(_, s, e)| e - s == slots);
            let mut slot_coalesced = vec![true; slots];
            if uniform && wave_len > 1 {
                for s in 0..slots {
                    let mut ok = true;
                    for w in 1..wave_len {
                        let prev = &wave_streams[wave_items[w - 1].1 + s];
                        let cur = &wave_streams[wave_items[w].1 + s];
                        if prev.scatter
                            || cur.scatter
                            || cur.buf != prev.buf
                            || cur.base != prev.base + 1
                        {
                            ok = false;
                            break;
                        }
                    }
                    slot_coalesced[s] = ok;
                }
            } else if !uniform {
                // Divergent stream shapes: conservatively uncoalesced.
                slot_coalesced.clear();
            }

            // Per-item cost and wave duration.
            let mut wave_max = 0.0_f64;
            for &(ops, s0, s1) in &wave_items {
                let mut mem_cost = 0.0;
                for (k, s) in wave_streams[s0..s1].iter().enumerate() {
                    let co = !s.scatter
                        && (wave_len == 1
                            || (uniform && slot_coalesced.get(k).copied().unwrap_or(false)));
                    let unit = if co { 1.0 } else { penalty };
                    mem_cost += s.count as f64 * unit;
                    if co {
                        coalesced += s.count as u64;
                    } else {
                        uncoalesced += s.count as u64;
                    }
                }
                wave_max = wave_max.max(ops as f64 + mem_cost);
            }
            time += wave_max * self.cfg.gamma_inv;
            waves += 1;
            start = end;
        }

        if self.cfg.strict && write_ranges.len() > 1 {
            write_ranges.sort_unstable();
            for w in write_ranges.windows(2) {
                let (step_a, res_a, _lo_a, hi_a, ia) = w[0];
                let (step_b, res_b, lo_b, _hi_b, ib) = w[1];
                if step_a == step_b && res_a == res_b && ia != ib && lo_b <= hi_a {
                    return Err(MachineError::WriteOverlap { a: ia, b: ib });
                }
            }
        }

        time *= slowdown;
        let t0 = self.clock;
        self.clock += time;
        self.stats.launches += 1;
        self.stats.waves += waves as u64;
        self.stats.items += n_items as u64;
        self.stats.busy += time;
        if let Some(t) = &self.timeline {
            t.lock().unwrap().record_kind(
                Unit::Gpu,
                t0,
                self.clock,
                EventKind::Kernel {
                    name: label.to_string(),
                    items: n_items as u64,
                    waves: waves as u64,
                    coalesced,
                    uncoalesced,
                },
            );
        }
        Ok(LaunchStats {
            items: n_items,
            waves,
            time,
            coalesced,
            uncoalesced,
        })
    }

    fn record_fault(&self, label: &str, t0: f64, t1: f64, transient: bool) {
        if let Some(t) = &self.timeline {
            t.lock().unwrap().record_kind(
                Unit::Gpu,
                t0,
                t1,
                EventKind::Fault {
                    label: label.to_string(),
                    transient,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn gpu() -> SimGpu {
        SimGpu::new(MachineConfig::tiny().gpu) // 8 lanes, γ⁻¹=4, U=4, strict
    }

    #[test]
    fn alloc_and_free_track_memory() {
        let mut g = gpu();
        let buf = g.alloc::<u32>(100).unwrap();
        assert_eq!(g.allocated_bytes(), 400);
        assert_eq!(buf.len(), 100);
        g.free(buf);
        assert_eq!(g.allocated_bytes(), 0);
    }

    #[test]
    fn alloc_beyond_capacity_fails() {
        let mut g = gpu(); // 1 MiB
        let err = g.alloc::<u64>(1 << 20).unwrap_err();
        assert!(matches!(err, MachineError::OutOfDeviceMemory { .. }));
    }

    #[test]
    fn empty_launch_rejected() {
        let mut g = gpu();
        let mut buf = g.alloc::<u32>(8).unwrap();
        let err = g.launch("k", 0, &mut buf, |_, _, _| {}).unwrap_err();
        assert_eq!(err, MachineError::EmptyLaunch);
    }

    #[test]
    fn wave_count_is_ceiling() {
        let mut g = gpu(); // 8 lanes
        let mut buf = g.alloc::<u32>(64).unwrap();
        let st = g
            .launch("k", 20, &mut buf, |id, ctx, data| {
                data[id] = id as u32;
                ctx.charge_ops(1);
                ctx.write(0, id, 1, 1);
            })
            .unwrap();
        assert_eq!(st.waves, 3); // ceil(20/8)
        assert_eq!(st.items, 20);
    }

    #[test]
    fn kernel_actually_computes() {
        let mut g = gpu();
        let mut buf = g.alloc::<u32>(16).unwrap();
        g.launch("fill", 16, &mut buf, |id, ctx, data| {
            data[id] = (id * id) as u32;
            ctx.charge_ops(1);
            ctx.write(0, id, 1, 1);
        })
        .unwrap();
        assert_eq!(buf.debug_view()[5], 25);
    }

    #[test]
    fn coalesced_bases_cost_less() {
        let mut g = gpu();
        let mut buf = g.alloc::<u32>(64).unwrap();
        // Consecutive bases across the 8 lanes: coalesced.
        let st_co = g
            .launch("co", 8, &mut buf, |id, ctx, _| {
                ctx.read(0, id, 4, 8);
            })
            .unwrap();
        // Bases 8 apart: uncoalesced.
        let st_un = g
            .launch("un", 8, &mut buf, |id, ctx, _| {
                ctx.read(0, id * 8, 4, 1);
            })
            .unwrap();
        assert_eq!(st_co.coalesced, 32);
        assert_eq!(st_co.uncoalesced, 0);
        assert_eq!(st_un.coalesced, 0);
        assert_eq!(st_un.uncoalesced, 32);
        // 4 accesses * U=4 vs 4 accesses * 1, γ⁻¹ = 4.
        assert_eq!(st_co.time, 4.0 * 4.0);
        assert_eq!(st_un.time, 16.0 * 4.0);
    }

    #[test]
    fn single_item_wave_counts_as_coalesced() {
        let mut g = gpu();
        let mut buf = g.alloc::<u32>(64).unwrap();
        let st = g
            .launch("solo", 1, &mut buf, |_, ctx, _| {
                ctx.read(0, 17, 4, 3);
                ctx.charge_ops(2);
            })
            .unwrap();
        assert_eq!(st.coalesced, 4);
        assert_eq!(st.time, (2.0 + 4.0) * 4.0);
    }

    #[test]
    fn scatter_never_coalesces() {
        let mut g = gpu();
        let mut buf = g.alloc::<u32>(64).unwrap();
        let st = g
            .launch("sc", 1, &mut buf, |_, ctx, _| ctx.scatter_read(0, 10))
            .unwrap();
        assert_eq!(st.uncoalesced, 10);
    }

    #[test]
    fn wave_time_is_max_item_cost() {
        let mut g = gpu();
        let mut buf = g.alloc::<u32>(64).unwrap();
        let st = g
            .launch("k", 8, &mut buf, |id, ctx, _| {
                ctx.charge_ops(if id == 3 { 100 } else { 1 });
            })
            .unwrap();
        assert_eq!(st.time, 100.0 * 4.0);
    }

    #[test]
    fn out_of_bounds_stream_detected() {
        let mut g = gpu();
        let mut buf = g.alloc::<u32>(8).unwrap();
        let err = g
            .launch("oob", 1, &mut buf, |_, ctx, _| ctx.read(0, 4, 8, 1))
            .unwrap_err();
        assert!(matches!(err, MachineError::OutOfBounds { len: 8, .. }));
    }

    #[test]
    fn strict_mode_rejects_overlapping_writes() {
        let mut g = gpu();
        let mut buf = g.alloc::<u32>(64).unwrap();
        let err = g
            .launch("racy", 4, &mut buf, |id, ctx, _| {
                // Every item writes [0..4): a race.
                ctx.write(0, 0, 4, 1);
                let _ = id;
            })
            .unwrap_err();
        assert!(matches!(err, MachineError::WriteOverlap { .. }));
    }

    #[test]
    fn disjoint_writes_pass_strict_mode() {
        let mut g = gpu();
        let mut buf = g.alloc::<u32>(64).unwrap();
        assert!(g
            .launch("ok", 4, &mut buf, |id, ctx, data| {
                for k in 0..4 {
                    data[id * 4 + k] = 1;
                }
                ctx.write(0, id * 4, 4, 1);
            })
            .is_ok());
    }

    #[test]
    fn launch2_addresses_both_buffers() {
        let mut g = gpu();
        let mut a = g.alloc::<u32>(16).unwrap();
        let mut b = g.alloc::<u32>(16).unwrap();
        // Copy a -> b reversed.
        g.launch("init", 16, &mut a, |id, ctx, d| {
            d[id] = id as u32;
            ctx.write(0, id, 1, 1);
        })
        .unwrap();
        g.launch2("rev", 16, &mut a, &mut b, |id, ctx, a, b| {
            b[15 - id] = a[id];
            ctx.read(0, id, 1, 1);
            ctx.scatter_write(1, 1);
        })
        .unwrap();
        assert_eq!(b.debug_view()[0], 15);
        assert_eq!(b.debug_view()[15], 0);
    }

    #[test]
    fn launch2_validates_second_buffer_bounds() {
        let mut g = gpu();
        let mut a = g.alloc::<u32>(16).unwrap();
        let mut b = g.alloc::<u32>(4).unwrap();
        let err = g
            .launch2("oob", 1, &mut a, &mut b, |_, ctx, _, _| {
                ctx.write(1, 0, 8, 1);
            })
            .unwrap_err();
        assert!(matches!(err, MachineError::OutOfBounds { len: 4, .. }));
    }

    #[test]
    fn saturation_knee_at_lane_count() {
        // Fixed total work split across N items: time falls as 1/N until
        // N = lanes, then flattens — the Figure 5 shape.
        let mut g = SimGpu::new(GpuConfig {
            lanes: 8,
            gamma_inv: 2.0,
            uncoalesced_penalty: 1.0,
            global_mem_bytes: 1 << 20,
            launch_overhead: 0.0,
            strict: false,
        });
        let mut buf = g.alloc::<u32>(1024).unwrap();
        let total = 1024u64;
        let t = |g: &mut SimGpu, buf: &mut DeviceBuffer<u32>, n: usize| {
            g.launch("sum", n, buf, |_, ctx, _| {
                ctx.charge_ops(total / n as u64);
            })
            .unwrap()
            .time
        };
        let t4 = t(&mut g, &mut buf, 4);
        let t8 = t(&mut g, &mut buf, 8);
        let t16 = t(&mut g, &mut buf, 16);
        let t32 = t(&mut g, &mut buf, 32);
        assert!(t4 > t8, "time should fall until saturation");
        // Past the knee the time stays flat.
        assert!((t16 - t8).abs() < 1e-9);
        assert!((t32 - t8).abs() < 1e-9);
    }

    #[test]
    fn clock_and_stats_accumulate() {
        let mut g = gpu();
        let mut buf = g.alloc::<u32>(64).unwrap();
        g.launch("a", 8, &mut buf, |_, ctx, _| ctx.charge_ops(10))
            .unwrap();
        g.launch("b", 16, &mut buf, |_, ctx, _| ctx.charge_ops(10))
            .unwrap();
        assert_eq!(g.stats().launches, 2);
        assert_eq!(g.stats().items, 24);
        assert_eq!(g.stats().waves, 3);
        assert_eq!(g.clock(), 40.0 + 80.0);
    }
}
