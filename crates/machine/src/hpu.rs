//! The assembled Hybrid Processing Unit: CPU + GPU + bus on one set of
//! virtual timelines.
//!
//! Concurrency model: [`crate::SimCpu`] and [`crate::SimGpu`] each own a
//! virtual clock. Work advances only the clock of the unit it ran on, so a
//! *concurrent phase* is expressed by running both units' work from a common
//! start time (call [`SimHpu::sync`] first) and joining with another
//! [`SimHpu::sync`] — the joint clock becomes the `max` of the two
//! timelines, exactly the fork/join semantics of the paper's advanced
//! schedule.
//!
//! Transfers: [`SimHpu::upload`] blocks the host (both clocks advance past
//! the transfer); [`SimHpu::download`] completes on the device timeline
//! only — a CPU task that *depends* on the downloaded data must be ordered
//! after it via [`SimHpu::sync`] (or `cpu.advance_to(gpu.clock())`), while
//! independent CPU work may keep running, which is what lets the advanced
//! schedule overlap the GPU's transfer with CPU work.

use std::sync::{Arc, Mutex};

use hpu_obs::EventKind;

use crate::bus::{Bus, Direction};
use crate::config::MachineConfig;
use crate::cpu::SimCpu;
use crate::error::MachineError;
use crate::fault::FaultInjector;
use crate::gpu::{DeviceBuffer, SimGpu};
use crate::timeline::Timeline;

/// A simulated hybrid CPU-GPU machine.
#[derive(Debug)]
pub struct SimHpu {
    /// The multi-core CPU.
    pub cpu: SimCpu,
    /// The GPU device.
    pub gpu: SimGpu,
    /// The CPU↔GPU link.
    pub bus: Bus,
    cfg: MachineConfig,
    timeline: Arc<Mutex<Timeline>>,
}

impl SimHpu {
    /// Assembles a machine from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let timeline = Arc::new(Mutex::new(Timeline::new()));
        SimHpu {
            cpu: SimCpu::new(cfg.cpu.clone()).with_timeline(timeline.clone()),
            gpu: SimGpu::new(cfg.gpu.clone()).with_timeline(timeline.clone()),
            bus: Bus::new(cfg.bus.clone()).with_timeline(timeline.clone()),
            cfg,
            timeline,
        }
    }

    /// Attaches a shared fault injector to the GPU and bus. Shared so that
    /// permanent injector state (a lost device) survives across the many
    /// short-lived machines a serving scheduler builds.
    pub fn with_faults(mut self, inj: Arc<Mutex<FaultInjector>>) -> Self {
        self.gpu.attach_faults(inj.clone());
        self.bus.attach_faults(inj);
        self
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// A snapshot of the event log.
    pub fn timeline(&self) -> Timeline {
        self.timeline.lock().unwrap().clone()
    }

    /// Records an annotation span on a unit's timeline — used by recovery
    /// layers to mark retries and degradations the units themselves don't
    /// know about.
    pub fn annotate(&self, unit: crate::timeline::Unit, start: f64, end: f64, kind: EventKind) {
        self.timeline
            .lock()
            .unwrap()
            .record_kind(unit, start, end, kind);
    }

    /// Charges `dur` idle time on both unit clocks starting from the joint
    /// clock (recovery backoff between retries of a faulted segment).
    pub fn wait(&mut self, dur: f64) {
        let t = self.elapsed() + dur.max(0.0);
        self.cpu.advance_to(t);
        self.gpu.advance_to(t);
    }

    /// Overall virtual time: the later of the two unit clocks.
    pub fn elapsed(&self) -> f64 {
        self.cpu.clock().max(self.gpu.clock())
    }

    /// Joins the two timelines: both clocks advance to the maximum. Call
    /// before forking concurrent CPU/GPU phases and after joining them.
    ///
    /// The unit that actually waited gets a [`EventKind::Sync`] barrier span
    /// on the timeline covering its idle interval.
    pub fn sync(&mut self) {
        let t = self.elapsed();
        let (cpu0, gpu0) = (self.cpu.clock(), self.gpu.clock());
        self.cpu.advance_to(t);
        self.gpu.advance_to(t);
        let mut tl = self.timeline.lock().unwrap();
        if cpu0 < t {
            tl.record_kind(crate::timeline::Unit::Cpu, cpu0, t, EventKind::Sync);
        }
        if gpu0 < t {
            tl.record_kind(crate::timeline::Unit::Gpu, gpu0, t, EventKind::Sync);
        }
    }

    /// Allocates a device buffer and uploads `data` into it, blocking the
    /// host: both clocks advance past the transfer.
    pub fn upload<T: Clone + Default>(
        &mut self,
        data: &[T],
    ) -> Result<DeviceBuffer<T>, MachineError> {
        let mut buf = self.gpu.alloc::<T>(data.len())?;
        self.upload_into(&mut buf, data);
        Ok(buf)
    }

    /// Uploads `data` into an existing buffer (prefix of the buffer if
    /// shorter), blocking the host.
    ///
    /// # Panics
    /// Panics if `data` is longer than the buffer.
    pub fn upload_into<T: Clone>(&mut self, buf: &mut DeviceBuffer<T>, data: &[T]) {
        buf.data[..data.len()].clone_from_slice(data);
        let start = self.elapsed();
        let end = self
            .bus
            .transfer(Direction::ToGpu, data.len() as u64, start);
        self.cpu.advance_to(end);
        self.gpu.advance_to(end);
    }

    /// Fallible upload into an existing buffer: like
    /// [`SimHpu::upload_into`], but consults the fault injector. On a
    /// fault the device buffer is untouched (the data never left the
    /// host) and, for a transient fault, both clocks still advance past
    /// the failed handshake.
    ///
    /// # Panics
    /// Panics if `data` is longer than the buffer.
    pub fn try_upload_into<T: Clone>(
        &mut self,
        buf: &mut DeviceBuffer<T>,
        data: &[T],
    ) -> Result<(), MachineError> {
        let start = self.elapsed();
        match self
            .bus
            .try_transfer(Direction::ToGpu, data.len() as u64, start)
        {
            Ok(end) => {
                buf.data[..data.len()].clone_from_slice(data);
                self.cpu.advance_to(end);
                self.gpu.advance_to(end);
                Ok(())
            }
            Err(e) => {
                if e.is_transient() {
                    let end = start + self.bus.cost(0);
                    self.cpu.advance_to(end);
                    self.gpu.advance_to(end);
                }
                Err(e)
            }
        }
    }

    /// Fallible ranged download: like [`SimHpu::download_range`], but
    /// consults the fault injector. On a fault `out` is untouched (the
    /// data never reached the host) and, for a transient fault, the
    /// device clock still advances past the failed handshake.
    ///
    /// # Panics
    /// Panics if `offset + out.len()` exceeds the buffer length.
    pub fn try_download_range<T: Clone>(
        &mut self,
        buf: &DeviceBuffer<T>,
        offset: usize,
        out: &mut [T],
    ) -> Result<(), MachineError> {
        let start = self.gpu.clock();
        match self
            .bus
            .try_transfer(Direction::ToCpu, out.len() as u64, start)
        {
            Ok(end) => {
                out.clone_from_slice(&buf.data[offset..offset + out.len()]);
                self.gpu.advance_to(end);
                Ok(())
            }
            Err(e) => {
                if e.is_transient() {
                    self.gpu.advance_to(start + self.bus.cost(0));
                }
                Err(e)
            }
        }
    }

    /// Downloads the buffer contents. The transfer runs on the *device*
    /// timeline (starting at the GPU clock); the CPU clock is untouched so
    /// independent CPU work can overlap. Order dependent CPU work after it
    /// with [`SimHpu::sync`].
    pub fn download<T: Clone>(&mut self, buf: &DeviceBuffer<T>) -> Vec<T> {
        let start = self.gpu.clock();
        let end = self.bus.transfer(Direction::ToCpu, buf.len() as u64, start);
        self.gpu.advance_to(end);
        buf.data.clone()
    }

    /// Downloads a sub-range of the buffer into `out` (device timeline, like
    /// [`SimHpu::download`]).
    ///
    /// # Panics
    /// Panics if `offset + out.len()` exceeds the buffer length.
    pub fn download_range<T: Clone>(
        &mut self,
        buf: &DeviceBuffer<T>,
        offset: usize,
        out: &mut [T],
    ) {
        out.clone_from_slice(&buf.data[offset..offset + out.len()]);
        let start = self.gpu.clock();
        let end = self.bus.transfer(Direction::ToCpu, out.len() as u64, start);
        self.gpu.advance_to(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hpu() -> SimHpu {
        SimHpu::new(MachineConfig::tiny())
    }

    #[test]
    fn upload_download_round_trip() {
        let mut h = hpu();
        let data: Vec<u32> = (0..64).collect();
        let buf = h.upload(&data).unwrap();
        let back = h.download(&buf);
        assert_eq!(back, data);
        assert_eq!(h.bus.transfers(), 2);
        assert_eq!(h.bus.words(), 128);
    }

    #[test]
    fn transfer_costs_show_on_clocks() {
        let mut h = SimHpu::new(MachineConfig {
            bus: crate::config::BusConfig {
                lambda: 100.0,
                delta: 1.0,
            },
            ..MachineConfig::tiny()
        });
        let buf = h.upload(&[0u32; 50]).unwrap();
        // Upload blocks the host: both clocks at λ + δ·50 = 150.
        assert_eq!(h.cpu.clock(), 150.0);
        assert_eq!(h.gpu.clock(), 150.0);
        let _ = h.download(&buf);
        // Download runs on the device timeline only.
        assert_eq!(h.gpu.clock(), 300.0);
        assert_eq!(h.cpu.clock(), 150.0);
        assert_eq!(h.elapsed(), 300.0);
        h.sync();
        assert_eq!(h.cpu.clock(), 300.0);
    }

    #[test]
    fn concurrent_phase_takes_max_of_timelines() {
        let mut h = hpu();
        h.sync();
        // Fork: CPU does 100 units, GPU does 10 cost units at γ⁻¹=4.
        h.cpu.run_serial("cpu work", |ctx| ctx.charge_ops(100));
        let mut buf = h.gpu.alloc::<u32>(8).unwrap();
        h.gpu
            .launch("gpu work", 8, &mut buf, |_, ctx, _| ctx.charge_ops(10))
            .unwrap();
        assert_eq!(h.cpu.clock(), 100.0);
        assert_eq!(h.gpu.clock(), 40.0);
        h.sync();
        assert_eq!(h.elapsed(), 100.0);
        assert_eq!(h.gpu.clock(), 100.0);
    }

    #[test]
    fn download_overlaps_with_cpu_work() {
        let mut h = SimHpu::new(MachineConfig {
            bus: crate::config::BusConfig {
                lambda: 1000.0,
                delta: 0.0,
            },
            ..MachineConfig::tiny()
        });
        let buf = h.upload(&[0u32; 8]).unwrap();
        let t0 = h.elapsed();
        // CPU works while the download is in flight.
        let _ = h.download(&buf);
        h.cpu.run_serial("overlap", |ctx| ctx.charge_ops(500));
        assert_eq!(h.gpu.clock(), t0 + 1000.0);
        assert_eq!(h.cpu.clock(), t0 + 500.0);
        // Total is the max, not the sum.
        assert_eq!(h.elapsed(), t0 + 1000.0);
    }

    #[test]
    fn download_range_moves_partial_data() {
        let mut h = hpu();
        let data: Vec<u32> = (0..64).collect();
        let buf = h.upload(&data).unwrap();
        let mut out = vec![0u32; 16];
        h.download_range(&buf, 8, &mut out);
        assert_eq!(out, (8..24).collect::<Vec<u32>>());
        assert_eq!(h.bus.words(), 64 + 16);
    }

    #[test]
    fn timeline_collects_all_units() {
        let mut h = hpu();
        let mut buf = h.upload(&[0u32; 8]).unwrap();
        h.cpu.run_serial("c", |ctx| ctx.charge_ops(1));
        h.gpu
            .launch("g", 8, &mut buf, |_, ctx, _| ctx.charge_ops(1))
            .unwrap();
        let tl = h.timeline();
        let units: Vec<_> = tl.events().iter().map(|e| e.unit).collect();
        use crate::timeline::Unit;
        assert!(units.contains(&Unit::Cpu));
        assert!(units.contains(&Unit::Gpu));
        assert!(units.contains(&Unit::Bus));
    }

    #[test]
    fn upload_oom_propagates() {
        let mut h = hpu(); // 1 MiB device
        assert!(matches!(
            h.upload(&vec![0u64; 1 << 20]),
            Err(MachineError::OutOfDeviceMemory { .. })
        ));
    }
}
