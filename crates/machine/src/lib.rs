//! # hpu-machine — a simulated Hybrid Processing Unit
//!
//! This crate is the hardware substrate for the HPU reproduction: a
//! deterministic, virtual-clock simulation of the heterogeneous platform the
//! paper runs on (a multi-core CPU plus an OpenCL GPU device).
//!
//! The simulator executes *real* work — kernels and tasks operate on real
//! buffers and produce real results — while time is accounted in abstract
//! *cost units* charged by the running code:
//!
//! * [`cpu::SimCpu`] — a `p`-core CPU. A *level* of independent tasks is
//!   executed in rounds of `p`; a shared last-level-cache model makes memory
//!   operations dearer once the active working set outgrows the LLC
//!   (reproducing the speedup decay the paper observes past `n = 2^20`).
//! * [`gpu::SimGpu`] — an OpenCL-style device: a kernel launch of `N`
//!   work-items runs in waves of `g` lanes, each lane `1/γ` times slower
//!   than a CPU core; a per-wave **coalescing detector** charges less for
//!   memory streams whose addresses are consecutive across adjacent
//!   work-items (which makes the paper's §6.3 optimization measurable).
//! * [`bus::Bus`] — the CPU↔GPU link: moving `w` words costs `λ + δ·w` and
//!   every transfer is counted (the schedules' "only two transfers" claims
//!   are testable).
//! * [`hpu::SimHpu`] — glues the three together, tracks one virtual timeline
//!   per unit, provides fork/join (concurrent phases take the `max` of the
//!   two timelines) and a [`timeline::Timeline`] event log.
//!
//! ```
//! use hpu_machine::{SimHpu, MachineConfig};
//!
//! let mut hpu = SimHpu::new(MachineConfig::hpu1_sim());
//! let data: Vec<u32> = (0..1024u32).rev().collect();
//! let buf = hpu.upload(&data).expect("fits in device memory");
//! // ... launch kernels, run CPU levels ...
//! let back = hpu.download(&buf);
//! assert_eq!(back.len(), 1024);
//! assert_eq!(hpu.bus.transfers(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod bus;
pub mod config;
pub mod cpu;
pub mod error;
pub mod fault;
pub mod gpu;
pub mod hpu;
pub mod timeline;

pub use bridge::SimMachineParams;
pub use bus::Bus;
pub use config::{BusConfig, CpuConfig, GpuConfig, MachineConfig};
pub use cpu::{CpuCtx, LevelRun, SimCpu};
pub use error::MachineError;
pub use fault::{FaultInjector, FaultKind, FaultPlan, NodeFault, NodeFaultKind, NodeFaultPlan};
pub use gpu::{DeviceBuffer, GpuCtx, LaunchStats, SimGpu};
pub use hpu::SimHpu;
pub use hpu_obs::{EventKind, LevelPhase};
pub use timeline::{Timeline, TimelineEvent, Unit};
