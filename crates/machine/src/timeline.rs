//! Virtual-time event log of a simulated execution.

use std::fmt;

/// The processing unit an event ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// The multi-core CPU.
    Cpu,
    /// The GPU device.
    Gpu,
    /// The CPU↔GPU link.
    Bus,
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unit::Cpu => write!(f, "CPU"),
            Unit::Gpu => write!(f, "GPU"),
            Unit::Bus => write!(f, "BUS"),
        }
    }
}

/// One logged interval of activity on a unit.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Unit the activity ran on.
    pub unit: Unit,
    /// Virtual start time.
    pub start: f64,
    /// Virtual end time.
    pub end: f64,
    /// Human-readable label, e.g. `"level 7 (128 tasks)"`.
    pub label: String,
}

impl TimelineEvent {
    /// Duration of the event.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// An append-only event log with per-unit busy-time accounting.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Records an event.
    pub fn record(&mut self, unit: Unit, start: f64, end: f64, label: impl Into<String>) {
        debug_assert!(end >= start, "events must not run backwards");
        self.events.push(TimelineEvent {
            unit,
            start,
            end,
            label: label.into(),
        });
    }

    /// All events in recording order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Total busy time of a unit.
    pub fn busy(&self, unit: Unit) -> f64 {
        self.events
            .iter()
            .filter(|e| e.unit == unit)
            .map(TimelineEvent::duration)
            .sum()
    }

    /// Latest end time across all events (the makespan).
    pub fn makespan(&self) -> f64 {
        self.events.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Renders the timeline as an indented text report (one line per event),
    /// suitable for terminal output in examples.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let span = self.makespan().max(1e-12);
        for e in &self.events {
            let pct_start = 100.0 * e.start / span;
            let pct_end = 100.0 * e.end / span;
            let _ = writeln!(
                out,
                "{:>3} [{:>12.1} .. {:>12.1}] ({:>5.1}%-{:>5.1}%) {}",
                e.unit.to_string(),
                e.start,
                e.end,
                pct_start,
                pct_end,
                e.label
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_sums_per_unit() {
        let mut t = Timeline::new();
        t.record(Unit::Cpu, 0.0, 5.0, "a");
        t.record(Unit::Gpu, 0.0, 3.0, "b");
        t.record(Unit::Cpu, 5.0, 6.0, "c");
        assert_eq!(t.busy(Unit::Cpu), 6.0);
        assert_eq!(t.busy(Unit::Gpu), 3.0);
        assert_eq!(t.busy(Unit::Bus), 0.0);
        assert_eq!(t.makespan(), 6.0);
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn render_contains_labels() {
        let mut t = Timeline::new();
        t.record(Unit::Bus, 0.0, 1.0, "upload 1024 words");
        let s = t.render();
        assert!(s.contains("BUS"));
        assert!(s.contains("upload 1024 words"));
    }

    #[test]
    fn empty_timeline_makespan_is_zero() {
        assert_eq!(Timeline::new().makespan(), 0.0);
    }
}
