//! Virtual-time event log of a simulated execution.
//!
//! Events carry a typed [`EventKind`] (level spans, kernel launches, bus
//! transfers, sync barriers) from `hpu-obs`; the `Display` of a kind
//! reproduces the legacy free-string labels for text renders, and the log
//! converts losslessly into [`hpu_obs::TraceEvent`]s for Chrome trace
//! export.

use hpu_obs::{EventKind, Recorder, TraceEvent};

/// The processing unit an event ran on (re-exported trace track).
pub use hpu_obs::Track as Unit;

/// One logged interval of activity on a unit.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Unit the activity ran on.
    pub unit: Unit,
    /// Virtual start time.
    pub start: f64,
    /// Virtual end time.
    pub end: f64,
    /// What happened during the span.
    pub kind: EventKind,
}

impl TimelineEvent {
    /// Duration of the event.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Human-readable label, e.g. `"level 7 (128 tasks)"` — the `Display`
    /// of the typed kind.
    pub fn label(&self) -> String {
        self.kind.to_string()
    }
}

/// An append-only event log with per-unit busy-time accounting.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Records a free-form annotation span (legacy string label).
    pub fn record(&mut self, unit: Unit, start: f64, end: f64, label: impl Into<String>) {
        self.record_kind(unit, start, end, EventKind::Mark(label.into()));
    }

    /// Records a typed event span.
    pub fn record_kind(&mut self, unit: Unit, start: f64, end: f64, kind: EventKind) {
        debug_assert!(end >= start, "events must not run backwards");
        self.events.push(TimelineEvent {
            unit,
            start,
            end,
            kind,
        });
    }

    /// All events in recording order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Total *core-time* of a unit: the sum of span durations. For the CPU
    /// this counts overlapping per-core rounds at their full length, so it
    /// can exceed the wall-clock interval the unit was occupied; use
    /// [`Timeline::utilization`] for occupancy.
    pub fn busy(&self, unit: Unit) -> f64 {
        self.events
            .iter()
            .filter(|e| e.unit == unit)
            .map(TimelineEvent::duration)
            .sum()
    }

    /// Interval-merged occupancy of a unit: the length of the union of its
    /// spans, i.e. how long the unit was busy on the wall clock. Sync
    /// barriers (idle waiting) are excluded. Never exceeds
    /// [`Timeline::makespan`].
    pub fn utilization(&self, unit: Unit) -> f64 {
        let spans: Vec<(f64, f64)> = self
            .events
            .iter()
            .filter(|e| e.unit == unit && e.kind != EventKind::Sync)
            .map(|e| (e.start, e.end))
            .collect();
        hpu_obs::merge_intervals(&spans)
    }

    /// Latest end time across all events (the makespan).
    pub fn makespan(&self) -> f64 {
        self.events.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Converts the log into trace events for Chrome trace export.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.events
            .iter()
            .map(|e| TraceEvent {
                track: e.unit,
                start: e.start,
                end: e.end,
                kind: e.kind.clone(),
            })
            .collect()
    }

    /// Renders the timeline as an indented text report (one line per event),
    /// suitable for terminal output in examples.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let span = self.makespan().max(1e-12);
        for e in &self.events {
            let pct_start = 100.0 * e.start / span;
            let pct_end = 100.0 * e.end / span;
            let _ = writeln!(
                out,
                "{:>3} [{:>12.1} .. {:>12.1}] ({:>5.1}%-{:>5.1}%) {}",
                e.unit.to_string(),
                e.start,
                e.end,
                pct_start,
                pct_end,
                e.kind
            );
        }
        out
    }
}

impl Recorder for Timeline {
    fn record_event(&mut self, track: Unit, start: f64, end: f64, kind: EventKind) {
        self.record_kind(track, start, end, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_sums_per_unit() {
        let mut t = Timeline::new();
        t.record(Unit::Cpu, 0.0, 5.0, "a");
        t.record(Unit::Gpu, 0.0, 3.0, "b");
        t.record(Unit::Cpu, 5.0, 6.0, "c");
        assert_eq!(t.busy(Unit::Cpu), 6.0);
        assert_eq!(t.busy(Unit::Gpu), 3.0);
        assert_eq!(t.busy(Unit::Bus), 0.0);
        assert_eq!(t.makespan(), 6.0);
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn busy_is_core_time_but_utilization_merges_overlap() {
        let mut t = Timeline::new();
        // Two overlapping CPU rounds, as in a concurrent hybrid phase.
        t.record(Unit::Cpu, 0.0, 10.0, "round a");
        t.record(Unit::Cpu, 5.0, 12.0, "round b");
        assert_eq!(t.busy(Unit::Cpu), 17.0, "core-time counts both in full");
        assert_eq!(t.utilization(Unit::Cpu), 12.0, "occupancy merges overlap");
        assert_eq!(t.utilization(Unit::Gpu), 0.0);
    }

    #[test]
    fn render_contains_labels() {
        let mut t = Timeline::new();
        t.record(Unit::Bus, 0.0, 1.0, "upload 1024 words");
        let s = t.render();
        assert!(s.contains("BUS"));
        assert!(s.contains("upload 1024 words"));
    }

    #[test]
    fn typed_events_render_like_legacy_labels() {
        let mut t = Timeline::new();
        t.record_kind(
            Unit::Bus,
            0.0,
            1.0,
            EventKind::Transfer {
                to_gpu: true,
                words: 1024,
            },
        );
        assert!(t.render().contains("→GPU 1024 words"));
        assert_eq!(t.events()[0].label(), "→GPU 1024 words");
        assert_eq!(t.trace_events()[0].kind, t.events()[0].kind);
    }

    #[test]
    fn empty_timeline_makespan_is_zero() {
        assert_eq!(Timeline::new().makespan(), 0.0);
    }
}
