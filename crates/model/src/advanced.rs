//! The advanced hybrid work division (paper §5.2, Figures 2-4).
//!
//! The input is split at ratio `α` (CPU) / `1−α` (GPU); both units execute
//! their share of the recursion tree bottom-up concurrently. To avoid idle
//! CPU cores, the concurrent phase lasts until the CPU's share shrinks to
//! `p` subproblems — at level `log_a(p/α)` — taking time `Tc(n)`. In that
//! time the GPU climbs from the leaves to level `y`, found by solving
//! `Tg(n) = Tc(n)`; it then transfers its partial results back and the CPU
//! finishes everything above. There are exactly two CPU↔GPU transfers.
//!
//! `Tg` is a piecewise function of the GPU's saturation regime (paper's
//! cases (i)-(iii)), and the optimal `α*` maximizes the GPU work
//! `W_g(α) = (1−α)·(n^{log_b a} + Σ_{i=y(α)}^{L-1} a^i f(n/b^i))`.

use crate::error::ModelError;
use crate::levels::LevelProfile;
use crate::params::MachineParams;
use crate::recurrence::Recurrence;

/// GPU saturation regime during the concurrent phase (paper §5.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuSaturation {
    /// Case (i): `(1−α)·n^{log_b a} < g` — the GPU is never saturated; every
    /// level fits in a single wave.
    NeverSaturated,
    /// Case (ii): `Tc ≤ Tmax_g` — the GPU is saturated for the entire
    /// concurrent phase.
    AlwaysSaturated,
    /// Case (iii): `Tc > Tmax_g` — the GPU exhausts its saturated phase and
    /// continues unsaturated.
    Mixed,
}

/// Solution of `Tg = Tc` for a fixed `α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YSolution {
    /// Level (from the top, continuous) the GPU reaches before transferring
    /// back; clamped to `[0, L]`.
    pub y: f64,
    /// Saturation regime that produced this solution.
    pub saturation: GpuSaturation,
    /// Duration of the concurrent phase, `Tc(n)`.
    pub tc: f64,
    /// Whether this `α` is feasible (the GPU can finish at least the leaves
    /// of its share within `Tc`).
    pub feasible: bool,
}

/// An advanced hybrid schedule: split ratio and transfer level.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvancedSchedule {
    /// Fraction of subproblems assigned to the CPU.
    pub alpha: f64,
    /// Level (from the top) at which the GPU transfers its results back.
    pub transfer_level: f64,
    /// Work executed by the GPU, `W_g(α)`, in operations.
    pub gpu_work: f64,
    /// `W_g(α)` as a fraction of the total work.
    pub gpu_work_fraction: f64,
    /// Saturation regime at the optimum.
    pub saturation: GpuSaturation,
}

/// Solver for the advanced work division on a fixed machine, recurrence and
/// input size.
#[derive(Debug, Clone)]
pub struct AdvancedSolver {
    profile: LevelProfile,
}

impl AdvancedSolver {
    /// Builds a solver; fails if the input is smaller than one division step.
    pub fn new(machine: &MachineParams, rec: &Recurrence, n: u64) -> Result<Self, ModelError> {
        if n < rec.b as u64 {
            return Err(ModelError::ProblemTooSmall {
                n,
                min: rec.b as u64,
            });
        }
        Ok(AdvancedSolver {
            profile: LevelProfile::new(machine, rec, n),
        })
    }

    /// The underlying level profile.
    pub fn profile(&self) -> &LevelProfile {
        &self.profile
    }

    fn machine(&self) -> &MachineParams {
        self.profile.machine()
    }

    fn rec(&self) -> &Recurrence {
        self.profile.recurrence()
    }

    /// Smallest admissible `α`: the CPU must start the bottom level with at
    /// least `p` tasks, i.e. `α ≥ p / n^{log_b a}` (paper §5.2.1).
    pub fn alpha_min(&self) -> f64 {
        (self.machine().p as f64 / self.profile.leaves()).min(1.0)
    }

    /// Level at which the CPU's share shrinks to `p` tasks:
    /// `log_a(p/α)`, clamped to `[0, L]`.
    pub fn cpu_stop_level(&self, alpha: f64) -> f64 {
        let a = self.rec().a as f64;
        let lc = (self.machine().p as f64 / alpha).ln() / a.ln();
        lc.clamp(0.0, self.profile.levels() as f64)
    }

    /// Level below which the GPU's share saturates the device:
    /// `log_a(g/(1−α))`, clamped to `[0, L]`.
    pub fn gpu_saturation_level(&self, alpha: f64) -> f64 {
        let a = self.rec().a as f64;
        let ls = (self.machine().g as f64 / (1.0 - alpha)).ln() / a.ln();
        ls.clamp(0.0, self.profile.levels() as f64)
    }

    /// `Tc(n)`: time for the CPU to climb from the leaves to
    /// `log_a(p/α)` on its `α`-share (paper §5.2.1):
    /// `(α/p)·(n^{log_b a}·T(1) + Σ_{i=log_a(p/α)}^{L-1} a^i f(n/b^i))`.
    pub fn tc(&self, alpha: f64) -> f64 {
        let lc = self.cpu_stop_level(alpha);
        let leaf_work = self.profile.leaves() * self.rec().leaf_cost;
        alpha / self.machine().p as f64 * (leaf_work + self.profile.suffix_work(lc))
    }

    /// `Tmax_g(n)`: the longest the GPU can run fully saturated
    /// (paper §5.2.1):
    /// `((1−α)/(γg))·(n^{log_b a}·T(1) + Σ_{i=log_a(g/(1−α))}^{L-1} a^i f(n/b^i))`.
    pub fn tmax_g(&self, alpha: f64) -> f64 {
        let ls = self.gpu_saturation_level(alpha);
        let m = self.machine();
        let leaf_work = self.profile.leaves() * self.rec().leaf_cost;
        (1.0 - alpha) / (m.gamma * m.g as f64) * (leaf_work + self.profile.suffix_work(ls))
    }

    /// GPU time to climb from the leaves to level `y` on its `(1−α)`-share,
    /// following the saturation regime (continuous, paper-faithful).
    pub fn tg(&self, alpha: f64, y: f64) -> f64 {
        let m = self.machine();
        let pr = &self.profile;
        let big_l = pr.levels() as f64;
        let share = 1.0 - alpha;
        let leaf_work = pr.leaves() * self.rec().leaf_cost;
        if share * pr.leaves() < m.g as f64 {
            // Case (i): never saturated — one wave per level plus the leaves.
            (self.rec().leaf_cost + pr.suffix_path(y, big_l)) / m.gamma
        } else {
            let ls = self.gpu_saturation_level(alpha);
            if y >= ls {
                // Entirely within the saturated regime.
                share / (m.gamma * m.g as f64) * (leaf_work + pr.suffix_work(y))
            } else {
                // Saturated up to `ls`, then one wave per level above.
                self.tmax_g(alpha) + pr.suffix_path(y, ls) / m.gamma
            }
        }
    }

    /// Solves `Tg(α, y) = Tc(α)` for `y` (paper §5.2.1). `Tg` is monotone
    /// non-increasing in `y`, so a bisection on `[0, L]` suffices.
    pub fn solve_y(&self, alpha: f64) -> YSolution {
        let tc = self.tc(alpha);
        let m = self.machine();
        let pr = &self.profile;
        let big_l = pr.levels() as f64;
        let share = 1.0 - alpha;

        let saturation = if share * pr.leaves() < m.g as f64 {
            GpuSaturation::NeverSaturated
        } else if tc <= self.tmax_g(alpha) {
            GpuSaturation::AlwaysSaturated
        } else {
            GpuSaturation::Mixed
        };

        // Feasibility: even the leaves of the GPU share must finish in Tc.
        let t_leaves_only = self.tg(alpha, big_l);
        if t_leaves_only > tc {
            return YSolution {
                y: big_l,
                saturation,
                tc,
                feasible: false,
            };
        }
        // GPU reaches the root before the CPU phase ends.
        if self.tg(alpha, 0.0) <= tc {
            return YSolution {
                y: 0.0,
                saturation,
                tc,
                feasible: true,
            };
        }

        let (mut lo, mut hi) = (0.0_f64, big_l);
        // Invariant: tg(lo) > tc >= tg(hi).
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.tg(alpha, mid) > tc {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 {
                break;
            }
        }
        YSolution {
            y: 0.5 * (lo + hi),
            saturation,
            tc,
            feasible: true,
        }
    }

    /// GPU work when stopping at level `y`:
    /// `W_g = (1−α)·(n^{log_b a}·T(1) + Σ_{i=y}^{L-1} a^i f(n/b^i))`.
    pub fn gpu_work(&self, alpha: f64, y: f64) -> f64 {
        let leaf_work = self.profile.leaves() * self.rec().leaf_cost;
        (1.0 - alpha) * (leaf_work + self.profile.suffix_work(y))
    }

    /// `W_g(α)` using the solved transfer level; `None` when `α` is
    /// infeasible.
    pub fn gpu_work_at(&self, alpha: f64) -> Option<f64> {
        let sol = self.solve_y(alpha);
        sol.feasible.then(|| self.gpu_work(alpha, sol.y))
    }

    /// Finds `α*` maximizing `W_g(α)` by dense grid search with local
    /// refinement (the paper uses numeric methods as well, §5.2.2).
    pub fn optimize(&self) -> AdvancedSchedule {
        let lo = self.alpha_min().max(1e-9);
        let hi = (1.0 - 1.0 / self.profile.leaves()).max(lo);
        const GRID: usize = 1024;
        let mut best_alpha = lo;
        let mut best_w = f64::NEG_INFINITY;
        for k in 0..=GRID {
            let alpha = lo + (hi - lo) * k as f64 / GRID as f64;
            if let Some(w) = self.gpu_work_at(alpha) {
                if w > best_w {
                    best_w = w;
                    best_alpha = alpha;
                }
            }
        }
        // Golden-section refinement around the best grid cell.
        let step = (hi - lo) / GRID as f64;
        let (mut a, mut b) = ((best_alpha - step).max(lo), (best_alpha + step).min(hi));
        let phi = 0.5 * (5f64.sqrt() - 1.0);
        let score = |alpha: f64| self.gpu_work_at(alpha).unwrap_or(f64::NEG_INFINITY);
        let (mut x1, mut x2) = (b - phi * (b - a), a + phi * (b - a));
        let (mut f1, mut f2) = (score(x1), score(x2));
        for _ in 0..100 {
            if f1 < f2 {
                a = x1;
                x1 = x2;
                f1 = f2;
                x2 = a + phi * (b - a);
                f2 = score(x2);
            } else {
                b = x2;
                x2 = x1;
                f2 = f1;
                x1 = b - phi * (b - a);
                f1 = score(x1);
            }
            if b - a < 1e-10 {
                break;
            }
        }
        let alpha = if f1 > f2 { x1 } else { x2 };
        let alpha = if score(alpha) >= best_w {
            alpha
        } else {
            best_alpha
        };
        let sol = self.solve_y(alpha);
        let w = self.gpu_work(alpha, sol.y);
        AdvancedSchedule {
            alpha,
            transfer_level: sol.y,
            gpu_work: w,
            gpu_work_fraction: w / self.profile.total_work(),
            saturation: sol.saturation,
        }
    }

    /// Discrete predicted execution time of the advanced schedule for an
    /// arbitrary `(α, y)` pair (used for the Figure 7/8 predicted curves).
    ///
    /// * concurrent phase: `max` of the CPU's climb to `log_a(p/α)` and the
    ///   GPU's climb to `y` (wave-discrete), plus two transfers;
    /// * cleanup phase: the CPU finishes all remaining tasks level by level
    ///   on `p` cores.
    pub fn predicted_time(&self, alpha: f64, y: f64, transfer_words: u64) -> f64 {
        let m = self.machine();
        let pr = &self.profile;
        let levels = pr.levels();
        let lc = self.cpu_stop_level(alpha);
        let leaf_cost = self.rec().leaf_cost;

        // CPU climb on its share: waves of p among ceil(α·a^i) tasks.
        let mut t_cpu = ((alpha * pr.leaves() / m.p as f64).ceil()).max(1.0) * leaf_cost;
        for i in (lc.ceil() as u32)..levels {
            let tasks = (alpha * pr.tasks_at(i)).ceil().max(1.0);
            t_cpu += (tasks / m.p as f64).ceil() * pr.task_cost_at(i);
        }

        // GPU climb on its share: waves of g.
        let share = 1.0 - alpha;
        let mut t_gpu = ((share * pr.leaves() / m.g as f64).ceil()).max(1.0) * leaf_cost / m.gamma;
        for i in (y.ceil() as u32)..levels {
            let tasks = (share * pr.tasks_at(i)).ceil().max(1.0);
            t_gpu += (tasks / m.g as f64).ceil() * pr.task_cost_at(i) / m.gamma;
        }
        t_gpu += 2.0 * m.transfer_time(transfer_words);

        // Cleanup: remaining tasks per level on the CPU.
        let mut t_rest = 0.0;
        let top = lc.max(y).ceil() as u32;
        for i in 0..top.min(levels) {
            let mut rem = 0.0;
            if (i as f64) < lc {
                rem += alpha * pr.tasks_at(i);
            }
            if (i as f64) < y {
                rem += share * pr.tasks_at(i);
            }
            if rem > 0.0 {
                t_rest += (rem.max(1.0) / m.p as f64).ceil() * pr.task_cost_at(i);
            }
        }

        t_cpu.max(t_gpu) + t_rest
    }

    /// Predicted speedup of the *optimal* advanced schedule over the 1-core
    /// sequential execution (the green curves of Figure 8).
    pub fn predicted_speedup(&self, transfer_words: u64) -> f64 {
        let opt = self.optimize();
        self.profile.total_work()
            / self.predicted_time(opt.alpha, opt.transfer_level, transfer_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of §5.2.2: mergesort, HPU1 (p=4, g=2^12,
    /// γ⁻¹=160), n = 2^24 — α* ≈ 0.16, y ≈ 10, GPU does ≈ 52% of the work.
    #[test]
    fn example_5_2_2() {
        let solver =
            AdvancedSolver::new(&MachineParams::hpu1(), &Recurrence::mergesort(), 1 << 24).unwrap();
        let opt = solver.optimize();
        assert!(
            (opt.alpha - 0.16).abs() < 0.03,
            "alpha* = {} (paper: ≈0.16)",
            opt.alpha
        );
        assert!(
            opt.transfer_level > 8.5 && opt.transfer_level < 10.5,
            "y = {} (paper: ≈10)",
            opt.transfer_level
        );
        assert!(
            (opt.gpu_work_fraction - 0.52).abs() < 0.03,
            "GPU fraction = {} (paper: ≈52%)",
            opt.gpu_work_fraction
        );
        // At the optimum the GPU straddles both regimes (paper: "both
        // saturated and non-saturated", since y < log_2 g = 12).
        assert_eq!(opt.saturation, GpuSaturation::Mixed);
    }

    #[test]
    fn tc_matches_closed_form() {
        // Mergesort closed form (§5.2.2):
        // Tc = (α n / p)(log_b n − log_a(p/α) + 1).
        let n = 1u64 << 24;
        let solver =
            AdvancedSolver::new(&MachineParams::hpu1(), &Recurrence::mergesort(), n).unwrap();
        let alpha = 0.16;
        let expect = alpha * n as f64 / 4.0 * (24.0 - (4.0 / alpha).log2() + 1.0);
        let got = solver.tc(alpha);
        assert!(
            (got - expect).abs() / expect < 0.01,
            "tc {got} vs closed form {expect}"
        );
    }

    #[test]
    fn tmax_matches_closed_form() {
        // Tmax_g = ((1−α) n / (γ g))(log_b n − log_a(g/(1−α)) + 1).
        let n = 1u64 << 24;
        let m = MachineParams::hpu1();
        let solver = AdvancedSolver::new(&m, &Recurrence::mergesort(), n).unwrap();
        let alpha = 0.16;
        let expect = (1.0 - alpha) * n as f64 / (m.gamma * m.g as f64)
            * (24.0 - (m.g as f64 / (1.0 - alpha)).log2() + 1.0);
        let got = solver.tmax_g(alpha);
        assert!(
            (got - expect).abs() / expect < 0.01,
            "tmax {got} vs closed form {expect}"
        );
    }

    #[test]
    fn solved_y_equates_times() {
        let solver =
            AdvancedSolver::new(&MachineParams::hpu1(), &Recurrence::mergesort(), 1 << 24).unwrap();
        for &alpha in &[0.05, 0.16, 0.3, 0.6] {
            let sol = solver.solve_y(alpha);
            assert!(sol.feasible);
            if sol.y > 0.0 {
                let tg = solver.tg(alpha, sol.y);
                assert!(
                    (tg - sol.tc).abs() / sol.tc < 1e-6,
                    "alpha={alpha}: tg={tg} != tc={}",
                    sol.tc
                );
            }
        }
    }

    #[test]
    fn y_decreases_with_alpha() {
        // More CPU share -> longer concurrent phase -> GPU climbs higher.
        let solver =
            AdvancedSolver::new(&MachineParams::hpu1(), &Recurrence::mergesort(), 1 << 24).unwrap();
        let mut prev = f64::INFINITY;
        for k in 1..20 {
            let alpha = k as f64 * 0.05;
            let sol = solver.solve_y(alpha);
            if sol.feasible {
                assert!(sol.y <= prev + 1e-9, "y must be non-increasing in alpha");
                prev = sol.y;
            }
        }
    }

    #[test]
    fn tiny_alpha_is_infeasible_or_low_work() {
        // With α at its minimum the CPU stops almost immediately; the GPU
        // barely gets to work.
        let solver =
            AdvancedSolver::new(&MachineParams::hpu1(), &Recurrence::mergesort(), 1 << 16).unwrap();
        let a0 = solver.alpha_min();
        let w0 = solver.gpu_work_at(a0).unwrap_or(0.0);
        let wopt = solver.optimize().gpu_work;
        assert!(wopt > w0);
    }

    #[test]
    fn hpu2_optimum_is_sane() {
        let solver =
            AdvancedSolver::new(&MachineParams::hpu2(), &Recurrence::mergesort(), 1 << 24).unwrap();
        let opt = solver.optimize();
        assert!(opt.alpha > 0.05 && opt.alpha < 0.9);
        assert!(opt.gpu_work_fraction > 0.3 && opt.gpu_work_fraction < 0.8);
    }

    #[test]
    fn predicted_speedup_bounds_hpu1() {
        // Paper Fig. 8: predicted speedup ≈ 5.5 at n = 2^24 on HPU1. Our
        // discrete predictor should land in the same neighbourhood and
        // always beat the p-core bound only via the GPU (speedup > p is
        // possible, > p + γg is not).
        let m = MachineParams::hpu1();
        let solver = AdvancedSolver::new(&m, &Recurrence::mergesort(), 1 << 24).unwrap();
        let s = solver.predicted_speedup(0);
        assert!(s > 4.0 && s < 8.0, "predicted speedup {s}");
        assert!(s < m.p as f64 + m.gpu_throughput());
    }

    #[test]
    fn predicted_time_monotone_in_machine_strength() {
        let r = Recurrence::mergesort();
        let weak = MachineParams::new(4, 512, 1.0 / 160.0).unwrap();
        let strong = MachineParams::new(4, 8192, 1.0 / 160.0).unwrap();
        let sw = AdvancedSolver::new(&weak, &r, 1 << 20).unwrap();
        let ss = AdvancedSolver::new(&strong, &r, 1 << 20).unwrap();
        assert!(ss.predicted_speedup(0) >= sw.predicted_speedup(0) * 0.99);
    }

    #[test]
    fn rejects_tiny_problems() {
        assert!(matches!(
            AdvancedSolver::new(&MachineParams::hpu1(), &Recurrence::mergesort(), 1),
            Err(ModelError::ProblemTooSmall { .. })
        ));
    }

    #[test]
    fn transfer_cost_reduces_predicted_speedup() {
        let r = Recurrence::mergesort();
        let m0 = MachineParams::hpu1();
        let m1 = MachineParams::hpu1().with_transfer_cost(1e6, 0.5);
        let s0 = AdvancedSolver::new(&m0, &r, 1 << 20)
            .unwrap()
            .predicted_speedup(1 << 20);
        let s1 = AdvancedSolver::new(&m1, &r, 1 << 20)
            .unwrap()
            .predicted_speedup(1 << 20);
        assert!(s1 < s0);
    }
}
