//! The basic hybrid work division (paper §5.1, Figure 1).
//!
//! Each level of the recursion tree runs entirely on the unit that executes
//! it faster. Comparing the per-level times shows the GPU wins exactly for
//! levels `i ≥ log_a(p/γ)` (given `γ·g ≥ p`), so a single crossover level
//! splits the tree: the top runs on the CPU, everything below — including
//! the leaves — on the GPU, with one round trip of data between them.

use crate::levels::LevelProfile;
use crate::params::MachineParams;
use crate::recurrence::Recurrence;

/// The basic hybrid schedule: levels `0..crossover` on the CPU, levels
/// `crossover..` plus the leaves on the GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicSchedule {
    /// First level executed on the GPU, `⌈log_a(p/γ)⌉`; `None` when the GPU
    /// is never worth using (`γ·g < p`).
    pub crossover: Option<u32>,
}

impl BasicSchedule {
    /// Derives the schedule from machine and recurrence parameters.
    ///
    /// Case analysis of §5.1: for levels with fewer than `p` tasks the CPU
    /// wins (`γ < 1`); between `log_a p` and `log_a g` tasks the GPU wins
    /// once `a^i/p ≥ 1/γ`, i.e. `i ≥ log_a(p/γ)`; below that the GPU's
    /// aggregate throughput `γ·g ≥ p` keeps it ahead.
    pub fn derive(machine: &MachineParams, rec: &Recurrence) -> Self {
        if !machine.gpu_worth_using() {
            return BasicSchedule { crossover: None };
        }
        let a = rec.a as f64;
        let level = (machine.p as f64 / machine.gamma).ln() / a.ln();
        BasicSchedule {
            crossover: Some(level.ceil().max(0.0) as u32),
        }
    }

    /// Continuous crossover level `log_a(p/γ)` (before rounding), useful for
    /// plotting and tests.
    pub fn crossover_exact(machine: &MachineParams, rec: &Recurrence) -> f64 {
        (machine.p as f64 / machine.gamma).ln() / (rec.a as f64).ln()
    }

    /// Predicted execution time of the basic hybrid schedule for input size
    /// `n`, including the two transfers (down at the crossover, back up).
    ///
    /// Levels above the crossover run on the CPU at `⌈a^i/p⌉·f(n/b^i)`;
    /// levels below (and the leaves) run on the GPU at `⌈a^i/g⌉·f(n/b^i)/γ`.
    pub fn predicted_time(&self, profile: &LevelProfile, transfer_words: u64) -> f64 {
        let levels = profile.levels();
        match self.crossover {
            None => predicted_time_cpu_parallel(profile),
            Some(cross) => {
                let cross = cross.min(levels);
                let mut t = 0.0;
                for i in 0..cross {
                    t += profile.cpu_level_time(i);
                }
                for i in cross..levels {
                    t += profile.gpu_level_time(i);
                }
                t += profile.gpu_leaf_time();
                t + 2.0 * profile.machine().transfer_time(transfer_words)
            }
        }
    }
}

/// Predicted time of the sequential (1-core) execution: the total work.
pub fn predicted_time_sequential(profile: &LevelProfile) -> f64 {
    profile.total_work()
}

/// Predicted time of a CPU-only level-parallel execution on all `p` cores.
pub fn predicted_time_cpu_parallel(profile: &LevelProfile) -> f64 {
    let mut t = profile.cpu_leaf_time();
    for i in 0..profile.levels() {
        t += profile.cpu_level_time(i);
    }
    t
}

/// Predicted time of a GPU-only execution (all levels on the device),
/// including one round trip of `transfer_words` words.
pub fn predicted_time_gpu_only(profile: &LevelProfile, transfer_words: u64) -> f64 {
    let mut t = profile.gpu_leaf_time();
    for i in 0..profile.levels() {
        t += profile.gpu_level_time(i);
    }
    t + 2.0 * profile.machine().transfer_time(transfer_words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineParams;

    #[test]
    fn hpu1_mergesort_crossover() {
        // p/γ = 4·160 = 640; log2(640) ≈ 9.32 -> crossover level 10.
        let m = MachineParams::hpu1();
        let r = Recurrence::mergesort();
        let s = BasicSchedule::derive(&m, &r);
        assert_eq!(s.crossover, Some(10));
        assert!((BasicSchedule::crossover_exact(&m, &r) - 9.3219).abs() < 1e-3);
    }

    #[test]
    fn hpu2_mergesort_crossover() {
        // p/γ = 4·65 = 260; log2(260) ≈ 8.02 -> crossover level 9.
        let s = BasicSchedule::derive(&MachineParams::hpu2(), &Recurrence::mergesort());
        assert_eq!(s.crossover, Some(9));
    }

    #[test]
    fn weak_gpu_never_crosses() {
        // γ·g = 0.01·100 = 1 < p = 4: GPU never worth it (§5.1).
        let m = MachineParams::new(4, 100, 0.01).unwrap();
        let s = BasicSchedule::derive(&m, &Recurrence::mergesort());
        assert_eq!(s.crossover, None);
    }

    #[test]
    fn hybrid_beats_both_pure_strategies() {
        let m = MachineParams::hpu1();
        let r = Recurrence::mergesort();
        let pr = LevelProfile::new(&m, &r, 1 << 20);
        let s = BasicSchedule::derive(&m, &r);
        let hybrid = s.predicted_time(&pr, 0);
        let seq = predicted_time_sequential(&pr);
        let cpu = predicted_time_cpu_parallel(&pr);
        let gpu = predicted_time_gpu_only(&pr, 0);
        assert!(
            hybrid < cpu,
            "hybrid {hybrid} should beat CPU-parallel {cpu}"
        );
        assert!(hybrid < gpu, "hybrid {hybrid} should beat GPU-only {gpu}");
        assert!(hybrid < seq);
    }

    #[test]
    fn gpu_only_suffers_at_top_levels() {
        // GPU-only pays γ^-1 = 160x on the serial top levels, so for
        // moderate n the CPU-parallel execution wins.
        let m = MachineParams::hpu1();
        let r = Recurrence::mergesort();
        let pr = LevelProfile::new(&m, &r, 1 << 14);
        assert!(predicted_time_gpu_only(&pr, 0) > predicted_time_cpu_parallel(&pr));
    }

    #[test]
    fn weak_gpu_falls_back_to_cpu_time() {
        let m = MachineParams::new(4, 100, 0.01).unwrap();
        let r = Recurrence::mergesort();
        let pr = LevelProfile::new(&m, &r, 1 << 12);
        let s = BasicSchedule::derive(&m, &r);
        assert_eq!(s.predicted_time(&pr, 0), predicted_time_cpu_parallel(&pr));
    }

    #[test]
    fn transfers_add_latency() {
        let m = MachineParams::hpu1().with_transfer_cost(1000.0, 0.1);
        let r = Recurrence::mergesort();
        let pr = LevelProfile::new(&m, &r, 1 << 16);
        let s = BasicSchedule::derive(&m, &r);
        let with = s.predicted_time(&pr, 1 << 16);
        let without = s.predicted_time(&pr, 0);
        // Both runs pay the fixed latency 2λ; the word count adds 2δw.
        let expect = 2.0 * 0.1 * 65536.0;
        assert!(((with - without) - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn crossover_clamps_to_tree_depth() {
        // Tiny input: crossover level beyond the tree, everything on CPU
        // except leaves (empty GPU range) — must not panic.
        let m = MachineParams::hpu1();
        let r = Recurrence::mergesort();
        let pr = LevelProfile::new(&m, &r, 16);
        let s = BasicSchedule::derive(&m, &r);
        let t = s.predicted_time(&pr, 0);
        assert!(t.is_finite() && t > 0.0);
    }
}
