//! Canonical plan keys and the generation-tagged plan cache.
//!
//! Compilation (paper §5.1/§5.2) is a pure function of the algorithm's
//! recurrence, the input size, the requested strategy and the machine
//! parameters — so compiled plans are cacheable by construction.
//! [`PlanKey`] canonicalizes that tuple (resolving spellings that compile
//! identically to one key) and [`PlanCache`] memoizes `(Plan, PlanCost)`
//! pairs behind it, so a serving fleet's admission path becomes a hash
//! lookup instead of a fresh compile.
//!
//! Invalidation protocol: every key carries the cache's *generation*.
//! When calibration rewrites the machine beliefs, the owner calls
//! [`PlanCache::bump_generation`] — one O(1) bump drops every entry and
//! subsequent lookups lazily re-fill under the new generation. Nothing is
//! recompiled synchronously at the drift event.

use std::collections::HashMap;
use std::sync::Arc;

use crate::basic::BasicSchedule;
use crate::cost::CostFn;
use crate::error::ModelError;
use crate::levels::LevelProfile;
use crate::params::MachineParams;
use crate::plan::{compile, compile_timed, Plan, ScheduleSpec};
use crate::prediction::{plan_cost, PlanCost};
use crate::recurrence::Recurrence;

/// Canonical form of a [`ScheduleSpec`] for keying.
///
/// Spellings that compile to the same plan collapse to one variant:
/// `CpuParallel` on a 1-core machine is `Sequential`, `Basic` resolves its
/// crossover (and its degrade-to-CPU cases become `CpuParallel`), and `α`
/// is stored by bit pattern with `-0.0` normalized so the key is `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CanonSpec {
    /// One CPU core.
    Sequential,
    /// All `p` CPU cores.
    CpuParallel,
    /// Whole input on the GPU.
    GpuOnly,
    /// Basic schedule with the crossover resolved.
    Basic {
        /// Resolved first top-down GPU level.
        crossover: u32,
    },
    /// Advanced schedule with explicit parameters.
    Advanced {
        /// Bit pattern of the (normalized) CPU fraction `α`.
        alpha_bits: u64,
        /// Top-down transfer level `y`.
        transfer_level: u32,
    },
    /// Advanced schedule whose `(α*, y)` the compiler derives. Kept as its
    /// own variant: the derivation is deterministic in `(machine, rec,
    /// n)`, all of which the key already pins, and resolving it at key
    /// time would cost the very optimization the cache exists to skip.
    AdvancedAuto,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *hash ^= *b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn fnv_u64(hash: &mut u64, v: u64) {
    fnv1a(hash, &v.to_le_bytes());
}

fn fnv_f64(hash: &mut u64, v: f64) {
    // Normalize -0.0 so equal values hash equally.
    let v = if v == 0.0 { 0.0 } else { v };
    fnv_u64(hash, v.to_bits());
}

/// Hashes the recurrence; `None` when the cost function is
/// [`CostFn::Custom`] — an opaque closure has no canonical identity, so
/// plans built from it must not be shared between recurrences.
fn recurrence_hash(rec: &Recurrence) -> Option<u64> {
    let mut h = FNV_OFFSET;
    fnv_u64(&mut h, rec.a as u64);
    fnv_u64(&mut h, rec.b as u64);
    fnv_f64(&mut h, rec.leaf_cost);
    match &rec.f {
        CostFn::Constant(c) => {
            fnv_u64(&mut h, 1);
            fnv_f64(&mut h, *c);
        }
        CostFn::Linear(c) => {
            fnv_u64(&mut h, 2);
            fnv_f64(&mut h, *c);
        }
        CostFn::Power { c, e } => {
            fnv_u64(&mut h, 3);
            fnv_f64(&mut h, *c);
            fnv_f64(&mut h, *e);
        }
        CostFn::LinLog(c) => {
            fnv_u64(&mut h, 4);
            fnv_f64(&mut h, *c);
        }
        CostFn::Custom(_) => return None,
    }
    Some(h)
}

fn params_hash(machine: &MachineParams) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_u64(&mut h, machine.p as u64);
    fnv_u64(&mut h, machine.g as u64);
    fnv_f64(&mut h, machine.gamma);
    fnv_f64(&mut h, machine.lambda);
    fnv_f64(&mut h, machine.delta);
    h
}

/// Canonical identity of one compilation: what [`PlanCache`] keys on.
///
/// The input size is kept *exactly* (not bucketed): transfer words, split
/// chunk sizes and the executor level count are all functions of `n`, so
/// two sizes in the same power-of-two bucket still compile to different
/// plans. [`PlanKey::size_bucket`] exposes the bucket for stats and
/// reporting only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// FNV-1a hash of the recurrence (`a`, `b`, `f`, leaf cost).
    pub rec_hash: u64,
    /// FNV-1a hash of the machine parameters (`p`, `g`, `γ`, `λ`, `δ`).
    pub params_hash: u64,
    /// Exact input size the plan is compiled for.
    pub n: u64,
    /// Executor combine-level count.
    pub exec_levels: u32,
    /// Canonicalized strategy.
    pub spec: CanonSpec,
    /// Machine-belief generation the entry is valid under.
    pub generation: u64,
}

impl PlanKey {
    /// Builds the canonical key for one compilation, or `None` when the
    /// recurrence is uncacheable (a [`CostFn::Custom`] closure).
    pub fn new(
        spec: &ScheduleSpec,
        machine: &MachineParams,
        rec: &Recurrence,
        n: u64,
        exec_levels: u32,
        generation: u64,
    ) -> Option<PlanKey> {
        let rec_hash = recurrence_hash(rec)?;
        let canon = match spec {
            ScheduleSpec::Sequential => CanonSpec::Sequential,
            ScheduleSpec::CpuParallel if machine.p == 1 => CanonSpec::Sequential,
            ScheduleSpec::CpuParallel => CanonSpec::CpuParallel,
            ScheduleSpec::GpuOnly => CanonSpec::GpuOnly,
            ScheduleSpec::Basic { crossover } => {
                let cross = match crossover {
                    Some(c) => Some(*c),
                    None => BasicSchedule::derive(machine, rec).crossover,
                };
                match cross {
                    // The degrade cases compile to the CPU-parallel plan.
                    None => CanonSpec::CpuParallel,
                    Some(c) if c > exec_levels => CanonSpec::CpuParallel,
                    Some(c) => CanonSpec::Basic { crossover: c },
                }
            }
            ScheduleSpec::Advanced {
                alpha,
                transfer_level,
            } => {
                let a = if *alpha == 0.0 { 0.0 } else { *alpha };
                CanonSpec::Advanced {
                    alpha_bits: a.to_bits(),
                    transfer_level: *transfer_level,
                }
            }
            ScheduleSpec::AdvancedAuto => CanonSpec::AdvancedAuto,
        };
        Some(PlanKey {
            rec_hash,
            params_hash: params_hash(machine),
            n,
            exec_levels,
            spec: canon,
            generation,
        })
    }

    /// Power-of-two size bucket (`⌊log₂ n⌋`), for stats and reporting.
    pub fn size_bucket(&self) -> u32 {
        63 - self.n.max(1).leading_zeros()
    }

    /// Deterministic 64-bit FNV-1a digest of the whole key — stable
    /// across processes, unlike the `std` hasher.
    pub fn hash64(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv_u64(&mut h, self.rec_hash);
        fnv_u64(&mut h, self.params_hash);
        fnv_u64(&mut h, self.n);
        fnv_u64(&mut h, self.exec_levels as u64);
        match self.spec {
            CanonSpec::Sequential => fnv_u64(&mut h, 1),
            CanonSpec::CpuParallel => fnv_u64(&mut h, 2),
            CanonSpec::GpuOnly => fnv_u64(&mut h, 3),
            CanonSpec::Basic { crossover } => {
                fnv_u64(&mut h, 4);
                fnv_u64(&mut h, crossover as u64);
            }
            CanonSpec::Advanced {
                alpha_bits,
                transfer_level,
            } => {
                fnv_u64(&mut h, 5);
                fnv_u64(&mut h, alpha_bits);
                fnv_u64(&mut h, transfer_level as u64);
            }
            CanonSpec::AdvancedAuto => fnv_u64(&mut h, 6),
        }
        fnv_u64(&mut h, self.generation);
        h
    }
}

/// Hit/miss/eviction counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh compile (including
    /// uncacheable recurrences).
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups, 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: Arc<Plan>,
    cost: Arc<PlanCost>,
    last_used: u64,
}

/// A bounded, LRU, generation-tagged memo of compiled plans and their
/// admission costs.
///
/// Not synchronized: the serving loop owns one cache per fleet. Errors are
/// never cached — an invalid spec fails compilation identically on every
/// lookup.
pub struct PlanCache {
    map: HashMap<PlanKey, Entry>,
    capacity: usize,
    generation: u64,
    tick: u64,
    stats: CacheStats,
}

/// Default number of cached plans ([`PlanCache::new`] via `Default`).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (min 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            generation: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The current machine-belief generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidates every entry by advancing the generation: the O(1)
    /// replan primitive. Entries re-fill lazily on subsequent lookups.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
        self.map.clear();
    }

    /// Looks up (or compiles and caches) the plan and admission cost for
    /// one job. Hits record `plan_cache.hits` and the
    /// `model.cache_lookup_ns` histogram into `metrics`; misses go
    /// through [`compile_timed`] (recording `model.compile_ns`) and
    /// `plan_cache.misses`.
    pub fn lookup_or_compile(
        &mut self,
        spec: &ScheduleSpec,
        machine: &MachineParams,
        rec: &Recurrence,
        n: u64,
        exec_levels: u32,
        metrics: Option<&hpu_obs::MetricsRegistry>,
    ) -> Result<(Arc<Plan>, Arc<PlanCost>), ModelError> {
        let t0 = std::time::Instant::now();
        let key = PlanKey::new(spec, machine, rec, n, exec_levels, self.generation);
        if let Some(key) = key {
            if let Some(entry) = self.map.get_mut(&key) {
                self.tick += 1;
                entry.last_used = self.tick;
                self.stats.hits += 1;
                if let Some(m) = metrics {
                    m.inc("plan_cache.hits", 1);
                    m.observe("model.cache_lookup_ns", t0.elapsed().as_nanos() as f64);
                }
                return Ok((Arc::clone(&entry.plan), Arc::clone(&entry.cost)));
            }
        }
        self.stats.misses += 1;
        if let Some(m) = metrics {
            m.inc("plan_cache.misses", 1);
        }
        let plan = match metrics {
            Some(m) => compile_timed(spec, machine, rec, n, exec_levels, m)?,
            None => compile(spec, machine, rec, n, exec_levels)?,
        };
        let profile = LevelProfile::new(machine, rec, n);
        let cost = plan_cost(&profile, &plan)?;
        let plan = Arc::new(plan);
        let cost = Arc::new(cost);
        if let Some(key) = key {
            if self.map.len() >= self.capacity {
                self.evict_lru(metrics);
            }
            self.tick += 1;
            self.map.insert(
                key,
                Entry {
                    plan: Arc::clone(&plan),
                    cost: Arc::clone(&cost),
                    last_used: self.tick,
                },
            );
        }
        Ok((plan, cost))
    }

    fn evict_lru(&mut self, metrics: Option<&hpu_obs::MetricsRegistry>) {
        let victim = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k);
        if let Some(k) = victim {
            self.map.remove(&k);
            self.stats.evictions += 1;
            if let Some(m) = metrics {
                m.inc("plan_cache.evictions", 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineParams {
        MachineParams::hpu1().with_transfer_cost(100.0, 0.01)
    }

    #[test]
    fn hit_returns_the_fresh_compile_byte_for_byte() {
        let mut cache = PlanCache::new(8);
        let machine = machine();
        let rec = Recurrence::mergesort();
        let n = 1u64 << 12;
        let lx = rec.num_levels(n);
        let spec = ScheduleSpec::Basic { crossover: None };
        let (p1, c1) = cache
            .lookup_or_compile(&spec, &machine, &rec, n, lx, None)
            .unwrap();
        let (p2, c2) = cache
            .lookup_or_compile(&spec, &machine, &rec, n, lx, None)
            .unwrap();
        let fresh = compile(&spec, &machine, &rec, n, lx).unwrap();
        assert_eq!(*p1, fresh);
        assert_eq!(*p2, fresh);
        assert_eq!(c1.total, c2.total);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn canonical_spellings_share_an_entry() {
        let mut cache = PlanCache::new(8);
        let machine = machine();
        let rec = Recurrence::mergesort();
        let n = 1u64 << 12;
        let lx = rec.num_levels(n);
        // HPU1 mergesort derives crossover 10: the explicit spelling must
        // hit the entry the derived spelling filled.
        cache
            .lookup_or_compile(
                &ScheduleSpec::Basic { crossover: None },
                &machine,
                &rec,
                n,
                lx,
                None,
            )
            .unwrap();
        cache
            .lookup_or_compile(
                &ScheduleSpec::Basic {
                    crossover: Some(10),
                },
                &machine,
                &rec,
                n,
                lx,
                None,
            )
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generation_bump_clears_and_refills_lazily() {
        let mut cache = PlanCache::new(8);
        let machine = machine();
        let rec = Recurrence::mergesort();
        let n = 1u64 << 10;
        let lx = rec.num_levels(n);
        let spec = ScheduleSpec::GpuOnly;
        cache
            .lookup_or_compile(&spec, &machine, &rec, n, lx, None)
            .unwrap();
        cache.bump_generation();
        assert_eq!(cache.generation(), 1);
        assert!(cache.is_empty(), "bump drops every entry");
        let (plan, _) = cache
            .lookup_or_compile(&spec, &machine, &rec, n, lx, None)
            .unwrap();
        assert_eq!(*plan, compile(&spec, &machine, &rec, n, lx).unwrap());
        assert_eq!(cache.stats().misses, 2, "refill is a miss, not a hit");
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut cache = PlanCache::new(2);
        let machine = machine();
        let rec = Recurrence::mergesort();
        for n in [1u64 << 8, 1 << 9] {
            cache
                .lookup_or_compile(
                    &ScheduleSpec::CpuParallel,
                    &machine,
                    &rec,
                    n,
                    rec.num_levels(n),
                    None,
                )
                .unwrap();
        }
        // Touch the first entry so the second is coldest.
        cache
            .lookup_or_compile(&ScheduleSpec::CpuParallel, &machine, &rec, 1 << 8, 8, None)
            .unwrap();
        // A third size evicts exactly one entry; the touched one survives.
        cache
            .lookup_or_compile(
                &ScheduleSpec::CpuParallel,
                &machine,
                &rec,
                1 << 10,
                10,
                None,
            )
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        cache
            .lookup_or_compile(&ScheduleSpec::CpuParallel, &machine, &rec, 1 << 8, 8, None)
            .unwrap();
        assert_eq!(cache.stats().hits, 2, "the recently-used entry survived");
    }

    #[test]
    fn custom_cost_fn_bypasses_the_cache() {
        let mut cache = PlanCache::new(8);
        let machine = machine();
        let rec = Recurrence::new(2, 2, CostFn::Custom(std::sync::Arc::new(|n| n)), 1.0).unwrap();
        for _ in 0..2 {
            cache
                .lookup_or_compile(&ScheduleSpec::CpuParallel, &machine, &rec, 256, 8, None)
                .unwrap();
        }
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
        assert!(cache.is_empty(), "opaque recurrences are never stored");
    }

    #[test]
    fn errors_are_not_cached() {
        let mut cache = PlanCache::new(8);
        let machine = machine();
        let rec = Recurrence::mergesort();
        let bad = ScheduleSpec::Advanced {
            alpha: 2.0,
            transfer_level: 2,
        };
        for _ in 0..2 {
            assert!(cache
                .lookup_or_compile(&bad, &machine, &rec, 256, 8, None)
                .is_err());
        }
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn key_hash_is_deterministic_and_generation_sensitive() {
        let machine = machine();
        let rec = Recurrence::mergesort();
        let k0 = PlanKey::new(&ScheduleSpec::GpuOnly, &machine, &rec, 1 << 12, 12, 0).unwrap();
        let k0b = PlanKey::new(&ScheduleSpec::GpuOnly, &machine, &rec, 1 << 12, 12, 0).unwrap();
        let k1 = PlanKey::new(&ScheduleSpec::GpuOnly, &machine, &rec, 1 << 12, 12, 1).unwrap();
        assert_eq!(k0, k0b);
        assert_eq!(k0.hash64(), k0b.hash64());
        assert_ne!(k0.hash64(), k1.hash64());
        assert_eq!(k0.size_bucket(), 12);
    }

    #[test]
    fn one_core_cpu_parallel_keys_as_sequential() {
        let machine = MachineParams::new(1, 64, 0.5).unwrap();
        let rec = Recurrence::mergesort();
        let seq = PlanKey::new(&ScheduleSpec::Sequential, &machine, &rec, 256, 8, 0).unwrap();
        let par = PlanKey::new(&ScheduleSpec::CpuParallel, &machine, &rec, 256, 8, 0).unwrap();
        assert_eq!(seq, par);
    }
}
