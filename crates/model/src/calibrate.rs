//! Closed-loop calibration of the machine parameters.
//!
//! The analytic model is only as good as the measured HPU parameters
//! (§3.2, §6.4): a mis-estimated `γ` silently skews every admission and
//! placement decision built on [`plan_cost`](crate::plan_cost). This
//! module closes the loop: a [`Calibrator`] folds *observed* per-job
//! CPU/GPU/bus times (from the executors' per-level metrics) into
//! EWMA-smoothed multiplicative corrections of `γ`, `λ`, `δ` and the
//! `f(n)` constant, and [`MachineParams::recalibrated`] applies the
//! current corrections so re-pricing and re-compilation use the evidence
//! accumulated so far.
//!
//! # Update rule
//!
//! Every completed job contributes one [`Observation`]: the predicted and
//! observed busy time on each unit, where the prediction was made with the
//! corrections in force at pricing time. With residual ratios
//! `r_cpu = obs_cpu / pred_cpu`, `r_gpu = obs_gpu / pred_gpu`,
//! `r_bus = obs_bus / pred_bus` (a ratio defaults to 1 when its side
//! carries no evidence):
//!
//! * the **work scale** (the `f(n)` constant, which every CPU-side time is
//!   proportional to) moves toward `work · r_cpu`;
//! * the **γ scale** moves toward `gamma · r_cpu / r_gpu` — GPU time is
//!   proportional to `f(n)/γ`, so the part of the GPU residual not
//!   explained by the work residual is attributed to `γ` (GPU slower than
//!   predicted ⇒ smaller `γ`);
//! * the **λ and δ scales** both move toward `scale · r_bus` (one
//!   aggregate bus time cannot separate the latency from the per-word
//!   term, so both move together).
//!
//! Each move is exponentially smoothed:
//! `factor ← (1 − s) · factor + s · target` with smoothing `s` from
//! [`CalibratorConfig::smoothing`], so one noisy job cannot destabilize
//! the corrections.

use crate::params::MachineParams;
use crate::recurrence::Recurrence;

/// Errors of the calibration loop.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrationError {
    /// The EWMA smoothing factor must be finite and in `(0, 1]`.
    InvalidSmoothing(f64),
    /// The replan threshold must be finite and non-negative.
    InvalidThreshold(f64),
    /// An observation carried a non-finite or negative time.
    InvalidObservation {
        /// Which quantity was invalid.
        quantity: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Applying the corrections produced an invalid parameter.
    InvalidCorrection {
        /// Which parameter became invalid.
        param: &'static str,
        /// The corrected value that failed validation.
        value: f64,
    },
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::InvalidSmoothing(s) => {
                write!(f, "smoothing must be in (0, 1], got {s}")
            }
            CalibrationError::InvalidThreshold(t) => {
                write!(f, "replan threshold must be finite and >= 0, got {t}")
            }
            CalibrationError::InvalidObservation { quantity, value } => {
                write!(f, "observation carries invalid {quantity}: {value}")
            }
            CalibrationError::InvalidCorrection { param, value } => {
                write!(f, "correction drives {param} to invalid value {value}")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Configuration of the closed calibration loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratorConfig {
    /// EWMA smoothing factor `s` in `(0, 1]`: how much one job's evidence
    /// moves each correction (1 = jump to the latest evidence).
    pub smoothing: f64,
    /// Replan trigger: when a completed job's `|drift|` (relative
    /// predicted-vs-observed service time error) exceeds this, the
    /// scheduler re-prices and re-compiles still-queued jobs with the
    /// updated corrections.
    pub replan_threshold: f64,
}

impl Default for CalibratorConfig {
    fn default() -> Self {
        CalibratorConfig {
            smoothing: 0.4,
            replan_threshold: 0.25,
        }
    }
}

/// The current multiplicative corrections, the calibration *state*.
///
/// All factors start at 1 (trust the configured parameters) and move as
/// evidence accumulates. `generation` counts replans triggered so far — a
/// job priced under generation `g` saw the corrections as of the `g`-th
/// replan.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Multiplies `γ` (GPU relative core speed).
    pub gamma_scale: f64,
    /// Multiplies `λ` (fixed transfer latency).
    pub lambda_scale: f64,
    /// Multiplies `δ` (per-word transfer cost).
    pub delta_scale: f64,
    /// Multiplies the `f(n)` constant and the leaf cost (CPU-side work).
    pub work_scale: f64,
    /// Completed-job observations folded in so far.
    pub samples: u64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            gamma_scale: 1.0,
            lambda_scale: 1.0,
            delta_scale: 1.0,
            work_scale: 1.0,
            samples: 0,
        }
    }
}

impl Calibration {
    /// Scales a recurrence's divide/combine and leaf costs by the current
    /// work correction, so re-pricing charges the corrected `f(n)`.
    pub fn scale_recurrence(&self, rec: &Recurrence) -> Recurrence {
        let mut out = rec.clone();
        out.f = rec.f.scaled(self.work_scale);
        out.leaf_cost = rec.leaf_cost * self.work_scale;
        out
    }
}

/// One completed job's evidence: predicted (at pricing time, with the
/// then-current corrections) vs observed busy time per unit. GPU time is
/// kernel time only; transfers go under `bus`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Observation {
    /// Predicted CPU busy time.
    pub predicted_cpu: f64,
    /// Predicted GPU kernel time (excluding transfers).
    pub predicted_gpu: f64,
    /// Predicted bus time (`Σ λ + δ·w` over the plan's transfer edges).
    pub predicted_bus: f64,
    /// Observed CPU busy time.
    pub observed_cpu: f64,
    /// Observed GPU kernel time.
    pub observed_gpu: f64,
    /// Observed bus time.
    pub observed_bus: f64,
}

impl Observation {
    fn validate(&self) -> Result<(), CalibrationError> {
        for (quantity, value) in [
            ("predicted_cpu", self.predicted_cpu),
            ("predicted_gpu", self.predicted_gpu),
            ("predicted_bus", self.predicted_bus),
            ("observed_cpu", self.observed_cpu),
            ("observed_gpu", self.observed_gpu),
            ("observed_bus", self.observed_bus),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(CalibrationError::InvalidObservation { quantity, value });
            }
        }
        Ok(())
    }
}

/// Evidence below this is treated as "no signal" rather than a ratio.
const EVIDENCE_EPS: f64 = 1e-12;

/// EWMA-smoothed online estimator of the machine-parameter corrections.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibrator {
    cfg: CalibratorConfig,
    cal: Calibration,
}

impl Calibrator {
    /// Creates a calibrator, validating the configuration.
    pub fn new(cfg: CalibratorConfig) -> Result<Self, CalibrationError> {
        if !(cfg.smoothing > 0.0 && cfg.smoothing <= 1.0 && cfg.smoothing.is_finite()) {
            return Err(CalibrationError::InvalidSmoothing(cfg.smoothing));
        }
        if !(cfg.replan_threshold.is_finite() && cfg.replan_threshold >= 0.0) {
            return Err(CalibrationError::InvalidThreshold(cfg.replan_threshold));
        }
        Ok(Calibrator {
            cfg,
            cal: Calibration::default(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &CalibratorConfig {
        &self.cfg
    }

    /// The current correction state.
    pub fn calibration(&self) -> &Calibration {
        &self.cal
    }

    /// Whether a completed job with this relative drift should trigger a
    /// re-price/re-compile of still-queued jobs.
    pub fn should_replan(&self, drift: f64) -> bool {
        drift.is_finite() && drift.abs() > self.cfg.replan_threshold
    }

    /// Folds one completed job's evidence into the corrections (see the
    /// module docs for the update rule) and returns the updated state.
    pub fn observe(&mut self, obs: &Observation) -> Result<&Calibration, CalibrationError> {
        obs.validate()?;
        let ratio = |observed: f64, predicted: f64| {
            if observed > EVIDENCE_EPS && predicted > EVIDENCE_EPS {
                Some(observed / predicted)
            } else {
                None
            }
        };
        let r_cpu = ratio(obs.observed_cpu, obs.predicted_cpu);
        let r_gpu = ratio(obs.observed_gpu, obs.predicted_gpu);
        let r_bus = ratio(obs.observed_bus, obs.predicted_bus);

        let s = self.cfg.smoothing;
        let ewma = |factor: f64, residual: f64| (1.0 - s) * factor + s * (factor * residual);

        if let Some(rc) = r_cpu {
            self.cal.work_scale = ewma(self.cal.work_scale, rc);
        }
        if let Some(rg) = r_gpu {
            // GPU time ∝ work/γ: attribute to γ the part of the GPU
            // residual not explained by the work residual. Without CPU
            // evidence the whole residual lands on γ.
            let residual = r_cpu.unwrap_or(1.0) / rg;
            self.cal.gamma_scale = ewma(self.cal.gamma_scale, residual);
        }
        if let Some(rb) = r_bus {
            self.cal.lambda_scale = ewma(self.cal.lambda_scale, rb);
            self.cal.delta_scale = ewma(self.cal.delta_scale, rb);
        }
        self.cal.samples += 1;
        Ok(&self.cal)
    }
}

impl MachineParams {
    /// Applies the current corrections: `γ·gamma_scale` (clamped to its
    /// legal `(0, 1]` range — GPU cores never beat CPU cores in the
    /// model), `λ·lambda_scale`, `δ·delta_scale`. `p` and `g` are
    /// structural and never recalibrated. The work correction lives on the
    /// recurrence side; see [`Calibration::scale_recurrence`].
    pub fn recalibrated(&self, cal: &Calibration) -> Result<MachineParams, CalibrationError> {
        let gamma = (self.gamma * cal.gamma_scale).min(1.0);
        if !(gamma > 0.0 && gamma.is_finite()) {
            return Err(CalibrationError::InvalidCorrection {
                param: "gamma",
                value: gamma,
            });
        }
        let lambda = self.lambda * cal.lambda_scale;
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(CalibrationError::InvalidCorrection {
                param: "lambda",
                value: lambda,
            });
        }
        let delta = self.delta * cal.delta_scale;
        if !(delta.is_finite() && delta >= 0.0) {
            return Err(CalibrationError::InvalidCorrection {
                param: "delta",
                value: delta,
            });
        }
        Ok(MachineParams {
            p: self.p,
            g: self.g,
            gamma,
            lambda,
            delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_is_validated() {
        assert!(matches!(
            Calibrator::new(CalibratorConfig {
                smoothing: 0.0,
                ..Default::default()
            }),
            Err(CalibrationError::InvalidSmoothing(_))
        ));
        assert!(matches!(
            Calibrator::new(CalibratorConfig {
                smoothing: f64::NAN,
                ..Default::default()
            }),
            Err(CalibrationError::InvalidSmoothing(_))
        ));
        assert!(matches!(
            Calibrator::new(CalibratorConfig {
                replan_threshold: -1.0,
                ..Default::default()
            }),
            Err(CalibrationError::InvalidThreshold(_))
        ));
        assert!(Calibrator::new(CalibratorConfig::default()).is_ok());
    }

    #[test]
    fn observations_are_validated() {
        let mut c = Calibrator::new(CalibratorConfig::default()).unwrap();
        let bad = Observation {
            observed_cpu: f64::NAN,
            ..Default::default()
        };
        assert!(matches!(
            c.observe(&bad),
            Err(CalibrationError::InvalidObservation {
                quantity: "observed_cpu",
                ..
            })
        ));
        assert_eq!(c.calibration().samples, 0);
    }

    #[test]
    fn perfect_predictions_leave_corrections_alone() {
        let mut c = Calibrator::new(CalibratorConfig::default()).unwrap();
        let obs = Observation {
            predicted_cpu: 10.0,
            predicted_gpu: 5.0,
            predicted_bus: 2.0,
            observed_cpu: 10.0,
            observed_gpu: 5.0,
            observed_bus: 2.0,
        };
        c.observe(&obs).unwrap();
        let cal = c.calibration();
        assert!((cal.work_scale - 1.0).abs() < 1e-12);
        assert!((cal.gamma_scale - 1.0).abs() < 1e-12);
        assert!((cal.lambda_scale - 1.0).abs() < 1e-12);
        assert_eq!(cal.samples, 1);
    }

    /// The acceptance-criteria convergence test: with γ assumed 2× too
    /// fast, repeated observations drive the recalibrated admission cost
    /// (∝ 1/γ) toward the observed service time.
    #[test]
    fn recalibrated_costs_converge_toward_observed_service_times() {
        let true_gamma = 1.0 / 160.0;
        // Deliberately mis-specified: the model believes the GPU is twice
        // as fast as it really is.
        let assumed = MachineParams::new(4, 4096, 2.0 * true_gamma)
            .unwrap()
            .with_transfer_cost(1_000.0, 0.05);
        let mut c = Calibrator::new(CalibratorConfig::default()).unwrap();
        let kernel_work = 1e6; // GPU busy time = kernel_work / γ
        let cpu_work = 5e5;
        let words = 4096.0;

        let mut last_err = f64::INFINITY;
        for round in 0..24 {
            let params = assumed.recalibrated(c.calibration()).unwrap();
            let predicted = Observation {
                predicted_cpu: cpu_work,
                predicted_gpu: kernel_work / params.gamma,
                predicted_bus: params.lambda + params.delta * words,
                observed_cpu: cpu_work,
                observed_gpu: kernel_work / true_gamma,
                observed_bus: 2.0 * (assumed.lambda + assumed.delta * words),
            };
            c.observe(&predicted).unwrap();
            let recal = assumed.recalibrated(c.calibration()).unwrap();
            let err = (kernel_work / recal.gamma - kernel_work / true_gamma).abs()
                / (kernel_work / true_gamma);
            if round > 4 {
                assert!(
                    err <= last_err + 1e-9,
                    "round {round}: error grew {last_err} -> {err}"
                );
            }
            last_err = err;
        }
        let recal = assumed.recalibrated(c.calibration()).unwrap();
        // γ converged to within 5% of the truth; admission cost follows.
        assert!(
            (recal.gamma - true_gamma).abs() / true_gamma < 0.05,
            "gamma {} vs truth {true_gamma}",
            recal.gamma
        );
        // The bus correction converged toward the observed 2× as well.
        assert!((c.calibration().lambda_scale - 2.0).abs() < 0.1);
        assert!((c.calibration().delta_scale - 2.0).abs() < 0.1);
    }

    #[test]
    fn gamma_correction_separates_work_error_from_gpu_error() {
        // Work off by 2× on both units, γ correct: the γ scale must stay
        // at 1 while the work scale moves toward 2.
        let mut c = Calibrator::new(CalibratorConfig {
            smoothing: 1.0,
            ..Default::default()
        })
        .unwrap();
        let obs = Observation {
            predicted_cpu: 10.0,
            predicted_gpu: 40.0,
            predicted_bus: 0.0,
            observed_cpu: 20.0,
            observed_gpu: 80.0,
            observed_bus: 0.0,
        };
        c.observe(&obs).unwrap();
        assert!((c.calibration().work_scale - 2.0).abs() < 1e-12);
        assert!((c.calibration().gamma_scale - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recalibrated_clamps_gamma_to_its_legal_range() {
        let m = MachineParams::new(4, 64, 0.9).unwrap();
        let cal = Calibration {
            gamma_scale: 5.0,
            ..Default::default()
        };
        let r = m.recalibrated(&cal).unwrap();
        assert_eq!(r.gamma, 1.0);
        let bad = Calibration {
            delta_scale: f64::NAN,
            ..Default::default()
        };
        let m = m.with_transfer_cost(1.0, 1.0);
        assert!(matches!(
            m.recalibrated(&bad),
            Err(CalibrationError::InvalidCorrection { param: "delta", .. })
        ));
    }

    #[test]
    fn scale_recurrence_scales_f_and_leaves() {
        let cal = Calibration {
            work_scale: 3.0,
            ..Default::default()
        };
        let rec = cal.scale_recurrence(&Recurrence::mergesort());
        assert_eq!(rec.f.eval(8.0), 24.0);
        assert_eq!(rec.leaf_cost, 3.0);
        // Structure untouched.
        assert_eq!((rec.a, rec.b), (2, 2));
    }
}
