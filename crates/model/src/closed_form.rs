//! Closed-form specialization of the advanced analysis for recurrences with
//! `f(n) = Θ(n^{log_b a})` (paper §5.2.2) — mergesort (`a = b = 2`,
//! `f(n) = n`) being the canonical example.
//!
//! For such recurrences every level performs exactly `W = n^{log_b a}` work,
//! which turns all the level sums into closed forms. This module exists
//! mainly to cross-validate the generic numeric solver in
//! [`crate::advanced`], and to regenerate Figure 3 cheaply.

use crate::params::MachineParams;

/// Closed-form advanced-schedule analysis for `T(n) = a·T(n/a) + c·n` style
/// recurrences (any `a = b ≥ 2`, unit leaf cost).
#[derive(Debug, Clone)]
pub struct ClosedForm {
    machine: MachineParams,
    /// Branching factor (`a = b`).
    pub a: usize,
    /// Input size.
    pub n: u64,
    /// Tree depth `L = log_a n` (continuous).
    pub depth: f64,
}

impl ClosedForm {
    /// Builds the closed-form analysis; `a` is both the branching and the
    /// shrink factor.
    pub fn new(machine: &MachineParams, a: usize, n: u64) -> Self {
        let depth = (n as f64).ln() / (a as f64).ln();
        ClosedForm {
            machine: machine.clone(),
            a,
            n,
            depth,
        }
    }

    /// Per-level work `n^{log_b a} = n` (since `a = b`).
    fn w(&self) -> f64 {
        self.n as f64
    }

    /// `Tc = (α n / p)(log_b n − log_a(p/α) + 1)`.
    pub fn tc(&self, alpha: f64) -> f64 {
        let p = self.machine.p as f64;
        let la = (self.a as f64).ln();
        alpha * self.w() / p * (self.depth - (p / alpha).ln() / la + 1.0)
    }

    /// `Tmax_g = ((1−α) n / (γ g))(log_b n − log_a(g/(1−α)) + 1)`.
    pub fn tmax_g(&self, alpha: f64) -> f64 {
        let m = &self.machine;
        let la = (self.a as f64).ln();
        (1.0 - alpha) * self.w() / (m.gamma * m.g as f64)
            * (self.depth - (m.g as f64 / (1.0 - alpha)).ln() / la + 1.0)
    }

    /// Solves `Tg = Tc` for `y` analytically using the paper's piecewise
    /// `Tg` (cases (i)-(iii) of §5.2.2), clamped to `[0, depth]`.
    pub fn y_of_alpha(&self, alpha: f64) -> f64 {
        let m = &self.machine;
        let a = self.a as f64;
        let w = self.w();
        let tc = self.tc(alpha);
        let share = 1.0 - alpha;

        let y = if share * w < m.g as f64 {
            // Case (i): Tg = (1/γ)(w·a/(a−1)·a^{−y} − 1/(a−1)).
            let rhs = (m.gamma * tc + 1.0 / (a - 1.0)) * (a - 1.0) / (a * w);
            -rhs.ln() / a.ln()
        } else {
            let tmax = self.tmax_g(alpha);
            if tc <= tmax {
                // Case (ii): Tg = (share·w/(γg))(L − y + 1).
                self.depth + 1.0 - tc * m.gamma * m.g as f64 / (share * w)
            } else {
                // Case (iii): Tg = Tmax + w·a/(γ(a−1))·(a^{−y} − share/g).
                let rhs = (tc - tmax) * m.gamma * (a - 1.0) / (a * w) + share / m.g as f64;
                -rhs.ln() / a.ln()
            }
        };
        y.clamp(0.0, self.depth)
    }

    /// `W_g = (1−α)·n·(log_b n − y + 1)`.
    pub fn gpu_work(&self, alpha: f64) -> f64 {
        (1.0 - alpha) * self.w() * (self.depth - self.y_of_alpha(alpha) + 1.0)
    }

    /// Fraction of the total work `n(log_b n + 1)` done by the GPU.
    pub fn gpu_work_fraction(&self, alpha: f64) -> f64 {
        self.gpu_work(alpha) / (self.w() * (self.depth + 1.0))
    }

    /// Grid-search maximizer of [`ClosedForm::gpu_work`].
    pub fn optimal_alpha(&self) -> (f64, f64) {
        let lo = (self.machine.p as f64 / self.w()).max(1e-6);
        let mut best = (lo, f64::NEG_INFINITY);
        for k in 0..=4096 {
            let alpha = lo + (1.0 - lo - 1e-9) * k as f64 / 4096.0;
            let wg = self.gpu_work(alpha);
            if wg > best.1 {
                best = (alpha, wg);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advanced::AdvancedSolver;
    use crate::recurrence::Recurrence;

    fn cf() -> ClosedForm {
        ClosedForm::new(&MachineParams::hpu1(), 2, 1 << 24)
    }

    #[test]
    fn paper_example_values() {
        // §5.2.2 at α = 0.16: Tc ≈ 0.814n, Tmax ≈ 0.42n, y ≈ 9.4 ("≈10"),
        // GPU fraction ≈ 52%.
        let c = cf();
        let n = (1u64 << 24) as f64;
        assert!((c.tc(0.16) / n - 0.8144).abs() < 0.01);
        assert!((c.tmax_g(0.16) / n - 0.418).abs() < 0.01);
        let y = c.y_of_alpha(0.16);
        assert!((y - 9.44).abs() < 0.1, "y = {y}");
        assert!((c.gpu_work_fraction(0.16) - 0.523).abs() < 0.01);
    }

    #[test]
    fn optimal_alpha_near_paper() {
        let (alpha, _) = cf().optimal_alpha();
        assert!((alpha - 0.16).abs() < 0.03, "alpha* = {alpha}");
    }

    #[test]
    fn cross_validates_generic_solver() {
        // The generic (interpolated level sums) solver must agree with the
        // closed forms on mergesort within a small tolerance.
        let c = cf();
        let solver =
            AdvancedSolver::new(&MachineParams::hpu1(), &Recurrence::mergesort(), 1 << 24).unwrap();
        for &alpha in &[0.08, 0.16, 0.3, 0.5, 0.8] {
            let tc_c = c.tc(alpha);
            let tc_g = solver.tc(alpha);
            assert!(
                (tc_c - tc_g).abs() / tc_c < 0.01,
                "tc mismatch at alpha={alpha}: {tc_c} vs {tc_g}"
            );
            let y_c = c.y_of_alpha(alpha);
            let y_g = solver.solve_y(alpha).y;
            assert!(
                (y_c - y_g).abs() < 0.35,
                "y mismatch at alpha={alpha}: closed {y_c} vs generic {y_g}"
            );
        }
    }

    #[test]
    fn gpu_fraction_has_interior_maximum() {
        // Figure 3 (right): the GPU work share rises then falls in α.
        let c = cf();
        let f_low = c.gpu_work_fraction(0.01);
        let f_opt = c.gpu_work_fraction(0.16);
        let f_high = c.gpu_work_fraction(0.9);
        assert!(f_opt > f_low && f_opt > f_high);
    }

    #[test]
    fn hpu2_closed_form_sane() {
        let c = ClosedForm::new(&MachineParams::hpu2(), 2, 1 << 24);
        let (alpha, _) = c.optimal_alpha();
        let y = c.y_of_alpha(alpha);
        assert!(alpha > 0.05 && alpha < 0.9);
        assert!(y > 5.0 && y < 15.0);
    }
}
