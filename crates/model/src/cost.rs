//! Cost functions `f(n)` for the divide-and-combine step of a recurrence.

use std::fmt;
use std::sync::Arc;

/// The per-subproblem divide + combine cost `f(n)` of the recurrence
/// `T(n) = a·T(n/b) + f(n)`.
///
/// Costs are expressed in abstract operations: one CPU core performs one
/// operation per unit of virtual time. The constant factors matter for the
/// schedule analysis only when CPU and GPU implementations differ; the paper
/// assumes the same implementation on both units so constants cancel
/// (§5.2.2). They do *not* cancel against the leaf cost, so constants should
/// be chosen consistently with [`crate::Recurrence::leaf_cost`].
#[derive(Clone)]
pub enum CostFn {
    /// `f(n) = c` — constant divide/combine cost.
    Constant(f64),
    /// `f(n) = c·n` — linear cost, e.g. mergesort's merge.
    Linear(f64),
    /// `f(n) = c·n^e` — polynomial cost, e.g. `Θ(n²)` combine of a
    /// divide-and-conquer matrix multiplication over an `n×n` matrix
    /// parameterized by its side length.
    Power {
        /// Multiplicative constant.
        c: f64,
        /// Exponent.
        e: f64,
    },
    /// `f(n) = c·n·log₂(n)` — linearithmic cost.
    LinLog(f64),
    /// Arbitrary user-supplied cost function.
    Custom(Arc<dyn Fn(f64) -> f64 + Send + Sync>),
}

impl CostFn {
    /// Evaluates `f(n)` for a (possibly fractional) subproblem size.
    ///
    /// Sizes below 1 are clamped to 1 so that continuous-level analysis never
    /// evaluates the cost on a sub-unit problem.
    pub fn eval(&self, n: f64) -> f64 {
        let n = n.max(1.0);
        match self {
            CostFn::Constant(c) => *c,
            CostFn::Linear(c) => c * n,
            CostFn::Power { c, e } => c * n.powf(*e),
            CostFn::LinLog(c) => c * n * n.log2().max(0.0),
            CostFn::Custom(f) => f(n),
        }
    }

    /// `f(n) = n`, the unit-constant linear cost used throughout the paper's
    /// mergesort analysis.
    pub fn linear() -> Self {
        CostFn::Linear(1.0)
    }

    /// Returns the cost scaled by a multiplicative constant: `k·f(n)`.
    /// Used by calibration to fold an observed work correction into the
    /// recurrence without touching its structure.
    pub fn scaled(&self, k: f64) -> Self {
        match self {
            CostFn::Constant(c) => CostFn::Constant(k * c),
            CostFn::Linear(c) => CostFn::Linear(k * c),
            CostFn::Power { c, e } => CostFn::Power { c: k * c, e: *e },
            CostFn::LinLog(c) => CostFn::LinLog(k * c),
            CostFn::Custom(f) => {
                let f = Arc::clone(f);
                CostFn::Custom(Arc::new(move |n| k * f(n)))
            }
        }
    }
}

impl fmt::Debug for CostFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostFn::Constant(c) => write!(f, "Constant({c})"),
            CostFn::Linear(c) => write!(f, "Linear({c})"),
            CostFn::Power { c, e } => write!(f, "Power({c}·n^{e})"),
            CostFn::LinLog(c) => write!(f, "LinLog({c})"),
            CostFn::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_eval() {
        let f = CostFn::linear();
        assert_eq!(f.eval(8.0), 8.0);
        assert_eq!(f.eval(1.0), 1.0);
    }

    #[test]
    fn sub_unit_sizes_clamp_to_one() {
        let f = CostFn::Linear(3.0);
        assert_eq!(f.eval(0.25), 3.0);
        let f = CostFn::LinLog(1.0);
        assert_eq!(f.eval(0.5), 0.0); // log2(1) = 0
    }

    #[test]
    fn power_eval() {
        let f = CostFn::Power { c: 2.0, e: 2.0 };
        assert_eq!(f.eval(3.0), 18.0);
    }

    #[test]
    fn linlog_eval() {
        let f = CostFn::LinLog(1.0);
        assert_eq!(f.eval(8.0), 24.0);
    }

    #[test]
    fn custom_eval() {
        let f = CostFn::Custom(Arc::new(|n| n + 1.0));
        assert_eq!(f.eval(5.0), 6.0);
        assert!(format!("{f:?}").contains("Custom"));
    }

    #[test]
    fn scaled_multiplies_every_shape() {
        assert_eq!(CostFn::Constant(2.0).scaled(3.0).eval(5.0), 6.0);
        assert_eq!(CostFn::Linear(1.0).scaled(2.0).eval(4.0), 8.0);
        assert_eq!(CostFn::Power { c: 1.0, e: 2.0 }.scaled(0.5).eval(4.0), 8.0);
        assert_eq!(CostFn::LinLog(1.0).scaled(2.0).eval(8.0), 48.0);
        let f = CostFn::Custom(Arc::new(|n| n + 1.0)).scaled(10.0);
        assert_eq!(f.eval(4.0), 50.0);
    }

    #[test]
    fn debug_formats() {
        assert!(format!("{:?}", CostFn::linear()).contains("Linear"));
        assert!(format!("{:?}", CostFn::Constant(2.0)).contains("Constant"));
        assert!(format!("{:?}", CostFn::Power { c: 1.0, e: 2.0 }).contains("Power"));
        assert!(format!("{:?}", CostFn::LinLog(1.0)).contains("LinLog"));
    }
}
