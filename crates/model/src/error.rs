//! Error type for invalid model inputs.

use std::fmt;

/// Errors produced when constructing model objects from invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// `p` (number of CPU cores) must be at least 1.
    InvalidCores(usize),
    /// `g` (number of effective GPU cores) must be at least 1.
    InvalidGpuCores(usize),
    /// `γ` must lie strictly in `(0, 1]`: GPU cores are slower than CPU cores.
    InvalidGamma(f64),
    /// Branching factor `a` of the recurrence must be at least 2.
    InvalidBranching(usize),
    /// Shrink factor `b` of the recurrence must be at least 2.
    InvalidShrink(usize),
    /// The problem size must be at least `b` so that at least one division
    /// step exists.
    ProblemTooSmall {
        /// Offending problem size.
        n: u64,
        /// Required minimum (the recurrence's shrink factor `b`).
        min: u64,
    },
    /// A cost function evaluated to a non-finite or negative value.
    InvalidCost(f64),
    /// A split fraction `α` must be finite and lie in `[0, 1]`.
    InvalidAlpha(f64),
    /// A schedule named a recursion-tree level that does not exist.
    InvalidLevel {
        /// Offending level.
        level: u32,
        /// Number of levels the tree actually has.
        levels: u32,
    },
    /// A plan with no segments was handed to the cost model: there is
    /// nothing to price (and nothing to execute).
    EmptyPlan,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidCores(p) => {
                write!(f, "number of CPU cores must be >= 1, got {p}")
            }
            ModelError::InvalidGpuCores(g) => {
                write!(f, "number of GPU cores must be >= 1, got {g}")
            }
            ModelError::InvalidGamma(g) => {
                write!(f, "gamma must be in (0, 1], got {g}")
            }
            ModelError::InvalidBranching(a) => {
                write!(f, "branching factor a must be >= 2, got {a}")
            }
            ModelError::InvalidShrink(b) => {
                write!(f, "shrink factor b must be >= 2, got {b}")
            }
            ModelError::ProblemTooSmall { n, min } => {
                write!(f, "problem size {n} is smaller than the minimum {min}")
            }
            ModelError::InvalidCost(c) => {
                write!(f, "cost function produced an invalid value: {c}")
            }
            ModelError::InvalidAlpha(a) => {
                write!(f, "alpha must be a finite value in [0, 1], got {a}")
            }
            ModelError::InvalidLevel { level, levels } => {
                write!(f, "level {level} is outside the tree ({levels} levels)")
            }
            ModelError::EmptyPlan => {
                write!(f, "plan has no segments")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvalidGamma(2.0);
        assert!(e.to_string().contains("gamma"));
        let e = ModelError::ProblemTooSmall { n: 1, min: 2 };
        assert!(e.to_string().contains('1'));
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::InvalidCores(0));
        assert!(e.to_string().contains("CPU cores"));
    }
}
