//! Per-level timing of the recursion tree (paper §5.1).
//!
//! Level `i = 0` is the root; levels `0 ..= L-1` (with `L = ⌊log_b n⌋`)
//! perform divisions/combinations; below level `L-1` hang the
//! `n^(log_b a)` leaves. [`LevelProfile`] precomputes each level's task
//! count and task cost, and offers continuous (interpolated) suffix sums of
//! level work used by the advanced-schedule solver.

use crate::params::MachineParams;
use crate::recurrence::Recurrence;

/// Precomputed per-level profile of a recursion tree plus the machine it
/// runs on.
#[derive(Debug, Clone)]
pub struct LevelProfile {
    machine: MachineParams,
    rec: Recurrence,
    n: u64,
    /// Number of division levels `L = ⌊log_b n⌋`.
    levels: u32,
    /// `a^i` for `i in 0..L`.
    tasks: Vec<f64>,
    /// `f(n / b^i)` for `i in 0..L`.
    task_cost: Vec<f64>,
    /// Number of leaves `n^(log_b a)`.
    leaves: f64,
}

impl LevelProfile {
    /// Builds the profile for input size `n`.
    pub fn new(machine: &MachineParams, rec: &Recurrence, n: u64) -> Self {
        let levels = rec.num_levels(n);
        let mut tasks = Vec::with_capacity(levels as usize);
        let mut task_cost = Vec::with_capacity(levels as usize);
        for i in 0..levels {
            tasks.push(rec.tasks_at(i as f64));
            task_cost.push(rec.level_task_cost(n, i as f64));
        }
        LevelProfile {
            machine: machine.clone(),
            rec: rec.clone(),
            n,
            levels,
            tasks,
            task_cost,
            leaves: rec.leaves(n),
        }
    }

    /// Input size this profile was built for.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of division levels `L`.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Number of leaves.
    pub fn leaves(&self) -> f64 {
        self.leaves
    }

    /// The machine this profile is for.
    pub fn machine(&self) -> &MachineParams {
        &self.machine
    }

    /// The recurrence this profile is for.
    pub fn recurrence(&self) -> &Recurrence {
        &self.rec
    }

    /// Number of tasks at division level `i`.
    pub fn tasks_at(&self, i: u32) -> f64 {
        self.tasks[i as usize]
    }

    /// Cost of one task at division level `i`.
    pub fn task_cost_at(&self, i: u32) -> f64 {
        self.task_cost[i as usize]
    }

    /// Time for the CPU (all `p` cores) to execute all tasks of level `i`:
    /// `⌈a^i / p⌉ · f(n/b^i)` (paper §5.1 uses `(a^i/p)·f` when saturated
    /// and `f` when not; the ceiling unifies both).
    pub fn cpu_level_time(&self, i: u32) -> f64 {
        let batches = (self.tasks[i as usize] / self.machine.p as f64)
            .ceil()
            .max(1.0);
        batches * self.task_cost[i as usize]
    }

    /// Time for the GPU to execute all tasks of level `i`:
    /// `⌈a^i / g⌉ · f(n/b^i) / γ`.
    pub fn gpu_level_time(&self, i: u32) -> f64 {
        let waves = (self.tasks[i as usize] / self.machine.g as f64)
            .ceil()
            .max(1.0);
        waves * self.task_cost[i as usize] / self.machine.gamma
    }

    /// Time for the CPU to execute all leaves: `⌈leaves / p⌉ · T(1)`.
    pub fn cpu_leaf_time(&self) -> f64 {
        (self.leaves / self.machine.p as f64).ceil().max(1.0) * self.rec.leaf_cost
    }

    /// Time for the GPU to execute all leaves: `⌈leaves / g⌉ · T(1) / γ`.
    pub fn gpu_leaf_time(&self) -> f64 {
        (self.leaves / self.machine.g as f64).ceil().max(1.0) * self.rec.leaf_cost
            / self.machine.gamma
    }

    /// Total level work `Σ_{i=⌈y⌉}^{L-1} a^i f(n/b^i)`, extended to
    /// continuous `y` by linear interpolation of the partial first level.
    ///
    /// Monotone non-increasing in `y`; `suffix_work(0) + leaf work` is the
    /// total sequential work.
    pub fn suffix_work(&self, y: f64) -> f64 {
        let y = y.max(0.0);
        if y >= self.levels as f64 {
            return 0.0;
        }
        let start = y.ceil() as u32;
        let mut sum = 0.0;
        for i in start..self.levels {
            sum += self.tasks[i as usize] * self.task_cost[i as usize];
        }
        // Fractional part of the level just above `start`.
        let frac = start as f64 - y;
        if frac > 0.0 && start >= 1 {
            let i = (start - 1) as usize;
            sum += frac * self.tasks[i] * self.task_cost[i];
        }
        sum
    }

    /// Per-task cost sum `Σ_{i=⌈y⌉}^{min(⌈hi⌉,L)-1} f(n/b^i)`, extended to
    /// continuous bounds by linear interpolation. This is the *critical
    /// path* through levels `[y, hi)`: the time a fully parallel device
    /// needs when every level fits in one wave.
    pub fn suffix_path(&self, y: f64, hi: f64) -> f64 {
        let y = y.max(0.0);
        let hi = hi.min(self.levels as f64);
        if y >= hi {
            return 0.0;
        }
        let start = y.ceil() as u32;
        let stop = hi.floor() as u32;
        if start > stop {
            // Both bounds inside the same unit cell: a single partial
            // level (the general path below would count the two partial
            // ends of the cell separately and overlap).
            let idx = (y.floor() as usize).min(self.task_cost.len() - 1);
            return (hi - y) * self.task_cost[idx];
        }
        let mut sum = 0.0;
        for i in start..stop {
            sum += self.task_cost[i as usize];
        }
        let frac_lo = start as f64 - y;
        if frac_lo > 0.0 && start >= 1 {
            sum += frac_lo * self.task_cost[(start - 1) as usize];
        }
        let frac_hi = hi - stop as f64;
        if frac_hi > 0.0 && (stop as usize) < self.task_cost.len() {
            sum += frac_hi * self.task_cost[stop as usize];
        }
        sum
    }

    /// Total sequential work (1 CPU core): level work plus leaves.
    pub fn total_work(&self) -> f64 {
        self.suffix_work(0.0) + self.leaves * self.rec.leaf_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineParams;

    fn profile(n: u64) -> LevelProfile {
        LevelProfile::new(&MachineParams::hpu1(), &Recurrence::mergesort(), n)
    }

    #[test]
    fn mergesort_level_times() {
        let pr = profile(1 << 10);
        // Level 0: 1 task of cost n -> CPU time n (can't split one task).
        assert_eq!(pr.cpu_level_time(0), 1024.0);
        // Level 4: 16 tasks of cost 64 on 4 cores -> 4 batches of 64.
        assert_eq!(pr.cpu_level_time(4), 4.0 * 64.0);
        // GPU at level 4: 16 tasks < g=4096 -> one wave, 64/γ = 64*160.
        assert_eq!(pr.gpu_level_time(4), 64.0 * 160.0);
    }

    #[test]
    fn leaf_times() {
        let pr = profile(1 << 10);
        assert_eq!(pr.cpu_leaf_time(), 256.0); // 1024 leaves / 4 cores
        assert_eq!(pr.gpu_leaf_time(), 160.0); // one wave of 1024 < 4096
    }

    #[test]
    fn suffix_work_full_equals_level_sum() {
        let pr = profile(1 << 10);
        // Mergesort: every level's work is exactly n.
        assert!((pr.suffix_work(0.0) - 10.0 * 1024.0).abs() < 1e-9);
        assert!((pr.total_work() - 11.0 * 1024.0).abs() < 1e-9);
    }

    #[test]
    fn suffix_work_interpolates() {
        let pr = profile(1 << 10);
        let w35 = pr.suffix_work(3.5);
        let w3 = pr.suffix_work(3.0);
        let w4 = pr.suffix_work(4.0);
        assert!(w4 < w35 && w35 < w3);
        assert!((w35 - (w3 + w4) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn suffix_work_monotone() {
        let pr = profile(1 << 12);
        let mut prev = f64::INFINITY;
        let mut y = 0.0;
        while y <= 12.5 {
            let w = pr.suffix_work(y);
            assert!(w <= prev + 1e-9, "suffix_work must be non-increasing");
            prev = w;
            y += 0.13;
        }
        assert_eq!(pr.suffix_work(12.0), 0.0);
        assert_eq!(pr.suffix_work(20.0), 0.0);
    }

    #[test]
    fn suffix_path_bounds() {
        let pr = profile(1 << 10);
        // Path through all levels: sum of f(n/2^i) = n(2 - 2^{1-L}) ≈ 2n.
        let full = pr.suffix_path(0.0, 10.0);
        let expect: f64 = (0..10).map(|i| 1024.0 / 2f64.powi(i)).sum();
        assert!((full - expect).abs() < 1e-9);
        assert_eq!(pr.suffix_path(5.0, 5.0), 0.0);
        assert_eq!(pr.suffix_path(7.0, 3.0), 0.0);
    }

    #[test]
    fn suffix_path_interpolates_upper_bound() {
        let pr = profile(1 << 10);
        let p1 = pr.suffix_path(2.0, 3.0);
        let p15 = pr.suffix_path(2.0, 2.5);
        assert!((p15 - p1 / 2.0).abs() < 1e-9);
    }
}
