//! # hpu-model — analytical HPU performance model
//!
//! Implementation of the *Hybrid Processing Unit* (HPU) machine model and the
//! work-division analysis of López-Ortiz, Salinger and Suderman,
//! *"Toward a Generic Hybrid CPU-GPU Parallelization of Divide-and-Conquer
//! Algorithms"* (IJNC 4(1), 2014; IPDPS-W/APDCM 2013).
//!
//! The model describes a machine with
//!
//! * a multi-core CPU with `p` cores of normalized speed 1,
//! * a GPU with `g` *effective* cores of relative speed `γ < 1` (and
//!   `γ·g > p`, i.e. higher aggregate throughput than the CPU), and
//! * a link that transfers `w` words in `λ + δ·w` time,
//!
//! and a divide-and-conquer (D&C) algorithm with recurrence
//! `T(n) = a·T(n/b) + f(n)`, `T(1) = Θ(1)`.
//!
//! Two schedules are analyzed:
//!
//! * [`basic`] — each *level* of the recursion tree runs entirely on the unit
//!   that finishes it faster; the crossover is at level `log_a(p/γ)`
//!   (paper §5.1, Figure 1).
//! * [`advanced`] — the input is split at ratio `α` between CPU and GPU which
//!   then run concurrently bottom-up; the GPU stops at level `y(α)` (found by
//!   equating CPU and GPU times) and `α*` maximizes the GPU work `W_g(α)`
//!   (paper §5.2, Figures 2-4).
//!
//! All quantities are in abstract *operations* (the unit in which `f` is
//! expressed); one CPU core executes one operation per unit of virtual time.
//!
//! ```
//! use hpu_model::{MachineParams, Recurrence, advanced::AdvancedSolver};
//!
//! // Mergesort (a = b = 2, f(n) = n) on the paper's HPU1 at n = 2^24.
//! let machine = MachineParams::hpu1();
//! let rec = Recurrence::mergesort();
//! let solver = AdvancedSolver::new(&machine, &rec, 1 << 24).unwrap();
//! let opt = solver.optimize();
//! assert!((opt.alpha - 0.16).abs() < 0.03);         // paper: α* ≈ 0.16
//! assert!((opt.transfer_level - 9.9).abs() < 1.0);  // paper: y ≈ 10
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advanced;
pub mod basic;
pub mod cache;
pub mod calibrate;
pub mod closed_form;
pub mod cost;
pub mod error;
pub mod levels;
pub mod params;
pub mod passes;
pub mod plan;
pub mod prediction;
pub mod recurrence;

pub use advanced::{AdvancedSchedule, AdvancedSolver, GpuSaturation};
pub use basic::BasicSchedule;
pub use cache::{CacheStats, CanonSpec, PlanCache, PlanKey, DEFAULT_PLAN_CACHE_CAPACITY};
pub use calibrate::{Calibration, CalibrationError, Calibrator, CalibratorConfig, Observation};
pub use cost::CostFn;
pub use error::ModelError;
pub use levels::LevelProfile;
pub use params::MachineParams;
pub use passes::{check_invariant, default_passes, PlanPass};
pub use plan::{
    compile, compile_timed, compile_unoptimized, resolve, Direction, Placement, Plan, ScheduleSpec,
    Segment, Transfer,
};
pub use prediction::{
    batched_segment_time, plan_cost, plan_cost_from_level, predict_levels, BatchedSegment,
    LevelPrediction, PlanCost, SegmentCost,
};
pub use recurrence::Recurrence;
