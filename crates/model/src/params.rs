//! Machine parameters of the Hybrid Processing Unit (paper §3.2).

use crate::error::ModelError;

/// Parameters describing an HPU: a `p`-core CPU plus a GPU with `g`
/// effective cores of relative speed `γ`, joined by a link with latency `λ`
/// and per-word cost `δ`.
///
/// CPU core speed is normalized to 1 operation per unit of time; a GPU core
/// executes `γ < 1` operations per unit of time. `g` is *not* the physical
/// number of processing elements but the empirical degree of parallelism
/// observed at saturation (paper §3.2 and §6.4); it is what
/// `hpu-estimate::estimate_g` measures.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineParams {
    /// Number of CPU cores available for processing tasks.
    pub p: usize,
    /// Number of effective GPU cores (saturation parallelism).
    pub g: usize,
    /// Relative speed of one GPU core vs one CPU core, in `(0, 1]`.
    pub gamma: f64,
    /// Fixed latency of a CPU↔GPU transfer (in time units).
    pub lambda: f64,
    /// Per-word cost of a CPU↔GPU transfer (in time units per word).
    pub delta: f64,
}

impl MachineParams {
    /// Creates a parameter set, validating every field.
    pub fn new(p: usize, g: usize, gamma: f64) -> Result<Self, ModelError> {
        if p == 0 {
            return Err(ModelError::InvalidCores(p));
        }
        if g == 0 {
            return Err(ModelError::InvalidGpuCores(g));
        }
        if !(gamma > 0.0 && gamma <= 1.0 && gamma.is_finite()) {
            return Err(ModelError::InvalidGamma(gamma));
        }
        Ok(MachineParams {
            p,
            g,
            gamma,
            lambda: 0.0,
            delta: 0.0,
        })
    }

    /// Sets the communication cost parameters (`λ` fixed latency, `δ` cost
    /// per word). The paper's analysis ignores these (§3.2), so they default
    /// to zero, but the predicted times can optionally include them.
    pub fn with_transfer_cost(mut self, lambda: f64, delta: f64) -> Self {
        self.lambda = lambda;
        self.delta = delta;
        self
    }

    /// The paper's HPU1 platform: Intel Core 2 Extreme Q6850 (4 cores) +
    /// ATI Radeon HD 5970 — `p = 4`, `g = 4096`, `γ⁻¹ = 160` (Table 2).
    pub fn hpu1() -> Self {
        MachineParams::new(4, 4096, 1.0 / 160.0).expect("HPU1 preset is valid")
    }

    /// The paper's HPU2 platform: AMD A6-3650 APU (4 cores) + integrated
    /// ATI Radeon HD 6530D — `p = 4`, `g = 1200`, `γ⁻¹ = 65` (Table 2).
    pub fn hpu2() -> Self {
        MachineParams::new(4, 1200, 1.0 / 65.0).expect("HPU2 preset is valid")
    }

    /// Aggregate GPU throughput `γ·g` in CPU-core-equivalents.
    pub fn gpu_throughput(&self) -> f64 {
        self.gamma * self.g as f64
    }

    /// Whether the GPU has higher raw throughput than the CPU (`γ·g > p`).
    ///
    /// The paper assumes this holds; when it does not, the basic schedule
    /// never transfers to the GPU (§5.1).
    pub fn gpu_worth_using(&self) -> bool {
        self.gpu_throughput() > self.p as f64
    }

    /// Time to move `words` words across the CPU↔GPU link: `λ + δ·w`.
    pub fn transfer_time(&self, words: u64) -> f64 {
        self.lambda + self.delta * words as f64
    }

    /// Time to move several jobs' inputs in **one merged DMA**: a single
    /// latency `λ` plus `δ·Σw`. This is the transfer side of cross-job
    /// kernel batching — coalescing `m` same-shaped uploads saves
    /// `(m−1)·λ` over issuing them separately. An empty batch costs
    /// nothing (no transfer is issued at all).
    pub fn batched_transfer_time(&self, words: &[u64]) -> f64 {
        if words.is_empty() {
            return 0.0;
        }
        let total: u64 = words.iter().sum();
        self.lambda + self.delta * total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_2() {
        let h1 = MachineParams::hpu1();
        assert_eq!(h1.p, 4);
        assert_eq!(h1.g, 4096);
        assert!((1.0 / h1.gamma - 160.0).abs() < 1e-9);

        let h2 = MachineParams::hpu2();
        assert_eq!(h2.p, 4);
        assert_eq!(h2.g, 1200);
        assert!((1.0 / h2.gamma - 65.0).abs() < 1e-9);
    }

    #[test]
    fn presets_satisfy_model_assumptions() {
        // The paper assumes γ·g > p for both platforms.
        assert!(MachineParams::hpu1().gpu_worth_using());
        assert!(MachineParams::hpu2().gpu_worth_using());
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(matches!(
            MachineParams::new(0, 1, 0.5),
            Err(ModelError::InvalidCores(0))
        ));
        assert!(matches!(
            MachineParams::new(1, 0, 0.5),
            Err(ModelError::InvalidGpuCores(0))
        ));
        assert!(matches!(
            MachineParams::new(1, 1, 0.0),
            Err(ModelError::InvalidGamma(_))
        ));
        assert!(matches!(
            MachineParams::new(1, 1, 1.5),
            Err(ModelError::InvalidGamma(_))
        ));
        assert!(matches!(
            MachineParams::new(1, 1, f64::NAN),
            Err(ModelError::InvalidGamma(_))
        ));
    }

    #[test]
    fn gamma_of_one_is_allowed() {
        // Degenerate but legal: GPU cores as fast as CPU cores.
        assert!(MachineParams::new(2, 8, 1.0).is_ok());
    }

    #[test]
    fn transfer_time_is_affine() {
        let m = MachineParams::new(4, 64, 0.1)
            .unwrap()
            .with_transfer_cost(100.0, 0.5);
        assert_eq!(m.transfer_time(0), 100.0);
        assert_eq!(m.transfer_time(10), 105.0);
    }

    #[test]
    fn batched_transfer_pays_one_latency() {
        let m = MachineParams::new(4, 64, 0.1)
            .unwrap()
            .with_transfer_cost(100.0, 0.5);
        assert_eq!(m.batched_transfer_time(&[]), 0.0);
        assert_eq!(m.batched_transfer_time(&[10]), m.transfer_time(10));
        // Three merged uploads: one λ, summed δ·w — two latencies saved.
        let merged = m.batched_transfer_time(&[10, 20, 30]);
        assert_eq!(merged, 100.0 + 0.5 * 60.0);
        let separate: f64 = [10u64, 20, 30].iter().map(|&w| m.transfer_time(w)).sum();
        assert_eq!(separate - merged, 2.0 * 100.0);
    }

    #[test]
    fn throughput() {
        let m = MachineParams::hpu1();
        assert!((m.gpu_throughput() - 4096.0 / 160.0).abs() < 1e-9);
    }
}
