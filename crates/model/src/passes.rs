//! Optimizer passes over the [`Plan`] IR.
//!
//! [`crate::plan::compile`] first lowers a resolved schedule into a *naive*
//! plan — one segment per executor level, each device level bracketed by
//! its own upload/download pair — and then runs the pass pipeline returned
//! by [`default_passes`] to reach the executable form:
//!
//! 1. [`DeadLevelPrune`] drops transfer edges that move zero words; they
//!    charge the link latency `λ` for nothing and can only arise from
//!    hand-built or degenerate plans.
//! 2. [`TransferElision`] removes the download/upload pair at the boundary
//!    of two adjacent device segments when both edges move the same words:
//!    the data is already resident on the device, so the round trip through
//!    the host is pure bus cost.
//! 3. [`SegmentFusion`] merges adjacent segments with compatible placements
//!    into one band, eliminating the per-segment dispatch boundary (and,
//!    for concurrent splits, the per-level barrier between the units).
//!
//! Every pass is a semantics-preserving rewrite with a checkable
//! invariant — [`check_invariant`] verifies that the rewritten plan still
//! tiles the same executor levels, keeps the plan metadata, and that its
//! [`plan_cost`] never increased. `compile` asserts this per pass in debug
//! builds; the golden plan-equivalence suite asserts it for every
//! algorithm × strategy pair.

use crate::levels::LevelProfile;
use crate::plan::{Direction, Placement, Plan, Segment};
use crate::prediction::plan_cost;

/// A named, semantics-preserving rewrite of a [`Plan`].
///
/// Passes must keep the segment tiling (`0 ..= exec_levels`, contiguous),
/// the plan metadata (`n`, `exec_levels`, `resolved`) and may never
/// increase the plan's predicted cost — [`check_invariant`] verifies all
/// three against the input plan.
pub trait PlanPass {
    /// Stable name of the pass, used in CLI dumps and error messages.
    fn name(&self) -> &'static str;
    /// Rewrites the plan.
    fn run(&self, plan: Plan) -> Plan;
}

/// Drops transfer edges that move zero words.
///
/// A zero-word edge still charges the link latency `λ` in the cost model
/// and still forces the interpreter through an upload/download round, so
/// pruning it is a strict improvement whenever `λ > 0` and a no-op
/// otherwise.
pub struct DeadLevelPrune;

impl PlanPass for DeadLevelPrune {
    fn name(&self) -> &'static str {
        "dead-level-prune"
    }

    fn run(&self, mut plan: Plan) -> Plan {
        for seg in &mut plan.segments {
            seg.transfers.retain(|t| t.words > 0);
        }
        plan
    }
}

/// Elides the download/upload round trip between adjacent device segments.
///
/// When segment `i` ends with a download of `w` words and segment `i + 1`
/// (also placed on the device) starts with an upload of the same `w`
/// words, the uploaded region is exactly the region just downloaded — the
/// device already holds it, and the host does not touch it in between.
/// Both edges are removed; the interpreter keeps the device region live
/// across the segment boundary.
pub struct TransferElision;

impl TransferElision {
    fn on_device(seg: &Segment) -> bool {
        !matches!(seg.placement, Placement::Cpu { .. })
    }
}

impl PlanPass for TransferElision {
    fn name(&self) -> &'static str {
        "transfer-elision"
    }

    fn run(&self, mut plan: Plan) -> Plan {
        for i in 1..plan.segments.len() {
            let (head, tail) = plan.segments.split_at_mut(i);
            let prev = &mut head[i - 1];
            let next = &mut tail[0];
            if !Self::on_device(prev) || !Self::on_device(next) {
                continue;
            }
            let down = prev
                .transfers
                .last()
                .filter(|t| t.direction == Direction::ToCpu)
                .map(|t| t.words);
            let up = next
                .transfers
                .first()
                .filter(|t| t.direction == Direction::ToGpu)
                .map(|t| t.words);
            if let (Some(d), Some(u)) = (down, up) {
                if d == u && d > 0 {
                    prev.transfers.pop();
                    next.transfers.remove(0);
                }
            }
        }
        plan
    }
}

/// Merges adjacent segments with compatible placements into one band.
///
/// Two segments fuse when their placements are equivalent — CPU bands on
/// the same core count, any two GPU bands, and concurrent splits with the
/// same `α` and the same integral CPU fraction — and no transfer edge
/// forces a boundary between them (the earlier segment has no download,
/// the later no upload; [`TransferElision`] establishes this for
/// device-resident boundaries). The fused segment keeps the *later*
/// segment's placement, because split task counts are expressed at a
/// band's top level.
pub struct SegmentFusion;

impl SegmentFusion {
    fn placements_fuse(a: &Placement, b: &Placement) -> bool {
        match (a, b) {
            (Placement::Cpu { cores: ca }, Placement::Cpu { cores: cb }) => ca == cb,
            (Placement::Gpu, Placement::Gpu) => true,
            (
                Placement::Split {
                    alpha: aa,
                    cpu_tasks: ca,
                    tasks: ta,
                },
                Placement::Split {
                    alpha: ab,
                    cpu_tasks: cb,
                    tasks: tb,
                },
            ) => {
                // Same requested α and the same integral fraction
                // (cross-multiplied to avoid rounding).
                aa == ab && (*ca as u128) * (*tb as u128) == (*cb as u128) * (*ta as u128)
            }
            _ => false,
        }
    }

    fn boundary_is_clean(prev: &Segment, next: &Segment) -> bool {
        prev.transfers
            .iter()
            .all(|t| t.direction == Direction::ToGpu)
            && next
                .transfers
                .iter()
                .all(|t| t.direction == Direction::ToCpu)
    }
}

impl PlanPass for SegmentFusion {
    fn name(&self) -> &'static str {
        "segment-fusion"
    }

    fn run(&self, mut plan: Plan) -> Plan {
        let mut fused: Vec<Segment> = Vec::with_capacity(plan.segments.len());
        for seg in plan.segments.drain(..) {
            match fused.last_mut() {
                Some(prev)
                    if Self::placements_fuse(&prev.placement, &seg.placement)
                        && Self::boundary_is_clean(prev, &seg) =>
                {
                    prev.last_level = seg.last_level;
                    // Split counts are defined at the band's top level:
                    // the later (higher) segment's placement wins.
                    prev.placement = seg.placement;
                    prev.transfers.extend(seg.transfers);
                }
                _ => fused.push(seg),
            }
        }
        plan.segments = fused;
        plan
    }
}

/// The pipeline [`crate::plan::compile`] runs, in order.
pub fn default_passes() -> Vec<Box<dyn PlanPass>> {
    vec![
        Box::new(DeadLevelPrune),
        Box::new(TransferElision),
        Box::new(SegmentFusion),
    ]
}

/// Verifies the per-pass invariant: `after` must tile the same executor
/// levels as `before`, keep the plan metadata, and cost no more under
/// `profile`. Returns a description of the first violation.
pub fn check_invariant(profile: &LevelProfile, before: &Plan, after: &Plan) -> Result<(), String> {
    if after.n != before.n
        || after.exec_levels != before.exec_levels
        || after.resolved != before.resolved
    {
        return Err("pass changed plan metadata".into());
    }
    let mut next = 0u32;
    for seg in &after.segments {
        if seg.first_level != next || seg.last_level < seg.first_level {
            return Err(format!("segments no longer tile the tree at level {next}"));
        }
        next = seg.last_level + 1;
    }
    if next != after.exec_levels + 1 {
        return Err("segments no longer reach the root".into());
    }
    let old = plan_cost(profile, before).map_err(|e| e.to_string())?;
    let new = plan_cost(profile, after).map_err(|e| e.to_string())?;
    let tol = 1e-9 * old.total.abs().max(1.0);
    if new.total > old.total + tol {
        return Err(format!(
            "pass increased predicted cost: {} -> {}",
            old.total, new.total
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile, compile_unoptimized, Direction, ScheduleSpec, Segment, Transfer};
    use crate::{MachineParams, Recurrence};

    fn machine() -> MachineParams {
        MachineParams::hpu1().with_transfer_cost(100.0, 0.01)
    }

    fn specs() -> Vec<ScheduleSpec> {
        vec![
            ScheduleSpec::Sequential,
            ScheduleSpec::CpuParallel,
            ScheduleSpec::GpuOnly,
            ScheduleSpec::Basic { crossover: None },
            ScheduleSpec::Basic { crossover: Some(2) },
            ScheduleSpec::Basic { crossover: Some(0) },
            ScheduleSpec::Advanced {
                alpha: 0.3,
                transfer_level: 3,
            },
            ScheduleSpec::AdvancedAuto,
        ]
    }

    #[test]
    fn pipeline_reproduces_the_monolithic_shapes() {
        // The staged compiler (naive lowering + passes) must produce
        // byte-identical plans to the historical monolithic compile().
        let machine = machine();
        let rec = Recurrence::mergesort();
        let n = 1u64 << 12;
        let lx = rec.num_levels(n);
        for spec in specs() {
            let unopt = compile_unoptimized(&spec, &machine, &rec, n, lx).unwrap();
            let mut plan = unopt.clone();
            for pass in default_passes() {
                plan = pass.run(plan);
            }
            let compiled = compile(&spec, &machine, &rec, n, lx).unwrap();
            assert_eq!(plan, compiled, "{spec:?}");
        }
    }

    #[test]
    fn every_pass_is_cost_monotone_for_every_spec() {
        let machine = machine();
        let rec = Recurrence::mergesort();
        let n = 1u64 << 12;
        let lx = rec.num_levels(n);
        let profile = crate::LevelProfile::new(&machine, &rec, n);
        for spec in specs() {
            let mut plan = compile_unoptimized(&spec, &machine, &rec, n, lx).unwrap();
            for pass in default_passes() {
                let before = plan.clone();
                plan = pass.run(plan);
                check_invariant(&profile, &before, &plan)
                    .unwrap_or_else(|e| panic!("{spec:?} / {}: {e}", pass.name()));
            }
        }
    }

    #[test]
    fn elision_drops_interior_round_trips_only() {
        let rec = Recurrence::mergesort();
        let n = 1u64 << 8;
        let lx = rec.num_levels(n);
        let unopt = compile_unoptimized(&ScheduleSpec::GpuOnly, &machine(), &rec, n, lx).unwrap();
        let elided = TransferElision.run(DeadLevelPrune.run(unopt));
        // First segment keeps the upload, last keeps the download, no
        // interior edges remain.
        let edges: Vec<_> = elided.segments.iter().flat_map(|s| &s.transfers).collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].direction, Direction::ToGpu);
        assert_eq!(edges[0].level, 0);
        assert_eq!(edges[1].direction, Direction::ToCpu);
        assert_eq!(edges[1].level, lx);
    }

    #[test]
    fn elision_keeps_mismatched_words() {
        // A download of w words followed by an upload of w' ≠ w is a real
        // data movement and must survive.
        let mut plan = Plan {
            n: 16,
            exec_levels: 1,
            segments: vec![
                Segment {
                    first_level: 0,
                    last_level: 0,
                    placement: Placement::Gpu,
                    transfers: vec![
                        Transfer {
                            direction: Direction::ToGpu,
                            level: 0,
                            words: 16,
                        },
                        Transfer {
                            direction: Direction::ToCpu,
                            level: 0,
                            words: 16,
                        },
                    ],
                },
                Segment {
                    first_level: 1,
                    last_level: 1,
                    placement: Placement::Gpu,
                    transfers: vec![
                        Transfer {
                            direction: Direction::ToGpu,
                            level: 1,
                            words: 8,
                        },
                        Transfer {
                            direction: Direction::ToCpu,
                            level: 1,
                            words: 8,
                        },
                    ],
                },
            ],
            resolved: ScheduleSpec::GpuOnly,
        };
        plan = TransferElision.run(plan);
        assert_eq!(
            plan.segments.iter().flat_map(|s| &s.transfers).count(),
            4,
            "mismatched words must not elide"
        );
    }

    #[test]
    fn dead_prune_drops_zero_word_edges() {
        let plan = Plan {
            n: 8,
            exec_levels: 0,
            segments: vec![Segment {
                first_level: 0,
                last_level: 0,
                placement: Placement::Gpu,
                transfers: vec![
                    Transfer {
                        direction: Direction::ToGpu,
                        level: 0,
                        words: 0,
                    },
                    Transfer {
                        direction: Direction::ToGpu,
                        level: 0,
                        words: 8,
                    },
                    Transfer {
                        direction: Direction::ToCpu,
                        level: 0,
                        words: 8,
                    },
                ],
            }],
            resolved: ScheduleSpec::GpuOnly,
        };
        let pruned = DeadLevelPrune.run(plan);
        assert_eq!(pruned.segments[0].transfers.len(), 2);
        assert!(pruned.segments[0].transfers.iter().all(|t| t.words > 0));
    }

    #[test]
    fn fusion_respects_transfer_boundaries() {
        // Two GPU segments whose boundary still carries a (non-elidable)
        // round trip must stay separate: merging would reorder the edges
        // around the band.
        let plan = Plan {
            n: 16,
            exec_levels: 1,
            segments: vec![
                Segment {
                    first_level: 0,
                    last_level: 0,
                    placement: Placement::Gpu,
                    transfers: vec![Transfer {
                        direction: Direction::ToCpu,
                        level: 0,
                        words: 16,
                    }],
                },
                Segment {
                    first_level: 1,
                    last_level: 1,
                    placement: Placement::Gpu,
                    transfers: vec![Transfer {
                        direction: Direction::ToGpu,
                        level: 1,
                        words: 8,
                    }],
                },
            ],
            resolved: ScheduleSpec::GpuOnly,
        };
        let fused = SegmentFusion.run(plan);
        assert_eq!(fused.segments.len(), 2);
    }

    #[test]
    fn fusion_keeps_top_level_split_counts() {
        let rec = Recurrence::mergesort();
        let n = 1u64 << 12;
        let lx = rec.num_levels(n);
        let spec = ScheduleSpec::Advanced {
            alpha: 0.3,
            transfer_level: 3,
        };
        let unopt = compile_unoptimized(&spec, &machine(), &rec, n, lx).unwrap();
        let mut plan = unopt;
        for pass in default_passes() {
            plan = pass.run(plan);
        }
        match plan.segments[0].placement {
            Placement::Split {
                cpu_tasks, tasks, ..
            } => {
                assert_eq!(tasks, 8);
                assert_eq!(cpu_tasks, 2);
            }
            ref other => panic!("expected a split, got {other:?}"),
        }
    }

    #[test]
    fn invariant_rejects_a_cost_increase() {
        let machine = machine();
        let rec = Recurrence::mergesort();
        let n = 1u64 << 10;
        let lx = rec.num_levels(n);
        let profile = crate::LevelProfile::new(&machine, &rec, n);
        let plan = compile(&ScheduleSpec::GpuOnly, &machine, &rec, n, lx).unwrap();
        let mut worse = plan.clone();
        worse.segments[0].transfers.push(Transfer {
            direction: Direction::ToCpu,
            level: lx,
            words: n,
        });
        assert!(check_invariant(&profile, &plan, &worse).is_err());
        // And a broken tiling.
        let mut torn = plan.clone();
        torn.segments[0].last_level = 0;
        assert!(check_invariant(&profile, &plan, &torn).is_err());
    }
}
