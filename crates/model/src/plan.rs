//! The execution-plan IR: schedules compiled to explicit level bands.
//!
//! Every work-division strategy of the paper — sequential, CPU-parallel,
//! GPU-only, the basic crossover split (§5.1) and the advanced `(α, y)`
//! concurrent split (§5.2) — is expressible as an ordered list of
//! [`Segment`]s, each covering a contiguous band of *bottom-up executor
//! levels* (level 0 = base cases/leaves, level `k` = combines producing
//! chunks of `base · a^k` elements) with one [`Placement`] and explicit
//! [`Transfer`] edges. [`compile`] subsumes the per-strategy derivations:
//! the §5.1 crossover (including its degrade-to-CPU cases) and the §5.2
//! `(α*, y)` optimization both become compilations into this one IR, so the
//! executors and [`crate::predict_levels`] can never disagree about
//! placement.

use crate::advanced::AdvancedSolver;
use crate::basic::BasicSchedule;
use crate::error::ModelError;
use crate::params::MachineParams;
use crate::recurrence::Recurrence;

/// A schedule to compile: the model-side mirror of `hpu-core`'s `Strategy`,
/// plus the fully model-derived [`ScheduleSpec::AdvancedAuto`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleSpec {
    /// Everything on one CPU core.
    Sequential,
    /// All levels on all `p` CPU cores.
    CpuParallel,
    /// All levels on the GPU, one round trip of the whole input.
    GpuOnly,
    /// Basic hybrid (§5.1): levels below the crossover on the GPU, the rest
    /// on the CPU. `None` derives `⌈log_a(p/γ)⌉` from the machine.
    Basic {
        /// First top-down level executed on the GPU.
        crossover: Option<u32>,
    },
    /// Advanced hybrid (§5.2): `α : 1−α` concurrent split up to the
    /// transfer level, CPU finishes the top.
    Advanced {
        /// Fraction of subproblems assigned to the CPU.
        alpha: f64,
        /// Top-down level at which the GPU hands results back.
        transfer_level: u32,
    },
    /// Advanced hybrid with `(α*, y)` derived by the §5.2.2 optimization.
    AdvancedAuto,
}

/// Direction of a [`Transfer`] edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Host → device (upload).
    ToGpu,
    /// Device → host (download).
    ToCpu,
}

/// One explicit CPU↔GPU transfer edge of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// Edge direction.
    pub direction: Direction,
    /// Bottom-up executor level the edge is attributed to: uploads precede
    /// any device work (level 0), downloads carry back the chunks of the
    /// level they follow.
    pub level: u32,
    /// Words moved.
    pub words: u64,
}

/// Where a segment's levels execute.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// All tasks of each level on `cores` CPU cores (1 = sequential).
    Cpu {
        /// Number of cores the level waves are divided among.
        cores: usize,
    },
    /// All tasks of each level on the GPU.
    Gpu,
    /// Concurrent `α : 1−α` split: the first `cpu_tasks` of the `tasks`
    /// chunks at the segment's top level belong to the CPU, the rest to the
    /// GPU; both climb their share independently.
    Split {
        /// The requested CPU fraction (before integral rounding).
        alpha: f64,
        /// Chunks at the segment's top level assigned to the CPU
        /// (`round(α · tasks)` clamped so both sides get work).
        cpu_tasks: u64,
        /// Total chunks at the segment's top level (`a^y`).
        tasks: u64,
    },
}

/// A contiguous band of bottom-up executor levels with one placement.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// First (lowest) executor level of the band, inclusive.
    pub first_level: u32,
    /// Last (highest) executor level of the band, inclusive.
    pub last_level: u32,
    /// Where the band executes.
    pub placement: Placement,
    /// Transfer edges owned by this band ([`Direction::ToGpu`] edges run
    /// before the band, [`Direction::ToCpu`] edges after).
    pub transfers: Vec<Transfer>,
}

/// A compiled execution plan: ordered bottom-up segments tiling executor
/// levels `0 ..= exec_levels`.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Input size the plan was compiled for.
    pub n: u64,
    /// The executor's combine-level count (`log_a(n / base_chunk)`).
    pub exec_levels: u32,
    /// Bottom-up segments; contiguous and non-overlapping.
    pub segments: Vec<Segment>,
    /// The schedule after parameter resolution (derived crossover filled
    /// in, `AdvancedAuto` resolved to its `(α, y)`, degrades applied).
    pub resolved: ScheduleSpec,
}

impl Plan {
    /// A single-segment host-only plan (used by the native executor and as
    /// the degrade target of [`ScheduleSpec::Basic`]).
    pub fn host_only(n: u64, exec_levels: u32, cores: usize, resolved: ScheduleSpec) -> Plan {
        Plan {
            n,
            exec_levels,
            segments: vec![Segment {
                first_level: 0,
                last_level: exec_levels,
                placement: Placement::Cpu { cores },
                transfers: Vec::new(),
            }],
            resolved,
        }
    }

    /// Whether any segment places work on the device — such a plan is
    /// exposed to GPU/bus faults and has a CPU-only degradation target.
    pub fn uses_gpu(&self) -> bool {
        self.segments
            .iter()
            .any(|s| !matches!(s.placement, Placement::Cpu { .. }))
    }

    /// The segment covering a bottom-up executor level, with its index.
    pub fn segment_of(&self, level: u32) -> Option<(usize, &Segment)> {
        self.segments
            .iter()
            .enumerate()
            .find(|(_, s)| s.first_level <= level && level <= s.last_level)
    }

    /// Total words moved over the bus by the plan's transfer edges.
    pub fn transfer_words(&self) -> u64 {
        self.segments
            .iter()
            .flat_map(|s| &s.transfers)
            .map(|t| t.words)
            .sum()
    }

    /// The *fixed* (size-independent) device cost of segment `index`:
    /// one transfer latency `lambda` per transfer edge plus one kernel
    /// `launch_overhead` per level of the band. These are the costs
    /// cross-job batching amortizes — when `m` same-shaped segments
    /// coalesce into one launch with merged transfers, `m − 1` copies of
    /// this fixed cost disappear (the `δ·w` payload and the kernel work
    /// itself are paid per member regardless). A CPU band has no fixed
    /// device cost. Out-of-range indices cost nothing.
    pub fn segment_fixed_cost(&self, index: usize, lambda: f64, launch_overhead: f64) -> f64 {
        let Some(seg) = self.segments.get(index) else {
            return 0.0;
        };
        if matches!(seg.placement, Placement::Cpu { .. }) {
            return 0.0;
        }
        let launches = (seg.last_level - seg.first_level + 1) as f64;
        lambda * seg.transfers.len() as f64 + launch_overhead * launches
    }

    /// The suffix of this plan that remains after the first `level`
    /// bottom-up executor levels completed — the checkpoint/restart primitive.
    ///
    /// Every segment boundary is a consistent cut (a band finishes all its
    /// levels before the next starts, and downloads hand results back to
    /// the host), so a job checkpointed after `level` levels can resume by
    /// interpreting only the returned plan. `n`, `exec_levels` and
    /// `resolved` are preserved — the suffix describes the *same* job,
    /// just with the completed bands removed:
    ///
    /// * segments entirely below the cut are dropped (with their
    ///   transfers: the checkpointed state lives on the host);
    /// * the segment containing the cut is clipped to start at `level`,
    ///   keeping its upload edges (a resuming node must re-stage the data
    ///   onto its device) and only those download edges at or above the
    ///   cut.
    ///
    /// `resume_from_level(0)` is the identity; a `level` above
    /// `exec_levels` is rejected with [`ModelError::InvalidLevel`].
    pub fn resume_from_level(&self, level: u32) -> Result<Plan, ModelError> {
        if level > self.exec_levels {
            return Err(ModelError::InvalidLevel {
                level,
                levels: self.exec_levels,
            });
        }
        let segments = self
            .segments
            .iter()
            .filter(|s| s.last_level >= level)
            .map(|s| {
                if s.first_level >= level {
                    return s.clone();
                }
                Segment {
                    first_level: level,
                    last_level: s.last_level,
                    placement: s.placement.clone(),
                    transfers: s
                        .transfers
                        .iter()
                        .filter(|t| t.direction == Direction::ToGpu || t.level >= level)
                        .cloned()
                        .collect(),
                }
            })
            .collect();
        Ok(Plan {
            n: self.n,
            exec_levels: self.exec_levels,
            segments,
            resolved: self.resolved.clone(),
        })
    }
}

/// [`compile`] with wall-clock sampling: the elapsed time is recorded
/// into `metrics` as the `model.compile_ns` histogram (plus a
/// `model.compiles` counter), so serving fleets can watch
/// plan-compilation cost — part of every job's admission latency —
/// through the live registry. Both entry points share one pipeline
/// (resolve → lower → optimize); this wrapper only times it.
pub fn compile_timed(
    spec: &ScheduleSpec,
    machine: &MachineParams,
    rec: &Recurrence,
    n: u64,
    exec_levels: u32,
    metrics: &hpu_obs::MetricsRegistry,
) -> Result<Plan, ModelError> {
    let t0 = std::time::Instant::now();
    let result = compile(spec, machine, rec, n, exec_levels);
    metrics.observe("model.compile_ns", t0.elapsed().as_nanos() as f64);
    metrics.inc("model.compiles", 1);
    result
}

/// Compiles a schedule into an executable [`Plan`] for input size `n` with
/// `exec_levels` bottom-up combine levels.
///
/// The compiler is staged: [`resolve`] pins every derived parameter,
/// [`compile_unoptimized`] lowers the resolved schedule into a naive
/// one-segment-per-level plan, and the [`crate::passes::default_passes`]
/// pipeline (dead-level pruning, transfer elision, segment fusion) rewrites
/// it into the executable form. Debug builds assert the per-pass invariant
/// — cost never increases, the level tiling and metadata are preserved —
/// against the unoptimized plan.
///
/// Parameter resolution mirrors the executors' historical behavior exactly:
///
/// * `Basic { crossover: None }` derives `⌈log_a(p/γ)⌉`; a machine not
///   worth using the GPU on (`γ·g < p`), or a crossover below the leaves
///   (`c > exec_levels`), degrades to a CPU-parallel plan rather than
///   erroring (paper §5.1).
/// * `Advanced` validates its inputs: `α` must be finite in `[0, 1]`
///   ([`ModelError::InvalidAlpha`]) and the transfer level must name a real
///   level of the tree, `1 ..= exec_levels` ([`ModelError::InvalidLevel`]).
/// * `AdvancedAuto` runs the §5.2.2 optimization and rounds `y` to the
///   nearest executable level.
pub fn compile(
    spec: &ScheduleSpec,
    machine: &MachineParams,
    rec: &Recurrence,
    n: u64,
    exec_levels: u32,
) -> Result<Plan, ModelError> {
    let mut plan = compile_unoptimized(spec, machine, rec, n, exec_levels)?;
    #[cfg(debug_assertions)]
    let profile = crate::levels::LevelProfile::new(machine, rec, n);
    for pass in crate::passes::default_passes() {
        #[cfg(debug_assertions)]
        let before = plan.clone();
        plan = pass.run(plan);
        #[cfg(debug_assertions)]
        if let Err(e) = crate::passes::check_invariant(&profile, &before, &plan) {
            panic!("optimizer pass {} violated its invariant: {e}", pass.name());
        }
    }
    Ok(plan)
}

/// Resolves every derived parameter of a schedule without compiling it:
/// the basic crossover is derived (and its degrade-to-CPU cases become
/// [`ScheduleSpec::CpuParallel`]), `AdvancedAuto` runs the §5.2.2
/// optimization down to an explicit `(α, y)`, and `Advanced` inputs are
/// validated. The result is what [`Plan::resolved`] will carry.
pub fn resolve(
    spec: &ScheduleSpec,
    machine: &MachineParams,
    rec: &Recurrence,
    n: u64,
    exec_levels: u32,
) -> Result<ScheduleSpec, ModelError> {
    let lx = exec_levels;
    match spec {
        ScheduleSpec::Sequential => Ok(ScheduleSpec::Sequential),
        ScheduleSpec::CpuParallel => Ok(ScheduleSpec::CpuParallel),
        ScheduleSpec::GpuOnly => Ok(ScheduleSpec::GpuOnly),
        ScheduleSpec::Basic { crossover } => {
            let cross = match crossover {
                Some(c) => Some(*c),
                None => BasicSchedule::derive(machine, rec).crossover,
            };
            match cross {
                // GPU not worth using, or crossover below the leaves:
                // degrade to CPU-parallel (paper §5.1).
                None => Ok(ScheduleSpec::CpuParallel),
                Some(c) if c > lx => Ok(ScheduleSpec::CpuParallel),
                Some(c) => Ok(ScheduleSpec::Basic { crossover: Some(c) }),
            }
        }
        ScheduleSpec::Advanced {
            alpha,
            transfer_level,
        } => {
            let y = *transfer_level;
            if y == 0 || y > lx {
                return Err(ModelError::InvalidLevel {
                    level: y,
                    levels: lx,
                });
            }
            if !(0.0..=1.0).contains(alpha) || !alpha.is_finite() {
                return Err(ModelError::InvalidAlpha(*alpha));
            }
            advanced_division(rec, n, y, *alpha, lx)?;
            Ok(ScheduleSpec::Advanced {
                alpha: *alpha,
                transfer_level: y,
            })
        }
        ScheduleSpec::AdvancedAuto => {
            let solver = AdvancedSolver::new(machine, rec, n)?;
            let opt = solver.optimize();
            let y = (opt.transfer_level.round() as u32).clamp(1, lx.max(1));
            resolve(
                &ScheduleSpec::Advanced {
                    alpha: opt.alpha,
                    transfer_level: y,
                },
                machine,
                rec,
                n,
                lx,
            )
        }
    }
}

/// The integral `(α, y)` division (paper §5.2): chunks at the transfer
/// level, the CPU's share of them, and the words the GPU's share moves.
fn advanced_division(
    rec: &Recurrence,
    n: u64,
    y: u32,
    alpha: f64,
    lx: u32,
) -> Result<(u64, u64, u64), ModelError> {
    let tasks_y = (rec.a as u64)
        .checked_pow(y)
        .ok_or(ModelError::InvalidLevel {
            level: y,
            levels: lx,
        })?;
    if tasks_y < 2 {
        return Err(ModelError::InvalidLevel {
            level: y,
            levels: lx,
        });
    }
    let chunk_y = n / tasks_y;
    let cpu_tasks = ((alpha * tasks_y as f64).round() as u64).clamp(1, tasks_y - 1);
    let gpu_words = n - cpu_tasks * chunk_y;
    Ok((cpu_tasks, tasks_y, gpu_words))
}

/// Compiles a schedule into the *unoptimized* plan IR: one segment per
/// executor level, each device level bracketed by its own upload/download
/// pair. This is the pass pipeline's input — useful for inspecting what
/// each optimizer pass does ([`repro plan --passes`]) and for asserting
/// the cost-monotonicity invariant against the optimized plan.
///
/// [`repro plan --passes`]: crate::passes
pub fn compile_unoptimized(
    spec: &ScheduleSpec,
    machine: &MachineParams,
    rec: &Recurrence,
    n: u64,
    exec_levels: u32,
) -> Result<Plan, ModelError> {
    let resolved = resolve(spec, machine, rec, n, exec_levels)?;
    lower(&resolved, machine, rec, n, exec_levels)
}

/// One naive per-level segment.
fn level_segment(level: u32, placement: Placement, words: u64) -> Segment {
    let transfers = if matches!(placement, Placement::Cpu { .. }) {
        Vec::new()
    } else {
        vec![
            Transfer {
                direction: Direction::ToGpu,
                level,
                words,
            },
            Transfer {
                direction: Direction::ToCpu,
                level,
                words,
            },
        ]
    };
    Segment {
        first_level: level,
        last_level: level,
        placement,
        transfers,
    }
}

/// Lowers a [`resolve`]d schedule into the naive per-level plan IR.
///
/// Device levels each carry their own upload/download round trip; split
/// levels all carry the band-top task counts (the integral fraction is
/// identical at every level of the band, and counts are defined at a
/// band's top level, which is what segment fusion preserves).
fn lower(
    resolved: &ScheduleSpec,
    machine: &MachineParams,
    rec: &Recurrence,
    n: u64,
    exec_levels: u32,
) -> Result<Plan, ModelError> {
    let lx = exec_levels;
    let segments = match resolved {
        ScheduleSpec::Sequential => (0..=lx)
            .map(|k| level_segment(k, Placement::Cpu { cores: 1 }, 0))
            .collect(),
        ScheduleSpec::CpuParallel => (0..=lx)
            .map(|k| level_segment(k, Placement::Cpu { cores: machine.p }, 0))
            .collect(),
        ScheduleSpec::GpuOnly => (0..=lx)
            .map(|k| level_segment(k, Placement::Gpu, n))
            .collect(),
        ScheduleSpec::Basic { crossover: Some(c) } => {
            let split = lx - c;
            (0..=lx)
                .map(|k| {
                    if k <= split {
                        level_segment(k, Placement::Gpu, n)
                    } else {
                        level_segment(k, Placement::Cpu { cores: machine.p }, 0)
                    }
                })
                .collect()
        }
        ScheduleSpec::Advanced {
            alpha,
            transfer_level,
        } => {
            let y = *transfer_level;
            let (cpu_tasks, tasks_y, gpu_words) = advanced_division(rec, n, y, *alpha, lx)?;
            let split = lx - y;
            (0..=lx)
                .map(|k| {
                    if k <= split {
                        level_segment(
                            k,
                            Placement::Split {
                                alpha: *alpha,
                                cpu_tasks,
                                tasks: tasks_y,
                            },
                            gpu_words,
                        )
                    } else {
                        level_segment(k, Placement::Cpu { cores: machine.p }, 0)
                    }
                })
                .collect()
        }
        // resolve() never leaves these unresolved.
        ScheduleSpec::Basic { crossover: None } | ScheduleSpec::AdvancedAuto => {
            unreachable!("lower() requires a resolve()d schedule")
        }
    };
    Ok(Plan {
        n,
        exec_levels: lx,
        segments,
        resolved: resolved.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mergesort_plan(spec: &ScheduleSpec, n: u64) -> Result<Plan, ModelError> {
        let rec = Recurrence::mergesort();
        let lx = rec.num_levels(n);
        compile(spec, &MachineParams::hpu1(), &rec, n, lx)
    }

    fn segments_tile_the_tree(plan: &Plan) {
        let mut next = 0;
        for seg in &plan.segments {
            assert_eq!(seg.first_level, next, "segments must be contiguous");
            assert!(seg.last_level >= seg.first_level);
            next = seg.last_level + 1;
        }
        assert_eq!(next, plan.exec_levels + 1, "segments must reach the root");
    }

    #[test]
    fn pure_plans_are_single_segments() {
        for (spec, cores) in [
            (ScheduleSpec::Sequential, 1usize),
            (ScheduleSpec::CpuParallel, 4),
        ] {
            let plan = mergesort_plan(&spec, 1 << 12).unwrap();
            segments_tile_the_tree(&plan);
            assert_eq!(plan.segments.len(), 1);
            assert_eq!(plan.segments[0].placement, Placement::Cpu { cores });
            assert!(plan.segments[0].transfers.is_empty());
            assert_eq!(plan.transfer_words(), 0);
        }
        let plan = mergesort_plan(&ScheduleSpec::GpuOnly, 1 << 12).unwrap();
        segments_tile_the_tree(&plan);
        assert_eq!(plan.segments[0].placement, Placement::Gpu);
        assert_eq!(plan.transfer_words(), 2 << 12);
        // Download carries the finished root: attributed to the top level.
        assert_eq!(plan.segments[0].transfers[1].level, 12);
    }

    #[test]
    fn basic_compiles_to_gpu_band_plus_cpu_band() {
        // HPU1 mergesort: derived crossover 10.
        let plan = mergesort_plan(&ScheduleSpec::Basic { crossover: None }, 1 << 12).unwrap();
        segments_tile_the_tree(&plan);
        assert_eq!(
            plan.resolved,
            ScheduleSpec::Basic {
                crossover: Some(10)
            }
        );
        assert_eq!(plan.segments.len(), 2);
        assert_eq!(plan.segments[0].placement, Placement::Gpu);
        assert_eq!(plan.segments[0].last_level, 2); // 12 - 10
        assert_eq!(plan.segments[0].transfers[1].level, 2);
        assert_eq!(plan.segments[1].placement, Placement::Cpu { cores: 4 });
        assert_eq!(plan.segments[1].first_level, 3);
    }

    #[test]
    fn basic_degrades_when_gpu_not_worth_using() {
        // γ·g = 1 < p: no crossover exists.
        let weak = MachineParams::new(4, 100, 0.01).unwrap();
        let rec = Recurrence::mergesort();
        let plan = compile(
            &ScheduleSpec::Basic { crossover: None },
            &weak,
            &rec,
            256,
            8,
        )
        .unwrap();
        assert_eq!(plan.resolved, ScheduleSpec::CpuParallel);
        assert_eq!(plan.segments.len(), 1);
        // An explicit crossover below the leaves degrades the same way.
        let plan = mergesort_plan(
            &ScheduleSpec::Basic {
                crossover: Some(99),
            },
            256,
        )
        .unwrap();
        assert_eq!(plan.resolved, ScheduleSpec::CpuParallel);
    }

    #[test]
    fn resume_from_level_trims_completed_bands() {
        // Basic on 2^12: GPU band 0..=2 (upload + download), CPU band 3..=12.
        let plan = mergesort_plan(&ScheduleSpec::Basic { crossover: None }, 1 << 12).unwrap();
        // Identity at level 0.
        assert_eq!(plan.resume_from_level(0).unwrap(), plan);
        // Cut at the band boundary: the GPU band (and its transfers) is
        // gone, the CPU band survives untouched.
        let suffix = plan.resume_from_level(3).unwrap();
        assert_eq!(suffix.n, plan.n);
        assert_eq!(suffix.exec_levels, plan.exec_levels);
        assert_eq!(suffix.resolved, plan.resolved);
        assert_eq!(suffix.segments.len(), 1);
        assert_eq!(suffix.segments[0], plan.segments[1]);
        // Cut *inside* the GPU band: the band is clipped to start at the
        // cut, keeps its upload (the resuming node re-stages the data) and
        // its at-or-above-the-cut download, and the tiling resumes there.
        let mid = plan.resume_from_level(1).unwrap();
        assert_eq!(mid.segments.len(), 2);
        assert_eq!(mid.segments[0].first_level, 1);
        assert_eq!(mid.segments[0].last_level, 2);
        assert!(mid.segments[0]
            .transfers
            .iter()
            .any(|t| t.direction == Direction::ToGpu));
        assert!(mid.segments[0]
            .transfers
            .iter()
            .all(|t| t.direction == Direction::ToGpu || t.level >= 1));
        // Past the root is rejected; at the root only the top band remains.
        assert!(plan.resume_from_level(13).is_err());
        let top = plan.resume_from_level(12).unwrap();
        assert_eq!(top.segments.len(), 1);
        assert_eq!(top.segments[0].first_level, 12);
    }

    #[test]
    fn advanced_split_carries_the_integral_division() {
        let plan = mergesort_plan(
            &ScheduleSpec::Advanced {
                alpha: 0.3,
                transfer_level: 3,
            },
            1 << 12,
        )
        .unwrap();
        segments_tile_the_tree(&plan);
        assert_eq!(plan.segments.len(), 2);
        let seg = &plan.segments[0];
        assert_eq!(seg.last_level, 9); // 12 - 3
        match seg.placement {
            Placement::Split {
                alpha,
                cpu_tasks,
                tasks,
            } => {
                assert_eq!(alpha, 0.3);
                assert_eq!(tasks, 8);
                assert_eq!(cpu_tasks, 2); // round(0.3 · 8)
            }
            ref other => panic!("expected a split, got {other:?}"),
        }
        // Both edges move only the GPU share: (8-2)/8 of n.
        let gpu_words = 6 * (1u64 << 12) / 8;
        assert_eq!(seg.transfers[0].words, gpu_words);
        assert_eq!(seg.transfers[1].words, gpu_words);
        assert_eq!(seg.transfers[1].level, 9);
    }

    #[test]
    fn advanced_validates_inputs() {
        let bad_level = mergesort_plan(
            &ScheduleSpec::Advanced {
                alpha: 0.5,
                transfer_level: 99,
            },
            1 << 8,
        );
        assert_eq!(
            bad_level,
            Err(ModelError::InvalidLevel {
                level: 99,
                levels: 8
            })
        );
        let zero = mergesort_plan(
            &ScheduleSpec::Advanced {
                alpha: 0.5,
                transfer_level: 0,
            },
            1 << 8,
        );
        assert!(matches!(zero, Err(ModelError::InvalidLevel { .. })));
        for alpha in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let bad = mergesort_plan(
                &ScheduleSpec::Advanced {
                    alpha,
                    transfer_level: 2,
                },
                1 << 8,
            );
            assert!(matches!(bad, Err(ModelError::InvalidAlpha(_))), "{alpha}");
        }
        // The top level itself is a legal transfer level (trivial inputs).
        assert!(mergesort_plan(
            &ScheduleSpec::Advanced {
                alpha: 0.5,
                transfer_level: 8,
            },
            1 << 8,
        )
        .is_ok());
    }

    #[test]
    fn advanced_auto_reproduces_the_paper_example() {
        // §5.2.2: HPU1 mergesort at n = 2^24 gives α* ≈ 0.16, y ≈ 10.
        let plan = mergesort_plan(&ScheduleSpec::AdvancedAuto, 1 << 24).unwrap();
        segments_tile_the_tree(&plan);
        let (alpha, y) = match plan.resolved {
            ScheduleSpec::Advanced {
                alpha,
                transfer_level,
            } => (alpha, transfer_level),
            ref other => panic!("expected a resolved Advanced, got {other:?}"),
        };
        assert!((alpha - 0.16).abs() < 0.03, "alpha = {alpha}");
        assert!((9..=10).contains(&y), "transfer level = {y}");
        // The concurrent band is a Split segment ending at level 24 - y,
        // where the GPU hands its share back.
        let seg = &plan.segments[0];
        assert!(matches!(seg.placement, Placement::Split { .. }));
        assert_eq!(seg.last_level, 24 - y);
        assert_eq!(seg.transfers[1].level, 24 - y);
    }

    #[test]
    fn matmul_recurrence_compiles_and_predicts() {
        // Tree-form algorithms (the a = 8 matmul) have no breadth-first
        // executor, but their schedules compile and predict through the
        // same plan IR.
        use crate::levels::LevelProfile;
        use crate::prediction::predict_levels;

        let rec = Recurrence::dc_matmul();
        let machine = MachineParams::hpu1();
        let n = 8u64.pow(6);
        let lx = rec.num_levels(n);
        let plan = compile(
            &ScheduleSpec::Advanced {
                alpha: 0.25,
                transfer_level: 2,
            },
            &machine,
            &rec,
            n,
            lx,
        )
        .unwrap();
        segments_tile_the_tree(&plan);
        match plan.segments[0].placement {
            Placement::Split {
                cpu_tasks, tasks, ..
            } => {
                assert_eq!(tasks, 64, "a^y = 8^2 chunks at the transfer level");
                assert_eq!(cpu_tasks, 16, "round(0.25 · 64)");
            }
            ref other => panic!("expected a split, got {other:?}"),
        }
        let profile = LevelProfile::new(&machine, &rec, n);
        let pred = predict_levels(&profile, &plan);
        assert!(!pred.is_empty());
        assert!(pred.iter().all(|p| p.time.is_finite() && p.time >= 0.0));
        // A transfer level whose a^y overflows u64 is rejected, not wrapped.
        let big = compile(
            &ScheduleSpec::Advanced {
                alpha: 0.5,
                transfer_level: 30,
            },
            &machine,
            &rec,
            n,
            40,
        );
        assert!(matches!(big, Err(ModelError::InvalidLevel { .. })));
    }

    #[test]
    fn unoptimized_plans_are_one_segment_per_level() {
        let rec = Recurrence::mergesort();
        let n = 1u64 << 12;
        let lx = rec.num_levels(n);
        let unopt = compile_unoptimized(
            &ScheduleSpec::Basic { crossover: None },
            &MachineParams::hpu1(),
            &rec,
            n,
            lx,
        )
        .unwrap();
        segments_tile_the_tree(&unopt);
        assert_eq!(unopt.segments.len(), lx as usize + 1);
        assert!(unopt.segments.iter().all(|s| s.first_level == s.last_level));
        // Every device level carries its own upload/download round trip.
        let device = unopt
            .segments
            .iter()
            .filter(|s| !matches!(s.placement, Placement::Cpu { .. }))
            .count();
        assert_eq!(device, 3, "HPU1 crossover 10 leaves levels 0..=2 on GPU");
        assert_eq!(unopt.transfer_words(), 2 * device as u64 * n);
        // Resolution matches the optimized plan's.
        let opt = mergesort_plan(&ScheduleSpec::Basic { crossover: None }, n).unwrap();
        assert_eq!(unopt.resolved, opt.resolved);
    }

    #[test]
    fn resolve_pins_every_derived_parameter() {
        let machine = MachineParams::hpu1();
        let rec = Recurrence::mergesort();
        assert_eq!(
            resolve(
                &ScheduleSpec::Basic { crossover: None },
                &machine,
                &rec,
                1 << 12,
                12
            ),
            Ok(ScheduleSpec::Basic {
                crossover: Some(10)
            })
        );
        // Degrade cases resolve to CpuParallel.
        assert_eq!(
            resolve(
                &ScheduleSpec::Basic {
                    crossover: Some(99)
                },
                &machine,
                &rec,
                1 << 12,
                12
            ),
            Ok(ScheduleSpec::CpuParallel)
        );
        // AdvancedAuto resolves to an explicit (α, y).
        let auto = resolve(&ScheduleSpec::AdvancedAuto, &machine, &rec, 1 << 24, 24).unwrap();
        assert!(matches!(auto, ScheduleSpec::Advanced { .. }));
        // Invalid Advanced inputs fail at resolution.
        assert!(resolve(
            &ScheduleSpec::Advanced {
                alpha: 2.0,
                transfer_level: 2
            },
            &machine,
            &rec,
            1 << 8,
            8
        )
        .is_err());
    }

    #[test]
    fn segment_fixed_cost_counts_latencies_and_launches() {
        // HPU1 mergesort basic: segment 0 = GPU band levels 0..=2 with an
        // upload/download pair, segment 1 = CPU band (no fixed cost).
        let plan = mergesort_plan(&ScheduleSpec::Basic { crossover: None }, 1 << 12).unwrap();
        assert_eq!(plan.segments.len(), 2);
        let (lambda, launch) = (100.0, 7.0);
        let gpu_band = &plan.segments[0];
        let launches = (gpu_band.last_level - gpu_band.first_level + 1) as f64;
        assert_eq!(
            plan.segment_fixed_cost(0, lambda, launch),
            lambda * gpu_band.transfers.len() as f64 + launch * launches
        );
        assert_eq!(plan.segment_fixed_cost(1, lambda, launch), 0.0);
        assert_eq!(plan.segment_fixed_cost(99, lambda, launch), 0.0);
    }

    #[test]
    fn segment_lookup_by_level() {
        let plan = mergesort_plan(&ScheduleSpec::Basic { crossover: Some(4) }, 1 << 10).unwrap();
        let (i, seg) = plan.segment_of(6).unwrap();
        assert_eq!(i, 0);
        assert_eq!(seg.placement, Placement::Gpu);
        let (i, seg) = plan.segment_of(7).unwrap();
        assert_eq!(i, 1);
        assert!(matches!(seg.placement, Placement::Cpu { .. }));
        assert!(plan.segment_of(11).is_none());
    }
}
