//! Per-level analytic predictions for compiled execution plans.
//!
//! The executors in `hpu-core` run breadth-first levels indexed *bottom-up*
//! (level 0 = base cases/leaves, level `k` = combines producing chunks of
//! `base · a^k` elements), while the model's [`LevelProfile`] indexes
//! division levels *top-down* (level `i = 0` = root). This module bridges
//! the two: [`predict_levels`] emits one predicted time per *executor*
//! level for a compiled [`Plan`], so a drift report can line the prediction
//! up against observed per-level metrics row by row.
//!
//! Because prediction walks the same [`Plan`] the interpreter executes —
//! same segments, same placements, same transfer edges — the two can never
//! disagree about where a level runs or where a transfer is charged.
//!
//! Mapping: an executor with `Lx` combine levels puts its level `k` against
//! model level `i = Lx − k`. When the algorithm uses a leaf cutoff
//! (`base_chunk > 1`, hence `Lx <` model `L`), the model levels below the
//! cutoff — `i ≥ Lx` — and the leaves all fold into executor level 0,
//! matching what `base_case` actually executes.
//!
//! Transfers are charged at the executor level their [`Transfer`] edge
//! names: uploads at level 0 (the data leaves the host before any device
//! work), downloads at the level whose chunks come back.

use crate::error::ModelError;
use crate::levels::LevelProfile;
use crate::plan::{Placement, Plan};

#[cfg(doc)]
use crate::plan::Transfer;

/// Predicted time of one executor level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelPrediction {
    /// Bottom-up executor level (0 = base cases/leaves).
    pub level: u32,
    /// Predicted time of the level, including transfers attributed to it.
    pub time: f64,
}

/// Per-level predicted times for a compiled `plan`, indexed by *executor*
/// level (bottom-up, `0 ..= plan.exec_levels`).
///
/// Each model level contributes to the executor slot it folds into,
/// according to the placement of the plan segment covering that slot:
///
/// * [`Placement::Cpu`] with one core charges the full level work (a single
///   core is never partially idle within a level); with `c > 1` cores it
///   charges `⌈tasks / c⌉` batches of the task cost.
/// * [`Placement::Gpu`] charges `⌈tasks / g⌉` waves at speed `γ`.
/// * [`Placement::Split`] charges the slower of the two concurrent shares —
///   each level ends when the lagging unit finishes.
pub fn predict_levels(profile: &LevelProfile, plan: &Plan) -> Vec<LevelPrediction> {
    let lx = plan.exec_levels;
    let lm = profile.levels();
    let machine = profile.machine();
    let (p, g, gamma) = (machine.p as f64, machine.g as f64, machine.gamma);
    let leaf_cost = profile.recurrence().leaf_cost;

    let cpu_share = |i: u32, frac: f64| {
        let tasks = frac * profile.tasks_at(i);
        (tasks / p).ceil().max(1.0) * profile.task_cost_at(i)
    };
    let gpu_share = |i: u32, frac: f64| {
        let tasks = frac * profile.tasks_at(i);
        (tasks / g).ceil().max(1.0) * profile.task_cost_at(i) / gamma
    };
    let cpu_leaves = |frac: f64| (frac * profile.leaves() / p).ceil().max(1.0) * leaf_cost;
    let gpu_leaves = |frac: f64| (frac * profile.leaves() / g).ceil().max(1.0) * leaf_cost / gamma;

    let mut pred = vec![0.0_f64; lx as usize + 1];

    // Level work, charged by the placement of the segment covering the
    // executor slot each model level folds into.
    for i in 0..lm {
        let k = lx.saturating_sub(i);
        let Some((_, seg)) = plan.segment_of(k) else {
            continue;
        };
        pred[k as usize] += match seg.placement {
            Placement::Cpu { cores } if cores <= 1 => profile.tasks_at(i) * profile.task_cost_at(i),
            Placement::Cpu { cores } => {
                (profile.tasks_at(i) / cores as f64).ceil().max(1.0) * profile.task_cost_at(i)
            }
            Placement::Gpu => profile.gpu_level_time(i),
            Placement::Split {
                cpu_tasks, tasks, ..
            } => {
                // Concurrent phase: each level ends when the slower unit
                // finishes its share.
                let frac = cpu_tasks as f64 / tasks as f64;
                cpu_share(i, frac).max(gpu_share(i, 1.0 - frac))
            }
        };
    }

    // Leaves (and any model levels below a leaf cutoff fold in above) land
    // on executor level 0.
    if let Some((_, seg)) = plan.segment_of(0) {
        pred[0] += match seg.placement {
            Placement::Cpu { cores } if cores <= 1 => profile.leaves() * leaf_cost,
            Placement::Cpu { cores } => {
                (profile.leaves() / cores as f64).ceil().max(1.0) * leaf_cost
            }
            Placement::Gpu => profile.gpu_leaf_time(),
            Placement::Split {
                cpu_tasks, tasks, ..
            } => {
                let frac = cpu_tasks as f64 / tasks as f64;
                cpu_leaves(frac).max(gpu_leaves(1.0 - frac))
            }
        };
    }

    // Transfer edges, charged at the executor level they name.
    for seg in &plan.segments {
        for t in &seg.transfers {
            pred[t.level.min(lx) as usize] += machine.transfer_time(t.words);
        }
    }

    pred.into_iter()
        .enumerate()
        .map(|(level, time)| LevelPrediction {
            level: level as u32,
            time,
        })
        .collect()
}

/// Predicted cost of one plan segment, split by unit.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentCost {
    /// Index of the segment in [`Plan::segments`].
    pub segment: usize,
    /// Predicted busy time on the CPU side of the segment.
    pub cpu: f64,
    /// Predicted device-lease time: GPU kernels plus the segment's
    /// transfer edges (the bus is only ever driven for the device).
    pub gpu: f64,
    /// Predicted elapsed time of the segment: `cpu + gpu` for serial
    /// placements, `max(cpu, gpu)` for the concurrent split.
    pub time: f64,
}

/// Admission-grade cost summary of a compiled plan.
///
/// Where [`predict_levels`] answers "how long does each level take" (for
/// drift reports), `plan_cost` answers the scheduler's questions: how long
/// does the whole job hold each device, segment by segment, and what is
/// its end-to-end predicted service time.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCost {
    /// Predicted end-to-end service time (segments run in order).
    pub total: f64,
    /// Total predicted CPU busy time across segments.
    pub cpu: f64,
    /// Total predicted device-lease time (kernels + transfers).
    pub gpu: f64,
    /// Per-segment breakdown, in plan order.
    pub segments: Vec<SegmentCost>,
}

impl PlanCost {
    /// Whether any segment leases the device (GPU kernels or transfers).
    pub fn uses_gpu(&self) -> bool {
        self.segments.iter().any(|s| s.gpu > 0.0)
    }
}

/// Computes the per-segment, per-unit predicted cost of a compiled `plan`.
///
/// Charges the same level times as [`predict_levels`] — same shares, same
/// transfer attribution — but folds them by plan segment and unit instead
/// of by executor level. For a segment with a serial placement the elapsed
/// time is the busy time of its one unit; for [`Placement::Split`] the two
/// sides run concurrently, so the segment ends when the slower side (GPU
/// side including its transfers) finishes. The `total` therefore models a
/// band-level barrier, which can be slightly below the per-level-barrier
/// sum of [`predict_levels`] for split plans and is identical otherwise.
///
/// A plan with no segments is rejected with [`ModelError::EmptyPlan`]:
/// there is nothing to price, and pretending the cost is zero would let a
/// malformed plan through admission only to panic deeper in a scheduler.
pub fn plan_cost(profile: &LevelProfile, plan: &Plan) -> Result<PlanCost, ModelError> {
    if plan.segments.is_empty() {
        return Err(ModelError::EmptyPlan);
    }
    let lx = plan.exec_levels;
    let lm = profile.levels();
    let machine = profile.machine();
    let (p, g, gamma) = (machine.p as f64, machine.g as f64, machine.gamma);
    let leaf_cost = profile.recurrence().leaf_cost;

    let cpu_share = |i: u32, frac: f64| {
        let tasks = frac * profile.tasks_at(i);
        (tasks / p).ceil().max(1.0) * profile.task_cost_at(i)
    };
    let gpu_share = |i: u32, frac: f64| {
        let tasks = frac * profile.tasks_at(i);
        (tasks / g).ceil().max(1.0) * profile.task_cost_at(i) / gamma
    };
    let cpu_leaves = |frac: f64| (frac * profile.leaves() / p).ceil().max(1.0) * leaf_cost;
    let gpu_leaves = |frac: f64| (frac * profile.leaves() / g).ceil().max(1.0) * leaf_cost / gamma;

    let mut segments: Vec<SegmentCost> = plan
        .segments
        .iter()
        .enumerate()
        .map(|(segment, _)| SegmentCost {
            segment,
            cpu: 0.0,
            gpu: 0.0,
            time: 0.0,
        })
        .collect();

    // Model levels (and the leaves folded into executor level 0), charged
    // to the segment covering the executor slot they land on.
    for i in 0..=lm {
        let k = lx.saturating_sub(i);
        let Some((si, seg)) = plan.segment_of(k) else {
            continue;
        };
        let (cpu, gpu) = if i < lm {
            match seg.placement {
                Placement::Cpu { cores } if cores <= 1 => {
                    (profile.tasks_at(i) * profile.task_cost_at(i), 0.0)
                }
                Placement::Cpu { cores } => (
                    (profile.tasks_at(i) / cores as f64).ceil().max(1.0) * profile.task_cost_at(i),
                    0.0,
                ),
                Placement::Gpu => (0.0, profile.gpu_level_time(i)),
                Placement::Split {
                    cpu_tasks, tasks, ..
                } => {
                    let frac = cpu_tasks as f64 / tasks as f64;
                    (cpu_share(i, frac), gpu_share(i, 1.0 - frac))
                }
            }
        } else {
            // i == lm: the leaves (model levels below a leaf cutoff fold
            // into executor level 0 through the i-loop above).
            match seg.placement {
                Placement::Cpu { cores } if cores <= 1 => (profile.leaves() * leaf_cost, 0.0),
                Placement::Cpu { cores } => (
                    (profile.leaves() / cores as f64).ceil().max(1.0) * leaf_cost,
                    0.0,
                ),
                Placement::Gpu => (0.0, profile.gpu_leaf_time()),
                Placement::Split {
                    cpu_tasks, tasks, ..
                } => {
                    let frac = cpu_tasks as f64 / tasks as f64;
                    (cpu_leaves(frac), gpu_leaves(1.0 - frac))
                }
            }
        };
        segments[si].cpu += cpu;
        segments[si].gpu += gpu;
    }

    // Transfer edges lease the bus for the device's benefit: they extend
    // the segment's device-side time.
    for (si, seg) in plan.segments.iter().enumerate() {
        for t in &seg.transfers {
            segments[si].gpu += machine.transfer_time(t.words);
        }
    }

    for (sc, seg) in segments.iter_mut().zip(&plan.segments) {
        sc.time = match seg.placement {
            Placement::Split { .. } => sc.cpu.max(sc.gpu),
            _ => sc.cpu + sc.gpu,
        };
    }

    Ok(PlanCost {
        total: segments.iter().map(|s| s.time).sum(),
        cpu: segments.iter().map(|s| s.cpu).sum(),
        gpu: segments.iter().map(|s| s.gpu).sum(),
        segments,
    })
}

/// Predicted cost of the plan's suffix after the first `level` executor
/// levels completed: the re-execution a checkpoint at `level` saves a
/// recovering job from, and the price of the work that remains.
///
/// Prices the suffix [`Plan::resume_from_level`] produces, so the answer
/// is exactly what a resuming scheduler will charge: completed bands cost
/// nothing, a clipped band is charged only for its remaining levels (plus
/// its kept re-upload edges), and
/// `plan_cost_from_level(profile, plan, 0)` equals `plan_cost(..).total`.
pub fn plan_cost_from_level(
    profile: &LevelProfile,
    plan: &Plan,
    level: u32,
) -> Result<f64, ModelError> {
    let suffix = plan.resume_from_level(level)?;
    Ok(plan_cost(profile, &suffix)?.total)
}

/// Device time of one cross-job batched GPU segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchedSegment {
    /// Merged device-lease time of the coalesced launch.
    pub time: f64,
    /// Device time saved versus running every member's segment solo
    /// (`Σ member_times − time`, never negative).
    pub saved: f64,
}

/// Device time of `m` same-shaped GPU segments coalesced into **one**
/// kernel launch with merged transfers.
///
/// Each member's solo segment time already contains one copy of the
/// shared fixed cost (`shared_fixed`: transfer latencies plus launch
/// overheads — see `Plan::segment_fixed_cost`); the batch pays that cost
/// once, so `m − 1` copies vanish while every member's payload
/// (`δ·w` transfer words, kernel waves) is still charged:
///
/// `time = max(Σtᵢ − (m−1)·fixed, maxᵢ tᵢ)`
///
/// The clamp keeps the result physical: a batch can never finish before
/// its largest member would solo, however generous the fixed cost looks.
/// Empty batches take no time; single-member "batches" are exactly the
/// solo segment.
pub fn batched_segment_time(member_times: &[f64], shared_fixed: f64) -> BatchedSegment {
    if member_times.is_empty() {
        return BatchedSegment {
            time: 0.0,
            saved: 0.0,
        };
    }
    let sum: f64 = member_times.iter().sum();
    let longest = member_times.iter().copied().fold(0.0, f64::max);
    let amortized = (member_times.len() as f64 - 1.0) * shared_fixed.max(0.0);
    let time = (sum - amortized).max(longest);
    BatchedSegment {
        time,
        saved: (sum - time).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{predicted_time_cpu_parallel, predicted_time_gpu_only};
    use crate::plan::{compile, ScheduleSpec};
    use crate::{MachineParams, Recurrence};

    fn profile(n: u64) -> LevelProfile {
        LevelProfile::new(&MachineParams::hpu1(), &Recurrence::mergesort(), n)
    }

    fn plan(spec: &ScheduleSpec, n: u64, exec_levels: u32) -> Plan {
        compile(
            spec,
            &MachineParams::hpu1(),
            &Recurrence::mergesort(),
            n,
            exec_levels,
        )
        .unwrap()
    }

    #[test]
    fn plan_cost_from_level_prices_exactly_the_remaining_bands() {
        let n = 1u64 << 12;
        let pr = profile(n);
        let p = plan(&ScheduleSpec::Basic { crossover: None }, n, 12);
        assert_eq!(p.segments.len(), 2, "GPU band + CPU band expected");
        let full = plan_cost(&pr, &p).unwrap();
        // Level 0: everything remains.
        let all = plan_cost_from_level(&pr, &p, 0).unwrap();
        assert!((all - full.total).abs() < 1e-9);
        // Cut at the band boundary: only the CPU band's time remains, and
        // what remains plus what was saved is the whole job.
        let boundary = p.segments[1].first_level;
        let rest = plan_cost_from_level(&pr, &p, boundary).unwrap();
        assert!((rest - full.segments[1].time).abs() < 1e-9);
        assert!(rest < full.total);
        let saved = full.total - rest;
        assert!((saved - full.segments[0].time).abs() < 1e-9);
        // At the root band nothing below it is re-priced; past it errors.
        let top = plan_cost_from_level(&pr, &p, p.exec_levels).unwrap();
        assert!(top <= rest + 1e-9);
        assert!(plan_cost_from_level(&pr, &p, p.exec_levels + 1).is_err());
    }

    #[test]
    fn batched_time_amortizes_fixed_cost_but_never_beats_the_longest_member() {
        // Empty and singleton batches are trivial.
        assert_eq!(
            batched_segment_time(&[], 10.0),
            BatchedSegment {
                time: 0.0,
                saved: 0.0
            }
        );
        assert_eq!(batched_segment_time(&[40.0], 10.0).time, 40.0);
        assert_eq!(batched_segment_time(&[40.0], 10.0).saved, 0.0);
        // Three members, fixed 10: two copies amortize away.
        let b = batched_segment_time(&[40.0, 50.0, 60.0], 10.0);
        assert_eq!(b.time, 130.0);
        assert_eq!(b.saved, 20.0);
        // A huge fixed cost clamps at the longest member, not below.
        let b = batched_segment_time(&[40.0, 50.0, 60.0], 1000.0);
        assert_eq!(b.time, 60.0);
        assert_eq!(b.saved, 90.0);
        // Negative fixed cost never inflates the batch.
        let b = batched_segment_time(&[40.0, 50.0], -5.0);
        assert_eq!(b.time, 90.0);
        assert_eq!(b.saved, 0.0);
    }

    #[test]
    fn per_level_sums_match_aggregate_predictions() {
        let pr = profile(1 << 12);
        let lx = pr.levels();
        let cpu: f64 = predict_levels(&pr, &plan(&ScheduleSpec::CpuParallel, 1 << 12, lx))
            .iter()
            .map(|l| l.time)
            .sum();
        assert!((cpu - predicted_time_cpu_parallel(&pr)).abs() < 1e-9);
        let gpu: f64 = predict_levels(&pr, &plan(&ScheduleSpec::GpuOnly, 1 << 12, lx))
            .iter()
            .map(|l| l.time)
            .sum();
        assert!((gpu - predicted_time_gpu_only(&pr, 1 << 12)).abs() < 1e-9);
    }

    #[test]
    fn sequential_sums_to_total_work() {
        let pr = profile(1 << 10);
        let lx = pr.levels();
        let seq: f64 = predict_levels(&pr, &plan(&ScheduleSpec::Sequential, 1 << 10, lx))
            .iter()
            .map(|l| l.time)
            .sum();
        assert!((seq - pr.total_work()).abs() < 1e-9);
    }

    #[test]
    fn basic_switches_units_at_the_crossover() {
        let pr = profile(1 << 12);
        let lx = pr.levels();
        let rows = predict_levels(
            &pr,
            &plan(&ScheduleSpec::Basic { crossover: Some(3) }, 1 << 12, lx),
        );
        assert_eq!(rows.len(), lx as usize + 1);
        // Executor level lx (the root) is model level 0: CPU side.
        assert!((rows[lx as usize].time - pr.cpu_level_time(0)).abs() < 1e-9);
        // Executor level lx - 3 is the first GPU level and gets the
        // download attributed to it.
        let t = pr.machine().transfer_time(1 << 12);
        let k = (lx - 3) as usize;
        assert!((rows[k].time - (pr.gpu_level_time(3) + t)).abs() < 1e-9);
    }

    #[test]
    fn leaf_cutoff_folds_lower_levels_into_level_zero() {
        let pr = profile(1 << 10);
        let lm = pr.levels();
        // A cutoff of 2^4 leaves lx = 6 executor levels.
        let rows = predict_levels(&pr, &plan(&ScheduleSpec::CpuParallel, 1 << 10, 6));
        assert_eq!(rows.len(), 7);
        let folded: f64 = (6..lm).map(|i| pr.cpu_level_time(i)).sum();
        assert!((rows[0].time - (pr.cpu_leaf_time() + folded)).abs() < 1e-9);
    }

    #[test]
    fn advanced_concurrent_levels_take_the_max_share() {
        let pr = profile(1 << 12);
        let lx = pr.levels();
        let rows = predict_levels(
            &pr,
            &plan(
                &ScheduleSpec::Advanced {
                    alpha: 0.25,
                    transfer_level: 4,
                },
                1 << 12,
                lx,
            ),
        );
        // Top levels (below y) are plain CPU levels.
        assert!((rows[lx as usize].time - pr.cpu_level_time(0)).abs() < 1e-9);
        // Every level time is positive and finite.
        for r in &rows {
            assert!(r.time.is_finite() && r.time > 0.0, "level {}", r.level);
        }
    }

    #[test]
    fn plan_cost_matches_per_level_sums_for_serial_plans() {
        // Serial placements have no band-level concurrency, so the
        // segment-folded total must equal the per-level prediction sum.
        let pr = profile(1 << 12);
        let lx = pr.levels();
        for spec in [
            ScheduleSpec::Sequential,
            ScheduleSpec::CpuParallel,
            ScheduleSpec::GpuOnly,
            ScheduleSpec::Basic { crossover: None },
        ] {
            let plan = plan(&spec, 1 << 12, lx);
            let per_level: f64 = predict_levels(&pr, &plan).iter().map(|l| l.time).sum();
            let cost = plan_cost(&pr, &plan).unwrap();
            assert!(
                (cost.total - per_level).abs() < 1e-9,
                "{spec:?}: {} vs {per_level}",
                cost.total
            );
            assert_eq!(cost.segments.len(), plan.segments.len());
            assert!((cost.cpu + cost.gpu - cost.total).abs() < 1e-9);
        }
    }

    #[test]
    fn plan_cost_splits_units_and_flags_gpu_use() {
        let pr = profile(1 << 12);
        let lx = pr.levels();
        let cpu_only = plan_cost(&pr, &plan(&ScheduleSpec::CpuParallel, 1 << 12, lx)).unwrap();
        assert!(!cpu_only.uses_gpu());
        assert_eq!(cpu_only.gpu, 0.0);
        let basic = plan_cost(
            &pr,
            &plan(&ScheduleSpec::Basic { crossover: None }, 1 << 12, lx),
        )
        .unwrap();
        assert!(basic.uses_gpu());
        assert!(basic.cpu > 0.0 && basic.gpu > 0.0);
        // The GPU side includes both transfer edges of the device band.
        let t = pr.machine().transfer_time(1 << 12);
        assert!(basic.segments[0].gpu > 2.0 * t);
    }

    #[test]
    fn plan_cost_concurrent_split_takes_the_slower_side() {
        let pr = profile(1 << 12);
        let lx = pr.levels();
        let plan = plan(
            &ScheduleSpec::Advanced {
                alpha: 0.25,
                transfer_level: 4,
            },
            1 << 12,
            lx,
        );
        let cost = plan_cost(&pr, &plan).unwrap();
        let split = &cost.segments[0];
        assert!((split.time - split.cpu.max(split.gpu)).abs() < 1e-9);
        // A band-level barrier can only be tighter than per-level barriers.
        let per_level: f64 = predict_levels(&pr, &plan).iter().map(|l| l.time).sum();
        assert!(cost.total <= per_level + 1e-9);
        assert!(cost.total > 0.0);
    }

    #[test]
    fn prediction_follows_the_plan_not_the_spec() {
        // A degraded Basic plan (weak GPU) predicts like CpuParallel: the
        // prediction consumes the compiled plan, so it cannot charge
        // transfers that the executor will never issue.
        let weak = MachineParams::new(4, 100, 0.01).unwrap();
        let rec = Recurrence::mergesort();
        let pr = LevelProfile::new(&weak, &rec, 1 << 10);
        let lx = pr.levels();
        let degraded = compile(
            &ScheduleSpec::Basic { crossover: None },
            &weak,
            &rec,
            1 << 10,
            lx,
        )
        .unwrap();
        let cpu = compile(&ScheduleSpec::CpuParallel, &weak, &rec, 1 << 10, lx).unwrap();
        assert_eq!(predict_levels(&pr, &degraded), predict_levels(&pr, &cpu));
    }
}
