//! Per-level analytic predictions for executable schedules.
//!
//! The executors in `hpu-core` run breadth-first levels indexed *bottom-up*
//! (level 0 = base cases/leaves, level `k` = combines producing chunks of
//! `base · a^k` elements), while the model's [`LevelProfile`] indexes
//! division levels *top-down* (level `i = 0` = root). This module bridges
//! the two: [`predict_levels`] emits one predicted time per *executor*
//! level for a given [`PlannedSchedule`], so a drift report can line the
//! prediction up against observed per-level metrics row by row.
//!
//! Mapping: an executor with `Lx` combine levels puts its level `k` against
//! model level `i = Lx − k`. When the algorithm uses a leaf cutoff
//! (`base_chunk > 1`, hence `Lx <` model `L`), the model levels below the
//! cutoff — `i ≥ Lx` — and the leaves all fold into executor level 0,
//! matching what `base_case` actually executes.
//!
//! Transfers are charged where the executors attribute them: uploads to
//! level 0 (the data leaves the host before any device work), downloads to
//! the level whose chunks come back.

use crate::levels::LevelProfile;

/// A fully resolved, executable schedule to predict per-level times for.
///
/// Mirrors `hpu-core`'s resolved `Strategy` (no `Option`s left).
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedSchedule {
    /// Everything on one CPU core.
    Sequential,
    /// All levels on all `p` CPU cores.
    CpuParallel,
    /// All levels on the GPU, one round trip of the whole input.
    GpuOnly,
    /// Basic hybrid: model levels `0..crossover` on the CPU, the rest plus
    /// the leaves on the GPU.
    Basic {
        /// First top-down level executed on the GPU.
        crossover: u32,
    },
    /// Advanced hybrid: `α : 1−α` split run concurrently up to the transfer
    /// level, CPU finishes the top.
    Advanced {
        /// Fraction of subproblems assigned to the CPU.
        alpha: f64,
        /// Top-down level at which the GPU hands results back.
        transfer_level: u32,
    },
}

/// Predicted time of one executor level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelPrediction {
    /// Bottom-up executor level (0 = base cases/leaves).
    pub level: u32,
    /// Predicted time of the level, including transfers attributed to it.
    pub time: f64,
}

/// Per-level predicted times for `plan`, indexed by *executor* level
/// (bottom-up, `0 ..= exec_levels`).
///
/// `exec_levels` is the executor's combine-level count
/// (`log_a(n / base_chunk)`); model levels below the executor's leaf cutoff
/// fold into level 0.
pub fn predict_levels(
    profile: &LevelProfile,
    plan: &PlannedSchedule,
    exec_levels: u32,
) -> Vec<LevelPrediction> {
    let lx = exec_levels;
    let lm = profile.levels();
    let n = profile.n();
    let machine = profile.machine();
    let (p, g, gamma) = (machine.p as f64, machine.g as f64, machine.gamma);
    let leaf_cost = profile.recurrence().leaf_cost;
    let a = profile.recurrence().a as f64;

    // Executor slot a model level folds into.
    let k_of = |i: u32| lx.saturating_sub(i) as usize;

    let cpu_share = |i: u32, frac: f64| {
        let tasks = frac * profile.tasks_at(i);
        (tasks / p).ceil().max(1.0) * profile.task_cost_at(i)
    };
    let gpu_share = |i: u32, frac: f64| {
        let tasks = frac * profile.tasks_at(i);
        (tasks / g).ceil().max(1.0) * profile.task_cost_at(i) / gamma
    };
    let cpu_leaves = |frac: f64| (frac * profile.leaves() / p).ceil().max(1.0) * leaf_cost;
    let gpu_leaves = |frac: f64| (frac * profile.leaves() / g).ceil().max(1.0) * leaf_cost / gamma;

    let mut pred = vec![0.0_f64; lx as usize + 1];

    match plan {
        PlannedSchedule::Sequential => {
            for i in 0..lm {
                pred[k_of(i)] += profile.tasks_at(i) * profile.task_cost_at(i);
            }
            pred[0] += profile.leaves() * leaf_cost;
        }
        PlannedSchedule::CpuParallel => {
            for i in 0..lm {
                pred[k_of(i)] += profile.cpu_level_time(i);
            }
            pred[0] += profile.cpu_leaf_time();
        }
        PlannedSchedule::GpuOnly => {
            for i in 0..lm {
                pred[k_of(i)] += profile.gpu_level_time(i);
            }
            pred[0] += profile.gpu_leaf_time();
            let t = machine.transfer_time(n);
            pred[0] += t; // upload
            pred[k_of(0)] += t; // download of the finished root
        }
        PlannedSchedule::Basic { crossover } => {
            for i in 0..lm {
                pred[k_of(i)] += if i < *crossover {
                    profile.cpu_level_time(i)
                } else {
                    profile.gpu_level_time(i)
                };
            }
            pred[0] += profile.gpu_leaf_time();
            let t = machine.transfer_time(n);
            pred[0] += t; // upload
            pred[k_of(*crossover)] += t; // download at the crossover chunks
        }
        PlannedSchedule::Advanced {
            alpha,
            transfer_level,
        } => {
            let y = *transfer_level;
            // Mirror the executor's integral split: ⌈α·a^y⌋ CPU chunks,
            // clamped so both units get work.
            let tasks_y = a.powi(y as i32).max(2.0);
            let cpu_tasks = (alpha * tasks_y).round().clamp(1.0, tasks_y - 1.0);
            let frac = cpu_tasks / tasks_y;
            for i in 0..lm {
                pred[k_of(i)] += if i < y {
                    profile.cpu_level_time(i)
                } else {
                    // Concurrent phase: each level ends when the slower
                    // unit finishes its share.
                    cpu_share(i, frac).max(gpu_share(i, 1.0 - frac))
                };
            }
            pred[0] += cpu_leaves(frac).max(gpu_leaves(1.0 - frac));
            let gpu_words = ((1.0 - frac) * n as f64).round() as u64;
            let t = machine.transfer_time(gpu_words);
            pred[0] += t; // upload of the GPU share
            pred[k_of(y)] += t; // download at the transfer level
        }
    }

    pred.into_iter()
        .enumerate()
        .map(|(level, time)| LevelPrediction {
            level: level as u32,
            time,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{predicted_time_cpu_parallel, predicted_time_gpu_only};
    use crate::{MachineParams, Recurrence};

    fn profile(n: u64) -> LevelProfile {
        LevelProfile::new(&MachineParams::hpu1(), &Recurrence::mergesort(), n)
    }

    #[test]
    fn per_level_sums_match_aggregate_predictions() {
        let pr = profile(1 << 12);
        let lx = pr.levels();
        let cpu: f64 = predict_levels(&pr, &PlannedSchedule::CpuParallel, lx)
            .iter()
            .map(|l| l.time)
            .sum();
        assert!((cpu - predicted_time_cpu_parallel(&pr)).abs() < 1e-9);
        let gpu: f64 = predict_levels(&pr, &PlannedSchedule::GpuOnly, lx)
            .iter()
            .map(|l| l.time)
            .sum();
        assert!((gpu - predicted_time_gpu_only(&pr, 1 << 12)).abs() < 1e-9);
    }

    #[test]
    fn sequential_sums_to_total_work() {
        let pr = profile(1 << 10);
        let lx = pr.levels();
        let seq: f64 = predict_levels(&pr, &PlannedSchedule::Sequential, lx)
            .iter()
            .map(|l| l.time)
            .sum();
        assert!((seq - pr.total_work()).abs() < 1e-9);
    }

    #[test]
    fn basic_switches_units_at_the_crossover() {
        let pr = profile(1 << 12);
        let lx = pr.levels();
        let rows = predict_levels(&pr, &PlannedSchedule::Basic { crossover: 3 }, lx);
        assert_eq!(rows.len(), lx as usize + 1);
        // Executor level lx (the root) is model level 0: CPU side.
        assert!((rows[lx as usize].time - pr.cpu_level_time(0)).abs() < 1e-9);
        // Executor level lx - 3 is the first GPU level and gets the
        // download attributed to it.
        let t = pr.machine().transfer_time(1 << 12);
        let k = (lx - 3) as usize;
        assert!((rows[k].time - (pr.gpu_level_time(3) + t)).abs() < 1e-9);
    }

    #[test]
    fn leaf_cutoff_folds_lower_levels_into_level_zero() {
        let pr = profile(1 << 10);
        let lm = pr.levels();
        // A cutoff of 2^4 leaves lx = 6 executor levels.
        let rows = predict_levels(&pr, &PlannedSchedule::CpuParallel, 6);
        assert_eq!(rows.len(), 7);
        let folded: f64 = (6..lm).map(|i| pr.cpu_level_time(i)).sum();
        assert!((rows[0].time - (pr.cpu_leaf_time() + folded)).abs() < 1e-9);
    }

    #[test]
    fn advanced_concurrent_levels_take_the_max_share() {
        let pr = profile(1 << 12);
        let lx = pr.levels();
        let rows = predict_levels(
            &pr,
            &PlannedSchedule::Advanced {
                alpha: 0.25,
                transfer_level: 4,
            },
            lx,
        );
        // Top levels (below y) are plain CPU levels.
        assert!((rows[lx as usize].time - pr.cpu_level_time(0)).abs() < 1e-9);
        // Every level time is positive and finite.
        for r in &rows {
            assert!(r.time.is_finite() && r.time > 0.0, "level {}", r.level);
        }
    }
}
