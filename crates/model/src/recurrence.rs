//! Divide-and-conquer recurrences `T(n) = a·T(n/b) + f(n)`.

use crate::cost::CostFn;
use crate::error::ModelError;

/// A regular divide-and-conquer recurrence `T(n) = a·T(n/b) + f(n)` with
/// `T(1) = leaf_cost` (paper §4).
///
/// `a` is the number of subproblems created per division, `b` the factor by
/// which the problem shrinks, and `f` the combined cost of the division and
/// combination steps on a subproblem of size `n`.
#[derive(Debug, Clone)]
pub struct Recurrence {
    /// Number of subproblems per division (`a ≥ 2`).
    pub a: usize,
    /// Shrink factor per division (`b ≥ 2`).
    pub b: usize,
    /// Divide + combine cost `f(n)`.
    pub f: CostFn,
    /// Cost of solving a base case (`T(1)`), in operations.
    pub leaf_cost: f64,
}

impl Recurrence {
    /// Creates a recurrence, validating `a ≥ 2` and `b ≥ 2`.
    pub fn new(a: usize, b: usize, f: CostFn, leaf_cost: f64) -> Result<Self, ModelError> {
        if a < 2 {
            return Err(ModelError::InvalidBranching(a));
        }
        if b < 2 {
            return Err(ModelError::InvalidShrink(b));
        }
        if !leaf_cost.is_finite() || leaf_cost < 0.0 {
            return Err(ModelError::InvalidCost(leaf_cost));
        }
        Ok(Recurrence { a, b, f, leaf_cost })
    }

    /// Mergesort: `a = b = 2`, `f(n) = n`, unit leaves — the paper's case
    /// study (§5.2.2, §6).
    pub fn mergesort() -> Self {
        Recurrence::new(2, 2, CostFn::linear(), 1.0).expect("mergesort recurrence is valid")
    }

    /// Divide-and-conquer sum: `a = b = 2`, constant combine (Algorithm 4).
    pub fn dc_sum() -> Self {
        Recurrence::new(2, 2, CostFn::Constant(1.0), 1.0).expect("sum recurrence is valid")
    }

    /// Classical divide-and-conquer matrix multiplication parameterized by
    /// the matrix side length: `a = 8`, `b = 2`, `f(n) = n²` (the additions
    /// of the combine step).
    pub fn dc_matmul() -> Self {
        Recurrence::new(8, 2, CostFn::Power { c: 1.0, e: 2.0 }, 1.0)
            .expect("matmul recurrence is valid")
    }

    /// Karatsuba polynomial multiplication: `a = 3`, `b = 2`, `f(n) = n`.
    pub fn karatsuba() -> Self {
        Recurrence::new(3, 2, CostFn::Linear(1.0), 1.0).expect("karatsuba recurrence is valid")
    }

    /// The critical exponent `log_b a`; leaves number `n^(log_b a)`.
    pub fn critical_exponent(&self) -> f64 {
        (self.a as f64).ln() / (self.b as f64).ln()
    }

    /// Number of recursion levels above the leaves: `log_b n` (continuous).
    pub fn depth(&self, n: u64) -> f64 {
        (n as f64).ln() / (self.b as f64).ln()
    }

    /// Number of complete division levels for an input of size `n`
    /// (levels `0 ..= depth-1` perform divisions; below that are leaves).
    pub fn num_levels(&self, n: u64) -> u32 {
        // Integer floor of log_b(n): count how many times n divides by b
        // before reaching 1.
        let mut levels = 0u32;
        let mut m = n;
        while m >= self.b as u64 {
            m /= self.b as u64;
            levels += 1;
        }
        levels
    }

    /// Number of leaves `n^(log_b a)` (continuous approximation).
    pub fn leaves(&self, n: u64) -> f64 {
        (n as f64).powf(self.critical_exponent())
    }

    /// Number of subproblems at level `i` (continuous level allowed):
    /// `a^i`.
    pub fn tasks_at(&self, level: f64) -> f64 {
        (self.a as f64).powf(level)
    }

    /// Subproblem size at level `i`: `n / b^i`.
    pub fn size_at(&self, n: u64, level: f64) -> f64 {
        n as f64 / (self.b as f64).powf(level)
    }

    /// Divide+combine cost of one subproblem at level `i`: `f(n / b^i)`.
    pub fn level_task_cost(&self, n: u64, level: f64) -> f64 {
        self.f.eval(self.size_at(n, level))
    }

    /// Total divide+combine work of level `i`: `a^i · f(n / b^i)`.
    pub fn level_work(&self, n: u64, level: f64) -> f64 {
        self.tasks_at(level) * self.level_task_cost(n, level)
    }

    /// Total sequential work: `Σ_{i=0}^{L-1} a^i f(n/b^i) + leaves·T(1)`.
    ///
    /// This is the 1-core execution time against which the paper measures
    /// speedups.
    pub fn total_work(&self, n: u64) -> f64 {
        let levels = self.num_levels(n);
        let mut w = self.leaves(n) * self.leaf_cost;
        for i in 0..levels {
            w += self.level_work(n, i as f64);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mergesort_shape() {
        let r = Recurrence::mergesort();
        assert_eq!(r.a, 2);
        assert_eq!(r.b, 2);
        assert!((r.critical_exponent() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depth_and_levels() {
        let r = Recurrence::mergesort();
        assert_eq!(r.num_levels(1), 0);
        assert_eq!(r.num_levels(2), 1);
        assert_eq!(r.num_levels(1024), 10);
        assert!((r.depth(1024) - 10.0).abs() < 1e-9);
        // Non-power-of-two inputs floor.
        assert_eq!(r.num_levels(1000), 9);
    }

    #[test]
    fn mergesort_total_work_is_n_logn_plus_n() {
        // For a = b = 2, f(n) = n: each of the log n levels costs exactly n,
        // plus n unit leaves => n(log n + 1).
        let r = Recurrence::mergesort();
        let n = 1u64 << 10;
        let expect = (n as f64) * (10.0 + 1.0);
        assert!((r.total_work(n) - expect).abs() < 1e-6);
    }

    #[test]
    fn matmul_exponent() {
        let r = Recurrence::dc_matmul();
        assert!((r.critical_exponent() - 3.0).abs() < 1e-12);
        // n = 4: levels 0,1 cost 8^i * (n/2^i)^2 = 16, 32; leaves 4^3 = 64.
        assert!((r.total_work(4) - (16.0 + 32.0 + 64.0)).abs() < 1e-9);
    }

    #[test]
    fn karatsuba_exponent() {
        let r = Recurrence::karatsuba();
        assert!((r.critical_exponent() - 1.584962500721156).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(matches!(
            Recurrence::new(1, 2, CostFn::linear(), 1.0),
            Err(ModelError::InvalidBranching(1))
        ));
        assert!(matches!(
            Recurrence::new(2, 1, CostFn::linear(), 1.0),
            Err(ModelError::InvalidShrink(1))
        ));
        assert!(matches!(
            Recurrence::new(2, 2, CostFn::linear(), -1.0),
            Err(ModelError::InvalidCost(_))
        ));
    }

    #[test]
    fn level_quantities() {
        let r = Recurrence::mergesort();
        let n = 1u64 << 8;
        assert_eq!(r.tasks_at(3.0), 8.0);
        assert_eq!(r.size_at(n, 3.0), 32.0);
        assert_eq!(r.level_task_cost(n, 3.0), 32.0);
        assert_eq!(r.level_work(n, 3.0), 256.0);
    }
}
