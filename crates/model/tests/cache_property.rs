//! Property test: [`PlanCache`] lookups are observationally identical to
//! fresh compiles — same plan bytes, same admission cost, same errors —
//! across randomized (algorithm, size, machine, strategy) triples and
//! across generation bumps.

use hpu_model::{
    compile, plan_cost, CostFn, LevelProfile, MachineParams, PlanCache, Recurrence, ScheduleSpec,
};

/// SplitMix64 — a tiny deterministic PRNG, good enough to drive the
/// sampler without pulling in a dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn recurrences() -> Vec<Recurrence> {
    vec![
        Recurrence::mergesort(),
        Recurrence::dc_sum(),
        Recurrence::karatsuba(),
        Recurrence::dc_matmul(),
        Recurrence::new(2, 2, CostFn::Linear(2.5), 1.0).unwrap(),
        Recurrence::new(2, 2, CostFn::Constant(11.0), 1.0).unwrap(),
    ]
}

fn machines() -> Vec<MachineParams> {
    // Several belief states, as calibration would produce over time.
    vec![
        MachineParams::hpu1(),
        MachineParams::hpu2(),
        MachineParams::hpu1().with_transfer_cost(100.0, 0.01),
        MachineParams::hpu1().with_transfer_cost(1000.0, 0.1),
    ]
}

fn random_spec(rng: &mut SplitMix64, levels: u32) -> ScheduleSpec {
    match rng.below(7) {
        0 => ScheduleSpec::Sequential,
        1 => ScheduleSpec::CpuParallel,
        2 => ScheduleSpec::GpuOnly,
        3 => ScheduleSpec::Basic { crossover: None },
        4 => ScheduleSpec::Basic {
            crossover: Some(rng.below(levels.max(1) as u64 + 2) as u32),
        },
        5 => ScheduleSpec::Advanced {
            // Deliberately includes invalid draws (α near 0/1, y at the
            // edges): errors must be as transparent as successes.
            alpha: rng.unit(),
            transfer_level: rng.below(levels as u64 + 2) as u32,
        },
        _ => ScheduleSpec::AdvancedAuto,
    }
}

/// The cache, under random load with random invalidations, returns
/// byte-for-byte what a fresh compile returns — including failures.
#[test]
fn cache_lookups_match_fresh_compiles_across_random_triples() {
    let recs = recurrences();
    let machines = machines();
    let mut rng = SplitMix64(0xC0FF_EE00_D15E_A5E5);
    // A small capacity forces LRU evictions into the sampled window, so
    // re-compiles after eviction are exercised too.
    let mut cache = PlanCache::new(16);
    let mut bumps = 0u32;
    for iter in 0..500 {
        let rec = &recs[rng.below(recs.len() as u64) as usize];
        let machine = &machines[rng.below(machines.len() as u64) as usize];
        let n = 1u64 << (4 + rng.below(11));
        let levels = rec.num_levels(n);
        let spec = random_spec(&mut rng, levels);

        let cached = cache.lookup_or_compile(&spec, machine, rec, n, levels, None);
        let fresh = compile(&spec, machine, rec, n, levels);
        match (cached, fresh) {
            (Ok((plan, cost)), Ok(fresh_plan)) => {
                let profile = LevelProfile::new(machine, rec, n);
                let fresh_cost = plan_cost(&profile, &fresh_plan).expect("fresh plans price");
                assert_eq!(*plan, fresh_plan, "iter {iter}: plan diverged for {spec:?}");
                assert_eq!(*cost, fresh_cost, "iter {iter}: cost diverged for {spec:?}");
            }
            (Err(ce), Err(fe)) => {
                assert_eq!(
                    ce.to_string(),
                    fe.to_string(),
                    "iter {iter}: errors diverged for {spec:?}"
                );
            }
            (cached, fresh) => panic!(
                "iter {iter}: cache and fresh compile disagree on success for {spec:?}: \
                 cached.is_ok()={} fresh.is_ok()={}",
                cached.is_ok(),
                fresh.is_ok()
            ),
        }

        // Occasionally a calibration drift event invalidates everything;
        // subsequent lookups must lazily re-fill and still match.
        if rng.below(25) == 0 {
            cache.bump_generation();
            bumps += 1;
        }
    }
    let stats = cache.stats();
    assert!(bumps > 0, "the sampler must exercise generation bumps");
    assert!(
        stats.hits > 0,
        "the sampler must exercise cache hits: {stats:?}"
    );
    assert!(
        stats.evictions > 0,
        "the sampler must exercise LRU evictions: {stats:?}"
    );
}

/// A generation bump behaves exactly like a cold cache: the very same
/// key misses once, re-fills, and the re-filled entry still matches a
/// fresh compile byte for byte.
#[test]
fn generation_bump_refills_to_fresh_compile_results() {
    let machine = MachineParams::hpu1().with_transfer_cost(100.0, 0.01);
    let rec = Recurrence::mergesort();
    let n = 1u64 << 12;
    let levels = rec.num_levels(n);
    let spec = ScheduleSpec::Basic { crossover: None };
    let mut cache = PlanCache::new(8);

    let (before, _) = cache
        .lookup_or_compile(&spec, &machine, &rec, n, levels, None)
        .unwrap();
    for gen in 1..=3u64 {
        cache.bump_generation();
        assert_eq!(cache.generation(), gen);
        let (after, cost) = cache
            .lookup_or_compile(&spec, &machine, &rec, n, levels, None)
            .unwrap();
        let fresh = compile(&spec, &machine, &rec, n, levels).unwrap();
        let profile = LevelProfile::new(&machine, &rec, n);
        let fresh_cost = plan_cost(&profile, &fresh).unwrap();
        assert_eq!(*after, fresh, "generation {gen}");
        assert_eq!(*cost, fresh_cost, "generation {gen}");
        assert_eq!(*after, *before, "same beliefs, same plan across bumps");
    }
    assert_eq!(
        cache.stats().misses,
        4,
        "one compulsory miss per generation"
    );
    assert_eq!(cache.stats().hits, 0);
}
