//! Regression tests: `suffix_path` once double-counted the partial level
//! when both interpolation bounds fell inside the same unit cell, making
//! `Tg(y)` locally non-monotone and letting the bisection converge to a
//! spurious crossing where `Tg(y*) ≠ Tc` (found by the property suite with
//! `n = 2^18, g = 2^11, γ⁻¹ ≈ 216.49, α = 0.2`).

use hpu_model::advanced::AdvancedSolver;
use hpu_model::{LevelProfile, MachineParams, Recurrence};

#[test]
fn solved_y_equalizes_times_near_saturation_boundary() {
    let machine = MachineParams::new(4, 1 << 11, 1.0 / 216.4924015463993).unwrap();
    let solver = AdvancedSolver::new(&machine, &Recurrence::mergesort(), 1 << 18).unwrap();
    for k in 1..10 {
        let alpha = k as f64 * 0.1;
        let sol = solver.solve_y(alpha);
        assert!(sol.feasible, "alpha = {alpha}");
        if sol.y > 1e-9 && sol.y < 18.0 - 1e-9 {
            let tg = solver.tg(alpha, sol.y);
            assert!(
                (tg - sol.tc).abs() <= 1e-6 * sol.tc,
                "alpha = {alpha}: tg = {tg}, tc = {}",
                sol.tc
            );
        }
    }
}

#[test]
fn suffix_path_same_cell_interval() {
    let profile = LevelProfile::new(&MachineParams::hpu1(), &Recurrence::mergesort(), 1 << 10);
    // Interval strictly inside level cell 3 (task cost 1024/8 = 128):
    // the partial level is (3.5 - 3.2) · 128.
    let got = profile.suffix_path(3.2, 3.5);
    assert!((got - 0.3 * 128.0).abs() < 1e-9, "got {got}");
    // Consistency: splitting an interval at an interior point adds up.
    let whole = profile.suffix_path(2.3, 4.7);
    let split = profile.suffix_path(2.3, 3.1) + profile.suffix_path(3.1, 4.7);
    assert!((whole - split).abs() < 1e-9);
}

#[test]
fn tg_is_monotone_non_increasing_in_y() {
    let machine = MachineParams::new(4, 1 << 11, 1.0 / 216.4924015463993).unwrap();
    let solver = AdvancedSolver::new(&machine, &Recurrence::mergesort(), 1 << 18).unwrap();
    for k in 1..10 {
        let alpha = k as f64 * 0.1;
        let mut prev = f64::INFINITY;
        let mut y = 0.0;
        while y <= 18.0 {
            let tg = solver.tg(alpha, y);
            assert!(
                tg <= prev + 1e-9 * prev.abs().max(1.0),
                "tg must not increase: alpha={alpha}, y={y}"
            );
            prev = tg;
            y += 0.037;
        }
    }
}
