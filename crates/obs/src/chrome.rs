//! Hand-rolled Chrome trace event JSON exporter.
//!
//! Emits the `{"traceEvents": [...]}` object format understood by
//! `chrome://tracing` and Perfetto. Every process added via
//! [`ChromeTrace::add_process`] becomes one process row (one run, e.g. one
//! strategy); within it the CPU, GPU and bus tracks become named threads.
//!
//! Timestamps: Chrome traces use microseconds. Wall-clock recorders already
//! produce µs; simulated virtual time is unit-less, so we map one virtual
//! time unit to one microsecond — relative span layout is what matters.

use crate::event::{EventKind, TraceEvent, Track};
use crate::span::SpanKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Builder for a multi-process Chrome trace.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    processes: Vec<(String, Vec<TraceEvent>)>,
}

impl ChromeTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one process row (e.g. one strategy's run) with its events.
    pub fn add_process(&mut self, name: impl Into<String>, events: Vec<TraceEvent>) {
        self.processes.push((name.into(), events));
    }

    /// Number of processes added so far.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// True when no process has been added.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Renders the trace as Chrome trace event JSON.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for (pid0, (name, events)) in self.processes.iter().enumerate() {
            let pid = pid0 + 1;
            // Process metadata: name the process row.
            push_meta(&mut out, &mut first, "process_name", pid, None, name);
            for track in [Track::Cpu, Track::Gpu, Track::Bus] {
                push_meta(
                    &mut out,
                    &mut first,
                    "thread_name",
                    pid,
                    Some(track.tid()),
                    &track.to_string(),
                );
            }
            // Span index for flow arrows: id -> (tid, start) within this
            // process, so a child span can point back at its parent.
            let span_at: HashMap<u64, (u32, f64)> = events
                .iter()
                .filter_map(|ev| match &ev.kind {
                    EventKind::Span { id, .. } => Some((*id, (ev.track.tid(), ev.start))),
                    _ => None,
                })
                .collect();
            for ev in events {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{",
                    escape(&ev.kind.to_string()),
                    ev.kind.category(),
                    fmt_num(ev.start),
                    fmt_num(ev.duration()),
                    pid,
                    ev.track.tid(),
                );
                push_args(&mut out, &ev.kind);
                out.push_str("}}");
                // A parented span gets a flow arrow from its parent's
                // start to its own: a "s"/"f" pair bound by a flow id
                // unique across processes.
                if let EventKind::Span {
                    id,
                    parent: Some(p),
                    ..
                } = &ev.kind
                {
                    if let Some(&(ptid, pstart)) = span_at.get(p) {
                        let flow = pid as u64 * 1_000_000 + id;
                        let _ = write!(
                            out,
                            ",{{\"name\":\"span-dep\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\"ts\":{},\"pid\":{},\"tid\":{}}}",
                            flow,
                            fmt_num(pstart),
                            pid,
                            ptid,
                        );
                        let _ = write!(
                            out,
                            ",{{\"name\":\"span-dep\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"ts\":{},\"pid\":{},\"tid\":{}}}",
                            flow,
                            fmt_num(ev.start),
                            pid,
                            ev.track.tid(),
                        );
                    }
                }
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

fn push_meta(
    out: &mut String,
    first: &mut bool,
    what: &str,
    pid: usize,
    tid: Option<u32>,
    name: &str,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":{}}}}}",
        what,
        pid,
        tid.unwrap_or(0),
        escape(name),
    );
}

fn push_args(out: &mut String, kind: &EventKind) {
    match kind {
        EventKind::Level {
            phase,
            chunk,
            tasks,
            ops,
            mem,
            ..
        } => {
            let _ = write!(
                out,
                "\"phase\":\"{phase:?}\",\"chunk\":{chunk},\"tasks\":{tasks},\"ops\":{ops},\"mem\":{mem}"
            );
        }
        EventKind::Kernel {
            items,
            waves,
            coalesced,
            uncoalesced,
            ..
        } => {
            let _ = write!(
                out,
                "\"items\":{items},\"waves\":{waves},\"coalesced\":{coalesced},\"uncoalesced\":{uncoalesced}"
            );
        }
        EventKind::Transfer { to_gpu, words } => {
            let _ = write!(out, "\"to_gpu\":{to_gpu},\"words\":{words}");
        }
        EventKind::Fault { transient, .. } => {
            let _ = write!(out, "\"transient\":{transient}");
        }
        EventKind::Retry { attempt, backoff } => {
            let _ = write!(
                out,
                "\"attempt\":{attempt},\"backoff\":{}",
                fmt_num(*backoff)
            );
        }
        EventKind::BreakerTrip { consecutive } => {
            let _ = write!(out, "\"consecutive\":{consecutive}");
        }
        EventKind::Degraded { job } => {
            let _ = write!(out, "\"job\":{job}");
        }
        EventKind::Checkpoint { level, words } => {
            let _ = write!(out, "\"level\":{level},\"words\":{words}");
        }
        EventKind::NodeDown { node } | EventKind::NodeUp { node } => {
            let _ = write!(out, "\"node\":{node}");
        }
        EventKind::Resume { level } => {
            let _ = write!(out, "\"level\":{level}");
        }
        EventKind::Span { id, parent, kind } => {
            let _ = write!(out, "\"span_id\":{id}");
            match parent {
                Some(p) => {
                    let _ = write!(out, ",\"parent\":{p}");
                }
                None => out.push_str(",\"parent\":null"),
            }
            match kind {
                SpanKind::Job { job, name } => {
                    let _ = write!(out, ",\"job\":{job},\"job_name\":{}", escape(name));
                }
                SpanKind::Segment { index, placement } => {
                    let _ = write!(
                        out,
                        ",\"segment\":{index},\"placement\":{}",
                        escape(placement)
                    );
                }
                SpanKind::Level { level } => {
                    let _ = write!(out, ",\"level\":{level}");
                }
                SpanKind::Retry { attempt } => {
                    let _ = write!(out, ",\"attempt\":{attempt}");
                }
                SpanKind::Batch { size, saved } => {
                    let _ = write!(out, ",\"batch_size\":{size},\"saved\":{}", fmt_num(*saved));
                }
            }
        }
        EventKind::Sync | EventKind::Mark(_) => {}
    }
}

/// Formats an f64 as JSON (finite; no exponent for typical trace ranges).
fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        return "0".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// JSON string escaping per RFC 8259 (quotes the result).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn renders_parseable_json_with_metadata() {
        let mut trace = ChromeTrace::new();
        trace.add_process(
            "sim: basic",
            vec![
                TraceEvent {
                    track: Track::Cpu,
                    start: 0.0,
                    end: 10.5,
                    kind: EventKind::Mark("warmup \"quoted\"".into()),
                },
                TraceEvent {
                    track: Track::Bus,
                    start: 10.5,
                    end: 20.0,
                    kind: EventKind::Transfer {
                        to_gpu: true,
                        words: 64,
                    },
                },
            ],
        );
        let json = trace.render();
        let v = Json::parse(&json).expect("render emits valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 3 thread_name + 2 spans.
        assert_eq!(events.len(), 6);
        let span = &events[4];
        assert_eq!(span.get("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(span.get("tid").unwrap().as_f64().unwrap(), 1.0);
        assert_eq!(
            span.get("name").unwrap().as_str().unwrap(),
            "warmup \"quoted\""
        );
        let xfer = &events[5];
        assert_eq!(xfer.get("cat").unwrap().as_str().unwrap(), "transfer");
        assert_eq!(
            xfer.get("args")
                .unwrap()
                .get("words")
                .unwrap()
                .as_f64()
                .unwrap(),
            64.0
        );
    }

    #[test]
    fn span_events_carry_ids_and_flow_arrows() {
        use crate::span::{SpanKind, SpanSet};
        let mut set = SpanSet::new();
        let job = set.push(
            Track::Cpu,
            0.0,
            20.0,
            SpanKind::Job {
                job: 1,
                name: "mergesort-1-n256".into(),
            },
            None,
        );
        let seg = set.push(
            Track::Gpu,
            2.0,
            12.0,
            SpanKind::Segment {
                index: 0,
                placement: "gpu".into(),
            },
            Some(job),
        );
        set.push(
            Track::Gpu,
            2.0,
            6.0,
            SpanKind::Level { level: 0 },
            Some(seg),
        );
        let mut trace = ChromeTrace::new();
        trace.add_process("serve", set.into_events());
        let json = trace.render();
        let v = Json::parse(&json).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("span"))
            .collect();
        assert_eq!(spans.len(), 3);
        // The segment span references the job span as its parent.
        let seg_ev = spans
            .iter()
            .find(|e| e.get("args").unwrap().get("segment").is_some())
            .unwrap();
        assert_eq!(
            seg_ev.get("args").unwrap().get("parent").unwrap().as_f64(),
            Some(job as f64)
        );
        // Two parented spans -> two "s"/"f" flow pairs.
        let flows: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("flow"))
            .collect();
        assert_eq!(flows.len(), 4);
        let starts = flows
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("s"))
            .count();
        let ends = flows
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("f"))
            .count();
        assert_eq!((starts, ends), (2, 2));
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = ChromeTrace::new().render();
        let v = Json::parse(&json).unwrap();
        assert!(v.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
    }
}
