//! Model-vs-simulation drift: per-level relative error between the analytic
//! prediction and the simulated (or measured) time.
//!
//! This is the machinery behind the paper's predicted-vs-measured gap
//! (e.g. 4.54× measured vs 5.47× predicted speedup on HPU1 mergesort): the
//! analytic model ignores simulator costs like kernel launch overhead,
//! uncoalesced-access penalties and CPU cache contention, and the drift
//! report shows level by level where those costs land.

use crate::metrics::LevelMetrics;
use std::fmt::Write as _;

/// One level's prediction-vs-observation comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelDrift {
    /// Bottom-up level index (0 = base cases/leaves), matching
    /// [`LevelMetrics::level`].
    pub level: u32,
    /// Analytic prediction of the level's time from `hpu-model`.
    pub predicted: f64,
    /// Observed interval-merged time of the level.
    pub simulated: f64,
    /// Relative error `(simulated - predicted) / predicted`; positive means
    /// the run was slower than the model. Infinite when the model predicts
    /// zero but time was observed.
    pub rel_err: f64,
}

/// Joins per-level observed metrics with per-level predictions
/// (`(level, predicted_time)` pairs) into drift rows, one per level present
/// on either side.
pub fn drift_rows(levels: &[LevelMetrics], predicted: &[(u32, f64)]) -> Vec<LevelDrift> {
    let mut out: Vec<LevelDrift> = Vec::new();
    for m in levels {
        let pred = predicted
            .iter()
            .find(|(l, _)| *l == m.level)
            .map(|&(_, t)| t)
            .unwrap_or(0.0);
        out.push(make_row(m.level, pred, m.time));
    }
    for &(level, pred) in predicted {
        if !levels.iter().any(|m| m.level == level) {
            out.push(make_row(level, pred, 0.0));
        }
    }
    out.sort_by_key(|d| d.level);
    out
}

fn make_row(level: u32, predicted: f64, simulated: f64) -> LevelDrift {
    let rel_err = if predicted > 0.0 {
        (simulated - predicted) / predicted
    } else if simulated > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    LevelDrift {
        level,
        predicted,
        simulated,
        rel_err,
    }
}

/// Renders drift rows as a plain-text table with a totals line.
pub fn render_drift(rows: &[LevelDrift]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5} {:>14} {:>14} {:>9}",
        "level", "predicted", "simulated", "rel err"
    );
    let (mut tp, mut ts) = (0.0, 0.0);
    for r in rows {
        tp += r.predicted;
        ts += r.simulated;
        let _ = writeln!(
            out,
            "{:>5} {:>14.2} {:>14.2} {:>8.1}%",
            r.level,
            r.predicted,
            r.simulated,
            100.0 * r.rel_err
        );
    }
    let total_err = if tp > 0.0 { (ts - tp) / tp } else { 0.0 };
    let _ = writeln!(
        out,
        "{:>5} {:>14.2} {:>14.2} {:>8.1}%",
        "total",
        tp,
        ts,
        100.0 * total_err
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(level: u32, time: f64) -> LevelMetrics {
        LevelMetrics {
            level,
            time,
            ..LevelMetrics::default()
        }
    }

    #[test]
    fn joins_both_sides() {
        let rows = drift_rows(&[metrics(0, 10.0), metrics(1, 6.0)], &[(1, 5.0), (2, 3.0)]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].level, 0);
        assert!(rows[0].rel_err.is_infinite(), "observed but not predicted");
        assert!((rows[1].rel_err - 0.2).abs() < 1e-12);
        assert_eq!(rows[2].simulated, 0.0);
        assert!(
            (rows[2].rel_err + 1.0).abs() < 1e-12,
            "predicted but absent"
        );
    }

    #[test]
    fn render_has_totals_line() {
        let text = render_drift(&drift_rows(&[metrics(0, 11.0)], &[(0, 10.0)]));
        assert!(text.contains("total"));
        assert!(text.contains("10.0%"));
    }
}
