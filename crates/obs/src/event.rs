//! Typed trace events and the `Recorder` sink trait.

use std::fmt;

use crate::span::SpanKind;

/// An execution unit's track in a trace: the CPU (all cores aggregated),
/// the GPU, or the transfer bus between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// The multicore CPU.
    Cpu,
    /// The GPU.
    Gpu,
    /// The CPU↔GPU transfer bus.
    Bus,
}

impl Track {
    /// Stable thread id used in Chrome trace output (CPU=1, GPU=2, BUS=3).
    pub fn tid(self) -> u32 {
        match self {
            Track::Cpu => 1,
            Track::Gpu => 2,
            Track::Bus => 3,
        }
    }
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Track::Cpu => write!(f, "CPU"),
            Track::Gpu => write!(f, "GPU"),
            Track::Bus => write!(f, "BUS"),
        }
    }
}

/// Which phase of a breadth-first level a CPU span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelPhase {
    /// Base cases (the leaves of the recursion tree).
    Base,
    /// A combine pass merging `branching` children per task.
    Combine,
    /// A copy moving results from the scratch buffer back into place.
    CopyBack,
}

/// A structured description of what happened during a span.
///
/// `Display` reproduces the legacy free-string labels, so text renders of a
/// timeline look the same as before the typed events existed.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A breadth-first level executed on CPU cores.
    Level {
        /// Algorithm name.
        name: String,
        /// Base, combine or copy-back phase.
        phase: LevelPhase,
        /// Chunk size (output elements per task) at this level.
        chunk: u64,
        /// Number of tasks run in the span.
        tasks: u64,
        /// Total operation charges across the tasks.
        ops: u64,
        /// Total memory charges across the tasks.
        mem: u64,
    },
    /// A kernel launch on the GPU.
    Kernel {
        /// Kernel label.
        name: String,
        /// Items (virtual threads) launched.
        items: u64,
        /// Waves (rounds of `lanes` items) executed.
        waves: u64,
        /// Coalesced memory accesses observed.
        coalesced: u64,
        /// Uncoalesced memory accesses observed.
        uncoalesced: u64,
    },
    /// A bus transfer between host and device.
    Transfer {
        /// Direction: `true` for host→device.
        to_gpu: bool,
        /// Words moved.
        words: u64,
    },
    /// A synchronization barrier: the unit idled until the other caught up.
    Sync,
    /// An injected or observed device fault (kernel, transfer or loss).
    Fault {
        /// What faulted, e.g. the kernel label or `"transfer"`.
        label: String,
        /// Whether the fault is transient (retryable) or permanent.
        transient: bool,
    },
    /// A recovery retry of a failed plan segment.
    Retry {
        /// 1-based retry attempt number.
        attempt: u32,
        /// Backoff charged before this attempt (same unit as the track).
        backoff: f64,
    },
    /// The GPU circuit breaker tripped: consecutive faults crossed the
    /// threshold and the device was taken out of rotation.
    BreakerTrip {
        /// Consecutive faults observed at the trip.
        consecutive: u32,
    },
    /// A job was degraded to its CPU-only plan after device faults.
    Degraded {
        /// Id of the degraded job.
        job: u64,
    },
    /// A running job's state was captured at a level boundary (a
    /// consistent cut of the breadth-first execution).
    Checkpoint {
        /// First level still to run after the cut (levels `0..level` are
        /// complete and captured).
        level: u32,
        /// Words of host state captured in the checkpoint.
        words: u64,
    },
    /// A node was declared down by the fleet's failure detector.
    NodeDown {
        /// Index of the dead node.
        node: u64,
    },
    /// A previously-down node rejoined the fleet.
    NodeUp {
        /// Index of the rejoining node.
        node: u64,
    },
    /// A recovered job resumed from its last checkpoint instead of
    /// restarting from scratch.
    Resume {
        /// Level the job resumed from (levels below it were not re-run).
        level: u32,
    },
    /// A free-form annotation (legacy string labels land here).
    Mark(String),
    /// A causal span: one node of a job → segment → level → retry tree.
    /// Spans carry ids so children can reference parents across the
    /// flat event stream; the Chrome exporter draws the links as flow
    /// arrows.
    Span {
        /// Span id, unique within one run's event stream (never 0).
        id: u64,
        /// Parent span id, when this span has a causal parent.
        parent: Option<u64>,
        /// What the span covers.
        kind: SpanKind,
    },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Level {
                name,
                phase,
                chunk,
                tasks,
                ..
            } => match phase {
                LevelPhase::Base => write!(f, "{name} base ({tasks} tasks)"),
                LevelPhase::Combine => {
                    write!(f, "{name} combine chunk {chunk} ({tasks} tasks)")
                }
                LevelPhase::CopyBack => write!(f, "copy back ({tasks} tasks)"),
            },
            EventKind::Kernel {
                name, items, waves, ..
            } => write!(f, "{name} ({items} items, {waves} waves)"),
            EventKind::Transfer { to_gpu, words } => {
                let arrow = if *to_gpu { "→GPU" } else { "→CPU" };
                write!(f, "{arrow} {words} words")
            }
            EventKind::Sync => write!(f, "sync"),
            EventKind::Fault { label, transient } => {
                let kind = if *transient { "transient" } else { "permanent" };
                write!(f, "fault ({kind}) {label}")
            }
            EventKind::Retry { attempt, backoff } => {
                write!(f, "retry #{attempt} after backoff {backoff}")
            }
            EventKind::BreakerTrip { consecutive } => {
                write!(f, "breaker trip ({consecutive} consecutive faults)")
            }
            EventKind::Degraded { job } => write!(f, "job {job} degraded to CPU-only"),
            EventKind::Checkpoint { level, words } => {
                write!(f, "checkpoint at level {level} ({words} words)")
            }
            EventKind::NodeDown { node } => write!(f, "node {node} down"),
            EventKind::NodeUp { node } => write!(f, "node {node} up"),
            EventKind::Resume { level } => write!(f, "resume from level {level}"),
            EventKind::Mark(s) => write!(f, "{s}"),
            EventKind::Span { kind, .. } => write!(f, "{kind}"),
        }
    }
}

impl EventKind {
    /// Chrome trace category for this kind of event.
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::Level { .. } => "level",
            EventKind::Kernel { .. } => "kernel",
            EventKind::Transfer { .. } => "transfer",
            EventKind::Sync => "sync",
            EventKind::Fault { .. } => "fault",
            EventKind::Retry { .. } => "retry",
            EventKind::BreakerTrip { .. } => "breaker",
            EventKind::Degraded { .. } => "degraded",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::NodeDown { .. } | EventKind::NodeUp { .. } => "node",
            EventKind::Resume { .. } => "resume",
            EventKind::Mark(_) => "mark",
            EventKind::Span { .. } => "span",
        }
    }
}

/// One recorded span on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The unit the span ran on.
    pub track: Track,
    /// Span start (virtual time units, or µs for wall-clock recorders).
    pub start: f64,
    /// Span end.
    pub end: f64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Span duration (clamped to be non-negative).
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// A sink for trace events.
///
/// Implemented by the simulator's `Timeline` (spans in virtual time) and by
/// [`crate::WallRecorder`] (spans in microseconds of wall-clock time), so
/// executors can emit structured events without knowing which clock runs.
pub trait Recorder {
    /// Record a span `[start, end]` on `track`.
    fn record_event(&mut self, track: Track, start: f64, end: f64, kind: EventKind);
}

impl Recorder for Vec<TraceEvent> {
    fn record_event(&mut self, track: Track, start: f64, end: f64, kind: EventKind) {
        self.push(TraceEvent {
            track,
            start,
            end,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_reproduces_legacy_labels() {
        let level = EventKind::Level {
            name: "mergesort".into(),
            phase: LevelPhase::Combine,
            chunk: 8,
            tasks: 4,
            ops: 100,
            mem: 200,
        };
        assert_eq!(level.to_string(), "mergesort combine chunk 8 (4 tasks)");
        let kernel = EventKind::Kernel {
            name: "mergesort combine (chunk 8)".into(),
            items: 128,
            waves: 2,
            coalesced: 10,
            uncoalesced: 0,
        };
        assert_eq!(
            kernel.to_string(),
            "mergesort combine (chunk 8) (128 items, 2 waves)"
        );
        assert_eq!(
            EventKind::Transfer {
                to_gpu: true,
                words: 64
            }
            .to_string(),
            "→GPU 64 words"
        );
        assert_eq!(
            EventKind::Transfer {
                to_gpu: false,
                words: 64
            }
            .to_string(),
            "→CPU 64 words"
        );
        assert_eq!(EventKind::Mark("free text".into()).to_string(), "free text");
    }

    #[test]
    fn vec_is_a_recorder() {
        let mut sink: Vec<TraceEvent> = Vec::new();
        sink.record_event(Track::Bus, 1.0, 2.0, EventKind::Sync);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].duration(), 1.0);
    }
}
