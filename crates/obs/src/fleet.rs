//! Fleet-level serving metrics: many nodes, one report.
//!
//! The multi-node scheduler (`hpu-fleet`) serves jobs across N
//! independent machines, each producing its own [`ServeReport`]. A
//! [`FleetReport`] merges them: aggregate goodput and throughput over
//! the whole fleet, per-node utilization summaries, steal/migration
//! counts, and routing quality — the router's mean completed-job
//! latency against an omniscient lowest-completion-time oracle that
//! knows every node's true parameters and full future.

use crate::serve::{percentile, JobOutcome, ServeReport};

/// Per-node summary inside a [`FleetReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSummary {
    /// The node's label.
    pub name: String,
    /// Jobs the router placed on this node (including later-stolen ones).
    pub routed: usize,
    /// Jobs this node ran to completion.
    pub completed: usize,
    /// Completed over routed (1.0 for an idle node — nothing was lost).
    pub goodput: f64,
    /// Fraction of the node's makespan with at least one CPU core busy.
    pub cpu_utilization: f64,
    /// Fraction of the node's makespan the device lease was held.
    pub gpu_utilization: f64,
    /// The node's local makespan (first arrival to last completion).
    pub makespan: f64,
    /// Queued jobs migrated *away* from this node.
    pub steals_out: usize,
    /// Queued jobs migrated *to* this node.
    pub steals_in: usize,
    /// GPU circuit-breaker trips on this node.
    pub breaker_trips: u64,
    /// Drift-triggered calibration replans on this node — its private
    /// pricing generation; a peer's drift never advances it.
    pub replans: u64,
}

/// Crash-recovery tallies of one fleet run. All zero when no node
/// fault fired — the healthy case and the default.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryCounters {
    /// Node crashes that fired (machine lost, jobs evicted).
    pub crashes: u64,
    /// `NodeDown` transitions: the failure detector declared a node
    /// unreachable and quarantined it from routing.
    pub node_downs: u64,
    /// `NodeUp` transitions: a quarantined node rejoined service.
    pub node_ups: u64,
    /// Evicted jobs re-placed *with* a usable level-boundary checkpoint —
    /// they resume instead of re-running from scratch.
    pub jobs_recovered: u64,
    /// Evicted jobs re-placed with no checkpoint — restarted from
    /// scratch on the receiving node.
    pub jobs_restarted: u64,
    /// Combine levels the recovered jobs did **not** re-execute, summed
    /// over every recovery — the direct payoff of checkpointing.
    pub levels_saved: u64,
    /// Bytes of host state the used checkpoints captured.
    pub checkpoint_bytes: u64,
    /// Mean time from a fault firing to its jobs being safely re-placed
    /// (fleet virtual time); 0 when nothing was recovered.
    pub mttr: f64,
}

/// Aggregated metrics of one fleet serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-node summaries, fleet node order.
    pub nodes: Vec<NodeSummary>,
    /// Jobs submitted to the fleet.
    pub submitted: usize,
    /// Jobs that ran to completion (on any node).
    pub completed: usize,
    /// Jobs rejected with a full queue.
    pub rejected: usize,
    /// Jobs cancelled on their deadline.
    pub cancelled: usize,
    /// Jobs that failed to compile or execute.
    pub failed: usize,
    /// Completed over submitted (1.0 for an empty fleet).
    pub goodput: f64,
    /// Latest node makespan end — the fleet-wide serving window.
    pub makespan: f64,
    /// Completed jobs per unit time over the fleet window.
    pub throughput: f64,
    /// Median completed-job latency across every node.
    pub p50_latency: f64,
    /// 95th-percentile completed-job latency across every node.
    pub p95_latency: f64,
    /// 99th-percentile completed-job latency across every node.
    pub p99_latency: f64,
    /// Mean completed-job latency across every node.
    pub mean_latency: f64,
    /// Load-triggered steals: queued jobs migrated from an overloaded
    /// node's backfillable suffix to an idle node.
    pub steals: usize,
    /// Fault-triggered migrations: queued jobs rerouted off a node whose
    /// GPU circuit breaker tripped.
    pub migrations: usize,
    /// Mean completed-job latency of the omniscient
    /// lowest-completion-time oracle on the same submission stream; 0
    /// when the oracle was not computed.
    pub oracle_mean_latency: f64,
    /// `mean_latency / oracle_mean_latency` — 1.0 is oracle-equal,
    /// lower bounded by it; 0 when the oracle was not computed.
    pub routing_quality: f64,
    /// Node-probes the router skipped because the node produced no
    /// finite price for the arriving shape (plan-cache compile error,
    /// NaN/∞ beliefs). One arrival can contribute several: one per bad
    /// node it was scored against.
    pub unpriceable: usize,
    /// Crash-recovery tallies (all zero without node faults).
    pub recovery: RecoveryCounters,
}

impl FleetReport {
    /// Merges per-node serve reports into a fleet report.
    ///
    /// `routed[i]` is how many jobs the router placed on node `i` (its
    /// submission count there — a stolen job counts at both nodes),
    /// `steals` / `migrations` are the load- and fault-triggered
    /// migration tallies, and `steal_flow[i] = (out, in)` that node's
    /// share. Latency percentiles are formed over the concatenated
    /// per-node completion streams, sorted here before the
    /// [`percentile`] readout.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        names: Vec<String>,
        reports: &[ServeReport],
        routed: Vec<usize>,
        steal_flow: Vec<(usize, usize)>,
        replans: Vec<u64>,
        submitted: usize,
        steals: usize,
        migrations: usize,
    ) -> FleetReport {
        debug_assert_eq!(names.len(), reports.len());
        let nodes: Vec<NodeSummary> = names
            .into_iter()
            .zip(reports.iter())
            .enumerate()
            .map(|(i, (name, r))| {
                let routed_i = routed.get(i).copied().unwrap_or(0);
                let (steals_out, steals_in) = steal_flow.get(i).copied().unwrap_or((0, 0));
                NodeSummary {
                    name,
                    routed: routed_i,
                    completed: r.completed,
                    goodput: if routed_i == 0 {
                        1.0
                    } else {
                        r.completed as f64 / routed_i as f64
                    },
                    cpu_utilization: r.cpu_utilization,
                    gpu_utilization: r.gpu_utilization,
                    makespan: r.makespan,
                    steals_out,
                    steals_in,
                    breaker_trips: r.breaker_trips,
                    replans: replans.get(i).copied().unwrap_or(0),
                }
            })
            .collect();
        let completed: usize = reports.iter().map(|r| r.completed).sum();
        let rejected: usize = reports.iter().map(|r| r.rejected).sum();
        let cancelled: usize = reports.iter().map(|r| r.cancelled).sum();
        let failed: usize = reports.iter().map(|r| r.failed).sum();
        // Per-node completion streams concatenate interleaved — sort
        // before the percentile readout (release-mode `percentile` would
        // also detect-and-sort, but never rely on the safety net).
        let mut latencies: Vec<f64> = reports
            .iter()
            .flat_map(|r| r.jobs.iter())
            .filter(|j| j.outcome == JobOutcome::Completed)
            .map(|j| j.latency())
            .collect();
        let mean_latency = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        latencies.sort_by(f64::total_cmp);
        let makespan = reports
            .iter()
            .map(|r| r.makespan)
            .fold(0.0f64, |a, b| a.max(b));
        FleetReport {
            nodes,
            submitted,
            completed,
            rejected,
            cancelled,
            failed,
            goodput: if submitted == 0 {
                1.0
            } else {
                completed as f64 / submitted as f64
            },
            makespan,
            throughput: if makespan > 0.0 {
                completed as f64 / makespan
            } else {
                0.0
            },
            p50_latency: percentile(&latencies, 50.0),
            p95_latency: percentile(&latencies, 95.0),
            p99_latency: percentile(&latencies, 99.0),
            mean_latency,
            steals,
            migrations,
            oracle_mean_latency: 0.0,
            routing_quality: 0.0,
            unpriceable: 0,
            recovery: RecoveryCounters::default(),
        }
    }

    /// Attaches the omniscient oracle's mean completed-job latency and
    /// derives the routing-quality ratio from it.
    pub fn with_oracle(mut self, oracle_mean_latency: f64) -> FleetReport {
        self.oracle_mean_latency = oracle_mean_latency;
        self.routing_quality = if oracle_mean_latency > 0.0 {
            self.mean_latency / oracle_mean_latency
        } else {
            0.0
        };
        self
    }

    /// Attaches the count of unpriceable node-probes the router skipped
    /// (see [`FleetReport::unpriceable`]).
    pub fn with_unpriceable(mut self, unpriceable: usize) -> FleetReport {
        self.unpriceable = unpriceable;
        self
    }

    /// Attaches the crash-recovery tallies (see [`RecoveryCounters`]).
    pub fn with_recovery(mut self, recovery: RecoveryCounters) -> FleetReport {
        self.recovery = recovery;
        self
    }

    /// JSON object of the fleet summary (nodes as an array of objects).
    /// Field set and order are part of the stable schema; bump
    /// `"schema"` when a field's meaning changes.
    pub fn to_json(&self) -> String {
        let f = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "0".to_string()
            }
        };
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                format!(
                    "{{\"name\":\"{}\",\"routed\":{},\"completed\":{},\"goodput\":{},\
                     \"cpu_utilization\":{},\"gpu_utilization\":{},\"makespan\":{},\
                     \"steals_out\":{},\"steals_in\":{},\"breaker_trips\":{},\"replans\":{}}}",
                    n.name,
                    n.routed,
                    n.completed,
                    f(n.goodput),
                    f(n.cpu_utilization),
                    f(n.gpu_utilization),
                    f(n.makespan),
                    n.steals_out,
                    n.steals_in,
                    n.breaker_trips,
                    n.replans,
                )
            })
            .collect();
        format!(
            "{{\"schema\":1,\"submitted\":{},\"completed\":{},\"rejected\":{},\
             \"cancelled\":{},\"failed\":{},\"goodput\":{},\"makespan\":{},\
             \"throughput\":{},\"p50_latency\":{},\"p95_latency\":{},\"p99_latency\":{},\
             \"mean_latency\":{},\"steals\":{},\"migrations\":{},\"unpriceable\":{},\
             \"oracle_mean_latency\":{},\"routing_quality\":{},\
             \"recovery\":{{\"crashes\":{},\"node_downs\":{},\"node_ups\":{},\
             \"jobs_recovered\":{},\"jobs_restarted\":{},\"levels_saved\":{},\
             \"checkpoint_bytes\":{},\"mttr\":{}}},\"nodes\":[{}]}}",
            self.submitted,
            self.completed,
            self.rejected,
            self.cancelled,
            self.failed,
            f(self.goodput),
            f(self.makespan),
            f(self.throughput),
            f(self.p50_latency),
            f(self.p95_latency),
            f(self.p99_latency),
            f(self.mean_latency),
            self.steals,
            self.migrations,
            self.unpriceable,
            f(self.oracle_mean_latency),
            f(self.routing_quality),
            self.recovery.crashes,
            self.recovery.node_downs,
            self.recovery.node_ups,
            self.recovery.jobs_recovered,
            self.recovery.jobs_restarted,
            self.recovery.levels_saved,
            self.recovery.checkpoint_bytes,
            f(self.recovery.mttr),
            nodes.join(","),
        )
    }

    /// Plain-text summary: one fleet line plus one line per node.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fleet: submitted {} | completed {} rejected {} cancelled {} failed {}\n\
             goodput {:.3} | makespan {:.2} | throughput {:.6}\n\
             latency mean {:.2} p50 {:.2} p95 {:.2} p99 {:.2}\n\
             steals {} | migrations {} | unpriceable {} | routing quality {:.3} (oracle mean {:.2})\n",
            self.submitted,
            self.completed,
            self.rejected,
            self.cancelled,
            self.failed,
            self.goodput,
            self.makespan,
            self.throughput,
            self.mean_latency,
            self.p50_latency,
            self.p95_latency,
            self.p99_latency,
            self.steals,
            self.migrations,
            self.unpriceable,
            self.routing_quality,
            self.oracle_mean_latency,
        );
        if self.recovery.crashes > 0 || self.recovery.node_downs > 0 {
            let r = &self.recovery;
            out.push_str(&format!(
                "recovery: crashes {} | down {} up {} | recovered {} restarted {} | \
                 levels saved {} | ckpt bytes {} | mttr {:.2}\n",
                r.crashes,
                r.node_downs,
                r.node_ups,
                r.jobs_recovered,
                r.jobs_restarted,
                r.levels_saved,
                r.checkpoint_bytes,
                r.mttr,
            ));
        }
        for n in &self.nodes {
            out.push_str(&format!(
                "  {}: routed {} completed {} goodput {:.3} | util cpu {:.3} gpu {:.3} | \
                 makespan {:.2} | steals out {} in {} | trips {} replans {}\n",
                n.name,
                n.routed,
                n.completed,
                n.goodput,
                n.cpu_utilization,
                n.gpu_utilization,
                n.makespan,
                n.steals_out,
                n.steals_in,
                n.breaker_trips,
                n.replans,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{JobOutcome, JobRecord};

    fn record(id: u64, arrival: f64, end: f64) -> JobRecord {
        JobRecord {
            id,
            name: format!("job-{id}"),
            outcome: JobOutcome::Completed,
            arrival,
            start: arrival,
            end,
            predicted: 0.0,
            service: 0.0,
            fallback: false,
            retries: 0,
            degraded: false,
            calibration_generation: 0,
        }
    }

    fn report(records: Vec<JobRecord>) -> ServeReport {
        ServeReport::new(records, 1.0, 0.5)
    }

    #[test]
    fn merges_counts_and_interleaved_latencies() {
        // Node 0 completes latencies [9, 1]; node 1 completes [5]. The
        // concatenated stream is unsorted; the percentiles must still be
        // the true order statistics.
        let a = report(vec![record(0, 0.0, 9.0), record(2, 1.0, 2.0)]);
        let b = report(vec![record(1, 0.0, 5.0)]);
        let r = FleetReport::new(
            vec!["n0".into(), "n1".into()],
            &[a, b],
            vec![2, 1],
            vec![(0, 0), (0, 0)],
            vec![0, 0],
            3,
            0,
            0,
        );
        assert_eq!(r.submitted, 3);
        assert_eq!(r.completed, 3);
        assert!((r.goodput - 1.0).abs() < 1e-12);
        assert_eq!(r.p50_latency, 5.0);
        assert_eq!(r.p99_latency, 9.0);
        assert!((r.mean_latency - 5.0).abs() < 1e-12);
        assert!(!r.render().is_empty());
    }

    #[test]
    fn oracle_ratio_and_empty_fleet() {
        let r = FleetReport::new(Vec::new(), &[], Vec::new(), Vec::new(), Vec::new(), 0, 0, 0);
        assert!((r.goodput - 1.0).abs() < 1e-12);
        assert_eq!(r.routing_quality, 0.0);
        let a = report(vec![record(0, 0.0, 2.0)]);
        let r = FleetReport::new(
            vec!["n0".into()],
            &[a],
            vec![1],
            vec![(0, 0)],
            vec![0],
            1,
            0,
            0,
        )
        .with_oracle(1.0);
        assert!((r.routing_quality - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_is_parseable_and_carries_nodes() {
        let a = report(vec![record(0, 0.0, 4.0)]);
        let r = FleetReport::new(
            vec!["hpu1".into()],
            &[a],
            vec![1],
            vec![(1, 2)],
            vec![3],
            1,
            1,
            2,
        )
        .with_oracle(4.0)
        .with_unpriceable(5);
        let j = crate::json::Json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(
            j.get("unpriceable").and_then(crate::json::Json::as_f64),
            Some(5.0)
        );
        assert_eq!(
            j.get("schema").and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            j.get("steals").and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            j.get("migrations").and_then(crate::json::Json::as_f64),
            Some(2.0)
        );
        let nodes = j.get("nodes").and_then(crate::json::Json::as_arr).unwrap();
        assert_eq!(nodes.len(), 1);
        assert_eq!(
            nodes[0].get("replans").and_then(crate::json::Json::as_f64),
            Some(3.0)
        );
        // The recovery object is always present (all-zero when no fault
        // fired) so downstream parsers never branch on its existence.
        let rec = j.get("recovery").expect("recovery object");
        assert_eq!(
            rec.get("crashes").and_then(crate::json::Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn recovery_counters_round_trip_through_json() {
        let a = report(vec![record(0, 0.0, 4.0)]);
        let r = FleetReport::new(
            vec!["hpu1".into()],
            &[a],
            vec![1],
            vec![(0, 0)],
            vec![0],
            1,
            0,
            0,
        )
        .with_recovery(RecoveryCounters {
            crashes: 1,
            node_downs: 1,
            node_ups: 1,
            jobs_recovered: 2,
            jobs_restarted: 3,
            levels_saved: 9,
            checkpoint_bytes: 4096,
            mttr: 1.5,
        });
        let j = crate::json::Json::parse(&r.to_json()).expect("valid JSON");
        let rec = j.get("recovery").expect("recovery object");
        let f = |k: &str| rec.get(k).and_then(crate::json::Json::as_f64);
        assert_eq!(f("crashes"), Some(1.0));
        assert_eq!(f("node_downs"), Some(1.0));
        assert_eq!(f("node_ups"), Some(1.0));
        assert_eq!(f("jobs_recovered"), Some(2.0));
        assert_eq!(f("jobs_restarted"), Some(3.0));
        assert_eq!(f("levels_saved"), Some(9.0));
        assert_eq!(f("checkpoint_bytes"), Some(4096.0));
        assert_eq!(f("mttr"), Some(1.5));
        assert!(r.render().contains("recovery:"));
    }
}
