//! Log-bucketed streaming histograms.
//!
//! [`StreamHistogram`] is the registry's workhorse: a fixed array of
//! atomic counters over geometrically-spaced buckets, so recording is a
//! single relaxed `fetch_add` (no lock, no allocation after construction)
//! and quantile readout is a walk over the buckets — O(buckets), not
//! O(samples · log samples) like the sort-everything path it replaces in
//! `ServeReport`. The trade is precision: a quantile comes back as its
//! bucket's geometric midpoint, which is within one bucket width
//! (a factor of 2^(1/32) ≈ 2.2%) of the exact sample. Exact `min`, `max`,
//! `sum` and `count` are tracked alongside, and quantiles are clamped
//! into `[min, max]` so degenerate distributions (a single value, all
//! equal values) read back exactly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two. 32 gives a relative bucket width of
/// 2^(1/32) − 1 ≈ 2.2%.
const SUBS: usize = 32;
/// Smallest resolvable exponent: values below 2^-16 (≈ 1.5e-5) clamp
/// into the first log bucket.
const MIN_EXP: f64 = -16.0;
/// Octave span: exponents in [-16, 48) resolve exactly; values at or
/// above 2^48 clamp into the last log bucket.
const OCTAVES: usize = 64;
/// Log buckets, excluding the dedicated zero-or-negative bucket.
const LOG_BUCKETS: usize = OCTAVES * SUBS;

/// A streaming histogram with geometrically-spaced buckets and atomic
/// counters. All mutation goes through `&self`, so one instance can be
/// shared across threads behind an `Arc` without a lock.
pub struct StreamHistogram {
    /// `buckets[0]` counts non-positive samples; `buckets[1 + i]` counts
    /// samples in log bucket `i`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 bits; accumulated with a CAS loop.
    sum: AtomicU64,
    /// f64 bits; starts at +inf.
    min: AtomicU64,
    /// f64 bits; starts at -inf.
    max: AtomicU64,
}

impl Default for StreamHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(1 + LOG_BUCKETS);
        buckets.resize_with(1 + LOG_BUCKETS, || AtomicU64::new(0));
        StreamHistogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0.0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// The relative half-width of a bucket: a quantile readout is within
    /// a factor of `1 + relative_error()` of some recorded sample.
    pub fn relative_error() -> f64 {
        2f64.powf(1.0 / SUBS as f64) - 1.0
    }

    fn index_of(v: f64) -> usize {
        // NaN is filtered by `record` before this point.
        if v <= 0.0 {
            return 0;
        }
        let raw = ((v.log2() - MIN_EXP) * SUBS as f64).floor();
        let idx = if raw < 0.0 {
            0
        } else if raw >= LOG_BUCKETS as f64 {
            LOG_BUCKETS - 1
        } else {
            raw as usize
        };
        1 + idx
    }

    /// Geometric midpoint of log bucket `i` (0-based, zero bucket
    /// excluded).
    fn representative(i: usize) -> f64 {
        2f64.powf(MIN_EXP + (i as f64 + 0.5) / SUBS as f64)
    }

    /// Records one sample. NaN samples are ignored.
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.buckets[Self::index_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some((f64::from_bits(cur) + v).to_bits())
            });
        let _ = self
            .min
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                (v < f64::from_bits(cur)).then(|| v.to_bits())
            });
        let _ = self
            .max
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                (v > f64::from_bits(cur)).then(|| v.to_bits())
            });
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// Mean of recorded samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Smallest recorded sample; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            f64::from_bits(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest recorded sample; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            f64::from_bits(self.max.load(Ordering::Relaxed))
        }
    }

    /// The `q`-th percentile (`q` in `[0, 100]`) by nearest rank, read
    /// from the buckets and clamped into `[min, max]`. Returns 0.0 for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q / 100.0) * n as f64).ceil() as u64;
        let rank = rank.clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let rep = if i == 0 {
                    0.0
                } else {
                    Self::representative(i - 1)
                };
                return rep.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// A plain-data copy of the current state (quantiles plus exact
    /// aggregates), for embedding in reports.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(50.0),
            p95: self.quantile(95.0),
            p99: self.quantile(99.0),
        }
    }
}

impl std::fmt::Debug for StreamHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamHistogram")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.quantile(50.0))
            .finish()
    }
}

/// Plain-data summary of a [`StreamHistogram`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: f64,
    /// Exact minimum sample (0.0 when empty).
    pub min: f64,
    /// Exact maximum sample (0.0 when empty).
    pub max: f64,
    /// Approximate median (within one bucket width).
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// SplitMix64, enough randomness for bucket-agreement checks.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        fn uniform(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn exact_percentile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = StreamHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(50.0), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value_is_exact_at_every_quantile() {
        let h = StreamHistogram::new();
        h.record(4.0);
        for q in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.quantile(q), 4.0, "q={q}");
        }
        assert_eq!(h.min(), 4.0);
        assert_eq!(h.max(), 4.0);
        assert_eq!(h.sum(), 4.0);
    }

    #[test]
    fn constant_stream_is_exact() {
        let h = StreamHistogram::new();
        for _ in 0..1000 {
            h.record(123.456);
        }
        assert_eq!(h.quantile(50.0), 123.456);
        assert_eq!(h.quantile(99.0), 123.456);
    }

    #[test]
    fn quantiles_agree_with_exact_sort_within_one_bucket_width() {
        // Acceptance criterion: streaming percentiles vs exact
        // nearest-rank percentiles on randomized inputs, within one
        // bucket width (relative factor 2^(1/32)).
        let tol = 1.0 + StreamHistogram::relative_error() + 1e-12;
        let mut rng = Rng(0xfeed_beef);
        for trial in 0..20 {
            let n = 50 + (rng.next() % 2000) as usize;
            let h = StreamHistogram::new();
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                // Log-uniform over ~9 decades: exercises many octaves.
                let v = 10f64.powf(rng.uniform() * 9.0 - 3.0);
                h.record(v);
                vals.push(v);
            }
            vals.sort_by(f64::total_cmp);
            for q in [1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
                let exact = exact_percentile(&vals, q);
                let approx = h.quantile(q);
                let ratio = approx / exact;
                assert!(
                    (1.0 / tol..=tol).contains(&ratio),
                    "trial {trial} q={q}: exact {exact} vs approx {approx}"
                );
            }
        }
    }

    #[test]
    fn extremes_clamp_into_edge_buckets() {
        let h = StreamHistogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(1e-30);
        h.record(1e300);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), 1e300);
        // Quantiles stay within the recorded range despite clamped
        // bucket indices.
        for q in [0.0, 50.0, 100.0] {
            let v = h.quantile(q);
            assert!((-5.0..=1e300).contains(&v), "q={q} -> {v}");
        }
        // NaN is dropped.
        h.record(f64::NAN);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(StreamHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record((t * 10_000 + i) as f64 % 97.0 + 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert!(h.min() >= 1.0 && h.max() <= 98.0);
    }
}
