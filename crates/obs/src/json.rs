//! A minimal JSON value parser, used to validate the Chrome trace exporter
//! in tests without pulling in serde. Supports the full JSON grammar except
//! `\uXXXX` surrogate pairs are decoded naively (sufficient for our ASCII
//! output plus the `→` arrows, which are emitted as raw UTF-8 anyway).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always stored as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (may be multi-byte).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_document() {
        let v =
            Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"nested": true}, "s": "hi\n→", "z": null}"#)
                .unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("nested").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi\n→"));
        assert_eq!(v.get("z"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123 45").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
