//! Observability layer for the HPU simulator and native executors.
//!
//! This crate is deliberately dependency-free (no serde, no tracing): the
//! workspace must build offline, and the formats involved — Chrome trace
//! event JSON, CSV, plain-text tables — are simple enough to emit and parse
//! by hand.
//!
//! The pieces:
//!
//! * [`EventKind`] / [`TraceEvent`] — typed trace events replacing free-form
//!   string labels. `Display` reproduces the legacy labels losslessly so
//!   text renders stay readable.
//! * [`Recorder`] — the sink trait. The simulator's `Timeline` (virtual
//!   time) and the native [`WallRecorder`] (wall-clock via `Instant`) both
//!   implement it, so executors are agnostic about which clock is running.
//! * [`ChromeTrace`] — hand-rolled Chrome trace event JSON exporter; open
//!   the output in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`. Each process is one run; CPU, GPU and bus map to
//!   track rows.
//! * [`LevelMetrics`] / [`LevelBook`] — per-level aggregation: task counts,
//!   ops/mem charges, coalescing, words moved, interval-merged per-unit
//!   occupancy.
//! * [`LevelDrift`] / [`drift_rows`] — per-level comparison of analytic
//!   model predictions against simulated (or measured) time.
//! * [`ServeReport`] / [`JobRecord`] — fleet-level serving metrics
//!   (throughput, latency percentiles, device utilization) produced by the
//!   multi-job scheduler in `hpu-serve`.
//! * [`FleetReport`] / [`NodeSummary`] — multi-node aggregation of
//!   per-node serve reports (aggregate goodput, steal/migration counts,
//!   routing quality vs. an omniscient oracle) produced by `hpu-fleet`.
//! * [`MetricsRegistry`] / [`StreamHistogram`] — live metrics: named
//!   atomic counters, gauges and log-bucketed streaming histograms with
//!   O(buckets) p50/p95/p99 readout, sampled by the serving loop, the
//!   interpreter and the plan compiler.
//! * [`SpanSet`] / [`SpanKind`] — span-based causal tracing: typed spans
//!   with parent ids forming job → segment → level → retry trees, carried
//!   through the same [`EventKind`] stream and rendered as flow arrows by
//!   the Chrome exporter.
//! * [`json`] — a minimal JSON value parser used by tests to validate the
//!   exporter's output without external crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod drift;
mod event;
mod fleet;
mod hist;
pub mod json;
mod metrics;
mod registry;
mod serve;
mod span;
mod wall;

pub use chrome::ChromeTrace;
pub use drift::{drift_rows, render_drift, LevelDrift};
pub use event::{EventKind, LevelPhase, Recorder, TraceEvent, Track};
pub use fleet::{FleetReport, NodeSummary, RecoveryCounters};
pub use hist::{HistSnapshot, StreamHistogram};
pub use metrics::{merge_intervals, LevelBook, LevelMetrics};
pub use registry::{Counter, Gauge, MetricValue, MetricsRegistry};
pub use serve::{percentile, FaultTag, JobOutcome, JobRecord, ServeReport};
pub use span::{as_span, SpanKind, SpanSet};
pub use wall::WallRecorder;
