//! Per-level metrics aggregation.
//!
//! Executors report each span of work to a [`LevelBook`] keyed by the
//! breadth-first level it belongs to (level 0 = base cases / leaves, level
//! `k` = combines at chunk `base · a^k`). [`LevelBook::finish`] folds the
//! raw spans into one [`LevelMetrics`] row per level, with per-unit
//! occupancy computed by interval merging — overlapping spans (e.g. the
//! advanced schedule's concurrent CPU and GPU phases) are not double
//! counted.

use crate::event::Track;
use std::collections::BTreeMap;

/// Merges possibly-overlapping `(start, end)` intervals and returns the
/// total length of their union. Empty and inverted intervals contribute
/// nothing.
pub fn merge_intervals(intervals: &[(f64, f64)]) -> f64 {
    let mut iv: Vec<(f64, f64)> = intervals.iter().copied().filter(|&(s, e)| e > s).collect();
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (s, e) in iv {
        match cur {
            None => cur = Some((s, e)),
            Some((cs, ce)) => {
                if s <= ce {
                    cur = Some((cs, ce.max(e)));
                } else {
                    total += ce - cs;
                    cur = Some((s, e));
                }
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Aggregated metrics for one breadth-first level of a run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LevelMetrics {
    /// Bottom-up level index: 0 = base cases/leaves, `k` = the k-th combine.
    pub level: u32,
    /// Chunk size (output elements per task) at this level.
    pub chunk: u64,
    /// Tasks executed at this level (CPU tasks + GPU items).
    pub tasks: u64,
    /// Operation charges accrued at this level.
    pub ops: u64,
    /// Memory charges accrued at this level.
    pub mem: u64,
    /// Coalesced GPU accesses at this level.
    pub coalesced: u64,
    /// Uncoalesced GPU accesses at this level.
    pub uncoalesced: u64,
    /// Words moved over the bus attributed to this level.
    pub words: u64,
    /// Interval-merged CPU occupancy (time, not core-time).
    pub cpu_time: f64,
    /// Interval-merged GPU occupancy.
    pub gpu_time: f64,
    /// Interval-merged bus occupancy.
    pub bus_time: f64,
    /// Interval-merged occupancy across all units: the level's footprint on
    /// the clock. Less than `cpu_time + gpu_time + bus_time` when units
    /// overlap (the whole point of the hybrid schedules).
    pub time: f64,
    /// Index of the execution-plan segment that ran this level (`None` when
    /// the producer did not attribute work to plan segments).
    pub segment: Option<u32>,
}

#[derive(Debug, Clone, Default)]
struct Acc {
    segment: Option<u32>,
    chunk: u64,
    tasks: u64,
    ops: u64,
    mem: u64,
    coalesced: u64,
    uncoalesced: u64,
    words: u64,
    cpu: Vec<(f64, f64)>,
    gpu: Vec<(f64, f64)>,
    bus: Vec<(f64, f64)>,
}

/// Accumulates per-level spans during a run and folds them into
/// [`LevelMetrics`] rows.
///
/// Levels are identified by chunk size: a span working at chunk `c` lands
/// on level `log_a(c / base)` (level 0 for `c <= base`). The same mapping
/// holds for simulated and native executors.
#[derive(Debug, Clone)]
pub struct LevelBook {
    base: u64,
    branching: u64,
    segment: Option<u32>,
    levels: BTreeMap<u32, Acc>,
}

impl LevelBook {
    /// Creates a book for an algorithm with the given base chunk size and
    /// branching factor `a` (both at least 1; a branching of 1 puts all
    /// work on level 0).
    pub fn new(base_chunk: u64, branching: u64) -> Self {
        LevelBook {
            base: base_chunk.max(1),
            branching: branching.max(1),
            segment: None,
            levels: BTreeMap::new(),
        }
    }

    /// Marks all subsequently booked spans as belonging to the given
    /// execution-plan segment (`None` to stop attributing). A level keeps
    /// the first segment that books work on it.
    pub fn set_segment(&mut self, segment: Option<u32>) {
        self.segment = segment;
    }

    /// The level a chunk size belongs to: `round(log_a(chunk / base))`,
    /// clamped to 0.
    pub fn level_of(&self, chunk: u64) -> u32 {
        if chunk <= self.base || self.branching < 2 {
            return 0;
        }
        let ratio = chunk as f64 / self.base as f64;
        (ratio.ln() / (self.branching as f64).ln()).round().max(0.0) as u32
    }

    fn acc(&mut self, chunk: u64) -> &mut Acc {
        let level = self.level_of(chunk);
        let acc = self.levels.entry(level).or_default();
        acc.chunk = acc.chunk.max(chunk);
        if acc.segment.is_none() {
            acc.segment = self.segment;
        }
        acc
    }

    /// Records a CPU span at the given chunk size.
    pub fn cpu(&mut self, chunk: u64, tasks: u64, ops: u64, mem: u64, start: f64, end: f64) {
        let acc = self.acc(chunk);
        acc.tasks += tasks;
        acc.ops += ops;
        acc.mem += mem;
        acc.cpu.push((start, end));
    }

    /// Records a GPU kernel span at the given chunk size. Pass `tasks = 0`
    /// for auxiliary passes (e.g. finalize kernels) that re-visit a level.
    #[allow(clippy::too_many_arguments)]
    pub fn gpu(
        &mut self,
        chunk: u64,
        tasks: u64,
        coalesced: u64,
        uncoalesced: u64,
        start: f64,
        end: f64,
    ) {
        let acc = self.acc(chunk);
        acc.tasks += tasks;
        acc.coalesced += coalesced;
        acc.uncoalesced += uncoalesced;
        acc.gpu.push((start, end));
    }

    /// Records a bus transfer attributed to the given chunk size.
    pub fn transfer(&mut self, chunk: u64, words: u64, start: f64, end: f64) {
        let acc = self.acc(chunk);
        acc.words += words;
        acc.bus.push((start, end));
    }

    /// Folds the accumulated spans into one row per level, sorted bottom-up.
    pub fn finish(self) -> Vec<LevelMetrics> {
        self.levels
            .into_iter()
            .map(|(level, acc)| {
                let mut all = acc.cpu.clone();
                all.extend_from_slice(&acc.gpu);
                all.extend_from_slice(&acc.bus);
                LevelMetrics {
                    level,
                    chunk: acc.chunk,
                    tasks: acc.tasks,
                    ops: acc.ops,
                    mem: acc.mem,
                    coalesced: acc.coalesced,
                    uncoalesced: acc.uncoalesced,
                    words: acc.words,
                    cpu_time: merge_intervals(&acc.cpu),
                    gpu_time: merge_intervals(&acc.gpu),
                    bus_time: merge_intervals(&acc.bus),
                    time: merge_intervals(&all),
                    segment: acc.segment,
                }
            })
            .collect()
    }

    /// Per-unit occupancy of everything recorded so far, across all levels.
    pub fn occupancy(&self, track: Track) -> f64 {
        let mut iv = Vec::new();
        for acc in self.levels.values() {
            match track {
                Track::Cpu => iv.extend_from_slice(&acc.cpu),
                Track::Gpu => iv.extend_from_slice(&acc.gpu),
                Track::Bus => iv.extend_from_slice(&acc.bus),
            }
        }
        merge_intervals(&iv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_handles_overlap_and_gaps() {
        assert_eq!(merge_intervals(&[]), 0.0);
        assert_eq!(merge_intervals(&[(0.0, 1.0), (2.0, 3.0)]), 2.0);
        assert_eq!(merge_intervals(&[(0.0, 2.0), (1.0, 3.0)]), 3.0);
        assert_eq!(merge_intervals(&[(0.0, 5.0), (1.0, 2.0)]), 5.0);
        // Touching intervals merge; inverted intervals are dropped.
        assert_eq!(merge_intervals(&[(0.0, 1.0), (1.0, 2.0), (9.0, 8.0)]), 2.0);
    }

    #[test]
    fn levels_key_off_chunk_size() {
        let book = LevelBook::new(1, 2);
        assert_eq!(book.level_of(1), 0);
        assert_eq!(book.level_of(2), 1);
        assert_eq!(book.level_of(8), 3);
        let cutoff = LevelBook::new(16, 2);
        assert_eq!(cutoff.level_of(16), 0);
        assert_eq!(cutoff.level_of(64), 2);
    }

    #[test]
    fn segment_marker_attributes_levels_first_wins() {
        let mut book = LevelBook::new(1, 2);
        book.set_segment(Some(0));
        book.gpu(1, 4, 8, 0, 0.0, 4.0); // level 0 under segment 0
        book.set_segment(Some(1));
        book.cpu(4, 2, 8, 0, 4.0, 8.0); // level 2 under segment 1
        book.cpu(1, 0, 0, 2, 8.0, 9.0); // revisits level 0: keeps segment 0
        let rows = book.finish();
        assert_eq!(rows[0].segment, Some(0));
        assert_eq!(rows[1].segment, Some(1));
        // Without a marker, levels stay unattributed.
        let mut plain = LevelBook::new(1, 2);
        plain.cpu(1, 1, 1, 0, 0.0, 1.0);
        assert_eq!(plain.finish()[0].segment, None);
    }

    #[test]
    fn finish_merges_concurrent_units() {
        let mut book = LevelBook::new(1, 2);
        // Concurrent CPU and GPU work at level 1 (chunk 2): overlap 5..10.
        book.cpu(2, 3, 30, 60, 0.0, 10.0);
        book.gpu(2, 5, 12, 0, 5.0, 15.0);
        book.transfer(1, 64, 0.0, 2.0);
        let rows = book.finish();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].level, 0);
        assert_eq!(rows[0].words, 64);
        let l1 = &rows[1];
        assert_eq!(l1.tasks, 8);
        assert_eq!(l1.ops, 30);
        assert_eq!(l1.coalesced, 12);
        assert_eq!(l1.cpu_time, 10.0);
        assert_eq!(l1.gpu_time, 10.0);
        assert_eq!(l1.time, 15.0, "union, not sum");
    }
}
