//! A process-wide metrics registry: named counters, gauges and
//! streaming histograms.
//!
//! The registry is built for instrumentation on hot paths: looking a
//! metric up takes a short mutex on the name table, but the returned
//! handle is an `Arc` whose updates are plain atomic operations — hold
//! the handle and the registry itself is never touched again. The
//! convenience methods ([`MetricsRegistry::inc`],
//! [`MetricsRegistry::observe`], [`MetricsRegistry::set_gauge`]) do the
//! lookup inline, which is fine for once-per-job sampling; per-element
//! loops should cache the handle.
//!
//! Everything renders to a stable plain-text table and a JSON object
//! (hand-rolled, like the rest of this crate) so snapshots can be
//! embedded in reports and diffed across runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{HistSnapshot, StreamHistogram};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Named counters, gauges and histograms behind one handle.
///
/// Shared as `Arc<MetricsRegistry>`; every method takes `&self`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<StreamHistogram>>>,
}

/// One row of a registry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistSnapshot),
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating if absent) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics mutex poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns (creating if absent) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics mutex poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns (creating if absent) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<StreamHistogram> {
        let mut map = self.histograms.lock().expect("metrics mutex poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Adds `n` to counter `name`.
    pub fn inc(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&self, name: &str, v: f64) {
        self.histogram(name).record(v);
    }

    /// All metrics at this instant, sorted by name. Counter, gauge and
    /// histogram namespaces are disjoint unless callers reuse a name
    /// across kinds, in which case the later kind (gauge over counter,
    /// histogram over gauge) wins the slot.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        let mut out = BTreeMap::new();
        for (k, v) in self.counters.lock().expect("metrics mutex poisoned").iter() {
            out.insert(k.clone(), MetricValue::Counter(v.get()));
        }
        for (k, v) in self.gauges.lock().expect("metrics mutex poisoned").iter() {
            out.insert(k.clone(), MetricValue::Gauge(v.get()));
        }
        for (k, v) in self
            .histograms
            .lock()
            .expect("metrics mutex poisoned")
            .iter()
        {
            out.insert(k.clone(), MetricValue::Histogram(v.snapshot()));
        }
        out
    }

    /// Plain-text table of every metric, one line each.
    pub fn render(&self) -> String {
        let mut out = String::from("metric                                    value\n");
        for (name, v) in self.snapshot() {
            match v {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("{name:<40}  {c}\n"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("{name:<40}  {g:.4}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{name:<40}  n={} p50={:.4} p95={:.4} p99={:.4} min={:.4} max={:.4}\n",
                        h.count, h.p50, h.p95, h.p99, h.min, h.max
                    ));
                }
            }
        }
        out
    }

    /// JSON object `{name: value}`; histograms nest their summary
    /// fields. Parseable by [`crate::json::Json`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, v) in self.snapshot() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{:?}:", name));
            match v {
                MetricValue::Counter(c) => out.push_str(&c.to_string()),
                MetricValue::Gauge(g) => out.push_str(&fmt_f64(g)),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        h.count,
                        fmt_f64(h.sum),
                        fmt_f64(h.min),
                        fmt_f64(h.max),
                        fmt_f64(h.p50),
                        fmt_f64(h.p95),
                        fmt_f64(h.p99)
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Finite-only float formatting for JSON (NaN/inf become 0).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let reg = MetricsRegistry::new();
        reg.inc("serve.jobs", 3);
        reg.inc("serve.jobs", 2);
        reg.set_gauge("queue.depth", 7.5);
        for v in [1.0, 2.0, 3.0, 4.0] {
            reg.observe("latency", v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap["serve.jobs"], MetricValue::Counter(5));
        assert_eq!(snap["queue.depth"], MetricValue::Gauge(7.5));
        match &snap["latency"] {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 4);
                assert_eq!(h.min, 1.0);
                assert_eq!(h.max, 4.0);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn handles_are_shared_not_copied() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(1);
        b.add(1);
        assert_eq!(reg.counter("x").get(), 2);
    }

    #[test]
    fn concurrent_updates_through_handles() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("hits");
                    let h = reg.histogram("obs");
                    for i in 0..1000 {
                        c.add(1);
                        h.record(i as f64 + 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("hits").get(), 4000);
        assert_eq!(reg.histogram("obs").count(), 4000);
    }

    #[test]
    fn json_render_parses_back() {
        let reg = MetricsRegistry::new();
        reg.inc("a.count", 9);
        reg.set_gauge("b.gauge", -1.25);
        reg.observe("c.hist", 10.0);
        let j = Json::parse(&reg.to_json()).expect("valid json");
        assert_eq!(j.get("a.count").and_then(Json::as_f64), Some(9.0));
        assert_eq!(j.get("b.gauge").and_then(Json::as_f64), Some(-1.25));
        let h = j.get("c.hist").expect("hist object");
        assert_eq!(h.get("count").and_then(Json::as_f64), Some(1.0));
        assert_eq!(h.get("p50").and_then(Json::as_f64), Some(10.0));
    }

    #[test]
    fn text_render_lists_every_metric() {
        let reg = MetricsRegistry::new();
        reg.inc("z", 1);
        reg.observe("a", 2.0);
        let text = reg.render();
        assert!(text.contains("z"));
        assert!(text.contains("p50"));
    }
}
