//! Fleet-level serving metrics.
//!
//! The multi-job scheduler (`hpu-serve`) records one [`JobRecord`] per
//! submitted job — admitted or not — and folds them into a [`ServeReport`]:
//! throughput, latency percentiles, device utilization and
//! predicted-vs-actual scheduling drift. Times are in whatever unit the
//! producing scheduler uses (virtual time for simulated serving, wall-clock
//! µs for native serving); the report only ever forms ratios and
//! differences, so the unit cancels everywhere it matters.

/// What felled a failed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTag {
    /// Transient device faults exhausted the retry budget.
    Transient,
    /// The device was permanently lost mid-run.
    DeviceLost,
    /// A worker closure panicked (native serving).
    Panic,
    /// Non-fault failure: the job failed to compile or execute for a
    /// reason unrelated to fault injection.
    Error,
}

/// Terminal state of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to completion.
    Completed,
    /// Rejected at submission: the admission queue was full.
    QueueFull,
    /// Dropped: its deadline passed (or could not be met) before it ran.
    Cancelled,
    /// Admitted but failed to compile or execute.
    Failed {
        /// What kind of failure ended the job.
        fault: FaultTag,
        /// Recovery retries spent before giving up.
        retries: u32,
    },
}

impl JobOutcome {
    /// Whether the job ended in any `Failed` state.
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutcome::Failed { .. })
    }
}

/// One job's scheduling record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Scheduler-assigned job id (submission order).
    pub id: u64,
    /// Human-readable job label.
    pub name: String,
    /// Terminal state.
    pub outcome: JobOutcome,
    /// Submission time.
    pub arrival: f64,
    /// Dispatch time (= `arrival` for jobs that never ran).
    pub start: f64,
    /// Completion time (= `arrival` for jobs that never ran).
    pub end: f64,
    /// Predicted service time at admission (0 when no prediction was
    /// made, e.g. native serving).
    pub predicted: f64,
    /// Exclusive (solo) service time actually spent on the job's work.
    pub service: f64,
    /// Whether the job ran on its CPU-only fallback plan because the
    /// device lease was contended.
    pub fallback: bool,
    /// Recovery retries spent on the job (fault-injected segments that
    /// were re-executed); 0 on a fault-free path.
    pub retries: u32,
    /// Whether the job completed degraded: re-planned to CPU-only
    /// because the device faulted or its circuit breaker was open.
    pub degraded: bool,
    /// Calibration generation the job was priced under: 0 before any
    /// drift-triggered replan, `g` after the `g`-th replan. Stays 0 when
    /// the producing scheduler runs without calibration.
    pub calibration_generation: u64,
}

impl JobRecord {
    /// Sojourn time: completion minus submission.
    pub fn latency(&self) -> f64 {
        self.end - self.arrival
    }

    /// Time spent queued before dispatch.
    pub fn wait(&self) -> f64 {
        self.start - self.arrival
    }

    /// Relative scheduling drift `(service − predicted) / predicted`, or
    /// `None` when the job carries no prediction or never ran.
    pub fn drift(&self) -> Option<f64> {
        if self.outcome == JobOutcome::Completed && self.predicted > 0.0 {
            Some((self.service - self.predicted) / self.predicted)
        } else {
            None
        }
    }
}

/// Nearest-rank percentile of an **ascending-sorted** slice; `q` in
/// `[0, 100]`. Returns 0 for an empty slice.
///
/// Sortedness is the caller's contract: debug builds panic on an
/// unsorted slice, and release builds detect the violation and sort a
/// local copy — a wrong order statistic is never silently returned
/// (fleet-level report merging concatenates per-node latency streams,
/// which arrive interleaved). For streaming data where even one sort is
/// too expensive, use [`crate::StreamHistogram`] instead.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q / 100.0 * sorted.len() as f64).ceil() as usize;
    let i = rank.clamp(1, sorted.len()) - 1;
    if sorted.windows(2).all(|w| w[0] <= w[1]) {
        return sorted[i];
    }
    debug_assert!(false, "percentile() requires an ascending-sorted slice");
    let mut copy = sorted.to_vec();
    copy.sort_by(f64::total_cmp);
    copy[i]
}

/// Aggregated metrics of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Every submitted job's record, in submission order.
    pub jobs: Vec<JobRecord>,
    /// Time from the first arrival to the last completion.
    pub makespan: f64,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs rejected with a full queue.
    pub rejected: usize,
    /// Jobs cancelled on their deadline.
    pub cancelled: usize,
    /// Jobs that failed to compile or execute.
    pub failed: usize,
    /// Completed jobs per unit time (`completed / makespan`).
    pub throughput: f64,
    /// Median completed-job latency.
    pub p50_latency: f64,
    /// 95th-percentile completed-job latency.
    pub p95_latency: f64,
    /// 99th-percentile completed-job latency.
    pub p99_latency: f64,
    /// Worst completed-job latency.
    pub max_latency: f64,
    /// Fraction of the makespan with at least one CPU core busy
    /// (interval-merged, so never above 1).
    pub cpu_utilization: f64,
    /// Fraction of the makespan the device lease was held.
    pub gpu_utilization: f64,
    /// Mean `|drift()|` over completed jobs that carry a prediction.
    pub mean_abs_drift: f64,
    /// Mean `|drift()|` over jobs priced before the first replan
    /// (`calibration_generation == 0`); 0 when there are none.
    pub mean_abs_drift_before: f64,
    /// Mean `|drift()|` over jobs priced after at least one replan
    /// (`calibration_generation >= 1`); 0 when there are none.
    pub mean_abs_drift_after: f64,
    /// Device fault events observed during the run (injected kernel and
    /// transfer faults, device loss). Set by the producing scheduler via
    /// [`ServeReport::with_fault_counts`]; 0 otherwise.
    pub fault_events: u64,
    /// GPU circuit-breaker trips during the run (same provenance as
    /// `fault_events`).
    pub breaker_trips: u64,
    /// Histogram of per-job recovery retries: `retry_histogram[k]` is the
    /// number of jobs that spent exactly `k` retries. Trailing zeros are
    /// trimmed; fault-free fleets get `[jobs.len()]`.
    pub retry_histogram: Vec<usize>,
    /// Jobs that completed on a degraded (CPU-only) plan.
    pub completed_degraded: usize,
    /// Goodput under faults: completed jobs over submitted jobs
    /// (1.0 for an empty fleet — nothing was lost).
    pub goodput: f64,
    /// Plan-cache hits during the run: admissions (and replan
    /// re-pricings) whose compiled plan was served from the scheduler's
    /// plan cache instead of a fresh compile. Set by the producing
    /// scheduler via [`ServeReport::with_plan_cache`]; 0 otherwise.
    pub plan_cache_hits: u64,
    /// Plan-cache misses (fresh compiles) during the run (same
    /// provenance as `plan_cache_hits`).
    pub plan_cache_misses: u64,
}

impl ServeReport {
    /// Folds job records into a report. `cpu_busy` / `gpu_busy` are
    /// interval-merged busy times on each device (same unit as the
    /// records), e.g. from [`crate::merge_intervals`] over the
    /// arbiter's reservations.
    ///
    /// The makespan is derived from the records themselves — the time from
    /// the first arrival of any submitted job to the last *completion* —
    /// so a fleet whose first job arrives late is not billed for the idle
    /// prefix, and rejected or cancelled records never stretch the window.
    /// With no completed jobs the makespan is 0 (and every ratio with it).
    pub fn new(jobs: Vec<JobRecord>, cpu_busy: f64, gpu_busy: f64) -> ServeReport {
        let count = |o: JobOutcome| jobs.iter().filter(|j| j.outcome == o).count();
        let completed = count(JobOutcome::Completed);
        let failed = jobs.iter().filter(|j| j.outcome.is_failed()).count();
        let completed_degraded = jobs
            .iter()
            .filter(|j| j.outcome == JobOutcome::Completed && j.degraded)
            .count();
        let mut retry_histogram = vec![
            0usize;
            jobs.iter()
                .map(|j| j.retries as usize + 1)
                .max()
                .unwrap_or(0)
        ];
        for j in &jobs {
            retry_histogram[j.retries as usize] += 1;
        }
        while retry_histogram.last() == Some(&0) {
            retry_histogram.pop();
        }
        let goodput = if jobs.is_empty() {
            1.0
        } else {
            completed as f64 / jobs.len() as f64
        };
        let first_arrival = jobs
            .iter()
            .map(|j| j.arrival)
            .min_by(f64::total_cmp)
            .unwrap_or(0.0);
        let last_completion = jobs
            .iter()
            .filter(|j| j.outcome == JobOutcome::Completed)
            .map(|j| j.end)
            .max_by(f64::total_cmp);
        let makespan = last_completion.map_or(0.0, |end| (end - first_arrival).max(0.0));
        // Latency percentiles come from a log-bucketed streaming
        // histogram: O(buckets) readout no matter how many jobs the
        // fleet served, where the old path sorted every latency. The
        // histogram clamps quantiles into the exact [min, max], so
        // small fleets still read back exact values.
        let lat_hist = crate::StreamHistogram::new();
        for j in jobs.iter().filter(|j| j.outcome == JobOutcome::Completed) {
            lat_hist.record(j.latency());
        }
        let drifts: Vec<f64> = jobs.iter().filter_map(JobRecord::drift).collect();
        let mean_abs = |ds: &[f64]| {
            if ds.is_empty() {
                0.0
            } else {
                ds.iter().map(|d| d.abs()).sum::<f64>() / ds.len() as f64
            }
        };
        let gen_drifts = |after: bool| -> Vec<f64> {
            jobs.iter()
                .filter(|j| (j.calibration_generation >= 1) == after)
                .filter_map(JobRecord::drift)
                .collect()
        };
        let ratio = |num: f64| if makespan > 0.0 { num / makespan } else { 0.0 };
        ServeReport {
            makespan,
            completed,
            rejected: count(JobOutcome::QueueFull),
            cancelled: count(JobOutcome::Cancelled),
            failed,
            throughput: ratio(completed as f64),
            p50_latency: lat_hist.quantile(50.0),
            p95_latency: lat_hist.quantile(95.0),
            p99_latency: lat_hist.quantile(99.0),
            max_latency: lat_hist.max(),
            cpu_utilization: ratio(cpu_busy),
            gpu_utilization: ratio(gpu_busy),
            mean_abs_drift: mean_abs(&drifts),
            mean_abs_drift_before: mean_abs(&gen_drifts(false)),
            mean_abs_drift_after: mean_abs(&gen_drifts(true)),
            fault_events: 0,
            breaker_trips: 0,
            retry_histogram,
            completed_degraded,
            goodput,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            jobs,
        }
    }

    /// Attaches run-level fault counters the records alone cannot carry:
    /// total injected fault events and circuit-breaker trips.
    pub fn with_fault_counts(mut self, fault_events: u64, breaker_trips: u64) -> ServeReport {
        self.fault_events = fault_events;
        self.breaker_trips = breaker_trips;
        self
    }

    /// Attaches the scheduler's plan-cache counters: lookups served from
    /// cache (`hits`) versus fresh compiles (`misses`).
    pub fn with_plan_cache(mut self, hits: u64, misses: u64) -> ServeReport {
        self.plan_cache_hits = hits;
        self.plan_cache_misses = misses;
        self
    }

    /// Fraction of plan lookups served from the cache, or 0 when no
    /// lookups were made (a scheduler running without a cache).
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }

    /// JSON object of the summary fields (job records summarized as a
    /// count). The field set and order are part of the report's stable
    /// schema — the golden test pins them, so additions or renames are
    /// deliberate; bump `"schema"` when the meaning of a field changes.
    pub fn to_json(&self) -> String {
        let f = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "0".to_string()
            }
        };
        let retries: Vec<String> = self.retry_histogram.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"schema\":2,\"jobs\":{},\"makespan\":{},\"completed\":{},\"rejected\":{},\
             \"cancelled\":{},\"failed\":{},\"throughput\":{},\"p50_latency\":{},\
             \"p95_latency\":{},\"p99_latency\":{},\"max_latency\":{},\
             \"cpu_utilization\":{},\"gpu_utilization\":{},\"mean_abs_drift\":{},\
             \"mean_abs_drift_before\":{},\"mean_abs_drift_after\":{},\"fault_events\":{},\
             \"breaker_trips\":{},\"retry_histogram\":[{}],\"completed_degraded\":{},\
             \"goodput\":{},\"plan_cache_hits\":{},\"plan_cache_misses\":{}}}",
            self.jobs.len(),
            f(self.makespan),
            self.completed,
            self.rejected,
            self.cancelled,
            self.failed,
            f(self.throughput),
            f(self.p50_latency),
            f(self.p95_latency),
            f(self.p99_latency),
            f(self.max_latency),
            f(self.cpu_utilization),
            f(self.gpu_utilization),
            f(self.mean_abs_drift),
            f(self.mean_abs_drift_before),
            f(self.mean_abs_drift_after),
            self.fault_events,
            self.breaker_trips,
            retries.join(","),
            self.completed_degraded,
            f(self.goodput),
            self.plan_cache_hits,
            self.plan_cache_misses,
        )
    }

    /// Plain-text summary table of the fleet metrics.
    pub fn render(&self) -> String {
        format!(
            "jobs {} | completed {} rejected {} cancelled {} failed {}\n\
             makespan {:.2} | throughput {:.6}\n\
             latency p50 {:.2} p95 {:.2} p99 {:.2} max {:.2}\n\
             utilization cpu {:.3} gpu {:.3} | mean |drift| {:.4} \
             (gen0 {:.4} / gen1+ {:.4})\n\
             faults {} | breaker trips {} | degraded completions {} | \
             goodput {:.3} | retries {:?}\n\
             plan cache hits {} misses {} (hit rate {:.3})\n",
            self.jobs.len(),
            self.completed,
            self.rejected,
            self.cancelled,
            self.failed,
            self.makespan,
            self.throughput,
            self.p50_latency,
            self.p95_latency,
            self.p99_latency,
            self.max_latency,
            self.cpu_utilization,
            self.gpu_utilization,
            self.mean_abs_drift,
            self.mean_abs_drift_before,
            self.mean_abs_drift_after,
            self.fault_events,
            self.breaker_trips,
            self.completed_degraded,
            self.goodput,
            self.retry_histogram,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.plan_cache_hit_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, outcome: JobOutcome, arrival: f64, start: f64, end: f64) -> JobRecord {
        JobRecord {
            id,
            name: format!("job-{id}"),
            outcome,
            arrival,
            start,
            end,
            predicted: 0.0,
            service: 0.0,
            fallback: false,
            retries: 0,
            degraded: false,
            calibration_generation: 0,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 95.0), 4.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let jobs: Vec<JobRecord> = (0..20)
            .map(|i| {
                job(
                    i,
                    JobOutcome::Completed,
                    i as f64,
                    i as f64,
                    i as f64 + 1.0 + (i % 7) as f64,
                )
            })
            .collect();
        let r = ServeReport::new(jobs, 25.0, 10.0);
        assert!(r.p50_latency <= r.p95_latency);
        assert!(r.p95_latency <= r.p99_latency);
        assert!(r.p99_latency <= r.max_latency);
        assert!(r.cpu_utilization <= 1.0 && r.gpu_utilization <= 1.0);
        // First arrival 0, last completion 19 + 1 + (19 % 7) = 25.
        assert_eq!(r.makespan, 25.0);
        assert!((r.throughput - 20.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn outcomes_are_counted_and_excluded_from_latency() {
        let jobs = vec![
            job(0, JobOutcome::Completed, 0.0, 0.0, 4.0),
            job(1, JobOutcome::QueueFull, 1.0, 1.0, 1.0),
            job(2, JobOutcome::Cancelled, 2.0, 2.0, 2.0),
            job(
                3,
                JobOutcome::Failed {
                    fault: FaultTag::Error,
                    retries: 0,
                },
                3.0,
                3.0,
                3.0,
            ),
        ];
        let r = ServeReport::new(jobs, 4.0, 0.0);
        assert_eq!(
            (r.completed, r.rejected, r.cancelled, r.failed),
            (1, 1, 1, 1)
        );
        assert_eq!(r.max_latency, 4.0);
        assert_eq!(r.p99_latency, 4.0);
        assert_eq!(r.gpu_utilization, 0.0);
        assert!(!r.render().is_empty());
    }

    #[test]
    fn drift_needs_a_prediction_and_a_completion() {
        let mut a = job(0, JobOutcome::Completed, 0.0, 0.0, 2.0);
        a.predicted = 2.0;
        a.service = 3.0;
        assert_eq!(a.drift(), Some(0.5));
        let b = job(1, JobOutcome::Completed, 0.0, 0.0, 2.0);
        assert_eq!(b.drift(), None);
        let mut c = job(2, JobOutcome::Cancelled, 0.0, 0.0, 0.0);
        c.predicted = 2.0;
        assert_eq!(c.drift(), None);
        let r = ServeReport::new(vec![a, b, c], 1.0, 0.0);
        assert!((r.mean_abs_drift - 0.5).abs() < 1e-12);
    }

    #[test]
    fn late_first_arrival_does_not_inflate_the_makespan() {
        // Fleet idle until t = 100; one job completes at 110. The window
        // is 10 units, not 110, so throughput and utilization measure the
        // active period — and the rejected straggler whose record ends
        // later must not stretch it.
        let jobs = vec![
            job(0, JobOutcome::Completed, 100.0, 102.0, 110.0),
            job(1, JobOutcome::QueueFull, 120.0, 120.0, 120.0),
        ];
        let r = ServeReport::new(jobs, 5.0, 2.5);
        assert_eq!(r.makespan, 10.0);
        assert!((r.throughput - 0.1).abs() < 1e-12);
        assert!((r.cpu_utilization - 0.5).abs() < 1e-12);
        assert!((r.gpu_utilization - 0.25).abs() < 1e-12);
    }

    #[test]
    fn no_completions_means_zero_makespan_and_ratios() {
        let jobs = vec![job(0, JobOutcome::Cancelled, 5.0, 5.0, 9.0)];
        let r = ServeReport::new(jobs, 3.0, 1.0);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.throughput, 0.0);
        assert_eq!(r.cpu_utilization, 0.0);
    }

    #[test]
    fn drift_splits_by_calibration_generation() {
        let mut early = job(0, JobOutcome::Completed, 0.0, 0.0, 2.0);
        early.predicted = 1.0;
        early.service = 2.0; // |drift| = 1.0, generation 0
        let mut late = job(1, JobOutcome::Completed, 1.0, 2.0, 4.0);
        late.predicted = 2.0;
        late.service = 2.2; // |drift| = 0.1
        late.calibration_generation = 1;
        let r = ServeReport::new(vec![early, late], 4.0, 0.0);
        assert!((r.mean_abs_drift_before - 1.0).abs() < 1e-12);
        assert!((r.mean_abs_drift_after - 0.1).abs() < 1e-12);
        assert!((r.mean_abs_drift - 0.55).abs() < 1e-12);
        assert!(r.render().contains("gen0"));
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = ServeReport::new(Vec::new(), 0.0, 0.0);
        assert_eq!(r.throughput, 0.0);
        assert_eq!(r.cpu_utilization, 0.0);
        assert_eq!(r.max_latency, 0.0);
    }

    #[test]
    fn percentile_of_an_empty_slice_is_zero() {
        // Explicit contract: empty input reads back 0.0 at every rank,
        // never panics or indexes out of bounds.
        for q in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[], q), 0.0, "q={q}");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "ascending-sorted")]
    fn percentile_rejects_unsorted_input_in_debug_builds() {
        percentile(&[3.0, 1.0, 2.0], 50.0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn percentile_sorts_unsorted_input_in_release_builds() {
        // Release builds must not silently return the wrong order
        // statistic: the violation is detected and a local copy sorted.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0);
        assert_eq!(percentile(&[9.0, 1.0, 5.0, 7.0], 100.0), 9.0);
    }

    #[test]
    fn retry_histogram_trims_trailing_zeros_only() {
        // 3 jobs at 0 retries, 1 at 2: histogram [3, 0, 1] — the
        // interior zero survives, nothing trails.
        let mut jobs: Vec<JobRecord> = (0..3)
            .map(|i| job(i, JobOutcome::Completed, 0.0, 0.0, 1.0))
            .collect();
        let mut retried = job(3, JobOutcome::Completed, 0.0, 0.0, 2.0);
        retried.retries = 2;
        jobs.push(retried);
        let r = ServeReport::new(jobs, 2.0, 0.0);
        assert_eq!(r.retry_histogram, vec![3, 0, 1]);

        // A failed job's retries count too; when the highest-retry job
        // disappears the trailing buckets are trimmed down to the last
        // nonzero one.
        let jobs: Vec<JobRecord> = (0..2)
            .map(|i| job(i, JobOutcome::Completed, 0.0, 0.0, 1.0))
            .collect();
        let r = ServeReport::new(jobs, 2.0, 0.0);
        assert_eq!(r.retry_histogram, vec![2]);

        // Empty fleet: empty histogram, not [0].
        let r = ServeReport::new(Vec::new(), 0.0, 0.0);
        assert!(r.retry_histogram.is_empty());
    }

    #[test]
    fn golden_json_schema_is_stable() {
        // Golden serialization: if this test fails, the ServeReport
        // schema changed — update the expected string *and* bump the
        // "schema" field deliberately.
        let mut a = job(0, JobOutcome::Completed, 0.0, 1.0, 5.0);
        a.predicted = 4.0;
        a.service = 4.0;
        let b = job(1, JobOutcome::QueueFull, 2.0, 2.0, 2.0);
        let r = ServeReport::new(vec![a, b], 4.0, 2.0)
            .with_fault_counts(1, 0)
            .with_plan_cache(3, 2);
        let expected = "{\"schema\":2,\"jobs\":2,\"makespan\":5,\"completed\":1,\
                        \"rejected\":1,\"cancelled\":0,\"failed\":0,\"throughput\":0.2,\
                        \"p50_latency\":5,\"p95_latency\":5,\"p99_latency\":5,\
                        \"max_latency\":5,\"cpu_utilization\":0.8,\"gpu_utilization\":0.4,\
                        \"mean_abs_drift\":0,\"mean_abs_drift_before\":0,\
                        \"mean_abs_drift_after\":0,\"fault_events\":1,\"breaker_trips\":0,\
                        \"retry_histogram\":[2],\"completed_degraded\":0,\"goodput\":0.5,\
                        \"plan_cache_hits\":3,\"plan_cache_misses\":2}";
        assert_eq!(r.to_json(), expected);
        // And it parses back as JSON with the right values.
        let j = crate::json::Json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(
            j.get("schema").and_then(crate::json::Json::as_f64),
            Some(2.0)
        );
        assert_eq!(
            j.get("plan_cache_hits").and_then(crate::json::Json::as_f64),
            Some(3.0)
        );
        assert!((r.plan_cache_hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(
            j.get("p99_latency").and_then(crate::json::Json::as_f64),
            Some(5.0)
        );
        assert_eq!(
            j.get("retry_histogram")
                .and_then(crate::json::Json::as_arr)
                .map(|a| a.len()),
            Some(1)
        );
    }

    #[test]
    fn histogram_percentiles_match_exact_sort_on_large_fleets() {
        // ServeReport now reads percentiles off a streaming histogram;
        // they must stay within one bucket width of the exact
        // sort-based values the old path produced.
        let jobs: Vec<JobRecord> = (0..500)
            .map(|i| {
                let lat = 1.0 + ((i * 37) % 97) as f64 * 3.7;
                job(i, JobOutcome::Completed, 0.0, 0.0, lat)
            })
            .collect();
        let mut exact: Vec<f64> = jobs.iter().map(JobRecord::latency).collect();
        exact.sort_by(f64::total_cmp);
        let r = ServeReport::new(jobs, 1.0, 1.0);
        let tol = 1.0 + crate::StreamHistogram::relative_error() + 1e-12;
        for (got, q) in [
            (r.p50_latency, 50.0),
            (r.p95_latency, 95.0),
            (r.p99_latency, 99.0),
        ] {
            let want = percentile(&exact, q);
            let ratio = got / want;
            assert!(
                (1.0 / tol..=tol).contains(&ratio),
                "q={q}: exact {want} vs histogram {got}"
            );
        }
        assert_eq!(r.max_latency, *exact.last().unwrap());
    }
}
