//! Span-based causal tracing.
//!
//! A span is a trace event that knows *why* it exists: it carries a
//! unique id and an optional parent id, so spans form trees — a job span
//! parents its plan-segment spans, a segment span parents the
//! breadth-first level spans that ran inside it, and retry spans hang
//! off whichever span was retried. "Why was job J slow" then reads
//! straight off one trace: follow J's children to the segment that
//! dominated, then to the level (or retry) inside it.
//!
//! Spans travel through the existing [`crate::Recorder`] stream as
//! [`crate::EventKind::Span`] events, so every sink (virtual-time
//! timelines, wall-clock recorders, plain `Vec`s) carries them without
//! change, and the Chrome exporter renders the parent links as flow
//! arrows.

use std::fmt;

use crate::event::{EventKind, TraceEvent, Track};

/// What a causal span covers: one node type of the
/// job → segment → level → retry tree.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanKind {
    /// A whole served job, admission to completion.
    Job {
        /// Scheduler-assigned job id.
        job: u64,
        /// Human-readable job name (e.g. `"mergesort-3-n1024"`).
        name: String,
    },
    /// One plan segment of a job's schedule.
    Segment {
        /// Segment index within the plan.
        index: u32,
        /// Placement label: `"cpu"`, `"gpu"` or `"split"`.
        placement: String,
    },
    /// One breadth-first level executed within a segment.
    Level {
        /// Level index (0 = base cases).
        level: u32,
    },
    /// A recovery retry attributed to its parent span.
    Retry {
        /// Total retry attempts the parent absorbed.
        attempt: u32,
    },
    /// One cross-job batched GPU launch: a single merged kernel +
    /// transfer window whose device time is attributed to *several* job
    /// spans at once (each member's GPU segment span shares this window).
    Batch {
        /// Number of jobs coalesced into the launch.
        size: u32,
        /// Device time the batch saved versus solo launches.
        saved: f64,
    },
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanKind::Job { job, name } => write!(f, "job {job} ({name})"),
            SpanKind::Segment { index, placement } => {
                write!(f, "segment {index} [{placement}]")
            }
            SpanKind::Level { level } => write!(f, "level {level}"),
            SpanKind::Retry { attempt } => write!(f, "retry x{attempt}"),
            SpanKind::Batch { size, saved } => write!(f, "batch x{size} (saved {saved})"),
        }
    }
}

/// Allocates span ids and accumulates span trace events.
///
/// Ids are unique within one `SpanSet` (i.e. one run / one trace
/// process), starting at 1 so 0 never aliases a real span.
#[derive(Debug, Default)]
pub struct SpanSet {
    next: u64,
    events: Vec<TraceEvent>,
}

impl SpanSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a span `[start, end]` on `track` and returns its id, for
    /// use as the `parent` of child spans.
    pub fn push(
        &mut self,
        track: Track,
        start: f64,
        end: f64,
        kind: SpanKind,
        parent: Option<u64>,
    ) -> u64 {
        self.next += 1;
        let id = self.next;
        self.events.push(TraceEvent {
            track,
            start,
            end,
            kind: EventKind::Span { id, parent, kind },
        });
        id
    }

    /// The spans recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the set, yielding its trace events for a recorder or a
    /// Chrome trace process.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

/// If `ev` is a span event, returns `(id, parent, kind)`.
pub fn as_span(ev: &TraceEvent) -> Option<(u64, Option<u64>, &SpanKind)> {
    match &ev.kind {
        EventKind::Span { id, parent, kind } => Some((*id, *parent, kind)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut set = SpanSet::new();
        let job = set.push(
            Track::Cpu,
            0.0,
            10.0,
            SpanKind::Job {
                job: 7,
                name: "sum-7".into(),
            },
            None,
        );
        let seg = set.push(
            Track::Gpu,
            1.0,
            6.0,
            SpanKind::Segment {
                index: 0,
                placement: "gpu".into(),
            },
            Some(job),
        );
        let lvl = set.push(
            Track::Gpu,
            1.0,
            3.0,
            SpanKind::Level { level: 0 },
            Some(seg),
        );
        assert!(job != 0 && seg != 0 && lvl != 0);
        assert!(job != seg && seg != lvl && job != lvl);
        let events = set.into_events();
        assert_eq!(events.len(), 3);
        let (id, parent, kind) = as_span(&events[1]).unwrap();
        assert_eq!(id, seg);
        assert_eq!(parent, Some(job));
        assert_eq!(kind.to_string(), "segment 0 [gpu]");
    }

    #[test]
    fn display_labels_are_stable() {
        assert_eq!(
            SpanKind::Job {
                job: 3,
                name: "mergesort-3-n1024".into()
            }
            .to_string(),
            "job 3 (mergesort-3-n1024)"
        );
        assert_eq!(SpanKind::Level { level: 2 }.to_string(), "level 2");
        assert_eq!(SpanKind::Retry { attempt: 1 }.to_string(), "retry x1");
        assert_eq!(
            SpanKind::Batch {
                size: 3,
                saved: 250.0
            }
            .to_string(),
            "batch x3 (saved 250)"
        );
    }
}
