//! Wall-clock recorder for native executions.

use crate::event::{EventKind, Recorder, TraceEvent, Track};
use std::time::Instant;

/// A [`Recorder`] that timestamps spans in microseconds of wall-clock time
/// since its creation, for native (non-simulated) executions.
///
/// Spans are recorded with explicit `[start, end]` pairs obtained from
/// [`WallRecorder::now_us`], so callers measure around their own work and
/// the recorder never sits inside the timed region.
#[derive(Debug)]
pub struct WallRecorder {
    origin: Instant,
    events: Vec<TraceEvent>,
}

impl Default for WallRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl WallRecorder {
    /// Creates a recorder whose clock starts now.
    pub fn new() -> Self {
        WallRecorder {
            origin: Instant::now(),
            events: Vec::new(),
        }
    }

    /// Microseconds elapsed since the recorder was created.
    pub fn now_us(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e6
    }

    /// The spans recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the recorder, returning its spans.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl Recorder for WallRecorder {
    fn record_event(&mut self, track: Track, start: f64, end: f64, kind: EventKind) {
        self.events.push(TraceEvent {
            track,
            start,
            end,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_monotone_spans() {
        let mut rec = WallRecorder::new();
        let t0 = rec.now_us();
        let t1 = rec.now_us();
        assert!(t1 >= t0);
        rec.record_event(Track::Cpu, t0, t1, EventKind::Mark("work".into()));
        assert_eq!(rec.events().len(), 1);
        assert!(rec.events()[0].duration() >= 0.0);
    }
}
