//! Device arbitration over the shared machine.
//!
//! The scheduler sees the machine as two calendars: the GPU (device plus
//! its bus) is an **exclusively-leased** resource — one job's segment at a
//! time — while the CPU is a **partitionable pool** of `p` cores where
//! reservations coexist as long as their core counts fit. Reservations are
//! never preempted or moved: probing (`*_slot`) and committing
//! (`reserve_*`) use identical placement logic, so a probe's answer holds
//! until something new is reserved.

use hpu_obs::merge_intervals;

/// Comparison slack for virtual-time arithmetic.
pub(crate) const EPS: f64 = 1e-9;

/// Reservation calendars for one shared machine: an exclusive GPU lease
/// and a `cores`-wide CPU pool.
#[derive(Debug, Clone)]
pub struct DeviceArbiter {
    cores: usize,
    gpu: Vec<(f64, f64)>,
    cpu: Vec<(f64, f64, usize)>,
    /// Batched GPU leases `(start, end, members)`: calendar entries in
    /// `gpu` that one *batch* of jobs holds jointly. Kept separately so
    /// the grant and the release are atomic over the whole batch — no
    /// member can individually free (or keep) a shared slot.
    batches: Vec<(f64, f64, usize)>,
}

impl DeviceArbiter {
    /// An empty calendar over a machine with `cores` CPU cores (at least
    /// one) and one GPU.
    pub fn new(cores: usize) -> Self {
        DeviceArbiter {
            cores: cores.max(1),
            gpu: Vec::new(),
            cpu: Vec::new(),
            batches: Vec::new(),
        }
    }

    /// Size of the CPU pool.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Earliest start `>= t` of a GPU lease of length `dur`.
    pub fn gpu_slot(&self, t: f64, dur: f64) -> f64 {
        if dur <= EPS {
            return t;
        }
        let mut c = t;
        for &(s, e) in &self.gpu {
            if c + dur <= s + EPS {
                break;
            }
            if e > c {
                c = e;
            }
        }
        c
    }

    /// Leases the GPU for `dur` starting at the earliest slot `>= t`;
    /// returns the `(start, end)` actually reserved.
    pub fn reserve_gpu(&mut self, t: f64, dur: f64) -> (f64, f64) {
        let start = self.gpu_slot(t, dur);
        if dur > EPS {
            self.gpu.push((start, start + dur));
            self.gpu.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        (start, start + dur.max(0.0))
    }

    /// Leases the GPU to a **batch** of `members` jobs jointly for `dur`
    /// starting at the earliest slot `>= t`: one calendar entry, one
    /// merged upload/kernel/download window, granted to every member at
    /// once. Returns the `(start, end)` reserved. The lease is atomic —
    /// it can only be freed for the whole batch via
    /// [`DeviceArbiter::release_gpu_batch`]; [`DeviceArbiter::release_gpu`]
    /// refuses to release it member-by-member.
    pub fn reserve_gpu_batch(&mut self, t: f64, dur: f64, members: usize) -> (f64, f64) {
        let (start, end) = self.reserve_gpu(t, dur);
        if dur > EPS {
            self.batches.push((start, end, members.max(1)));
        }
        (start, end)
    }

    /// Releases a batched GPU lease `(start, end)` for all its members at
    /// once. Returns whether a matching batch lease was found (the
    /// calendars are untouched otherwise).
    pub fn release_gpu_batch(&mut self, start: f64, end: f64) -> bool {
        let Some(i) = self
            .batches
            .iter()
            .position(|&(s, e, _)| (s - start).abs() <= EPS && (e - end).abs() <= EPS)
        else {
            return false;
        };
        self.batches.remove(i);
        // The underlying calendar entry always exists for a live batch
        // lease; remove it through the plain path now that the batch
        // bookkeeping no longer guards it.
        match self
            .gpu
            .iter()
            .position(|&(s, e)| (s - start).abs() <= EPS && (e - end).abs() <= EPS)
        {
            Some(g) => {
                self.gpu.remove(g);
                true
            }
            None => false,
        }
    }

    /// All live batched GPU leases `(start, end, members)`, grant order.
    pub fn gpu_batch_leases(&self) -> &[(f64, f64, usize)] {
        &self.batches
    }

    /// Whether `(start, end)` is held by a batch (and therefore not
    /// individually releasable).
    fn is_batch_lease(&self, start: f64, end: f64) -> bool {
        self.batches
            .iter()
            .any(|&(s, e, _)| (s - start).abs() <= EPS && (e - end).abs() <= EPS)
    }

    /// Earliest start `>= t` at which `cores` CPU cores are free for the
    /// whole window `[start, start + dur)`.
    pub fn cpu_slot(&self, t: f64, dur: f64, cores: usize) -> f64 {
        let req = cores.clamp(1, self.cores);
        if dur <= EPS {
            return t;
        }
        // Usage only drops at reservation ends, so the earliest feasible
        // start is `t` or one of the ends after it.
        let mut candidates: Vec<f64> = vec![t];
        candidates.extend(self.cpu.iter().map(|&(_, e, _)| e).filter(|&e| e > t));
        candidates.sort_by(f64::total_cmp);
        let mut last = t;
        'cand: for &c in &candidates {
            last = c;
            // Usage within [c, c + dur) only changes at reservation
            // starts; check each breakpoint.
            let mut points: Vec<f64> = vec![c];
            points.extend(
                self.cpu
                    .iter()
                    .map(|&(s, _, _)| s)
                    .filter(|&s| s > c && s < c + dur),
            );
            for &b in &points {
                let used: usize = self
                    .cpu
                    .iter()
                    .filter(|&&(s, e, _)| s <= b + EPS && b + EPS < e)
                    .map(|&(_, _, k)| k)
                    .sum();
                if used + req > self.cores {
                    continue 'cand;
                }
            }
            return c;
        }
        // The last candidate lies past every reservation: always feasible.
        last
    }

    /// Reserves `cores` CPU cores for `dur` at the earliest slot `>= t`.
    pub fn reserve_cpu(&mut self, t: f64, dur: f64, cores: usize) -> (f64, f64) {
        let req = cores.clamp(1, self.cores);
        let start = self.cpu_slot(t, dur, req);
        if dur > EPS {
            self.cpu.push((start, start + dur, req));
            self.cpu.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        (start, start + dur.max(0.0))
    }

    /// Earliest common start `>= t` where both a GPU lease of `gpu_dur`
    /// and `cores` CPU cores for `cpu_dur` fit (a concurrent split
    /// segment launches both sides together).
    pub fn pair_slot(&self, t: f64, cpu_dur: f64, cores: usize, gpu_dur: f64) -> f64 {
        let mut c = t;
        loop {
            let cg = self.gpu_slot(c, gpu_dur);
            let cc = self.cpu_slot(cg, cpu_dur, cores);
            if cc - cg <= EPS {
                return cg;
            }
            c = cc;
        }
    }

    /// Reserves both sides of a concurrent split segment at their earliest
    /// common start; returns `(start, end)` with
    /// `end = start + max(cpu_dur, gpu_dur)`.
    pub fn reserve_pair(&mut self, t: f64, cpu_dur: f64, cores: usize, gpu_dur: f64) -> (f64, f64) {
        let start = self.pair_slot(t, cpu_dur, cores, gpu_dur);
        if gpu_dur > EPS {
            self.gpu.push((start, start + gpu_dur));
            self.gpu.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        if cpu_dur > EPS {
            let req = cores.clamp(1, self.cores);
            self.cpu.push((start, start + cpu_dur, req));
            self.cpu.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        (start, start + cpu_dur.max(gpu_dur).max(0.0))
    }

    /// Releases a committed GPU lease `(start, end)` — the slot becomes
    /// reusable by later arrivals. Returns whether a matching lease was
    /// found (the calendar is untouched otherwise). A lease held by a
    /// batch is never released here: one member backing out must not pull
    /// the window out from under the others.
    pub fn release_gpu(&mut self, start: f64, end: f64) -> bool {
        if self.is_batch_lease(start, end) {
            return false;
        }
        match self
            .gpu
            .iter()
            .position(|&(s, e)| (s - start).abs() <= EPS && (e - end).abs() <= EPS)
        {
            Some(i) => {
                self.gpu.remove(i);
                true
            }
            None => false,
        }
    }

    /// Releases a committed CPU reservation `(start, end, cores)`.
    /// Returns whether a matching reservation was found.
    pub fn release_cpu(&mut self, start: f64, end: f64, cores: usize) -> bool {
        let req = cores.clamp(1, self.cores);
        match self
            .cpu
            .iter()
            .position(|&(s, e, k)| (s - start).abs() <= EPS && (e - end).abs() <= EPS && k == req)
        {
            Some(i) => {
                self.cpu.remove(i);
                true
            }
            None => false,
        }
    }

    /// Interval-merged GPU busy time across all leases.
    pub fn gpu_busy(&self) -> f64 {
        merge_intervals(&self.gpu)
    }

    /// Interval-merged time with at least one CPU core reserved.
    pub fn cpu_busy(&self) -> f64 {
        let iv: Vec<(f64, f64)> = self.cpu.iter().map(|&(s, e, _)| (s, e)).collect();
        merge_intervals(&iv)
    }

    /// All GPU leases, ascending by start.
    pub fn gpu_leases(&self) -> &[(f64, f64)] {
        &self.gpu
    }

    /// All CPU reservations `(start, end, cores)`, ascending by start.
    pub fn cpu_reservations(&self) -> &[(f64, f64, usize)] {
        &self.cpu
    }

    /// Latest reservation end across both calendars.
    pub fn makespan(&self) -> f64 {
        let g = self.gpu.iter().map(|&(_, e)| e).fold(0.0, f64::max);
        let c = self.cpu.iter().map(|&(_, e, _)| e).fold(0.0, f64::max);
        g.max(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_lease_is_exclusive_and_gap_seeking() {
        let mut arb = DeviceArbiter::new(4);
        assert_eq!(arb.reserve_gpu(0.0, 5.0), (0.0, 5.0));
        // Overlap request pushes past the lease.
        assert_eq!(arb.gpu_slot(0.0, 3.0), 5.0);
        assert_eq!(arb.reserve_gpu(8.0, 4.0), (8.0, 12.0));
        // A 3-long request fits in the [5, 8) gap; a 4-long one does not.
        assert_eq!(arb.gpu_slot(0.0, 3.0), 5.0);
        assert_eq!(arb.gpu_slot(0.0, 4.0), 12.0);
        assert_eq!(arb.gpu_busy(), 9.0);
    }

    #[test]
    fn cpu_pool_partitions_by_core_count() {
        let mut arb = DeviceArbiter::new(4);
        assert_eq!(arb.reserve_cpu(0.0, 10.0, 3), (0.0, 10.0));
        // One spare core: a 1-core job coexists, a 2-core job waits.
        assert_eq!(arb.cpu_slot(0.0, 5.0, 1), 0.0);
        assert_eq!(arb.cpu_slot(0.0, 5.0, 2), 10.0);
        arb.reserve_cpu(0.0, 4.0, 1);
        // Pool full until 4.0; then one core free again.
        assert_eq!(arb.cpu_slot(0.0, 2.0, 1), 4.0);
        assert_eq!(arb.cpu_busy(), 10.0);
    }

    #[test]
    fn cpu_slot_respects_future_reservations() {
        let mut arb = DeviceArbiter::new(2);
        arb.reserve_cpu(5.0, 5.0, 2);
        // A 4-long window starting now would collide with [5, 10).
        assert_eq!(arb.cpu_slot(0.0, 4.0, 1), 0.0);
        assert_eq!(arb.cpu_slot(2.0, 4.0, 1), 10.0);
    }

    #[test]
    fn requests_clamp_to_the_pool() {
        let mut arb = DeviceArbiter::new(2);
        let (s, e) = arb.reserve_cpu(0.0, 3.0, 99);
        assert_eq!((s, e), (0.0, 3.0));
        assert_eq!(arb.cpu_reservations()[0].2, 2);
    }

    #[test]
    fn pair_needs_both_units_at_once() {
        let mut arb = DeviceArbiter::new(2);
        arb.reserve_gpu(0.0, 4.0);
        arb.reserve_cpu(4.0, 4.0, 2);
        // GPU free at 4, CPU free at 8: the pair starts at 8.
        assert_eq!(arb.pair_slot(0.0, 2.0, 2, 2.0), 8.0);
        let (s, e) = arb.reserve_pair(0.0, 2.0, 2, 3.0);
        assert_eq!((s, e), (8.0, 11.0));
        assert_eq!(arb.makespan(), 11.0);
    }

    #[test]
    fn released_gpu_slot_is_reusable_by_a_later_arrival() {
        let mut arb = DeviceArbiter::new(4);
        let (s, e) = arb.reserve_gpu(0.0, 10.0);
        // A later arrival would have to wait behind the lease...
        assert_eq!(arb.gpu_slot(0.0, 5.0), 10.0);
        // ...until the lease's job is cancelled and its slot released.
        assert!(arb.release_gpu(s, e));
        assert_eq!(arb.gpu_slot(0.0, 5.0), 0.0);
        assert_eq!(arb.gpu_busy(), 0.0);
        // Releasing twice finds nothing.
        assert!(!arb.release_gpu(s, e));
    }

    #[test]
    fn released_cpu_cores_return_to_the_pool() {
        let mut arb = DeviceArbiter::new(4);
        let (s, e) = arb.reserve_cpu(0.0, 8.0, 3);
        assert_eq!(arb.cpu_slot(0.0, 4.0, 2), 8.0);
        assert!(arb.release_cpu(s, e, 3));
        assert_eq!(arb.cpu_slot(0.0, 4.0, 2), 0.0);
        assert!(!arb.release_cpu(s, e, 3));
    }

    #[test]
    fn batch_lease_is_one_calendar_entry_released_atomically() {
        let mut arb = DeviceArbiter::new(4);
        let (s, e) = arb.reserve_gpu_batch(0.0, 12.0, 3);
        assert_eq!((s, e), (0.0, 12.0));
        // One exclusive entry for the whole batch, visible as such.
        assert_eq!(arb.gpu_leases(), &[(0.0, 12.0)]);
        assert_eq!(arb.gpu_batch_leases(), &[(0.0, 12.0, 3)]);
        assert_eq!(arb.gpu_slot(0.0, 5.0), 12.0);
        // A member cannot individually free the shared window.
        assert!(!arb.release_gpu(s, e));
        assert_eq!(arb.gpu_leases().len(), 1);
        // The batch releases to its members atomically.
        assert!(arb.release_gpu_batch(s, e));
        assert!(arb.gpu_leases().is_empty());
        assert!(arb.gpu_batch_leases().is_empty());
        assert_eq!(arb.gpu_slot(0.0, 5.0), 0.0);
        // Releasing twice finds nothing.
        assert!(!arb.release_gpu_batch(s, e));
    }

    #[test]
    fn batch_lease_queues_behind_plain_leases() {
        let mut arb = DeviceArbiter::new(2);
        arb.reserve_gpu(0.0, 4.0);
        let (s, e) = arb.reserve_gpu_batch(0.0, 3.0, 2);
        assert_eq!((s, e), (4.0, 7.0));
        // Plain leases and their releases are unaffected by batches.
        let (ps, pe) = arb.reserve_gpu(0.0, 1.0);
        assert_eq!((ps, pe), (7.0, 8.0));
        assert!(arb.release_gpu(ps, pe));
        // Zero-length batches reserve (and track) nothing.
        arb.reserve_gpu_batch(0.0, 0.0, 5);
        assert_eq!(arb.gpu_batch_leases().len(), 1);
    }

    #[test]
    fn zero_length_requests_are_instant() {
        let mut arb = DeviceArbiter::new(2);
        arb.reserve_gpu(0.0, 10.0);
        assert_eq!(arb.gpu_slot(3.0, 0.0), 3.0);
        let (s, e) = arb.reserve_cpu(2.0, 0.0, 1);
        assert_eq!((s, e), (2.0, 2.0));
        assert!(arb.cpu_reservations().is_empty());
    }
}
