//! Typed serving errors.

use std::error::Error;
use std::fmt;

use hpu_core::CoreError;
use hpu_model::{CalibrationError, ModelError};

/// Why a submitted job did not complete.
#[derive(Debug)]
pub enum ServeError {
    /// The bounded admission queue was full at arrival: backpressure
    /// rejects the job instead of blocking the submitter forever.
    QueueFull {
        /// Id of the rejected job.
        job: u64,
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The job's deadline passed — or provably could not be met — before
    /// it ran, so the scheduler dropped it.
    Cancelled {
        /// Id of the cancelled job.
        job: u64,
        /// The deadline that was missed (scheduler time units).
        deadline: f64,
    },
    /// The job's schedule failed to compile to an execution plan.
    Compile {
        /// Id of the failed job.
        job: u64,
        /// The model-side compilation error.
        source: ModelError,
    },
    /// The job's plan failed to execute.
    Run {
        /// Id of the failed job.
        job: u64,
        /// The executor-side error.
        source: CoreError,
    },
    /// A shared lock was found poisoned by a worker panic. The holder's
    /// state was recovered (poison is cleared, the pool rebuilt) and the
    /// error recorded so the incident is visible, not silent.
    Poisoned {
        /// Which lock was poisoned.
        context: &'static str,
    },
    /// A native worker panicked while running a job. The worker survives
    /// (the panic is caught at the job boundary) and the job ends
    /// [`hpu_obs::JobOutcome::Failed`].
    WorkerPanic {
        /// Id of the job whose run panicked.
        job: u64,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The calibration loop was mis-configured or produced an invalid
    /// correction. Calibration failures never kill jobs: pricing
    /// proceeds with the last valid corrections (or none).
    Calibration {
        /// Id of the affected job, or `None` for a configuration-level
        /// failure.
        job: Option<u64>,
        /// The calibration-side error.
        source: CalibrationError,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { job, capacity } => {
                write!(f, "job {job}: admission queue full (capacity {capacity})")
            }
            ServeError::Cancelled { job, deadline } => {
                write!(f, "job {job}: cancelled, deadline {deadline} unmeetable")
            }
            ServeError::Compile { job, source } => {
                write!(f, "job {job}: schedule failed to compile: {source}")
            }
            ServeError::Run { job, source } => {
                write!(f, "job {job}: plan failed to execute: {source}")
            }
            ServeError::Poisoned { context } => {
                write!(f, "recovered poisoned lock: {context}")
            }
            ServeError::WorkerPanic { job, message } => {
                write!(f, "job {job}: worker panicked: {message}")
            }
            ServeError::Calibration {
                job: Some(j),
                source,
            } => {
                write!(f, "job {j}: calibration failed: {source}")
            }
            ServeError::Calibration { job: None, source } => {
                write!(f, "calibration disabled: {source}")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Compile { source, .. } => Some(source),
            ServeError::Run { source, .. } => Some(source),
            ServeError::Calibration { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_job() {
        let e = ServeError::QueueFull {
            job: 7,
            capacity: 4,
        };
        assert!(e.to_string().contains("job 7"));
        assert!(e.to_string().contains("capacity 4"));
        let c = ServeError::Cancelled {
            job: 3,
            deadline: 10.0,
        };
        assert!(c.to_string().contains("cancelled"));
        assert!(c.source().is_none());
    }
}
