//! Job abstraction: what the scheduler needs from a workload.
//!
//! A [`Workload`] erases the element type and algorithm behind a small
//! dyn-safe surface, so one queue can mix mergesort, sum and scan jobs.
//! [`AlgoJob`] adapts any owned `(BfAlgorithm, data)` pair.

use std::sync::Arc;
use std::time::Duration;

use hpu_core::exec::{
    run_native, run_sim_plan, run_sim_plan_metered, run_sim_plan_recover, run_sim_plan_resume,
    Checkpoint, RecoveryPolicy, RecoveryStats, RunReport,
};
use hpu_core::{bf::num_levels, BfAlgorithm, CoreError, Element, LevelPool};
use hpu_machine::SimHpu;
use hpu_model::{Plan, Recurrence};
use hpu_obs::MetricsRegistry;

/// A type-erased divide-and-conquer job.
///
/// Implementations own their input and may be run more than once (the
/// scheduler re-runs a job when probing its CPU-only fallback); repeat
/// runs operate on the previous run's output, which every in-place
/// breadth-first algorithm in this workspace tolerates.
pub trait Workload: Send {
    /// The algorithm's name (e.g. `"mergesort"`).
    fn kind(&self) -> &'static str;
    /// Input length in elements.
    fn input_len(&self) -> usize;
    /// The algorithm's cost recurrence, for the admission cost model.
    fn recurrence(&self) -> Recurrence;
    /// The executor's combine-level count for this input.
    fn exec_levels(&self) -> Result<u32, CoreError>;
    /// Runs the job on a simulated machine under a compiled plan.
    fn run_plan(&mut self, hpu: &mut SimHpu, plan: &Plan) -> Result<RunReport, CoreError>;
    /// Like [`Workload::run_plan`], sampling the interpreter's
    /// per-segment timings into `metrics`. The default implementation
    /// ignores the registry — implementors that can meter should
    /// override it.
    fn run_plan_metered(
        &mut self,
        hpu: &mut SimHpu,
        plan: &Plan,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<RunReport, CoreError> {
        let _ = metrics;
        self.run_plan(hpu, plan)
    }
    /// Like [`Workload::run_plan`], retrying faulted segments under
    /// `policy` (see [`hpu_core::exec::interpret_recover`]); the recovery
    /// tallies come back even when the run fails.
    fn run_plan_recover(
        &mut self,
        hpu: &mut SimHpu,
        plan: &Plan,
        policy: &RecoveryPolicy,
    ) -> (Result<RunReport, CoreError>, RecoveryStats);
    /// Resumes the job from a level-boundary checkpoint under a compiled
    /// plan (see [`hpu_core::exec::run_sim_plan_resume`]): the
    /// checkpointed prefix is restored without charging machine time and
    /// only the plan's remaining bands execute. The default ignores the
    /// checkpoint and restarts from scratch — the correct fallback for
    /// workloads that cannot replay state.
    fn run_plan_resume(
        &mut self,
        hpu: &mut SimHpu,
        plan: &Plan,
        ckpt: &Checkpoint,
    ) -> Result<RunReport, CoreError> {
        let _ = ckpt;
        self.run_plan(hpu, plan)
    }
    /// Runs the job on real threads; returns the wall-clock time.
    fn run_native(&mut self, pool: &LevelPool) -> Result<Duration, CoreError>;
}

/// A [`Workload`] over an owned algorithm and input buffer.
pub struct AlgoJob<T: Element, A: BfAlgorithm<T> + Send + 'static> {
    algo: A,
    data: Vec<T>,
}

impl<T: Element, A: BfAlgorithm<T> + Send + 'static> AlgoJob<T, A> {
    /// Wraps `algo` over `data`.
    pub fn new(algo: A, data: Vec<T>) -> Self {
        AlgoJob { algo, data }
    }

    /// Boxes the job for submission to a scheduler queue.
    pub fn boxed(algo: A, data: Vec<T>) -> Box<dyn Workload> {
        Box::new(AlgoJob::new(algo, data))
    }
}

impl<T: Element, A: BfAlgorithm<T> + Send + 'static> Workload for AlgoJob<T, A> {
    fn kind(&self) -> &'static str {
        self.algo.name()
    }

    fn input_len(&self) -> usize {
        self.data.len()
    }

    fn recurrence(&self) -> Recurrence {
        self.algo.recurrence()
    }

    fn exec_levels(&self) -> Result<u32, CoreError> {
        num_levels(&self.algo, self.data.len())
    }

    fn run_plan(&mut self, hpu: &mut SimHpu, plan: &Plan) -> Result<RunReport, CoreError> {
        run_sim_plan(&self.algo, &mut self.data, hpu, plan)
    }

    fn run_plan_metered(
        &mut self,
        hpu: &mut SimHpu,
        plan: &Plan,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<RunReport, CoreError> {
        run_sim_plan_metered(&self.algo, &mut self.data, hpu, plan, Some(metrics))
    }

    fn run_plan_recover(
        &mut self,
        hpu: &mut SimHpu,
        plan: &Plan,
        policy: &RecoveryPolicy,
    ) -> (Result<RunReport, CoreError>, RecoveryStats) {
        run_sim_plan_recover(&self.algo, &mut self.data, hpu, plan, policy)
    }

    fn run_plan_resume(
        &mut self,
        hpu: &mut SimHpu,
        plan: &Plan,
        ckpt: &Checkpoint,
    ) -> Result<RunReport, CoreError> {
        run_sim_plan_resume(&self.algo, &mut self.data, hpu, plan, ckpt)
    }

    fn run_native(&mut self, pool: &LevelPool) -> Result<Duration, CoreError> {
        run_native(&self.algo, &mut self.data, pool)
    }
}
