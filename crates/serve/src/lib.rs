//! # hpu-serve — multi-job serving on one hybrid machine
//!
//! The rest of the workspace answers "how fast does *one* divide-and-
//! conquer instance run on a CPU+GPU machine?". This crate answers the
//! fleet question: many concurrent jobs — any [`BfAlgorithm`] under any
//! [`ScheduleSpec`] — contending for **one** shared machine.
//!
//! The pieces:
//!
//! - [`DeviceArbiter`] — reservation calendars for the shared devices:
//!   the GPU (plus bus) is exclusively leased, the CPU is a partitionable
//!   core pool, so one job's GPU segment overlaps other jobs' CPU work.
//! - [`Policy`] — cost-model admission: jobs are priced with
//!   [`hpu_model::plan_cost`] and dispatched shortest-predicted-cost
//!   first (with a starvation bound), or strict FIFO.
//! - [`serve_sim`] — deterministic event-driven serving in simulated
//!   time, with bounded-queue backpressure ([`ServeError::QueueFull`]),
//!   per-job deadlines ([`ServeError::Cancelled`]), and CPU-only fallback
//!   when the GPU lease is contended.
//! - [`serve_native`] — the wall-clock counterpart on real threads.
//! - Fleet metrics land in an [`hpu_obs::ServeReport`]: throughput,
//!   latency percentiles, device utilization, predicted-vs-actual drift.
//!
//! ```
//! use hpu_algos::MergeSort;
//! use hpu_machine::MachineConfig;
//! use hpu_model::ScheduleSpec;
//! use hpu_serve::{serve_sim, AlgoJob, JobRequest, ServeConfig};
//!
//! let cfg = MachineConfig::tiny();
//! let jobs = (0..4)
//!     .map(|i| {
//!         let data: Vec<u64> = (0..256u64).rev().collect();
//!         JobRequest::new(
//!             format!("sort-{i}"),
//!             ScheduleSpec::CpuParallel,
//!             i as f64,
//!             AlgoJob::boxed(MergeSort::new(), data),
//!         )
//!     })
//!     .collect();
//! let out = serve_sim(&cfg, &ServeConfig::default(), jobs);
//! assert_eq!(out.report.completed, 4);
//! assert!(out.report.p50_latency <= out.report.p99_latency);
//! ```
//!
//! [`BfAlgorithm`]: hpu_core::BfAlgorithm
//! [`ScheduleSpec`]: hpu_model::ScheduleSpec

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod error;
mod job;
mod native;
mod queue;
mod sched;

pub use arbiter::DeviceArbiter;
pub use error::ServeError;
pub use job::{AlgoJob, Workload};
pub use native::{serve_native, NativeJobRequest, NativeServeOutput};
pub use queue::{dispatch_order, Policy, Rank};
pub use sched::{
    serve_sim, BatchPolicy, BatchRecord, CheckpointPolicy, CrashReport, FaultConfig, JobRequest,
    JobRun, NodeSim, QueuedShape, ServeConfig, ServeOutput, StolenJob,
};

pub use hpu_core::exec::Checkpoint;
